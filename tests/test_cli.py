"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestCliRun:
    def test_run_basic(self, capsys):
        out = run_cli(capsys, "--duration", "4000", "--warmup", "500",
                      "run", "IM", "ODR60")
        assert "client FPS" in out
        assert "MtP latency" in out
        assert "power" in out

    def test_run_gce(self, capsys):
        out = run_cli(capsys, "--duration", "4000", "--warmup", "500",
                      "run", "RE", "NoReg", "--platform", "gce",
                      "--resolution", "1080p")
        assert "platform=gce" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "QUAKE", "NoReg"])

    def test_unknown_regulator_rejected(self, capsys):
        with pytest.raises(ValueError):
            main(["--duration", "2000", "run", "IM", "FooMax"])


class TestCliList:
    def test_list_output(self, capsys):
        out = run_cli(capsys, "list")
        assert "benchmarks" in out
        assert "ITP" in out
        assert "Priv720p/ODR60" in out
        assert "GCE1080p/ODR30" in out


class TestCliFigures:
    def test_figure_1(self, capsys):
        out = run_cli(capsys, "--duration", "4000", "--warmup", "500", "figure", "1")
        assert "Figure 1" in out
        assert "RE" in out and "IM" in out

    def test_figure_4(self, capsys):
        out = run_cli(capsys, "--duration", "4000", "--warmup", "500", "figure", "4")
        assert "Figure 4" in out
        assert "render" in out and "transmit" in out

    def test_figure_5(self, capsys):
        out = run_cli(capsys, "--duration", "4000", "--warmup", "500", "figure", "5")
        assert "ODR60" in out

    def test_figure_7(self, capsys):
        out = run_cli(capsys, "--duration", "4000", "--warmup", "500", "figure", "7")
        assert "miss rate" in out

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "2"])  # fig 2 is an architecture diagram
