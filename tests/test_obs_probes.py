"""Engine probes: opt-in introspection, zero-overhead when disabled."""

from repro.obs import EngineProbe, Telemetry
from repro.simcore import Environment


def drip(env, n, step=1.0):
    for _ in range(n):
        yield env.timeout(step)


class TestEngineProbe:
    def test_counts_scheduled_and_fired_events(self):
        probe = EngineProbe()
        env = Environment(probe=probe)
        env.process(drip(env, 5))
        env.run()
        assert probe.events_fired == probe.events_scheduled > 5
        assert probe.pending_events == 0
        assert probe.max_heap_depth >= 1

    def test_counts_processes_by_name(self):
        probe = EngineProbe()
        env = Environment(probe=probe)
        env.process(drip(env, 1), name="app")
        env.process(drip(env, 1), name="app")
        env.process(drip(env, 1), name="client")
        env.run()
        assert probe.processes_started == 3
        assert probe.process_names == {"app": 2, "client": 1}

    def test_wall_clock_per_simulated_second(self):
        # Inject a fake clock so the sampling is deterministic.
        ticks = iter(x * 0.01 for x in range(1000))
        probe = EngineProbe(wallclock=lambda: next(ticks))
        env = Environment(probe=probe)
        env.process(drip(env, 50, step=100.0))  # crosses 5 sim-second marks
        env.run()
        assert len(probe.wall_per_sim_second) >= 4
        mean = probe.mean_wall_per_sim_second()
        assert mean is not None and mean > 0

    def test_summary_is_flat_and_json_safe(self):
        import json

        probe = EngineProbe()
        env = Environment(probe=probe)
        env.process(drip(env, 3))
        env.run()
        summary = json.loads(json.dumps(probe.summary()))
        assert summary["events_fired"] == probe.events_fired
        assert summary["processes_started"] == 1

    def test_set_probe_mid_run(self):
        env = Environment()
        env.process(drip(env, 2))
        env.run(until=1.5)
        probe = EngineProbe()
        env.set_probe(probe)
        env.run()
        assert probe.events_fired > 0
        assert env.probe is probe


class TestDisabledZeroOverheadPath:
    def test_environment_defaults_to_no_probe(self):
        env = Environment()
        assert env.probe is None

    def test_disabled_engine_never_touches_a_probe(self):
        # A probe whose hooks all raise: if the engine consulted it on
        # the disabled path, the run would explode.
        class Landmine:
            def __getattr__(self, name):
                raise AssertionError(f"probe hook {name} called while disabled")

        env = Environment(probe=None)
        env.process(drip(env, 10))
        env.run()  # fine: no probe attached

        env2 = Environment(probe=Landmine())
        env2.set_probe(None)  # detached again before any event
        env2.process(drip(env2, 10))
        env2.run()

    def test_telemetry_without_probe_flag_has_none(self):
        assert Telemetry().probe is None
        assert Telemetry(engine_probe=True).probe is not None

    def test_disabled_run_produces_identical_schedule(self):
        # The probe must be observation-only: with and without one, the
        # event timeline is identical.
        def workload(env, log):
            for i in range(20):
                yield env.timeout(1.5)
                log.append(env.now)

        log_a, log_b = [], []
        env_a = Environment()
        env_a.process(workload(env_a, log_a))
        env_a.run()
        env_b = Environment(probe=EngineProbe())
        env_b.process(workload(env_b, log_b))
        env_b.run()
        assert log_a == log_b
