"""Chaos-sweep tests: plan shape, resilience scoring, the Sec. 4.1 claim.

The headline assertion (paper Sec. 4.1): after a sudden processing-time
spike, ODR *accelerates* — renders above target until the client-side
buffer refills — so its time-to-recover is (near-)zero, while
regulation without acceleration recovers slowly or not at all.
"""

import json

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.cli import main
from repro.experiments import (
    Plan,
    SerialExecutor,
    chaos_demands,
    render_resilience,
    resilience_payload,
    resilience_rows,
)
from repro.experiments.plan import CellSpec
from repro.faults import FaultPlan, StageStall
from repro.metrics import recovery_stats
from repro.workloads import PRIVATE_CLOUD, Resolution

DURATION_MS = 6000.0
WARMUP_MS = 1000.0


class TestChaosDemands:
    def test_plan_shape(self):
        plan = chaos_demands(
            benchmarks=["IM", "STK"],
            regulators=["NoReg", "ODR60"],
            fault_classes=["encode_stall", "net_outage"],
            duration_ms=DURATION_MS,
            warmup_ms=WARMUP_MS,
        )
        # 2 benchmarks x 2 regulators x (1 baseline + 2 fault classes).
        assert len(plan) == 12
        classes = {spec.fault_class for spec in plan}
        assert classes == {"none", "encode_stall", "net_outage"}

    def test_baseline_cells_keep_clean_run_ids(self):
        """The fault_class tag is presentation-only: a chaos baseline
        cell is *the same cell* as an ordinary sweep's — one simulation,
        one store entry, shared across sweeps."""
        plan = chaos_demands(
            benchmarks=["IM"], regulators=["ODR60"],
            fault_classes=["encode_stall"],
            duration_ms=DURATION_MS, warmup_ms=WARMUP_MS,
        )
        baseline = next(s for s in plan if s.fault_class == "none")
        plain = CellSpec(
            benchmark="IM", platform="private", resolution="720p",
            regulator="ODR60", seed=1,
            duration_ms=DURATION_MS, warmup_ms=WARMUP_MS,
        )
        assert baseline.run_id == plain.run_id

    def test_fault_cells_are_distinct_cells(self):
        plan = chaos_demands(
            benchmarks=["IM"], regulators=["ODR60"],
            fault_classes=["encode_stall", "net_outage"],
            duration_ms=DURATION_MS, warmup_ms=WARMUP_MS,
        )
        assert len(set(plan.run_ids)) == 3
        faulted = next(s for s in plan if s.fault_class == "encode_stall")
        assert "faults" in faulted.config_payload()
        assert faulted.label.endswith("+encode_stall")


class TestResilienceScoring:
    @pytest.fixture(scope="class")
    def report(self):
        plan = chaos_demands(
            benchmarks=["IM"],
            regulators=["NoReg", "ODR60"],
            fault_classes=["encode_stall"],
            duration_ms=DURATION_MS,
            warmup_ms=WARMUP_MS,
        )
        return SerialExecutor().run(plan)

    def test_rows_grouped_and_baseline_first(self, report):
        rows = resilience_rows(report.outcomes)
        assert [(r.fault_class, r.regulator) for r in rows] == [
            ("none", "NoReg"), ("none", "ODR60"),
            ("encode_stall", "NoReg"), ("encode_stall", "ODR60"),
        ]
        for row in rows:
            assert row.cells == 1
            assert row.client_fps > 0

    def test_fault_rows_carry_recovery_metrics(self, report):
        rows = {
            (r.fault_class, r.regulator): r for r in resilience_rows(report.outcomes)
        }
        odr = rows[("encode_stall", "ODR60")]
        assert odr.recovered == odr.cells == 1
        assert odr.mean_ttr_ms is not None
        assert odr.mean_frames_lost is not None and odr.mean_frames_lost > 0
        baseline = rows[("none", "ODR60")]
        assert baseline.recovered == 0 and baseline.mean_ttr_ms is None

    def test_odr_out_recovers_noreg(self, report):
        """The resilience table's point: ODR's TTR is finite and no
        worse than NoReg's, with a far smaller excessive-rendering
        excursion."""
        rows = {
            (r.fault_class, r.regulator): r for r in resilience_rows(report.outcomes)
        }
        odr = rows[("encode_stall", "ODR60")]
        noreg = rows[("encode_stall", "NoReg")]
        assert odr.mean_ttr_ms is not None
        assert odr.mean_ttr_ms <= (noreg.mean_ttr_ms or float("inf"))
        assert noreg.worst_fps_gap is not None
        assert odr.worst_fps_gap < noreg.worst_fps_gap

    def test_render_and_payload(self, report):
        rows = resilience_rows(report.outcomes)
        text = render_resilience(rows)
        assert "fault" in text and "TTR ms" in text and "encode_stall" in text
        payload = resilience_payload(rows)
        assert payload["kind"] == "chaos_resilience"
        assert len(payload["rows"]) == len(rows)
        json.dumps(payload)  # must be serializable as-is


class TestPaperSec41Claim:
    """Satellite: the paper's acceleration claim under the new fault path."""

    STALL = StageStall("encode", 6000.0, 300.0)

    def run(self, spec):
        config = SystemConfig(
            "IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
            duration_ms=12000.0, warmup_ms=2000.0,
        )
        system = CloudSystem(
            config, make_regulator(spec), fault_plan=FaultPlan([self.STALL])
        )
        result = system.run()
        stats = recovery_stats(
            result, [(w.start_ms, w.end_ms) for w in system.faults.windows]
        )
        return result, stats

    def test_odr_accelerates_back_to_target(self):
        result, stats = self.run("ODR60")
        assert stats is not None and stats.recovered
        assert stats.time_to_recover_ms <= 250.0
        # The catch-up burst: decode runs *above* target right after.
        burst = result.counter.mean_fps("decode", 6300.0, 6700.0)
        assert burst > 65.0

    def test_noreg_does_not_accelerate(self):
        result, stats = self.run("NoReg")
        _, odr_stats = self.run("ODR60")
        assert stats is not None
        # NoReg free-runs at ~90 FPS pre-fault and has no repayment
        # mechanism: its return to the pre-fault band takes strictly
        # longer, and the stall provokes a much larger FPS-gap burst.
        noreg_ttr = stats.time_to_recover_ms
        assert noreg_ttr is None or noreg_ttr > odr_stats.time_to_recover_ms
        assert stats.worst_fps_gap > 4 * odr_stats.worst_fps_gap


class TestChaosCli:
    def test_chaos_cli_end_to_end_and_resume(self, tmp_path, capsys):
        argv = [
            "--duration", "4000", "--warmup", "800",
            "chaos",
            "--benchmarks", "IM",
            "--groups", "NoReg,ODR60",
            "--faults", "encode_stall",
            "--ledger", str(tmp_path / "ledger"),
            "-o", str(tmp_path / "chaos.json"),
            "--resume",
        ]
        assert main(list(argv)) == 0
        out = capsys.readouterr().out
        assert "Resilience by fault class x regulator" in out
        assert "executed=4 cached=0" in out
        payload = json.loads((tmp_path / "chaos.json").read_text())
        assert payload["kind"] == "chaos_resilience"
        assert payload["failed_cells"] == []
        odr = next(
            r for r in payload["rows"]
            if r["regulator"] == "ODR60" and r["fault_class"] == "encode_stall"
        )
        assert odr["recovered"] == 1 and odr["mean_ttr_ms"] is not None
        # Resume: everything recalled from <ledger>/cells, nothing re-run.
        assert main(list(argv)) == 0
        assert "executed=0 cached=4" in capsys.readouterr().out

    def test_unknown_inputs_rejected(self, capsys):
        assert main(["chaos", "--benchmarks", "NOPE", "--groups", "ODR60"]) == 2
        assert main(["chaos", "--faults", "meteor_strike"]) == 2
