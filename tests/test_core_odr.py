"""Integration tests for the assembled ODR regulator."""

import pytest

from repro import CloudSystem, OnDemandRendering, SystemConfig, make_regulator
from repro.pipeline.frames import DropReason
from repro.workloads import GCE, PRIVATE_CLOUD, Resolution


def run_odr(bench="IM", platform=PRIVATE_CLOUD, resolution=Resolution.R720P,
            seed=1, duration=10000.0, **odr_kwargs):
    config = SystemConfig(bench, platform, resolution, seed=seed,
                          duration_ms=duration, warmup_ms=1500.0)
    regulator = OnDemandRendering(**odr_kwargs)
    return CloudSystem(config, regulator).run(), regulator


class TestNaming:
    def test_names_match_paper_labels(self):
        assert OnDemandRendering(60).name == "ODR60"
        assert OnDemandRendering(30).name == "ODR30"
        assert OnDemandRendering(None).name == "ODRMax"
        assert OnDemandRendering(None, priority_frames=False).name == "ODRMax-noPri"
        assert OnDemandRendering(60, accelerate=False).name == "ODR60-noAccel"
        assert (
            OnDemandRendering(None, priority_frames=False, accelerate=False).name
            == "ODRMax-noPri-noAccel"
        )


class TestFpsTargets:
    @pytest.mark.parametrize("target", [30, 60])
    def test_target_met_on_average(self, target):
        result, _ = run_odr(target_fps=float(target))
        assert result.client_fps >= target - 0.5

    def test_target_met_per_200ms_window(self):
        """Sec. 5.2: the target holds for (almost) every 200 ms period."""
        result, _ = run_odr(target_fps=60.0, duration=15000)
        report = result.qos(60.0, window_ms=200.0)
        assert report.satisfaction >= 0.97

    def test_max_mode_tracks_encoder_capacity(self):
        result, _ = run_odr(target_fps=None)
        # IM's uncontended encode capacity is ~105-116 FPS
        assert 95 <= result.client_fps <= 125

    def test_max_mode_beats_noreg_client_fps(self):
        """The paper's ODRMax>NoReg result via reduced memory contention."""
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                              duration_ms=10000, warmup_ms=1500)
        noreg = CloudSystem(config, make_regulator("NoReg")).run()
        odr, _ = run_odr(target_fps=None)
        assert odr.client_fps > noreg.client_fps


class TestFpsGap:
    def test_gap_nearly_eliminated(self):
        result, _ = run_odr(target_fps=None)
        assert result.fps_gap().mean_gap < 4.0

    def test_nopri_gap_below_one_frame(self):
        """Table 2: ODRMax-noPri average gap always below one frame."""
        result, _ = run_odr(target_fps=None, priority_frames=False)
        assert result.fps_gap().mean_gap < 1.0

    def test_priority_adds_only_small_gap(self):
        """Table 2: PriorityFrame costs only ~1-2 frames of gap."""
        with_pri, _ = run_odr(target_fps=None, priority_frames=True, seed=3)
        without, _ = run_odr(target_fps=None, priority_frames=False, seed=3)
        assert with_pri.fps_gap().mean_gap - without.fps_gap().mean_gap < 3.0


class TestPriorityFrame:
    def test_priority_frames_exist_and_are_bounded_by_action_rate(self):
        result, regulator = run_odr(target_fps=60.0, duration=15000)
        priority_frames = [f for f in result.system.app.frames if f.priority]
        actions = result.system.inputs.issued_actions
        assert 0 < len(priority_frames) <= actions

    def test_obsolete_frames_flushed(self):
        result, regulator = run_odr(target_fps=60.0, duration=15000)
        flushed = result.dropped_frames(DropReason.OBSOLETE_FLUSH)
        assert regulator.priority.frames_flushed == len(flushed)
        assert len(flushed) > 0

    def test_flushed_inputs_inherited_not_lost(self):
        """Every tracked input must eventually be answered (none lost to
        obsolete-frame flushing)."""
        result, _ = run_odr(target_fps=60.0, duration=15000)
        tracker = result.tracker
        # allow only the in-flight tail to be open
        assert tracker.open_count <= 3

    def test_priority_lowers_latency(self):
        with_pri, _ = run_odr(target_fps=60.0, seed=2)
        without, _ = run_odr(target_fps=60.0, priority_frames=False, seed=2)
        assert with_pri.mean_mtp_ms() < without.mean_mtp_ms()

    def test_priority_latency_beats_noreg(self):
        """Sec. 6.4: PriorityFrame removes NoReg's queueing delay."""
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                              duration_ms=10000, warmup_ms=1500)
        noreg = CloudSystem(config, make_regulator("NoReg")).run()
        odr, _ = run_odr(target_fps=None)
        assert odr.mean_mtp_ms() < noreg.mean_mtp_ms()


class TestAccelerationAblation:
    def test_acceleration_improves_fps_under_spiky_load(self):
        accel, _ = run_odr(target_fps=60.0, seed=4, duration=15000)
        noaccel, _ = run_odr(target_fps=60.0, accelerate=False, seed=4, duration=15000)
        assert accel.client_fps > noaccel.client_fps

    def test_noaccel_degrades_windowed_qos(self):
        """Without acceleration, spike-hit 200 ms windows stay unrepaired."""
        accel, _ = run_odr(target_fps=60.0, seed=4, duration=15000)
        noaccel, _ = run_odr(target_fps=60.0, accelerate=False, seed=4, duration=15000)
        assert noaccel.qos(60.0).satisfaction <= accel.qos(60.0).satisfaction
        assert noaccel.qos(60.0).worst_window_fps <= accel.qos(60.0).worst_window_fps


class TestMultiBufferDiscipline:
    def test_mulbuf_swap_counts_track_throughput(self):
        result, regulator = run_odr(target_fps=60.0, duration=8000)
        encoded = result.counter.count("encode")
        # every encoded frame came through a Mul-Buf1 swap
        assert abs(regulator.mulbuf1.swap_count - encoded) <= 2

    def test_app_blocks_on_back_buffer(self):
        """Rendering rate must match encoding rate (no free-running)."""
        result, _ = run_odr(target_fps=None, priority_frames=False)
        assert result.render_fps - result.encode_fps < 2.0


class TestGcePublicCloudClaims:
    def test_odr_meets_60fps_100ms_on_gce_720p(self):
        """The paper's headline public-cloud feasibility claim."""
        result, _ = run_odr(platform=GCE, target_fps=60.0, duration=15000)
        assert result.client_fps >= 59.5
        assert result.mean_mtp_ms() < 100.0

    def test_odr30_on_gce_1080p(self):
        result, _ = run_odr(
            platform=GCE, resolution=Resolution.R1080P, target_fps=30.0, duration=15000
        )
        assert result.client_fps >= 29.5
        assert result.mean_mtp_ms() < 150.0
