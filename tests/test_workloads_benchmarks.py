"""Tests for benchmark and platform profiles."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro.workloads import (
    BENCHMARKS,
    GCE,
    PLATFORMS,
    PRIVATE_CLOUD,
    PlatformProfile,
    Resolution,
    get_benchmark,
)


class TestBenchmarkRegistry:
    def test_all_six_present(self):
        assert set(BENCHMARKS) == {"STK", "0AD", "RE", "D2", "IM", "ITP"}

    def test_lookup_case_insensitive(self):
        assert get_benchmark("im").name == "IM"
        assert get_benchmark("0ad").name == "0AD"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("quake")

    def test_genres_match_paper_table1(self):
        assert get_benchmark("STK").genre == "Racing Game"
        assert "VR" in get_benchmark("IM").genre
        assert "VR" in get_benchmark("ITP").genre

    def test_action_rates_in_paper_range(self):
        # Sec 5.3: 2 to 5 priority frames per second observed
        for bench in BENCHMARKS.values():
            assert 2.0 <= bench.actions_per_second <= 5.0


#: DRAM-contention multiplier under NoReg (both sides ~fully overlapped).
NOREG_CONTENTION = 1.25


def noreg_render_fps(bench):
    return 1000.0 / (NOREG_CONTENTION * (bench.render.mean_ms + bench.copy.mean_ms))


def noreg_encode_fps(bench):
    return 1000.0 / (NOREG_CONTENTION * bench.encode.mean_ms)


class TestCalibrationAnchors:
    """Sanity-check profile means against the paper's headline FPS numbers."""

    def test_inmind_noreg_render_fps_near_189(self):
        # Fig. 3: InMind 720p private renders at ~189 FPS under NoReg.
        assert 170 <= noreg_render_fps(get_benchmark("IM")) <= 205

    def test_inmind_noreg_encode_fps_near_93(self):
        assert 85 <= noreg_encode_fps(get_benchmark("IM")) <= 100

    def test_imhotep_is_worst_gap_offender(self):
        # Table 2: ITP has by far the largest NoReg FPS gap.
        gaps = {
            name: noreg_render_fps(b) - noreg_encode_fps(b)
            for name, b in BENCHMARKS.items()
        }
        assert max(gaps, key=gaps.get) == "ITP"

    def test_every_benchmark_renders_faster_than_it_encodes(self):
        # Excessive rendering requires render FPS > encode FPS everywhere.
        for bench in BENCHMARKS.values():
            assert bench.render.mean_ms + bench.copy.mean_ms < bench.encode.mean_ms

    def test_decode_is_fastest_stage(self):
        # Fig. 4 caption: decoding time is relatively lower.
        for bench in BENCHMARKS.values():
            assert bench.decode.mean_ms < bench.encode.mean_ms


class TestStageModelScaling:
    def test_1080p_slower_than_720p(self):
        bench = get_benchmark("IM")
        m720 = bench.stage_models(PRIVATE_CLOUD, Resolution.R720P)
        m1080 = bench.stage_models(PRIVATE_CLOUD, Resolution.R1080P)
        for stage in ("render", "copy", "encode", "decode"):
            assert m1080[stage].mean_ms > m720[stage].mean_ms

    def test_gce_renders_faster_than_private(self):
        bench = get_benchmark("ITP")
        private = bench.stage_models(PRIVATE_CLOUD, Resolution.R720P)
        gce = bench.stage_models(GCE, Resolution.R720P)
        assert gce["render"].mean_ms < private["render"].mean_ms

    def test_frame_size_scales_with_resolution(self):
        bench = get_benchmark("IM")
        s720 = bench.frame_size_model(Resolution.R720P)
        s1080 = bench.frame_size_model(Resolution.R1080P)
        assert s1080.mean_kb == pytest.approx(s720.mean_kb * 2.1)


class TestResolution:
    def test_dimensions(self):
        assert Resolution.R720P.width == 1280
        assert Resolution.R1080P.height == 1080

    def test_pixels(self):
        assert Resolution.R720P.pixels == 1280 * 720

    def test_default_fps_targets_match_paper(self):
        # Sec. 6.1: 60 FPS at 720p, 30 FPS at 1080p.
        assert Resolution.R720P.default_fps_target == 60
        assert Resolution.R1080P.default_fps_target == 30


class TestPlatforms:
    def test_registry(self):
        assert set(PLATFORMS) == {"private", "gce", "local"}

    def test_ping_split_matches_paper(self):
        # ~2 ms private, ~25 ms GCE
        assert PRIVATE_CLOUD.rtt_ms == pytest.approx(2.0)
        assert GCE.rtt_ms == pytest.approx(25.0)

    def test_gce_is_bandwidth_constrained(self):
        assert GCE.bandwidth_mbps < PRIVATE_CLOUD.bandwidth_mbps

    def test_transmit_time(self):
        # 60 KB at 42 Mbps ~ 11.7 ms
        t = GCE.transmit_ms(60 * 1024)
        assert t == pytest.approx(60 * 1024 * 8 / 42000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlatformProfile(
                name="x", description="", uplink_ms=1, downlink_ms=1,
                bandwidth_mbps=0, transmit_jitter_cv=0.1, send_buffer_bytes=1,
                render_time_factor=1, encode_time_factor=1,
            )

    def test_congestion_precondition_on_gce(self):
        """The mechanism behind NoReg's GCE latency blow-up.

        InMind encodes ~93 FPS at ~60 KB/frame: the offered load must
        exceed GCE bandwidth (congestion) but not private bandwidth.
        """
        offered_mbps = 93 * 60 * 1024 * 8 / 1e6
        assert offered_mbps > GCE.bandwidth_mbps
        assert offered_mbps < PRIVATE_CLOUD.bandwidth_mbps
