"""Exporters and end-to-end telemetry integration.

Uses short real runs (a few simulated seconds) so the exported traces
contain genuine pipeline schedules, drops, and regulator gate delays.
"""

import json

import pytest

from repro.cli import main
from repro.obs import Telemetry, chrome_trace, jsonl_lines, write_chrome_trace, write_jsonl
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import PLATFORMS, Resolution

STAGES = {"render", "copy", "encode", "transmit", "decode"}


def short_run(spec="ODR60", benchmark="IM", platform="private", probe=False, **kwargs):
    telemetry = Telemetry(engine_probe=probe)
    config = SystemConfig(
        benchmark=benchmark,
        platform=PLATFORMS[platform],
        resolution=Resolution("720p"),
        seed=1,
        duration_ms=kwargs.pop("duration_ms", 3000.0),
        warmup_ms=kwargs.pop("warmup_ms", 500.0),
    )
    result = CloudSystem(config, make_regulator(spec), telemetry=telemetry).run()
    return result, telemetry


@pytest.fixture(scope="module")
def odr_run():
    return short_run("ODR60", probe=True)


class TestChromeTrace:
    def test_trace_is_valid_chrome_trace_format(self, odr_run):
        _, telemetry = odr_run
        trace = chrome_trace(telemetry)
        # JSON-serializable object form with a traceEvents array.
        blob = json.loads(json.dumps(trace))
        events = blob["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert {"ph", "name", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "ts" in event
            if event["ph"] == "i":
                assert "ts" in event

    def test_all_five_pipeline_stages_present(self, odr_run):
        _, telemetry = odr_run
        events = chrome_trace(telemetry)["traceEvents"]
        slice_names = {e["name"] for e in events if e["ph"] == "X"}
        assert STAGES <= slice_names

    def test_gate_delay_slices_present_for_paced_regulator(self, odr_run):
        _, telemetry = odr_run
        events = chrome_trace(telemetry)["traceEvents"]
        gates = [e for e in events if e["ph"] == "X" and e["name"] == "gate"]
        assert gates, "ODR60 must show regulator gate delays"
        assert all(e["dur"] > 0 for e in gates)

    def test_timestamps_are_microseconds(self, odr_run):
        _, telemetry = odr_run
        span = next(iter(telemetry.spans))
        render = span.interval("render")
        events = chrome_trace(telemetry)["traceEvents"]
        slice0 = next(
            e
            for e in events
            if e["ph"] == "X"
            and e["name"] == "render"
            and e["args"]["frame_id"] == span.frame_id
        )
        assert slice0["ts"] == pytest.approx(render.start * 1000.0)

    def test_drops_exported_as_instant_events(self):
        # NoReg on the slow GCE path overwrites plenty of mailbox frames.
        _, telemetry = short_run("NoReg", platform="gce")
        events = chrome_trace(telemetry)["traceEvents"]
        drops = [e for e in events if e["ph"] == "i"]
        assert drops
        assert any(e["name"] == "drop:mailbox_overwrite" for e in drops)

    def test_write_chrome_trace_loadable_file(self, odr_run, tmp_path):
        _, telemetry = odr_run
        path = tmp_path / "trace.json"
        count = write_chrome_trace(telemetry, str(path))
        blob = json.loads(path.read_text())
        assert len(blob["traceEvents"]) == count
        assert blob["displayTimeUnit"] == "ms"


class TestJsonl:
    def test_every_line_is_json(self, odr_run):
        _, telemetry = odr_run
        lines = list(jsonl_lines(telemetry))
        records = [json.loads(line) for line in lines]
        types = {r["type"] for r in records}
        assert types == {"frame_span", "metrics_snapshot", "engine_probe"}

    def test_span_records_match_store(self, odr_run, tmp_path):
        _, telemetry = odr_run
        path = tmp_path / "telemetry.jsonl"
        count = write_jsonl(telemetry, str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == count
        spans = [r for r in records if r["type"] == "frame_span"]
        assert len(spans) == len(telemetry.spans)
        assert {s["stages"][0]["stage"] for s in spans if s["stages"]} == {"render"}


class TestRunResultIntegration:
    def test_run_result_exposes_telemetry(self, odr_run):
        result, telemetry = odr_run
        assert result.telemetry() is telemetry
        assert len(result.telemetry().spans) > 0
        snapshot = result.telemetry().snapshot()
        assert snapshot.counter_value("frames_created_total") == len(telemetry.spans)
        assert snapshot.histogram_stats("gate_delay_ms").count > 0

    def test_run_without_telemetry_returns_none(self):
        config = SystemConfig(
            benchmark="IM",
            platform=PLATFORMS["private"],
            resolution=Resolution("720p"),
            duration_ms=500.0,
            warmup_ms=100.0,
        )
        result = CloudSystem(config, make_regulator("NoReg")).run()
        assert result.telemetry() is None

    def test_span_counts_consistent_with_run_result(self, odr_run):
        result, telemetry = odr_run
        displayed = telemetry.spans.spans(dropped=False)
        closed = [s for s in displayed if not s.open]
        # every closed non-dropped span is a displayed frame
        assert len(closed) == len(result.system.client.displayed)

    def test_dropped_frames_have_matching_spans(self):
        _, telemetry = short_run("NoReg", platform="gce")
        dropped = telemetry.spans.spans(dropped=True)
        assert dropped
        assert all(s.drop_reason == "mailbox_overwrite" for s in dropped)
        snap = telemetry.snapshot()
        assert snap.counter_value(
            "frames_dropped_total", reason="mailbox_overwrite"
        ) == len(dropped)


class TestMultitenantTelemetry:
    def test_sessions_labeled_in_spans_and_metrics(self):
        from repro.multitenant import SharedServer

        telemetry = Telemetry()
        server = SharedServer(
            benchmarks=["IM", "STK"],
            platform=PLATFORMS["private"],
            resolution=Resolution("720p"),
            regulator_factory=lambda i: make_regulator("ODR30"),
            seed=1,
            duration_ms=1500.0,
            warmup_ms=300.0,
            telemetry=telemetry,
        )
        server.run()
        assert telemetry.spans.sessions() == ["s0", "s1"]
        snap = telemetry.snapshot()
        for session in ("s0", "s1"):
            assert snap.counter_value("frames_created_total", session=session) > 0
        # Chrome export keeps sessions as separate trace processes.
        events = chrome_trace(telemetry)["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) == 2


class TestTraceCli:
    def test_trace_subcommand_writes_perfetto_loadable_file(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "telemetry.jsonl"
        code = main(
            [
                "--duration", "1500", "--warmup", "300",
                "trace", "--benchmark", "IM", "--regulator", "odr",
                "-o", str(out), "--jsonl", str(jsonl),
            ]
        )
        assert code == 0
        blob = json.loads(out.read_text())
        slice_names = {e["name"] for e in blob["traceEvents"] if e["ph"] == "X"}
        assert STAGES <= slice_names
        assert jsonl.exists()
        printed = capsys.readouterr().out
        assert "spans" in printed and "engine" in printed


class TestRunnerPersistence:
    def test_runner_persists_telemetry_alongside_records(self, tmp_path):
        from repro.experiments.config import ExperimentConfig, PlatformRes
        from repro.experiments.runner import Runner

        runner = Runner(
            seed=1, duration_ms=1500.0, warmup_ms=300.0, telemetry_dir=str(tmp_path)
        )
        combo = PlatformRes(PLATFORMS["private"], Resolution("720p"))
        record = runner.run_cell("IM", ExperimentConfig(combo, "ODR60"))
        assert record.client_fps > 0
        traces = list(tmp_path.glob("*.trace.json"))
        jsonls = list(tmp_path.glob("*.jsonl"))
        assert len(traces) == 1 and len(jsonls) == 1
        blob = json.loads(traces[0].read_text())
        assert {e["name"] for e in blob["traceEvents"] if e["ph"] == "X"} >= STAGES
