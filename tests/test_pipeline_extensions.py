"""Tests for the ABR and network-dynamics extensions."""

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.pipeline.abr import AbrSizeSampler, AdaptiveBitrate
from repro.pipeline.netdyn import compose, constant, dips, sinusoidal
from repro.workloads import GCE, PRIVATE_CLOUD, Resolution


def run(spec, platform=GCE, resolution=Resolution.R1080P, seed=1,
        duration=12000.0, **system_kwargs):
    config = SystemConfig("IM", platform, resolution, seed=seed,
                          duration_ms=duration, warmup_ms=2000.0)
    return CloudSystem(config, make_regulator(spec), **system_kwargs).run()


class TestAdaptiveBitrateConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBitrate(min_scale=0.0)
        with pytest.raises(ValueError):
            AdaptiveBitrate(min_scale=0.9, max_scale=0.5)
        with pytest.raises(ValueError):
            AdaptiveBitrate(low_utilization=0.9, high_utilization=0.8)
        with pytest.raises(ValueError):
            AdaptiveBitrate(decrease=1.2)
        with pytest.raises(ValueError):
            AdaptiveBitrate(period_ms=0)


class TestAbrController:
    def test_congested_path_walks_quality_down(self):
        """60 FPS at 1080p needs ~60 Mbps > GCE's 42: ABR must adapt."""
        result = run("ODR60", abr=AdaptiveBitrate())
        controller = result.system.abr
        assert controller.final_scale < 0.85
        assert controller.mean_scale(result.t_start, result.t_end) < 0.95

    def test_abr_makes_infeasible_target_feasible(self):
        without = run("ODR60")
        with_abr = run("ODR60", abr=AdaptiveBitrate())
        assert without.client_fps < 55          # bandwidth-capped
        assert with_abr.client_fps >= 59.0      # ladder restored the target

    def test_abr_respects_quality_floor(self):
        config = AdaptiveBitrate(min_scale=0.5)
        result = run("ODR60", abr=config)
        scales = [s for _, s in result.system.abr.history]
        assert min(scales) >= 0.5 - 1e-9

    def test_uncongested_path_keeps_full_quality(self):
        result = run("ODR60", platform=PRIVATE_CLOUD,
                     resolution=Resolution.R720P, abr=AdaptiveBitrate())
        assert result.system.abr.mean_scale(result.t_start, result.t_end) > 0.9

    def test_history_records_decisions(self):
        result = run("ODR60", abr=AdaptiveBitrate(period_ms=500), duration=5000)
        # one initial entry + one per period over warmup+duration
        assert len(result.system.abr.history) >= 10

    def test_mean_scale_empty_window_rejected(self):
        result = run("ODR60", abr=AdaptiveBitrate(), duration=3000)
        with pytest.raises(ValueError):
            result.system.abr.mean_scale(5, 5)

    def test_size_sampler_wrapping(self):
        class FakeBase:
            def next(self):
                return 1000

        class FakeController:
            scale = 0.5

        sampler = AbrSizeSampler(FakeBase(), FakeController())
        assert sampler.next() == 500


class TestBandwidthSchedules:
    def test_constant(self):
        assert constant(1.0)(123.0) == 1.0
        with pytest.raises(ValueError):
            constant(0)

    def test_sinusoidal_bounds(self):
        schedule = sinusoidal(period_ms=1000, amplitude=0.3)
        values = [schedule(t) for t in range(0, 2000, 17)]
        assert 0.69 <= min(values) <= 0.72
        assert 1.28 <= max(values) <= 1.31
        with pytest.raises(ValueError):
            sinusoidal(0, 0.5)
        with pytest.raises(ValueError):
            sinusoidal(100, 1.0)

    def test_dips_timing(self):
        schedule = dips(period_ms=1000, dip_duration_ms=200, dip_factor=0.4,
                        first_dip_at_ms=500)
        assert schedule(0) == 1.0        # before the first dip
        assert schedule(600) == 0.4      # inside the first dip
        assert schedule(800) == 1.0      # after it
        assert schedule(1550) == 0.4     # inside the second
        with pytest.raises(ValueError):
            dips(100, 200, 0.5)
        with pytest.raises(ValueError):
            dips(1000, 100, 0.0)

    def test_compose(self):
        schedule = compose([constant(0.5), constant(0.5)])
        assert schedule(0) == 0.25
        with pytest.raises(ValueError):
            compose([])


class TestDynamicBandwidthRuns:
    def test_schedule_slows_transmission(self):
        steady = run("ODR60", platform=GCE, resolution=Resolution.R720P)
        throttled = run("ODR60", platform=GCE, resolution=Resolution.R720P,
                        bandwidth_schedule=constant(0.5))
        assert throttled.mean_mtp_ms() > steady.mean_mtp_ms()

    def test_invalid_schedule_value_raises(self):
        with pytest.raises(ValueError):
            run("ODR60", duration=2000, bandwidth_schedule=lambda t: 0.0)

    def test_odr_recovers_from_dips_noreg_does_not(self):
        """A periodic 2 s half-capacity dip: ODR's bounded buffering
        recovers between dips; NoReg's standing queue never drains."""
        schedule = dips(period_ms=8000, dip_duration_ms=2000, dip_factor=0.5,
                        first_dip_at_ms=4000)
        odr = run("ODR60", platform=GCE, resolution=Resolution.R720P,
                  duration=20000, bandwidth_schedule=schedule)
        noreg = run("NoReg", platform=GCE, resolution=Resolution.R720P,
                    duration=20000, bandwidth_schedule=schedule)
        assert odr.mean_mtp_ms() < 150
        assert noreg.mean_mtp_ms() > 8 * odr.mean_mtp_ms()
