"""Structural tests for the figure/table generators (short durations).

The benches assert the *paper claims* at full scale; these tests pin the
generators' output structure so harness regressions surface fast.
"""

import pytest

from repro.experiments import Runner
from repro.experiments.figures import (
    fig01_fps_gap,
    fig03_regulation_fps,
    fig04_time_variation,
    fig05_pipeline_schedules,
    fig06_mtp_latency,
    fig07_dram_efficiency,
    fig09_qos_averages,
    fig10_client_fps_detail,
    fig11_mtp_detail,
    fig12_memory_efficiency,
    fig13_power,
    summary_overall,
)
from repro.experiments.tables import table2
from repro.workloads import BENCHMARKS


@pytest.fixture(scope="module")
def runner():
    return Runner(seed=1, duration_ms=2500.0, warmup_ms=500.0)


class TestAnalysisFigures:
    def test_fig01_structure(self, runner):
        out = fig01_fps_gap(runner)
        assert set(out["data"]) == {"RE", "IM"}
        assert "Figure 1" in out["text"]

    def test_fig03_structure(self, runner):
        out = fig03_regulation_fps(runner)
        assert set(out["data"]) == {"NoReg", "Int60", "IntMax", "RVS60", "RVSMax"}
        for values in out["data"].values():
            assert {"render_fps", "encode_fps", "decode_fps"} == set(values)

    def test_fig04_structure(self):
        out = fig04_time_variation(seed=2, n_trace=50)
        assert set(out["data"]["cdf"]) == {"render", "encode", "transmit"}
        for stage, trace in out["data"]["trace"].items():
            assert len(trace) == 50

    def test_fig05_structure(self):
        out = fig05_pipeline_schedules(seed=2, n_frames=5)
        assert set(out["data"]) == {"Int60", "RVS60", "ODR60"}
        for intervals in out["data"].values():
            assert intervals
            stages = {stage for stage, _, _ in intervals}
            assert stages <= {"render", "encode"}

    def test_fig06_values_positive(self, runner):
        out = fig06_mtp_latency(runner)
        assert all(v > 0 for v in out["data"].values())

    def test_fig07_fields(self, runner):
        out = fig07_dram_efficiency(runner)
        for values in out["data"].values():
            assert 0 < values["row_miss_rate"] <= 1
            assert values["ipc"] > 0


class TestEvaluationFigures:
    def test_fig09_groups_and_overall(self, runner):
        out = fig09_qos_averages(runner)
        groups = out["data"]["groups"]
        assert set(groups) == {"Priv720p", "GCE720p", "Priv1080p", "GCE1080p"}
        assert len(groups["Priv720p"]) == 7
        overall = out["data"]["overall"]
        assert {"NoReg", "IntMax", "ODRMax", "IntFix", "ODRFix"} <= set(overall)

    def test_fig10_covers_all_benchmarks(self, runner):
        out = fig10_client_fps_detail(runner)
        for group in out["data"].values():
            assert set(group) == set(BENCHMARKS)

    def test_fig11_has_boxes(self, runner):
        out = fig11_mtp_detail(runner)
        cell = out["data"]["Priv720p"]["IM"]["NoReg"]
        assert cell["box"] is not None
        assert cell["box"].p99 >= cell["box"].p1

    def test_fig12_avg_row(self, runner):
        out = fig12_memory_efficiency(runner)
        assert set(out["data"]["avg"]) == {
            "NoReg", "IntMax", "RVSMax", "ODRMax", "Int60", "RVS60", "ODR60"
        }

    def test_fig13_power_positive(self, runner):
        out = fig13_power(runner)
        for per_spec in out["data"]["per_benchmark"].values():
            assert all(v > 100 for v in per_spec.values())

    def test_table2_row_count(self, runner):
        out = table2(runner)
        assert len(out["rows"]) == 3 * 8  # 3 groups x 8 configurations

    def test_summary_overall_keys(self, runner):
        out = summary_overall(runner)
        data = out["data"]
        assert {"fps_gap", "client_fps", "mtp", "efficiency_720p_private",
                "bandwidth_mbps"} == set(data)
        assert "Section 6.6" in out["text"]
