"""Unit tests for ODR's FPS regulator clock (Algorithm 1)."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FpsRegulatorClock


def clock(target=60.0, **kwargs):
    kwargs.setdefault("pacing_margin", 0.0)
    return FpsRegulatorClock(target_fps=target, **kwargs)


class TestConstruction:
    def test_interval_from_target(self):
        assert clock(60).interval_ms == pytest.approx(1000 / 60)
        assert clock(30).interval_ms == pytest.approx(1000 / 30)

    def test_max_mode_has_no_interval(self):
        assert clock(None).interval_ms is None

    def test_pacing_margin_shrinks_interval(self):
        margined = FpsRegulatorClock(target_fps=60, pacing_margin=0.04)
        assert margined.interval_ms < 1000 / 60

    def test_validation(self):
        with pytest.raises(ValueError):
            FpsRegulatorClock(target_fps=0)
        with pytest.raises(ValueError):
            FpsRegulatorClock(target_fps=60, debt_window_ms=-1)
        with pytest.raises(ValueError):
            FpsRegulatorClock(target_fps=60, pacing_margin=-0.1)


class TestAlgorithm1:
    def test_fast_frame_sleeps_the_difference(self):
        c = clock(60)
        sleep = c.frame_processed(10.0)
        assert sleep == pytest.approx(1000 / 60 - 10.0)
        assert c.acc_delay_ms == 0.0

    def test_exactly_on_interval_no_sleep(self):
        c = clock(50)  # 20ms interval
        assert c.frame_processed(20.0) == 0.0

    def test_slow_frame_accumulates_debt(self):
        c = clock(60)  # 16.67ms
        assert c.frame_processed(25.0) == 0.0
        assert c.acc_delay_ms == pytest.approx(1000 / 60 - 25.0)
        assert c.accelerated_frames == 1

    def test_debt_repaid_by_fast_frames(self):
        c = clock(50)  # 20ms
        c.frame_processed(30.0)  # debt -10
        sleep = c.frame_processed(5.0)  # diff +15 -> acc +5
        assert sleep == pytest.approx(5.0)
        assert c.acc_delay_ms == 0.0

    def test_acceleration_runs_until_debt_repaid(self):
        c = clock(50)
        c.frame_processed(60.0)  # debt -40
        assert c.frame_processed(5.0) == 0.0  # -25
        assert c.frame_processed(5.0) == 0.0  # -10
        assert c.frame_processed(5.0) == pytest.approx(5.0)  # +5 -> sleep

    def test_max_mode_never_sleeps(self):
        c = clock(None)
        for elapsed in (1.0, 100.0, 0.1):
            assert c.frame_processed(elapsed) == 0.0

    def test_debt_window_bounds_catchup(self):
        c = clock(50, debt_window_ms=40.0)
        c.frame_processed(500.0)  # enormous stall
        assert c.acc_delay_ms == -40.0

    def test_no_accelerate_ablation_forgets_debt(self):
        c = clock(50, accelerate=False)
        c.frame_processed(30.0)
        assert c.acc_delay_ms == 0.0
        # next fast frame sleeps the full difference (no catch-up)
        assert c.frame_processed(5.0) == pytest.approx(15.0)

    def test_cancel_debt(self):
        c = clock(50)
        c.frame_processed(30.0)
        c.cancel_debt()
        assert c.acc_delay_ms == 0.0

    def test_defer_rebooks_unslept_time(self):
        c = clock(50)
        c.defer(7.5)
        assert c.acc_delay_ms == 7.5
        c.defer(-1.0)  # ignored
        assert c.acc_delay_ms == 7.5

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ValueError):
            clock(60).frame_processed(-1.0)

    def test_sleep_counter(self):
        c = clock(50)
        c.frame_processed(5.0)
        c.frame_processed(5.0)
        assert c.sleeps == 2


class TestLongRunRate:
    """The regulator's whole point: long-run rate == target."""

    def test_steady_workload_hits_target(self):
        c = clock(60)
        total_time = 0.0
        frames = 0
        for _ in range(1000):
            elapsed = 10.0
            sleep = c.frame_processed(elapsed)
            total_time += elapsed + sleep
            frames += 1
        assert frames / (total_time / 1000.0) == pytest.approx(60.0, rel=0.01)

    def test_spiky_workload_still_hits_target(self):
        """10% of frames take 3x the interval; acceleration recovers."""
        c = clock(60)
        total_time = 0.0
        frames = 0
        for i in range(3000):
            elapsed = 50.0 if i % 10 == 0 else 8.0
            sleep = c.frame_processed(elapsed)
            total_time += elapsed + sleep
            frames += 1
        rate = frames / (total_time / 1000.0)
        assert rate == pytest.approx(60.0, rel=0.02)

    def test_delay_only_ablation_undershoots_on_spikes(self):
        c = clock(60, accelerate=False)
        total_time = 0.0
        for i in range(3000):
            elapsed = 50.0 if i % 10 == 0 else 8.0
            total_time += elapsed + c.frame_processed(elapsed)
        rate = 3000 / (total_time / 1000.0)
        assert rate < 55.0  # the Int-style failure mode

    @given(
        target=st.sampled_from([30.0, 60.0, 90.0]),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_rate_never_exceeds_target_with_feasible_workload(self, target, seed):
        import random  # simlint: disable=R1 -- test drives the clock with arbitrary jitter, not sim randomness

        rng = random.Random(seed)
        c = FpsRegulatorClock(target_fps=target, pacing_margin=0.0)
        total_time = 0.0
        n = 800
        for _ in range(n):
            elapsed = rng.uniform(0.2, 0.9) * (1000.0 / target)
            total_time += elapsed + c.frame_processed(elapsed)
        rate = n / (total_time / 1000.0)
        assert rate <= target * 1.01

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_acc_delay_bounded_below_by_debt_window(self, seed):
        import random  # simlint: disable=R1 -- test drives the clock with arbitrary jitter, not sim randomness

        rng = random.Random(seed)
        c = clock(60, debt_window_ms=200.0)
        for _ in range(500):
            c.frame_processed(rng.uniform(0.0, 100.0))
            assert c.acc_delay_ms >= -200.0
            assert c.acc_delay_ms <= 0.0 or c.acc_delay_ms == 0.0
