"""Tests for seeded service-plane chaos: the wire misbehaves, on rails.

:class:`ChaosTransport` makes every connection's misbehavior a pure
function of ``(fault plan, seed, connection index)``, so these tests
assert exact decision sequences for fixed seeds, then run a real sweep
through a hostile wire and require the *same bits* a calm one produces
— the whole point of the resilient client is that chaos changes
latency, never results.
"""

import pytest

from repro.experiments import Plan, SerialExecutor
from repro.faults import (
    ChaosDecisions,
    ChaosTransport,
    ConnectRefusal,
    ConnectionDrop,
    DelayedWrite,
    ServiceFaultPlan,
    SlowRead,
    TruncatedFrame,
    service_fault_from_dict,
)
from repro.obs import sweep as sweepbus
from repro.obs.ledger import RunLedger
from repro.obs.runmeta import metrics_digest
from repro.service import RetryPolicy
from repro.service.protocol import plan_payload

from tests.test_service_robustness import GatewayHarness, spec

HOSTILE_PLAN = ServiceFaultPlan(
    [
        ConnectRefusal(prob=0.05),
        ConnectionDrop(prob=0.2, after_bytes=96),
        TruncatedFrame(prob=0.15, keep_fraction=0.5),
        SlowRead(prob=0.2, delay_s=0.002),
        DelayedWrite(prob=0.1, delay_s=0.002),
    ]
)


class TestFaultSpecs:
    def test_round_trip_through_canonical_dicts(self):
        rebuilt = ServiceFaultPlan.from_payload(HOSTILE_PLAN.to_payload())
        assert rebuilt == HOSTILE_PLAN
        one = service_fault_from_dict(
            {"kind": "connection_drop", "prob": 0.5, "after_bytes": 7}
        )
        assert one == ConnectionDrop(prob=0.5, after_bytes=7)

    def test_unknown_kinds_and_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown service fault kind"):
            service_fault_from_dict({"kind": "cosmic_ray", "prob": 1.0})
        with pytest.raises(ValueError, match="unknown fields"):
            service_fault_from_dict(
                {"kind": "slow_read", "prob": 0.1, "volume": 11}
            )

    def test_probabilities_are_validated(self):
        with pytest.raises(ValueError):
            ConnectRefusal(prob=1.5)
        with pytest.raises(ValueError):
            TruncatedFrame(prob=0.5, keep_fraction=1.0)
        with pytest.raises(ValueError):
            ConnectionDrop(prob=0.5, after_bytes=-1)


class TestDeterminism:
    def test_decisions_are_pure_in_plan_seed_and_index(self):
        a = ChaosTransport(HOSTILE_PLAN, seed=7)
        b = ChaosTransport(HOSTILE_PLAN, seed=7)
        decisions = [a.decisions_for(i) for i in range(64)]
        assert decisions == [b.decisions_for(i) for i in range(64)]
        # Recomputing an index never disturbs later ones (no hidden state).
        assert a.decisions_for(3) == decisions[3]
        assert a.decisions_for(63) == decisions[63]

        other = ChaosTransport(HOSTILE_PLAN, seed=8)
        assert decisions != [other.decisions_for(i) for i in range(64)]

    def test_probability_extremes(self):
        calm = ChaosTransport(
            ServiceFaultPlan([ConnectRefusal(prob=0.0)]), seed=1
        )
        assert all(calm.decisions_for(i).clean for i in range(32))

        storm = ChaosTransport(
            ServiceFaultPlan(
                [ConnectRefusal(prob=1.0), SlowRead(prob=1.0, delay_s=0.5)]
            ),
            seed=1,
        )
        for i in range(32):
            decisions = storm.decisions_for(i)
            assert decisions.refuse_connect and decisions.read_delay_s == 0.5
            assert not decisions.clean

    def test_clean_default(self):
        assert ChaosDecisions().clean
        assert not ChaosDecisions(drop_after_bytes=0).clean


class TestChaosSweep:
    def _chaos_client(self, harness, seed):
        return harness.client(
            transport=ChaosTransport(HOSTILE_PLAN, seed=seed),
            retry=RetryPolicy(
                attempts=8, base_delay_s=0.01, max_delay_s=0.1, seed=seed
            ),
            connect_wait_s=10.0,
        )

    def test_sweep_through_hostile_wire_is_bit_identical(self, tmp_path):
        cells = [spec("IM"), spec("STK", "NoReg"), spec("IM", seed=2)]
        with GatewayHarness(tmp_path) as harness:
            client = self._chaos_client(harness, seed=2026)
            job = client.submit(plan_payload(Plan(cells)), label="chaos")
            done = client.wait(job["job_id"])
            assert done["state"] == "done" and done["ok"]
            assert done["executed"] == 3 and done["failed"] == 0
            served = {
                c.run_id: client.fetch(c.run_id)["metrics_digest"]
                for c in cells
            }
            transport_log = list(client.transport.log)
            ledger_rows = harness.ledger.records()

        # The wire actually misbehaved — this was not a calm run.
        assert any(not d.clean for d in transport_log)

        # ...and none of it reached the results: digests match an
        # offline serial run, one ledger row per cell.
        assert sorted(r["run_id"] for r in ledger_rows) == sorted(
            c.run_id for c in cells
        )
        offline = SerialExecutor().run(
            Plan(cells), ledger=RunLedger(tmp_path / "offline")
        )
        for outcome in offline.outcomes:
            assert outcome.ledger_record is not None
            assert served[outcome.spec.run_id] == metrics_digest(
                outcome.ledger_record
            )

    def test_watch_reconnects_without_gaps_or_duplicates(self, tmp_path):
        cells = [spec("IM"), spec("STK", "NoReg")]
        with GatewayHarness(tmp_path) as harness:
            calm = harness.client()
            job = calm.submit(plan_payload(Plan(cells)))
            assert calm.wait(job["job_id"])["state"] == "done"
            reference = list(calm.watch(job["job_id"]))

            # A watcher whose every connection drops 256 bytes in must
            # reconnect repeatedly, resuming from the last seen seq.
            droppy = harness.client(
                transport=ChaosTransport(
                    ServiceFaultPlan(
                        [ConnectionDrop(prob=0.6, after_bytes=256)]
                    ),
                    seed=11,
                ),
                retry=RetryPolicy(
                    attempts=8, base_delay_s=0.01, max_delay_s=0.05, seed=11
                ),
            )
            events = list(droppy.watch(job["job_id"]))

        assert [e.seq for e in events] == [e.seq for e in reference]
        kinds = [e.kind for e in events]
        assert kinds[0] == sweepbus.SWEEP_BEGIN
        assert kinds[-1] == sweepbus.SWEEP_END
        seqs = [e.seq for e in events]
        assert seqs == sorted(set(seqs))
