"""Span lifecycle: open → stage intervals → close (display or drop)."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro.obs import SpanStore, Telemetry
from repro.pipeline.frames import Frame


def make_frame(frame_id=1, **kwargs):
    return Frame(frame_id=frame_id, **kwargs)


class TestSpanStore:
    def test_open_stage_close_lifecycle(self):
        store = SpanStore()
        span = store.open(1, at=10.0, gate_delay_ms=2.0)
        assert span.open and not span.displayed and not span.dropped
        store.stage(1, "render", 10.0, 15.0)
        store.stage(1, "copy", 15.0, 16.0)
        store.close(1, at=30.0)
        assert span.displayed
        assert span.closed_at == 30.0
        assert span.stages() == ["render", "copy"]
        assert span.stage_ms("render") == pytest.approx(5.0)
        assert span.total_ms() == pytest.approx(20.0)

    def test_drop_closes_span_with_reason(self):
        store = SpanStore()
        span = store.open(7, at=0.0)
        store.stage(7, "render", 0.0, 4.0)
        store.drop(7, at=5.0, reason="mailbox_overwrite")
        assert span.dropped and not span.displayed
        assert span.drop_reason == "mailbox_overwrite"
        assert span.closed_at == 5.0

    def test_close_after_drop_keeps_drop(self):
        store = SpanStore()
        span = store.open(1, at=0.0)
        store.drop(1, at=3.0, reason="obsolete_flush")
        store.close(1, at=9.0)
        assert span.drop_reason == "obsolete_flush"
        assert span.closed_at == 3.0

    def test_double_open_same_frame_raises(self):
        store = SpanStore()
        store.open(1, at=0.0)
        with pytest.raises(ValueError):
            store.open(1, at=1.0)

    def test_same_frame_id_different_sessions_coexist(self):
        store = SpanStore()
        a = store.open(1, at=0.0, session="s0")
        b = store.open(1, at=0.0, session="s1")
        store.drop(1, at=2.0, reason="x", session="s1")
        assert not a.dropped and b.dropped
        assert store.get(1, session="s0") is a
        assert store.sessions() == ["s0", "s1"]

    def test_unknown_frame_events_ignored(self):
        store = SpanStore()
        store.stage(99, "render", 0.0, 1.0)
        store.drop(99, at=1.0, reason="x")
        store.close(99, at=1.0)
        assert len(store) == 0

    def test_spans_filtering(self):
        store = SpanStore()
        store.open(1, at=0.0)
        store.open(2, at=1.0)
        store.drop(2, at=2.0, reason="x")
        assert [s.frame_id for s in store.spans(dropped=True)] == [2]
        assert [s.frame_id for s in store.spans(dropped=False)] == [1]
        assert [s.frame_id for s in store.spans()] == [1, 2]

    def test_queue_wait_is_inter_stage_gap(self):
        store = SpanStore()
        span = store.open(1, at=0.0)
        store.stage(1, "render", 0.0, 5.0)
        store.stage(1, "encode", 8.0, 10.0)  # 3 ms in the mailbox
        store.stage(1, "transmit", 10.0, 12.0)  # back-to-back
        assert span.queue_wait_ms() == pytest.approx(3.0)

    def test_open_interval_has_no_duration(self):
        from repro.obs import StageInterval

        iv = StageInterval("render", 1.0)
        assert not iv.closed
        with pytest.raises(ValueError):
            _ = iv.duration_ms


class TestTelemetrySpanHooks:
    def test_frame_opened_records_gate_delay(self):
        tel = Telemetry()
        frame = make_frame(1, priority=True, triggered_by_input=True)
        tel.frame_opened(frame, at=12.0, gate_delay_ms=4.0)
        span = tel.spans.get(1)
        assert span.gate_delay_ms == 4.0
        assert span.priority and span.input_triggered
        stats = tel.snapshot().histogram_stats("gate_delay_ms")
        assert stats.count == 1 and stats.max == 4.0

    def test_dropped_frame_closes_span_with_reason(self):
        tel = Telemetry()
        frame = make_frame(3)
        tel.frame_opened(frame, at=0.0)
        tel.stage_complete(frame, "render", 0.0, 5.0)
        tel.frame_dropped(frame, at=6.0, reason="mailbox_overwrite")
        span = tel.spans.get(3)
        assert span.drop_reason == "mailbox_overwrite"
        snap = tel.snapshot()
        assert snap.counter_value("frames_dropped_total", reason="mailbox_overwrite") == 1

    def test_displayed_frame_records_pipeline_latency(self):
        tel = Telemetry()
        frame = make_frame(2)
        tel.frame_opened(frame, at=10.0)
        tel.frame_displayed(frame, at=45.0)
        stats = tel.snapshot().histogram_stats("frame_pipeline_ms")
        assert stats.count == 1
        assert stats.max == pytest.approx(35.0)

    def test_session_view_labels_spans_and_metrics(self):
        root = Telemetry()
        s0 = root.for_session("s0")
        s1 = root.for_session("s1")
        s0.frame_opened(make_frame(1), at=0.0)
        s1.frame_opened(make_frame(1), at=0.0)
        assert root.spans.sessions() == ["s0", "s1"]
        snap = root.snapshot()
        assert snap.counter_value("frames_created_total", session="s0") == 1
        assert snap.counter_value("frames_created_total", session="s1") == 1
        assert snap.counter_value("frames_created_total") == 0
