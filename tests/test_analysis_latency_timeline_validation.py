"""Tests for latency breakdown, ASCII timelines, and profile validation."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.analysis.latency import COMPONENTS, latency_breakdown
from repro.experiments.timeline import render_timeline, run_timeline
from repro.simcore import IntervalTrace
from repro.workloads import (
    BENCHMARKS,
    GCE,
    PRIVATE_CLOUD,
    Resolution,
    get_benchmark,
)
from repro.workloads.benchmarks import BenchmarkProfile
from repro.workloads.distributions import FrameSizeModel, StageTimeModel
from repro.workloads.validation import predict_noreg, validate_profile


def run(spec, platform=PRIVATE_CLOUD, seed=1, duration=10000.0):
    config = SystemConfig("IM", platform, Resolution.R720P, seed=seed,
                          duration_ms=duration, warmup_ms=1500.0)
    return CloudSystem(config, make_regulator(spec)).run()


class TestLatencyBreakdown:
    def test_components_cover_pipeline(self):
        breakdown = latency_breakdown(run("NoReg"))
        assert set(breakdown.components) == set(COMPONENTS)
        assert all(v >= 0 for v in breakdown.components.values())

    def test_total_matches_mean_mtp(self):
        result = run("ODR60")
        breakdown = latency_breakdown(result)
        assert breakdown.total_ms == pytest.approx(result.mean_mtp_ms(), rel=0.05)

    def test_noreg_gce_dominated_by_transmit_congestion(self):
        breakdown = latency_breakdown(run("NoReg", platform=GCE))
        assert breakdown.dominant() == "transmit_wait"
        assert breakdown.fraction("transmit_wait") > 0.7

    def test_odr_gce_not_congestion_dominated(self):
        breakdown = latency_breakdown(run("ODR60", platform=GCE))
        assert breakdown.fraction("transmit_wait") < 0.5

    def test_regulation_shows_up_as_input_wait(self):
        """Int60's injected delay lands in the input_wait component."""
        int60 = latency_breakdown(run("Int60"))
        noreg = latency_breakdown(run("NoReg"))
        assert int60.components["input_wait"] > noreg.components["input_wait"]

    def test_str_contains_all_components(self):
        text = str(latency_breakdown(run("ODRMax")))
        for name in COMPONENTS:
            assert name in text

    def test_no_samples_raises(self):
        result = run("NoReg", duration=4000)
        result.system.client.displayed.clear()
        with pytest.raises(ValueError):
            latency_breakdown(result)


class TestTimeline:
    def test_renders_lanes(self):
        trace = IntervalTrace()
        trace.record("render", 0, 50)
        trace.record("encode", 50, 100)
        art = render_timeline(trace, ("render", "encode"), 0, 100, width=10)
        lines = art.splitlines()
        assert lines[1].startswith("render")
        assert "#####....." in lines[1].replace(" ", "").split("|")[1]
        assert ".....#####" in lines[2].replace(" ", "").split("|")[1]

    def test_partial_buckets_marked(self):
        trace = IntervalTrace()
        trace.record("render", 0, 2)  # 20% of a 10ms bucket
        art = render_timeline(trace, ("render",), 0, 100, width=10)
        assert "+" in art

    def test_title_and_scale_line(self):
        art = render_timeline(IntervalTrace(), ("x",), 0, 100, width=10, title="T")
        assert art.splitlines()[0] == "T"
        assert "ms/column" in art.splitlines()[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            render_timeline(IntervalTrace(), ("x",), 5, 5)
        with pytest.raises(ValueError):
            render_timeline(IntervalTrace(), ("x",), 0, 10, width=2)

    def test_run_timeline_end_to_end(self):
        art = run_timeline(run("ODR60", duration=4000), window_ms=200, width=40)
        assert "render" in art and "encode" in art and "decode" in art
        # the regulated pipeline is visibly not saturated
        render_lane = next(l for l in art.splitlines() if l.startswith("render"))
        assert "." in render_lane


class TestPredictNoReg:
    def test_inmind_anchors(self):
        prediction = predict_noreg(get_benchmark("IM"), PRIVATE_CLOUD, Resolution.R720P)
        assert prediction.render_fps == pytest.approx(189, abs=5)
        assert prediction.encode_fps == pytest.approx(93, abs=3)
        assert prediction.has_excessive_rendering

    def test_prediction_matches_simulation(self):
        result = run("NoReg")
        prediction = predict_noreg(get_benchmark("IM"), PRIVATE_CLOUD, Resolution.R720P)
        assert result.render_fps == pytest.approx(prediction.render_fps, rel=0.06)
        assert result.encode_fps == pytest.approx(prediction.encode_fps, rel=0.08)

    def test_congestion_regimes(self):
        im = get_benchmark("IM")
        assert predict_noreg(im, GCE, Resolution.R720P).congested
        assert not predict_noreg(im, PRIVATE_CLOUD, Resolution.R720P).congested

    def test_all_paper_benchmarks_valid(self):
        for bench in BENCHMARKS.values():
            assert validate_profile(bench, PRIVATE_CLOUD, Resolution.R720P) == []


class TestValidateProfile:
    def make_profile(self, render=5.0, copy=1.5, encode=10.0, decode=4.0, actions=3.0):
        return BenchmarkProfile(
            name="X", full_name="X", genre="Test",
            render=StageTimeModel(mean_ms=render),
            copy=StageTimeModel(mean_ms=copy),
            encode=StageTimeModel(mean_ms=encode),
            decode=StageTimeModel(mean_ms=decode),
            frame_size=FrameSizeModel(mean_kb=60),
            actions_per_second=actions,
        )

    def test_valid_profile_passes(self):
        assert validate_profile(self.make_profile(), PRIVATE_CLOUD, Resolution.R720P) == []

    def test_slow_render_flagged(self):
        problems = validate_profile(
            self.make_profile(render=15.0), PRIVATE_CLOUD, Resolution.R720P
        )
        assert any("no excessive rendering" in p for p in problems)

    def test_slow_decode_flagged(self):
        problems = validate_profile(
            self.make_profile(decode=12.0), PRIVATE_CLOUD, Resolution.R720P
        )
        assert any("client becomes the bottleneck" in p for p in problems)

    def test_input_rate_flagged(self):
        problems = validate_profile(
            self.make_profile(actions=20.0), PRIVATE_CLOUD, Resolution.R720P
        )
        assert any("actions_per_second" in p for p in problems)

    def test_underpowered_platform_flagged(self):
        problems = validate_profile(
            self.make_profile(encode=40.0, decode=3.0, render=20.0),
            PRIVATE_CLOUD,
            Resolution.R1080P,
        )
        assert any("cannot satisfy" in p for p in problems)
