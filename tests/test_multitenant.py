"""Tests for the shared-server (multi-tenant) extension."""

import pytest

from repro.multitenant import SharedServer
from repro.regulators import make_regulator
from repro.workloads import PRIVATE_CLOUD, Resolution


def make_server(n, spec="ODR60", benches=("ITP", "IM", "RE", "STK"), seed=1,
                duration=8000.0, **kwargs):
    return SharedServer(
        benchmarks=list(benches[:n]),
        platform=PRIVATE_CLOUD,
        resolution=Resolution.R720P,
        regulator_factory=lambda i: make_regulator(spec),
        seed=seed,
        duration_ms=duration,
        warmup_ms=1500.0,
        **kwargs,
    )


class TestConstruction:
    def test_empty_sessions_rejected(self):
        with pytest.raises(ValueError):
            make_server(0)

    def test_bad_capacities_rejected(self):
        with pytest.raises(ValueError):
            make_server(1, gpu_slots=0)
        with pytest.raises(ValueError):
            make_server(1, encode_slots=0)

    def test_sessions_have_independent_state(self):
        server = make_server(2)
        a, b = server.sessions
        assert a.counter is not b.counter
        assert a.tracker is not b.tracker
        assert a.regulator is not b.regulator
        assert a.contention is b.contention  # shared DRAM domain
        assert a.gpu_resource is b.gpu_resource

    def test_qos_target_defaults_to_resolution(self):
        assert make_server(1).qos_target_fps == 60.0


class TestSingleSessionEquivalence:
    def test_one_tenant_matches_standalone_shape(self):
        """A 1-session shared server behaves like a CloudSystem run."""
        server = make_server(1, spec="ODR60", benches=("IM",))
        [result] = server.run()
        assert 59.0 <= result.client_fps <= 66.0
        assert result.fps_gap_mean < 5
        assert result.mtp_mean_ms < 50


class TestSharing:
    def test_gpu_serializes_renders(self):
        """No point in time may have more concurrent renders than GPU
        slots: merged render busy time <= wall time × slots."""
        server = make_server(3, spec="NoReg")
        server.run()
        assert server.gpu_utilization() <= 1.0 + 1e-9

    def test_noreg_sessions_steal_from_each_other(self):
        solo = make_server(1, spec="NoReg", benches=("IM",))
        [alone] = solo.run()
        duo = make_server(2, spec="NoReg", benches=("IM", "RE"))
        shared = duo.run()[0]
        assert shared.client_fps < 0.92 * alone.client_fps

    def test_odr_sessions_coexist(self):
        """Two regulated sessions keep their targets on one server."""
        server = make_server(2, spec="ODR60", benches=("ITP", "IM"))
        results = server.run()
        for result in results:
            assert result.client_fps >= 58.5
            assert result.qos_satisfaction > 0.85

    def test_odr_consolidates_denser_than_noreg(self):
        """The datacenter claim: ODR sustains more sessions at the
        60 FPS target than free-running rendering does."""

        def density(spec):
            for n in (3, 2, 1):
                results = make_server(n, spec=spec).run()
                if all(r.client_fps >= 59.0 for r in results):
                    return n
            return 0

        assert density("ODR60") > density("NoReg")

    def test_encoder_pool_capacity_matters(self):
        starved = make_server(3, spec="ODR60", encode_slots=1)
        roomy = make_server(3, spec="ODR60", encode_slots=4)
        starved_fps = sum(r.client_fps for r in starved.run())
        roomy_fps = sum(r.client_fps for r in roomy.run())
        assert roomy_fps > starved_fps

    def test_second_gpu_adds_capacity(self):
        one = make_server(3, spec="NoReg", gpu_slots=1)
        two = make_server(3, spec="NoReg", gpu_slots=2)
        assert sum(r.render_fps for r in two.run()) > sum(
            r.render_fps for r in one.run()
        )


class TestServerMetrics:
    def test_power_grows_with_sessions_but_sublinearly(self):
        p1 = make_server(1, spec="ODR60").run() and None
        server1 = make_server(1, spec="ODR60")
        server1.run()
        server3 = make_server(3, spec="ODR60")
        server3.run()
        w1 = server1.server_power_w()
        w3 = server3.server_power_w()
        assert w3 > w1
        assert w3 < 3 * w1  # idle power is amortized across tenants

    def test_energy_per_session_favors_consolidation(self):
        """Watts per delivered session drop as tenants share the idle
        power — the consolidation argument in one number."""
        server1 = make_server(1, spec="ODR60", benches=("ITP",))
        server1.run()
        server2 = make_server(2, spec="ODR60", benches=("ITP", "IM"))
        server2.run()
        assert server2.server_power_w() / 2 < server1.server_power_w()

    def test_deterministic(self):
        a = make_server(2, seed=9).run()
        b = make_server(2, seed=9).run()
        assert [r.client_fps for r in a] == [r.client_fps for r in b]
