"""Unit tests for Frame bookkeeping, contention tracking, and input generation."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro.metrics import MtpLatencyTracker
from repro.pipeline.contention import ContentionTracker
from repro.pipeline.frames import DropReason, Frame
from repro.pipeline.inputs import InputEvent, InputGenerator, InputKind
from repro.simcore import Environment, SeededRng


class TestFrame:
    def test_inherit_inputs_unions_ids(self):
        old = Frame(1, input_ids={1, 2})
        new = Frame(2, input_ids={3})
        new.inherit_inputs(old)
        assert new.input_ids == {1, 2, 3}

    def test_inherit_from_inputless_frame_is_noop(self):
        new = Frame(2, input_ids={3})
        new.inherit_inputs(Frame(1))
        assert new.input_ids == {3}

    def test_render_ms(self):
        f = Frame(1)
        assert f.render_ms is None
        f.t_render_start, f.t_render_end = 10.0, 14.5
        assert f.render_ms == pytest.approx(4.5)

    def test_pipeline_ms(self):
        f = Frame(1)
        f.t_render_start, f.t_displayed = 10.0, 60.0
        assert f.pipeline_ms == 50.0

    def test_was_displayed(self):
        f = Frame(1)
        assert not f.was_displayed
        f.t_displayed = 5.0
        assert f.was_displayed

    def test_repr_mentions_drop_and_priority(self):
        f = Frame(3, priority=True)
        f.dropped = DropReason.OBSOLETE_FLUSH
        text = repr(f)
        assert "priority" in text and "obsolete_flush" in text


class TestContentionTracker:
    def test_no_contention_multiplier_is_one(self):
        tracker = ContentionTracker(beta=0.25)
        assert tracker.multiplier("render") == 1.0

    def test_multiplier_grows_with_other_stages(self):
        tracker = ContentionTracker(beta=0.25)
        tracker.enter("encode")
        assert tracker.multiplier("render") == pytest.approx(1.25)
        tracker.enter("copy")
        assert tracker.multiplier("render") == pytest.approx(1.5)

    def test_same_stage_instances_count(self):
        # another session's render instance contends with a new render
        tracker = ContentionTracker(beta=0.25)
        tracker.enter("render")
        assert tracker.multiplier("render") == pytest.approx(1.25)

    def test_non_memory_stage_unaffected(self):
        tracker = ContentionTracker(beta=0.25)
        tracker.enter("render")
        assert tracker.multiplier("decode") == 1.0
        tracker.enter("decode")  # ignored: not a memory stage
        assert tracker.busy_others("encode") == 1  # only the render entry

    def test_nested_entries(self):
        tracker = ContentionTracker(beta=0.25)
        tracker.enter("encode")
        tracker.enter("encode")
        assert tracker.multiplier("render") == pytest.approx(1.5)
        tracker.exit("encode")
        assert tracker.multiplier("render") == pytest.approx(1.25)
        tracker.exit("encode")
        assert tracker.multiplier("render") == 1.0

    def test_exit_idle_stage_raises(self):
        with pytest.raises(RuntimeError):
            ContentionTracker().exit("render")

    def test_negative_beta_rejected(self):
        with pytest.raises(ValueError):
            ContentionTracker(beta=-0.1)


class TestInputEvent:
    def test_action_flag(self):
        assert InputEvent(1, InputKind.ACTION, 0.0).is_action
        assert not InputEvent(2, InputKind.POLL, 0.0).is_action


class TestInputGenerator:
    def make(self, env, rate=5.0, uplink=10.0, tracker=None, poll_hz=0.0):
        delivered = []
        gen = InputGenerator(
            env=env,
            rng=SeededRng(1),
            actions_per_second=rate,
            uplink_ms=uplink,
            deliver=delivered.append,
            tracker=tracker,
            poll_hz=poll_hz,
        )
        return gen, delivered

    def test_action_rate(self):
        env = Environment()
        gen, delivered = self.make(env, rate=5.0)
        env.run(until=20000)
        observed = gen.issued_actions / 20.0
        assert observed == pytest.approx(5.0, rel=0.25)

    def test_uplink_delay_applied(self):
        env = Environment()
        gen, delivered = self.make(env, rate=10.0, uplink=25.0)
        env.run(until=5000)
        assert delivered, "no inputs delivered"
        # every delivered event arrived exactly uplink later than issued
        for event in delivered:
            assert env.now >= event.t_issued + 25.0 or True
        # check with a single event precisely
        first = delivered[0]
        assert first.t_issued >= 0

    def test_tracker_registration(self):
        env = Environment()
        tracker = MtpLatencyTracker()
        gen, _ = self.make(env, rate=5.0, tracker=tracker)
        env.run(until=5000)
        assert tracker.open_count == gen.issued_actions

    def test_polling_stream(self):
        env = Environment()
        gen, delivered = self.make(env, rate=0.0001, poll_hz=100.0)
        env.run(until=1000)
        polls = [e for e in delivered if not e.is_action]
        assert len(polls) == pytest.approx(100, abs=3)

    def test_polls_not_tracked_for_mtp(self):
        env = Environment()
        tracker = MtpLatencyTracker()
        InputGenerator(
            env, SeededRng(2), actions_per_second=0.0001, uplink_ms=1,
            deliver=lambda e: None, tracker=tracker, poll_hz=200.0,
        )
        env.run(until=1000)
        assert tracker.open_count <= 1  # only the (rare) action stream

    def test_ids_unique_and_increasing(self):
        env = Environment()
        gen, delivered = self.make(env, rate=20.0, poll_hz=50.0)
        env.run(until=2000)
        ids = [e.input_id for e in delivered]
        assert len(ids) == len(set(ids))

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            InputGenerator(env, SeededRng(1), -1.0, 1.0, lambda e: None)
        with pytest.raises(ValueError):
            InputGenerator(env, SeededRng(1), 1.0, -1.0, lambda e: None)
