"""Tests for the planning layer: CellSpec identity, Plan dedup, demands."""

import pytest

from repro.experiments import (
    CellSpec,
    ExperimentConfig,
    Plan,
    PlatformRes,
    Runner,
    bench_demands,
    group_demands,
    matrix_demands,
)
from repro.experiments.figures import figure_demands, summary_demands
from repro.experiments.tables import table2_demands
from repro.obs.runmeta import run_id_for
from repro.workloads import BENCHMARKS, PRIVATE_CLOUD, Resolution

COMBO = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)


def spec(**overrides) -> CellSpec:
    base = dict(
        benchmark="IM",
        platform="private",
        resolution="720p",
        regulator="ODR60",
        seed=1,
        duration_ms=2000.0,
        warmup_ms=500.0,
    )
    base.update(overrides)
    return CellSpec(**base)


class TestCellSpec:
    def test_run_id_matches_ledger_addressing(self):
        s = spec()
        assert s.run_id == run_id_for(s.config_payload(), s.seed)
        assert len(s.run_id) == 16

    def test_run_id_covers_duration_and_warmup(self):
        """Regression: the old Runner._cache key dropped duration/warmup,
        so sharing results across runners with different horizons would
        silently alias.  The content address must separate them."""
        base = spec()
        assert spec(duration_ms=9000.0).run_id != base.run_id
        assert spec(warmup_ms=1000.0).run_id != base.run_id

    def test_run_id_covers_every_axis(self):
        base = spec()
        for change in (
            {"benchmark": "RE"},
            {"platform": "gce"},
            {"resolution": "1080p"},
            {"regulator": "NoReg"},
            {"seed": 2},
        ):
            assert spec(**change).run_id != base.run_id

    def test_from_config_round_trip(self):
        s = CellSpec.from_config("IM", ExperimentConfig(COMBO, "ODR60"), seed=3)
        assert s.platform == "private"
        assert s.resolution == "720p"
        assert s.experiment_config() == ExperimentConfig(COMBO, "ODR60")
        assert s.label == "IM/Priv720p/ODR60"

    def test_payload_matches_runner_ledger_payload(self):
        """The spec's payload must hash to the same run_id the ledger
        records, so store and ledger share one address space."""
        payload = spec().config_payload()
        assert set(payload) == {
            "benchmark", "platform", "resolution", "regulator",
            "duration_ms", "warmup_ms",
        }


class TestPlan:
    def test_dedup_by_run_id(self):
        plan = Plan([spec(), spec(), spec(seed=2)])
        assert len(plan) == 2

    def test_add_reports_duplicates(self):
        plan = Plan()
        assert plan.add(spec()) is True
        assert plan.add(spec()) is False

    def test_preserves_first_demand_order(self):
        a, b, c = spec(seed=1), spec(seed=2), spec(seed=3)
        plan = Plan([b, a, c, a])
        assert plan.specs == (b, a, c)
        assert plan.run_ids == (b.run_id, a.run_id, c.run_id)

    def test_contains_spec_and_run_id(self):
        plan = Plan([spec()])
        assert spec() in plan
        assert spec().run_id in plan
        assert spec(seed=9) not in plan

    def test_merge(self):
        plan = Plan([spec(seed=1)])
        plan.merge(Plan([spec(seed=1), spec(seed=2)]))
        assert len(plan) == 2


class TestDemands:
    def test_full_matrix_is_168_cells(self):
        assert len(matrix_demands()) == 28 * 6

    def test_ablation_matrix_is_192_cells(self):
        assert len(matrix_demands(include_ablation=True)) == 32 * 6

    def test_reduced_matrix(self):
        plan = matrix_demands(benchmarks=["IM", "STK"], groups=["Priv720p"])
        assert len(plan) == 7 * 2
        assert all(s.platform == "private" and s.resolution == "720p" for s in plan)

    def test_matrix_multi_seed(self):
        plan = matrix_demands(benchmarks=["IM"], groups=["Priv720p"], seeds=(1, 2, 3))
        assert len(plan) == 7 * 3

    def test_group_demands_seeds(self):
        plan = group_demands(COMBO, ["NoReg", "ODR60"], benchmarks=["IM"], seeds=(1, 2))
        assert len(plan) == 4

    def test_bench_demands(self):
        plan = bench_demands(["IM", "STK"], ["NoReg", "ODR60"], seeds=[1, 2])
        assert len(plan) == 8
        assert all(s.platform == "private" for s in plan)


class TestConsumerDemands:
    @pytest.fixture(scope="class")
    def runner(self):
        return Runner(seed=1, duration_ms=2000.0, warmup_ms=500.0)

    def test_fig01_demands_two_cells(self, runner):
        plan = figure_demands("1", runner)
        assert len(plan) == 2
        assert {s.benchmark for s in plan} == {"RE", "IM"}

    def test_analysis_figures_share_cells(self, runner):
        merged = Plan()
        for number in ("3", "6", "7"):
            merged.merge(figure_demands(number, runner))
        # All three analysis figures read the same five IM cells.
        assert len(merged) == 5

    def test_fig09_demands_full_matrix(self, runner):
        assert len(figure_demands("9", runner)) == 28 * 6

    def test_system_level_figures_have_empty_plans(self, runner):
        assert len(figure_demands("4", runner)) == 0
        assert len(figure_demands("5", runner)) == 0

    def test_unknown_figure_rejected(self, runner):
        with pytest.raises(ValueError):
            figure_demands("2", runner)

    def test_table2_demands(self, runner):
        plan = table2_demands(runner)
        assert len(plan) == 3 * 8 * len(BENCHMARKS)

    def test_summary_demands_subset_of_fig09_plan(self, runner):
        summary = summary_demands(runner)
        fig09 = figure_demands("9", runner)
        assert set(summary.run_ids) == set(fig09.run_ids)

    def test_demands_use_runner_horizon(self, runner):
        other = Runner(seed=1, duration_ms=9999.0, warmup_ms=500.0)
        a = figure_demands("1", runner).run_ids
        b = figure_demands("1", other).run_ids
        assert not set(a) & set(b)
