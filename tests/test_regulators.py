"""Tests for the baseline regulators and the factory."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.core import OnDemandRendering
from repro.regulators import (
    IntervalMaxRegulator,
    IntervalRegulator,
    NoRegulation,
    RemoteVsync,
    regulator_label,
)
from repro.workloads import PRIVATE_CLOUD, Resolution


def run(regulator, bench="IM", seed=1, duration=10000.0):
    config = SystemConfig(bench, PRIVATE_CLOUD, Resolution.R720P, seed=seed,
                          duration_ms=duration, warmup_ms=1500.0)
    return CloudSystem(config, regulator).run()


class TestFactory:
    @pytest.mark.parametrize(
        "spec,cls,target",
        [
            ("NoReg", NoRegulation, None),
            ("Int60", IntervalRegulator, 60.0),
            ("Int30", IntervalRegulator, 30.0),
            ("IntMax", IntervalMaxRegulator, None),
            ("RVS60", RemoteVsync, 60.0),
            ("RVSMax", RemoteVsync, None),
            ("ODR60", OnDemandRendering, 60.0),
            ("ODRMax", OnDemandRendering, None),
        ],
    )
    def test_spec_dispatch(self, spec, cls, target):
        regulator = make_regulator(spec)
        assert isinstance(regulator, cls)
        assert regulator.fps_target == target

    def test_case_insensitive(self):
        assert isinstance(make_regulator("noreg"), NoRegulation)
        assert isinstance(make_regulator("odrmax"), OnDemandRendering)

    def test_odr_flags(self):
        nopri = make_regulator("ODRMax-noPri")
        assert nopri.priority is None
        noaccel = make_regulator("ODR60-noAccel")
        assert not noaccel.clock.accelerate
        both = make_regulator("ODR60-noPri-noAccel")
        assert both.priority is None and not both.clock.accelerate

    def test_rvsmax_uses_high_refresh_display(self):
        assert make_regulator("RVSMax").client_refresh_hz == 240.0
        assert make_regulator("RVS60").client_refresh_hz == 60.0

    def test_invalid_specs_rejected(self):
        for bad in ("", "Foo60", "NoReg60", "Int60-noPri", "ODR60-noMagic", "RVS-noPri"):
            with pytest.raises(ValueError):
                make_regulator(bad)

    def test_regulator_label(self):
        assert regulator_label("odr60") == "ODR60"
        assert regulator_label(NoRegulation()) == "NoReg"


class TestNoRegulation:
    def test_free_running_render(self):
        result = run(NoRegulation())
        # IM renders at ~190 FPS free-running
        assert result.render_fps > 150

    def test_mailbox_drops_are_the_gap(self):
        result = run(NoRegulation())
        drops = len(result.dropped_frames())
        gap_frames = result.counter.count("render") - result.counter.count("encode")
        assert abs(drops - gap_frames) <= 3

    def test_input_never_masked(self):
        assert NoRegulation.sleep_masks_inputs is False


class TestIntervalRegulator:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalRegulator(0)

    def test_name(self):
        assert IntervalRegulator(60).name == "Int60"
        assert IntervalRegulator(30).name == "Int30"

    def test_render_rate_capped_at_target(self):
        result = run(IntervalRegulator(60))
        assert result.render_fps <= 60.5

    def test_misses_target_under_spiky_load(self):
        """Sec. 4.1: Int60 cannot reach 60 because spikes lose grid slots."""
        result = run(IntervalRegulator(60))
        assert 52 <= result.client_fps < 60

    def test_interval_grid_alignment(self):
        """Render starts land on the 16.6ms grid."""
        result = run(IntervalRegulator(60), duration=4000)
        interval = 1000.0 / 60.0
        starts = [f.t_render_start for f in result.system.app.frames[10:200]]
        offsets = [s % interval for s in starts]
        on_grid = sum(1 for o in offsets if o < 0.01 or o > interval - 0.01)
        assert on_grid / len(offsets) > 0.95

    def test_30fps_variant(self):
        result = run(IntervalRegulator(30))
        assert 26 <= result.client_fps <= 30.5


class TestIntervalMaxRegulator:
    def test_decays_well_below_capacity(self):
        """Sec. 4.1: IntMax ratchets down and cannot recover."""
        result = run(IntervalMaxRegulator(), duration=30000)
        noreg = run(NoRegulation(), duration=10000)
        assert result.client_fps < 0.75 * noreg.client_fps

    def test_interval_only_ratchets_up_significantly(self):
        regulator = IntervalMaxRegulator()
        run(regulator, duration=20000)
        assert regulator.interval_ms > 10.0  # started at MIN_INTERVAL_MS=1

    def test_gap_removed(self):
        result = run(IntervalMaxRegulator(), duration=15000)
        assert result.fps_gap().mean_gap < 3.0

    def test_report_with_zero_fps_ignored(self):
        regulator = IntervalMaxRegulator()

        class _Counter:
            def count(self, stage):
                return 0

        class _System:
            counter = _Counter()

        regulator.system = _System()
        before = regulator.interval_ms
        regulator.on_client_fps_report(0.0)
        assert regulator.interval_ms == before


class TestRemoteVsync:
    def test_validation(self):
        with pytest.raises(ValueError):
            RemoteVsync(refresh_hz=0)
        with pytest.raises(ValueError):
            RemoteVsync(cc=-0.1)

    def test_names(self):
        assert RemoteVsync(fps_target=60).name == "RVS60"
        assert RemoteVsync(refresh_hz=240).name == "RVSMax"

    def test_rvs60_lands_below_refresh(self):
        """Sec. 4.1: feedback overhead keeps RVS below the refresh rate."""
        result = run(RemoteVsync(refresh_hz=60, fps_target=60))
        assert 48 <= result.client_fps < 60

    def test_rvsmax_below_noreg(self):
        """Sec. 4.1: RVSMax reaches only ~76 where NoReg reached ~93 (IM)."""
        rvs = run(RemoteVsync(refresh_hz=240))
        noreg = run(NoRegulation())
        assert rvs.client_fps < 0.92 * noreg.client_fps

    def test_gap_removed(self):
        result = run(RemoteVsync(refresh_hz=240))
        assert result.fps_gap().mean_gap < 3.0

    def test_feedback_flows(self):
        regulator = RemoteVsync(refresh_hz=60, fps_target=60)
        run(regulator, duration=5000)
        assert regulator.feedback_count > 100
        assert 0.0 <= regulator.latest_slack_ms <= regulator.vblank_period_ms

    def test_in_flight_window_respected(self):
        regulator = RemoteVsync(refresh_hz=240)
        run(regulator, duration=5000)
        assert regulator.frames_in_flight <= regulator.WINDOW + 1

    def test_higher_cc_means_lower_fps(self):
        slow = run(RemoteVsync(refresh_hz=240, cc=1.5), seed=3)
        fast = run(RemoteVsync(refresh_hz=240, cc=0.05), seed=3)
        assert slow.client_fps < fast.client_fps


class TestLatencyOrdering:
    """Sec. 4.2 / 6.4: the latency ordering across regulators."""

    def test_int_and_rvs_increase_latency_over_noreg(self):
        noreg = run(NoRegulation())
        for regulator in (IntervalRegulator(60), RemoteVsync(refresh_hz=60, fps_target=60)):
            regulated = run(regulator)
            assert regulated.mean_mtp_ms() > noreg.mean_mtp_ms()

    def test_odr_beats_int_and_rvs(self):
        odr = run(OnDemandRendering(60.0))
        int60 = run(IntervalRegulator(60))
        rvs60 = run(RemoteVsync(refresh_hz=60, fps_target=60))
        assert odr.mean_mtp_ms() < int60.mean_mtp_ms()
        assert odr.mean_mtp_ms() < rvs60.mean_mtp_ms()
