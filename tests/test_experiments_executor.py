"""Tests for the execution layer: serial/parallel equivalence and resume.

The headline guarantee of the plan/execute split: a plan executed by
``ParallelExecutor`` yields **bit-identical** results to a serial run
(same ``ExperimentRecord``s, same ledger ``metrics_digest``s, same
append order), and a persistent :class:`ResultStore` warm-starts later
invocations so only missing cells execute.
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cli import main
from repro.devtools.determinism import fingerprint_run
from repro.experiments import (
    CellSpec,
    ParallelExecutor,
    Plan,
    ResultStore,
    Runner,
    SerialExecutor,
    execute_cell,
    make_executor,
)
from repro.obs.ledger import RunLedger
from repro.obs.runmeta import metrics_digest

DURATION_MS = 2000.0
WARMUP_MS = 500.0


def spec(benchmark="IM", regulator="ODR60", seed=1) -> CellSpec:
    return CellSpec(
        benchmark=benchmark,
        platform="private",
        resolution="720p",
        regulator=regulator,
        seed=seed,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


def four_cell_plan() -> Plan:
    return Plan(
        [
            spec("IM", "ODR60"),
            spec("RE", "NoReg"),
            spec("STK", "Int60"),
            spec("IM", "ODR60", seed=2),
        ]
    )


class TestSerialParallelEquivalence:
    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        serial_dir = tmp_path_factory.mktemp("ledger-serial")
        parallel_dir = tmp_path_factory.mktemp("ledger-parallel")
        serial_ledger = RunLedger(serial_dir)
        parallel_ledger = RunLedger(parallel_dir)
        serial = SerialExecutor().run(
            four_cell_plan(), store=ResultStore(), ledger=serial_ledger
        )
        parallel = ParallelExecutor(workers=4).run(
            four_cell_plan(), store=ResultStore(), ledger=parallel_ledger
        )
        return serial, parallel, serial_ledger, parallel_ledger

    def test_records_bit_identical(self, runs):
        serial, parallel, _, _ = runs
        assert len(serial.outcomes) == len(parallel.outcomes) == 4
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert a.spec == b.spec
            # Frozen dataclasses all the way down: == is field-by-field
            # bit equality, including box stats and hardware reports.
            assert a.record == b.record

    def test_ledger_digests_identical(self, runs):
        """The PR 2 determinism contract, re-stated for the pool: the
        measured content of every ledger record (metrics + series,
        wall clock excluded) must hash identically."""
        _, _, serial_ledger, parallel_ledger = runs
        serial_records = serial_ledger.records()
        parallel_records = parallel_ledger.records()
        assert len(serial_records) == len(parallel_records) == 4
        for a, b in zip(serial_records, parallel_records):
            assert a["run_id"] == b["run_id"]
            assert metrics_digest(a) == metrics_digest(b)

    def test_ledger_append_order_matches_plan(self, runs):
        _, _, serial_ledger, parallel_ledger = runs
        plan_ids = list(four_cell_plan().run_ids)
        assert [r["run_id"] for r in serial_ledger.records()] == plan_ids
        assert [r["run_id"] for r in parallel_ledger.records()] == plan_ids

    def test_all_cells_executed_not_cached(self, runs):
        serial, parallel, _, _ = runs
        assert serial.executed == parallel.executed == 4
        assert serial.cached == parallel.cached == 0


class TestScheduleDeterminismAcrossProcesses:
    def test_pool_worker_schedule_matches_in_process(self):
        """Reuse the determinism verifier: the full event-schedule
        fingerprint (not just final metrics) must match between an
        in-process run and the same run inside a pool worker."""
        local = fingerprint_run(seed=1, duration_ms=1500.0, warmup_ms=300.0)
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(
                fingerprint_run, seed=1, duration_ms=1500.0, warmup_ms=300.0
            ).result()
        assert local.digest == remote.digest
        assert local.events_fired == remote.events_fired


class TestResultStore:
    def test_hit_miss_accounting(self):
        store = ResultStore()
        outcome = execute_cell(spec())
        assert store.get(outcome.spec.run_id) is None
        assert (store.hits, store.misses) == (0, 1)
        store.put(outcome.spec.run_id, outcome.record)
        assert store.get(outcome.spec.run_id) == outcome.record
        assert (store.hits, store.misses) == (1, 1)
        store.reset_stats()
        assert (store.hits, store.misses) == (0, 0)

    def test_persistent_round_trip(self, tmp_path):
        outcome = execute_cell(spec())
        writer = ResultStore(tmp_path)
        writer.put(outcome.spec.run_id, outcome.record)
        # A different process would build a fresh store over the same dir.
        reader = ResultStore(tmp_path)
        assert outcome.spec.run_id in reader
        assert reader.get(outcome.spec.run_id) == outcome.record

    def test_torn_cell_file_is_a_miss(self, tmp_path):
        outcome = execute_cell(spec())
        store = ResultStore(tmp_path)
        store.put(outcome.spec.run_id, outcome.record)
        path = store.cell_path(outcome.spec.run_id)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert ResultStore(tmp_path).get(outcome.spec.run_id) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        outcome = execute_cell(spec())
        store = ResultStore(tmp_path)
        store.put(outcome.spec.run_id, outcome.record)
        path = store.cell_path(outcome.spec.run_id)
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        assert ResultStore(tmp_path).get(outcome.spec.run_id) is None

    def test_invalidate_clears_disk(self, tmp_path):
        outcome = execute_cell(spec())
        store = ResultStore(tmp_path)
        store.put(outcome.spec.run_id, outcome.record)
        store.invalidate(outcome.spec.run_id)
        assert outcome.spec.run_id not in store
        assert not store.cell_path(outcome.spec.run_id).exists()


class TestWarmStart:
    def test_rerun_executes_nothing(self, tmp_path):
        plan = Plan([spec("IM", "ODR60"), spec("IM", "NoReg")])
        first = SerialExecutor().run(plan, store=ResultStore(tmp_path))
        assert (first.executed, first.cached) == (2, 0)
        # Fresh store over the same persist dir = a later invocation.
        second = SerialExecutor().run(plan, store=ResultStore(tmp_path))
        assert (second.executed, second.cached) == (0, 2)
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.record == b.record

    def test_interrupted_sweep_resumes_missing_only(self, tmp_path):
        full = Plan([spec("IM", "ODR60"), spec("IM", "NoReg"), spec("IM", "Int60")])
        subset = Plan(list(full.specs)[:2])
        SerialExecutor().run(subset, store=ResultStore(tmp_path))
        resumed = SerialExecutor().run(full, store=ResultStore(tmp_path))
        assert (resumed.executed, resumed.cached) == (1, 2)
        executed_ids = {o.spec.run_id for o in resumed.outcomes if not o.cached}
        assert executed_ids == {full.specs[2].run_id}

    def test_cached_cells_skip_ledger(self, tmp_path):
        plan = Plan([spec()])
        ledger = RunLedger(tmp_path / "ledger")
        SerialExecutor().run(plan, store=ResultStore(tmp_path / "cells"), ledger=ledger)
        SerialExecutor().run(plan, store=ResultStore(tmp_path / "cells"), ledger=ledger)
        assert len(ledger.records()) == 1


class TestRunnerFacade:
    def test_run_cell_memoizes_same_object(self):
        runner = Runner(seed=1, duration_ms=DURATION_MS, warmup_ms=WARMUP_MS)
        config = spec().experiment_config()
        first = runner.run_cell("IM", config)
        assert runner.run_cell("IM", config) is first

    def test_run_group_seeds(self):
        runner = Runner(seed=1, duration_ms=DURATION_MS, warmup_ms=WARMUP_MS)
        combo = spec().experiment_config().platform_res
        records = runner.run_group(
            combo, ["ODR60"], benchmarks=["IM"], seeds=(1, 2)
        )
        assert len(records) == 2
        assert records[0] != records[1]
        # Seed 1's cell is the runner's own cell: recalled, not re-run.
        assert runner.run_cell("IM", spec().experiment_config()) is records[0]

    def test_make_executor(self):
        assert isinstance(make_executor(1), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, ParallelExecutor)
        assert pool.workers == 3
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)


class TestCliResume:
    def test_matrix_resume_skips_executed_cells(self, tmp_path, capsys):
        argv = [
            "--duration", "2000", "--warmup", "500",
            "matrix", str(tmp_path / "matrix.csv"),
            "--ledger", str(tmp_path / "ledger"),
            "--benchmarks", "IM",
            "--groups", "Priv720p",
            "--resume",
        ]
        assert main(list(argv)) == 0
        first = capsys.readouterr().out
        assert "executed=7 cached=0" in first
        assert main(list(argv)) == 0
        second = capsys.readouterr().out
        assert "executed=0 cached=7" in second
