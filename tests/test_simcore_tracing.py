"""Tests for busy-interval tracing and the overlap profile."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import IntervalTrace
from repro.simcore.tracing import overlap_profile, windowed_counts


class TestIntervalTrace:
    def test_record_and_filter(self):
        trace = IntervalTrace()
        trace.record("render", 0, 5)
        trace.record("encode", 3, 9)
        assert len(trace) == 2
        assert [r.stage for r in trace.records("render")] == ["render"]
        assert trace.stages() == ["encode", "render"]

    def test_zero_length_intervals_skipped(self):
        trace = IntervalTrace()
        trace.record("render", 5, 5)
        assert len(trace) == 0

    def test_backwards_interval_rejected(self):
        trace = IntervalTrace()
        with pytest.raises(ValueError):
            trace.record("render", 5, 4)

    def test_busy_time_with_clipping(self):
        trace = IntervalTrace()
        trace.record("render", 0, 10)
        trace.record("render", 20, 30)
        assert trace.busy_time("render") == 20
        assert trace.busy_time("render", start=5, end=25) == 10

    def test_utilization(self):
        trace = IntervalTrace()
        trace.record("encode", 0, 25)
        assert trace.utilization("encode", 0, 100) == 0.25

    def test_utilization_empty_window_raises(self):
        with pytest.raises(ValueError):
            IntervalTrace().utilization("x", 5, 5)

    def test_record_duration(self):
        trace = IntervalTrace()
        trace.record("net", 2, 9)
        assert trace.records()[0].duration == 7

    def test_records_preserve_global_insertion_order(self):
        trace = IntervalTrace()
        trace.record("b", 0, 1)
        trace.record("a", 1, 2)
        trace.record("b", 2, 3)
        assert [(r.stage, r.start) for r in trace.records()] == [
            ("b", 0), ("a", 1), ("b", 2)
        ]
        assert [r.start for r in trace.records("b")] == [0, 2]

    def test_per_stage_queries_match_linear_scan(self):
        trace = IntervalTrace()
        for i in range(50):
            trace.record(f"stage{i % 5}", i, i + 0.5)
        for stage in trace.stages():
            expected = sum(
                r.duration for r in trace.records() if r.stage == stage
            )
            assert trace.busy_time(stage) == pytest.approx(expected)
        assert trace.busy_time("absent") == 0.0
        assert trace.records("absent") == []


class TestOverlapProfile:
    def test_disjoint_intervals_never_overlap(self):
        trace = IntervalTrace()
        trace.record("a", 0, 10)
        trace.record("b", 10, 20)
        profile = overlap_profile(trace, ["a", "b"], 0, 20)
        assert profile[1] == pytest.approx(1.0)
        assert profile[2] == pytest.approx(0.0)

    def test_full_overlap(self):
        trace = IntervalTrace()
        trace.record("a", 0, 10)
        trace.record("b", 0, 10)
        profile = overlap_profile(trace, ["a", "b"], 0, 10)
        assert profile[2] == pytest.approx(1.0)

    def test_partial_overlap(self):
        trace = IntervalTrace()
        trace.record("a", 0, 6)
        trace.record("b", 4, 10)
        profile = overlap_profile(trace, ["a", "b"], 0, 10)
        assert profile[0] == pytest.approx(0.0)
        assert profile[1] == pytest.approx(0.8)
        assert profile[2] == pytest.approx(0.2)

    def test_idle_time_counted_as_zero_level(self):
        trace = IntervalTrace()
        trace.record("a", 2, 4)
        profile = overlap_profile(trace, ["a"], 0, 10)
        assert profile[0] == pytest.approx(0.8)
        assert profile[1] == pytest.approx(0.2)

    def test_unlisted_stage_ignored(self):
        trace = IntervalTrace()
        trace.record("a", 0, 10)
        trace.record("other", 0, 10)
        profile = overlap_profile(trace, ["a"], 0, 10)
        assert profile[1] == pytest.approx(1.0)

    def test_empty_trace_all_idle(self):
        profile = overlap_profile(IntervalTrace(), ["a", "b"], 0, 10)
        assert profile[0] == 1.0

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            overlap_profile(IntervalTrace(), ["a"], 5, 5)

    def test_interval_straddling_window_start_is_clipped(self):
        trace = IntervalTrace()
        trace.record("a", -5, 5)
        profile = overlap_profile(trace, ["a"], 0, 10)
        assert profile[1] == pytest.approx(0.5)
        assert profile[0] == pytest.approx(0.5)

    def test_interval_straddling_window_end_is_clipped(self):
        trace = IntervalTrace()
        trace.record("a", 8, 15)
        profile = overlap_profile(trace, ["a"], 0, 10)
        assert profile[1] == pytest.approx(0.2)

    def test_interval_spanning_whole_window(self):
        trace = IntervalTrace()
        trace.record("a", -10, 20)
        profile = overlap_profile(trace, ["a"], 0, 10)
        assert profile[1] == pytest.approx(1.0)
        assert profile[0] == pytest.approx(0.0)

    def test_interval_clipped_to_zero_length_contributes_nothing(self):
        # Entirely outside [start, end): clips to an empty interval.
        trace = IntervalTrace()
        trace.record("a", 10, 20)
        trace.record("b", -5, 0)  # touches the boundary exactly
        profile = overlap_profile(trace, ["a", "b"], 0, 10)
        assert profile[0] == pytest.approx(1.0)
        assert profile[1] == pytest.approx(0.0)

    def test_unsorted_record_times_handled(self):
        # Records arriving out of chronological order must not corrupt
        # the sweep (deltas are sorted internally).
        trace = IntervalTrace()
        trace.record("a", 6, 9)
        trace.record("b", 1, 4)
        trace.record("a", 3, 7)
        profile = overlap_profile(trace, ["a", "b"], 0, 10)
        # busy levels: [0,1)=0, [1,3)=1, [3,4)=2, [4,6)=1, [6,7)=2, [7,9)=1, [9,10)=0
        assert profile[0] == pytest.approx(0.2)
        assert profile[1] == pytest.approx(0.6)
        assert profile[2] == pytest.approx(0.2)

    def test_level_clamped_when_one_stage_self_overlaps(self):
        # Two records of the SAME stage overlapping push the sweep level
        # past len(stages); the profile clamps to the top bucket.
        trace = IntervalTrace()
        trace.record("a", 0, 10)
        trace.record("a", 0, 10)
        profile = overlap_profile(trace, ["a"], 0, 10)
        assert profile[1] == pytest.approx(1.0)
        assert sum(profile.values()) == pytest.approx(1.0)

    def test_profile_keys_cover_zero_to_len_stages(self):
        profile = overlap_profile(IntervalTrace(), ["a", "b", "c"], 0, 10)
        assert sorted(profile) == [0, 1, 2, 3]

    @given(
        intervals=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=0, max_value=90),
                st.floats(min_value=0.1, max_value=10),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_profile_fractions_sum_to_one(self, intervals):
        trace = IntervalTrace()
        for stage, start, duration in intervals:
            trace.record(stage, start, start + duration)
        profile = overlap_profile(trace, ["a", "b", "c"], 0, 100)
        assert sum(profile.values()) == pytest.approx(1.0)
        assert all(v >= -1e-12 for v in profile.values())


class TestWindowedCounts:
    def test_basic_counting(self):
        times = [0.5, 1.5, 1.6, 2.5]
        assert windowed_counts(times, window=1.0, start=0, end=3) == [1, 2, 1]

    def test_out_of_range_excluded(self):
        times = [-1, 0.5, 10.0]
        assert windowed_counts(times, window=1.0, start=0, end=2) == [1, 0]

    def test_partial_trailing_window_dropped(self):
        times = [0.1, 1.1, 2.4]
        # [0,2.5) with window 1 -> two full windows only
        assert windowed_counts(times, window=1.0, start=0, end=2.5) == [1, 1]

    def test_empty_range(self):
        assert windowed_counts([1, 2], window=1.0, start=5, end=5) == []

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            windowed_counts([1], window=0, start=0, end=1)

    def test_unsorted_input_times(self):
        times = [2.5, 0.5, 1.6, 1.5]
        assert windowed_counts(times, window=1.0, start=0, end=3) == [1, 2, 1]

    def test_event_on_window_boundary_counts_in_later_window(self):
        # Buckets are [lo, hi): an event at exactly t=1.0 belongs to the
        # second window, and one at exactly end is excluded.
        times = [1.0, 2.0]
        assert windowed_counts(times, window=1.0, start=0, end=2) == [0, 1]

    def test_event_at_start_boundary_included(self):
        assert windowed_counts([0.0], window=1.0, start=0, end=1) == [1]

    def test_window_larger_than_range_gives_no_windows(self):
        assert windowed_counts([0.5], window=5.0, start=0, end=3) == []

    def test_negative_range_empty(self):
        assert windowed_counts([1], window=1.0, start=5, end=3) == []
