"""Tests for busy-interval tracing and the overlap profile."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import IntervalTrace
from repro.simcore.tracing import overlap_profile, windowed_counts


class TestIntervalTrace:
    def test_record_and_filter(self):
        trace = IntervalTrace()
        trace.record("render", 0, 5)
        trace.record("encode", 3, 9)
        assert len(trace) == 2
        assert [r.stage for r in trace.records("render")] == ["render"]
        assert trace.stages() == ["encode", "render"]

    def test_zero_length_intervals_skipped(self):
        trace = IntervalTrace()
        trace.record("render", 5, 5)
        assert len(trace) == 0

    def test_backwards_interval_rejected(self):
        trace = IntervalTrace()
        with pytest.raises(ValueError):
            trace.record("render", 5, 4)

    def test_busy_time_with_clipping(self):
        trace = IntervalTrace()
        trace.record("render", 0, 10)
        trace.record("render", 20, 30)
        assert trace.busy_time("render") == 20
        assert trace.busy_time("render", start=5, end=25) == 10

    def test_utilization(self):
        trace = IntervalTrace()
        trace.record("encode", 0, 25)
        assert trace.utilization("encode", 0, 100) == 0.25

    def test_utilization_empty_window_raises(self):
        with pytest.raises(ValueError):
            IntervalTrace().utilization("x", 5, 5)

    def test_record_duration(self):
        trace = IntervalTrace()
        trace.record("net", 2, 9)
        assert trace.records()[0].duration == 7


class TestOverlapProfile:
    def test_disjoint_intervals_never_overlap(self):
        trace = IntervalTrace()
        trace.record("a", 0, 10)
        trace.record("b", 10, 20)
        profile = overlap_profile(trace, ["a", "b"], 0, 20)
        assert profile[1] == pytest.approx(1.0)
        assert profile[2] == pytest.approx(0.0)

    def test_full_overlap(self):
        trace = IntervalTrace()
        trace.record("a", 0, 10)
        trace.record("b", 0, 10)
        profile = overlap_profile(trace, ["a", "b"], 0, 10)
        assert profile[2] == pytest.approx(1.0)

    def test_partial_overlap(self):
        trace = IntervalTrace()
        trace.record("a", 0, 6)
        trace.record("b", 4, 10)
        profile = overlap_profile(trace, ["a", "b"], 0, 10)
        assert profile[0] == pytest.approx(0.0)
        assert profile[1] == pytest.approx(0.8)
        assert profile[2] == pytest.approx(0.2)

    def test_idle_time_counted_as_zero_level(self):
        trace = IntervalTrace()
        trace.record("a", 2, 4)
        profile = overlap_profile(trace, ["a"], 0, 10)
        assert profile[0] == pytest.approx(0.8)
        assert profile[1] == pytest.approx(0.2)

    def test_unlisted_stage_ignored(self):
        trace = IntervalTrace()
        trace.record("a", 0, 10)
        trace.record("other", 0, 10)
        profile = overlap_profile(trace, ["a"], 0, 10)
        assert profile[1] == pytest.approx(1.0)

    def test_empty_trace_all_idle(self):
        profile = overlap_profile(IntervalTrace(), ["a", "b"], 0, 10)
        assert profile[0] == 1.0

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            overlap_profile(IntervalTrace(), ["a"], 5, 5)

    @given(
        intervals=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=0, max_value=90),
                st.floats(min_value=0.1, max_value=10),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_profile_fractions_sum_to_one(self, intervals):
        trace = IntervalTrace()
        for stage, start, duration in intervals:
            trace.record(stage, start, start + duration)
        profile = overlap_profile(trace, ["a", "b", "c"], 0, 100)
        assert sum(profile.values()) == pytest.approx(1.0)
        assert all(v >= -1e-12 for v in profile.values())


class TestWindowedCounts:
    def test_basic_counting(self):
        times = [0.5, 1.5, 1.6, 2.5]
        assert windowed_counts(times, window=1.0, start=0, end=3) == [1, 2, 1]

    def test_out_of_range_excluded(self):
        times = [-1, 0.5, 10.0]
        assert windowed_counts(times, window=1.0, start=0, end=2) == [1, 0]

    def test_partial_trailing_window_dropped(self):
        times = [0.1, 1.1, 2.4]
        # [0,2.5) with window 1 -> two full windows only
        assert windowed_counts(times, window=1.0, start=0, end=2.5) == [1, 1]

    def test_empty_range(self):
        assert windowed_counts([1, 2], window=1.0, start=5, end=5) == []

    def test_bad_window_raises(self):
        with pytest.raises(ValueError):
            windowed_counts([1], window=0, start=0, end=1)
