"""Metrics registry: label semantics, snapshot/delta, instrument kinds."""

import pytest

from repro.obs import MetricsRegistry, SeriesKey
from repro.obs.registry import HistogramStats


class TestLabelSemantics:
    def test_different_labels_are_different_series(self):
        reg = MetricsRegistry()
        reg.counter("frames_dropped_total", reason="mailbox_overwrite").inc()
        reg.counter("frames_dropped_total", reason="obsolete_flush").inc(2)
        snap = reg.snapshot()
        assert snap.counter_value("frames_dropped_total", reason="mailbox_overwrite") == 1
        assert snap.counter_value("frames_dropped_total", reason="obsolete_flush") == 2
        assert snap.counter_value("frames_dropped_total") == 0  # unlabeled series distinct

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("x", a="1", b="2").inc()
        reg.counter("x", b="2", a="1").inc()
        assert reg.snapshot().counter_value("x", a="1", b="2") == 2

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        reg.counter("x", session=0).inc()
        assert reg.snapshot().counter_value("x", session="0") == 1

    def test_series_key_str_prometheus_style(self):
        key = SeriesKey.make("queue_depth", {"stage": "send_queue"})
        assert str(key) == 'queue_depth{stage="send_queue"}'
        assert str(SeriesKey.make("plain", {})) == "plain"
        assert key.label("stage") == "send_queue"
        assert key.label("absent") is None

    def test_same_handle_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("n", stage="render")
        b = reg.counter("n", stage="render")
        assert a is b


class TestInstruments:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth", stage="send_queue")
        g.set(5)
        g.add(-2)
        assert g.value == 3

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("gate_delay_ms")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        stats = h.stats()
        assert stats.count == 4
        assert stats.min == 1.0 and stats.max == 4.0
        assert stats.mean == pytest.approx(2.5)
        assert stats.p50 == pytest.approx(3.0)  # nearest-rank on sorted data

    def test_empty_histogram_stats(self):
        stats = HistogramStats.from_values(())
        assert stats.count == 0 and stats.mean == 0.0

    def test_name_cannot_change_kind(self):
        reg = MetricsRegistry()
        reg.counter("frames_total")
        with pytest.raises(ValueError):
            reg.gauge("frames_total")
        with pytest.raises(ValueError):
            reg.histogram("frames_total")


class TestSnapshotDelta:
    def test_snapshot_is_frozen_in_time(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        before = reg.snapshot()
        c.inc(9)
        assert before.counter_value("n") == 1
        assert reg.snapshot().counter_value("n") == 10

    def test_delta_between_snapshots(self):
        reg = MetricsRegistry()
        c = reg.counter("n", stage="render")
        c.inc(3)
        first = reg.snapshot()
        c.inc(4)
        reg.counter("m").inc()  # series born after the first snapshot
        second = reg.snapshot()
        delta = second.delta(first)
        assert delta[SeriesKey.make("n", {"stage": "render"})] == 4
        assert delta[SeriesKey.make("m", {})] == 1

    def test_series_listing_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a", x="2")
        reg.counter("a", x="1")
        assert [str(k) for k in reg.series()] == ['a{x="1"}', 'a{x="2"}', "b"]

    def test_snapshot_to_dict_round_trips_json(self):
        import json

        reg = MetricsRegistry()
        reg.counter("n", stage="render").inc()
        reg.gauge("depth").set(2)
        reg.histogram("ms").observe(1.5)
        blob = json.loads(json.dumps(reg.snapshot().to_dict()))
        assert blob["counters"]['n{stage="render"}'] == 1
        assert blob["gauges"]["depth"] == 2
        assert blob["histograms"]["ms"]["count"] == 1
