"""Tests for the declarative fault model: specs, plans, and the catalog."""

import pytest

from repro.faults import (
    FAULT_CLASSES,
    BandwidthCollapse,
    ClientPause,
    FaultPlan,
    GpuPreemption,
    NetworkOutage,
    PacketLossBurst,
    StageStall,
    StallStorm,
    build_fault_plan,
    fault_class_names,
    fault_from_dict,
)

ALL_SPECS = [
    StageStall("encode", 5000.0, 300.0),
    StallStorm("render", 4000.0, 8000.0, rate_per_s=4.0, mean_stall_ms=40.0),
    NetworkOutage(5000.0, 800.0),
    BandwidthCollapse(4000.0, 2000.0, factor=0.25),
    PacketLossBurst(5000.0, 1500.0, loss_prob=0.3),
    ClientPause(5000.0, 500.0),
    GpuPreemption(4000.0, 120.0, slowdown=3.5, period_ms=480.0, count=4),
]


class TestSpecRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.kind)
    def test_dict_round_trip(self, spec):
        payload = spec.to_dict()
        assert payload["kind"] == spec.kind
        assert fault_from_dict(payload) == spec

    def test_plan_payload_round_trip(self):
        plan = FaultPlan(tuple(ALL_SPECS))
        assert FaultPlan.from_payload(plan.to_payload()) == plan
        assert len(plan) == len(ALL_SPECS)
        assert bool(plan)
        assert not FaultPlan()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fault_from_dict({"kind": "meteor_strike"})

    def test_extra_fields_rejected(self):
        payload = StageStall("encode", 5000.0, 300.0).to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError):
            fault_from_dict(payload)

    def test_describe_mentions_every_fault(self):
        text = FaultPlan(tuple(ALL_SPECS)).describe()
        for spec in ALL_SPECS:
            assert spec.label() in text


class TestSpecValidation:
    def test_stall_needs_positive_duration(self):
        with pytest.raises(ValueError):
            StageStall("encode", 5000.0, 0.0)

    def test_stall_needs_known_stage(self):
        with pytest.raises(ValueError):
            StageStall("teleport", 5000.0, 10.0)

    def test_storm_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            StallStorm("render", 8000.0, 4000.0, rate_per_s=1.0, mean_stall_ms=5.0)

    def test_bandwidth_factor_in_unit_interval(self):
        with pytest.raises(ValueError):
            BandwidthCollapse(4000.0, 2000.0, factor=0.0)
        with pytest.raises(ValueError):
            BandwidthCollapse(4000.0, 2000.0, factor=1.5)

    def test_loss_prob_in_unit_interval(self):
        with pytest.raises(ValueError):
            PacketLossBurst(5000.0, 1500.0, loss_prob=1.5)

    def test_preemption_slowdown_above_one(self):
        with pytest.raises(ValueError):
            GpuPreemption(4000.0, 120.0, slowdown=1.0)

    def test_preemption_period_covers_duration(self):
        with pytest.raises(ValueError):
            GpuPreemption(4000.0, 500.0, slowdown=2.0, period_ms=100.0, count=3)

    def test_preemption_slices(self):
        fault = GpuPreemption(1000.0, 100.0, slowdown=2.0, period_ms=400.0, count=3)
        assert fault.slices() == [
            (1000.0, 1100.0),
            (1400.0, 1500.0),
            (1800.0, 1900.0),
        ]


class TestCatalog:
    def test_catalog_names_sorted_and_complete(self):
        assert fault_class_names() == sorted(FAULT_CLASSES)
        assert "encode_stall" in FAULT_CLASSES

    @pytest.mark.parametrize("name", sorted(FAULT_CLASSES))
    def test_every_class_lands_inside_the_measured_window(self, name):
        duration, warmup = 10000.0, 2000.0
        plan = build_fault_plan(name, duration, warmup)
        assert len(plan) >= 1
        for fault in plan:
            start, end = fault.window()
            assert warmup <= start < end <= warmup + duration

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            build_fault_plan("meteor_strike", 10000.0, 2000.0)

    def test_catalog_is_deterministic(self):
        for name in fault_class_names():
            assert build_fault_plan(name, 8000.0, 1000.0) == build_fault_plan(
                name, 8000.0, 1000.0
            )
