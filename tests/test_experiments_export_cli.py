"""Tests for the CSV export module and the extended CLI commands."""

import csv
import io

import pytest

from repro.cli import main
from repro.experiments import ExperimentConfig, PlatformRes, Runner
from repro.experiments.export import EXPORT_FIELDS, record_to_row, records_to_csv
from repro.workloads import PRIVATE_CLOUD, Resolution


@pytest.fixture(scope="module")
def record():
    runner = Runner(seed=1, duration_ms=4000.0, warmup_ms=800.0)
    combo = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)
    return runner.run_cell("IM", ExperimentConfig(combo, "ODR60"))


class TestExport:
    def test_row_covers_all_fields(self, record):
        row = record_to_row(record)
        assert set(row) == set(EXPORT_FIELDS)

    def test_row_values(self, record):
        row = record_to_row(record)
        assert row["benchmark"] == "IM"
        assert row["regulator"] == "ODR60"
        assert row["fps_target"] == "60"
        assert float(row["client_fps"]) > 50

    def test_noreg_has_empty_target(self):
        runner = Runner(seed=1, duration_ms=3000.0, warmup_ms=500.0)
        combo = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)
        row = record_to_row(runner.run_cell("RE", ExperimentConfig(combo, "NoReg")))
        assert row["fps_target"] == ""

    def test_csv_roundtrip(self, record):
        buffer = io.StringIO()
        count = records_to_csv([record, record], buffer)
        assert count == 2
        buffer.seek(0)
        rows = list(csv.DictReader(buffer))
        assert len(rows) == 2
        assert rows[0]["benchmark"] == "IM"

    def test_csv_file_output(self, record, tmp_path):
        path = tmp_path / "records.csv"
        records_to_csv([record], str(path))
        assert path.read_text().startswith("benchmark,")


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    assert code == 0
    return out


class TestCliCompare:
    def test_compare_output(self, capsys):
        out = run_cli(
            capsys, "--duration", "2500", "--warmup", "500",
            "compare", "IM", "NoReg", "ODRMax", "--seeds", "2",
        )
        assert "ODRMax minus NoReg" in out
        assert "client_fps" in out
        assert "fps_gap_mean" in out

    def test_compare_flags_significance(self, capsys):
        out = run_cli(
            capsys, "--duration", "3000", "--warmup", "500",
            "compare", "IM", "NoReg", "ODR60", "--seeds", "3",
        )
        # the gap collapse is unambiguous even at 3 seeds
        gap_line = next(l for l in out.splitlines() if "fps_gap_mean" in l)
        assert "[-]" in gap_line


class TestCliConsolidate:
    def test_consolidate_output(self, capsys):
        out = run_cli(
            capsys, "--duration", "3000", "--warmup", "500",
            "consolidate", "ODR60", "--max-sessions", "2",
        )
        assert "1 session(s)" in out and "2 session(s)" in out
        assert "GPU" in out


class TestCliBreakdown:
    def test_breakdown_output(self, capsys):
        out = run_cli(
            capsys, "--duration", "4000", "--warmup", "800",
            "breakdown", "IM", "ODR60",
        )
        assert "input_wait" in out and "transmit_wait" in out and "total" in out

    def test_breakdown_gce_congestion_dominates(self, capsys):
        out = run_cli(
            capsys, "--duration", "5000", "--warmup", "800",
            "breakdown", "IM", "NoReg", "--platform", "gce",
        )
        lines = {l.split()[0]: float(l.split()[1]) for l in out.splitlines()[1:]}
        assert lines["transmit_wait"] > 10 * lines["render"]


class TestCliMatrix:
    def test_matrix_csv(self, capsys, tmp_path):
        path = tmp_path / "matrix.csv"
        out = run_cli(
            capsys, "--duration", "1500", "--warmup", "300", "matrix", str(path)
        )
        assert "168 rows" in out
        rows = list(csv.DictReader(path.open()))
        assert len(rows) == 168
        regulators = {r["regulator"] for r in rows}
        assert {"NoReg", "ODRMax", "ODR60", "ODR30"} <= regulators

    def test_matrix_with_ablation(self, capsys, tmp_path):
        path = tmp_path / "matrix.csv"
        out = run_cli(
            capsys, "--duration", "1200", "--warmup", "300",
            "matrix", str(path), "--ablation",
        )
        assert "192 rows" in out  # 32 configs x 6 benchmarks
