"""Tests for deterministic random streams (including hypothesis properties)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import SeededRng
from repro.simcore.rng import derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_path(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_not_collapsible(self):
        # ("ab",) and ("a", "b") must give different streams
        assert derive_seed(7, "ab") != derive_seed(7, "a", "b")


class TestSeededRng:
    def test_same_seed_same_sequence(self):
        a = SeededRng(123)
        b = SeededRng(123)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_children_are_independent_of_sibling_creation(self):
        root = SeededRng(5)
        child_a_first = root.child("a")
        seq1 = [child_a_first.random() for _ in range(5)]
        root2 = SeededRng(5)
        root2.child("b")  # creating a sibling must not shift "a"
        child_a_second = root2.child("a")
        seq2 = [child_a_second.random() for _ in range(5)]
        assert seq1 == seq2

    def test_randint_bounds_inclusive(self):
        rng = SeededRng(9)
        draws = {rng.randint(1, 3) for _ in range(200)}
        assert draws == {1, 2, 3}

    def test_exponential_mean(self):
        rng = SeededRng(11)
        draws = [rng.exponential(10.0) for _ in range(20000)]
        assert abs(sum(draws) / len(draws) - 10.0) < 0.5

    def test_exponential_validation(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0)

    def test_lognormal_mean_cv_moments(self):
        rng = SeededRng(13)
        mean, cv = 8.0, 0.5
        draws = [rng.lognormal_mean_cv(mean, cv) for _ in range(30000)]
        sample_mean = sum(draws) / len(draws)
        sample_var = sum((d - sample_mean) ** 2 for d in draws) / len(draws)
        assert abs(sample_mean - mean) < 0.25
        assert abs(math.sqrt(sample_var) / sample_mean - cv) < 0.05

    def test_lognormal_zero_cv_is_constant(self):
        rng = SeededRng(1)
        assert rng.lognormal_mean_cv(5.0, 0.0) == 5.0

    def test_lognormal_validation(self):
        rng = SeededRng(1)
        with pytest.raises(ValueError):
            rng.lognormal_mean_cv(-1.0, 0.5)
        with pytest.raises(ValueError):
            rng.lognormal_mean_cv(1.0, -0.5)

    def test_pareto_minimum_is_scale(self):
        rng = SeededRng(17)
        draws = [rng.pareto(2.0, 3.0) for _ in range(1000)]
        assert min(draws) >= 2.0

    def test_pareto_validation(self):
        with pytest.raises(ValueError):
            SeededRng(1).pareto(0, 1)

    def test_bernoulli_probability(self):
        rng = SeededRng(19)
        hits = sum(rng.bernoulli(0.3) for _ in range(20000))
        assert abs(hits / 20000 - 0.3) < 0.02

    def test_poisson_interarrivals_mean(self):
        rng = SeededRng(23)
        gen = rng.poisson_interarrivals(rate_per_ms=0.004)  # mean gap 250ms
        gaps = [next(gen) for _ in range(5000)]
        assert abs(sum(gaps) / len(gaps) - 250.0) < 12.0

    def test_poisson_validation(self):
        with pytest.raises(ValueError):
            next(SeededRng(1).poisson_interarrivals(0))

    def test_choice_covers_sequence(self):
        rng = SeededRng(29)
        options = ["x", "y", "z"]
        assert {rng.choice(options) for _ in range(100)} == set(options)


class TestRngProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31), names=st.lists(st.text(max_size=8), max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_stable(self, seed, names):
        assert derive_seed(seed, *names) == derive_seed(seed, *names)

    @given(
        mean=st.floats(min_value=0.1, max_value=100.0),
        cv=st.floats(min_value=0.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=100, deadline=None)
    def test_lognormal_always_positive(self, mean, cv, seed):
        rng = SeededRng(seed)
        assert rng.lognormal_mean_cv(mean, cv) > 0

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_uniform_in_range(self, seed):
        rng = SeededRng(seed)
        for _ in range(20):
            value = rng.uniform(3.0, 7.0)
            assert 3.0 <= value <= 7.0
