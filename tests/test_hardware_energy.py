"""Tests for the energy-per-frame accounting extension."""

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.hardware import energy_report
from repro.hardware.energy import EnergyReport
from repro.hardware.power import PowerReport
from repro.workloads import PRIVATE_CLOUD, Resolution


def run(spec, seed=1, duration=10000.0):
    config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=seed,
                          duration_ms=duration, warmup_ms=1500.0)
    return CloudSystem(config, make_regulator(spec)).run()


@pytest.fixture(scope="module")
def reports():
    return {spec: energy_report(run(spec)) for spec in ("NoReg", "ODRMax", "ODR60")}


class TestArithmetic:
    def test_total_energy_is_power_times_window(self, reports):
        report = reports["NoReg"]
        assert report.total_j == pytest.approx(report.power.total_w * report.window_s)

    def test_dynamic_energy_excludes_idle(self, reports):
        report = reports["NoReg"]
        expected = (report.power.total_w - report.power.idle_w) * report.window_s
        assert report.dynamic_j == pytest.approx(expected)

    def test_avg_above_marginal(self, reports):
        for report in reports.values():
            assert report.avg_j_per_delivered_frame > report.marginal_j_per_delivered_frame

    def test_zero_frames_rejected(self):
        report = EnergyReport(
            power=PowerReport(100, 90, 5, 3, 1, 1),
            window_s=10.0, delivered_frames=0, rendered_frames=0,
        )
        with pytest.raises(ValueError):
            _ = report.avg_j_per_delivered_frame
        with pytest.raises(ValueError):
            _ = report.marginal_j_per_delivered_frame
        with pytest.raises(ValueError):
            _ = report.waste_fraction


class TestEfficiencyClaims:
    def test_noreg_wastes_half_its_renders(self, reports):
        # InMind NoReg: ~190 rendered, ~89 delivered
        assert reports["NoReg"].waste_fraction > 0.4

    def test_odr_wastes_almost_nothing(self, reports):
        assert reports["ODRMax"].waste_fraction < 0.05
        assert reports["ODR60"].waste_fraction < 0.10

    def test_odr_cuts_marginal_energy_per_frame(self, reports):
        """The headline: delivered frames are cheaper without excessive
        rendering dragging discarded work along."""
        noreg = reports["NoReg"].marginal_j_per_delivered_frame
        odrmax = reports["ODRMax"].marginal_j_per_delivered_frame
        assert odrmax < 0.85 * noreg

    def test_avg_energy_nuance(self, reports):
        """Per *average* J/frame, heavy regulation can look worse than
        free-running (idle power spread over fewer frames) — the honest
        caveat that motivates consolidation."""
        assert (
            reports["ODR60"].avg_j_per_delivered_frame
            > reports["ODRMax"].avg_j_per_delivered_frame
        )
