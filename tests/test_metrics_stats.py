"""Tests for distribution summaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import BoxStats, mean, percentile, summarize
from repro.metrics.stats import stddev


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStddev:
    def test_constant_sequence(self):
        assert stddev([5, 5, 5]) == 0.0

    def test_known_value(self):
        assert stddev([2, 4]) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stddev([])


class TestPercentile:
    def test_median_of_odd(self):
        assert percentile([3, 1, 2], 50) == 2.0

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = list(range(100))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 99

    def test_singleton(self):
        assert percentile([7], 99) == 7

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_percentile_within_data_range(self, values):
        for pct in (0, 1, 25, 50, 75, 99, 100):
            p = percentile(values, pct)
            assert min(values) <= p <= max(values)

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_percentiles_monotone(self, values):
        points = [percentile(values, p) for p in (1, 25, 50, 75, 99)]
        assert points == sorted(points)


class TestSummarize:
    def test_fields(self):
        box = summarize(list(range(101)))
        assert isinstance(box, BoxStats)
        assert box.count == 101
        assert box.mean == 50.0
        assert box.p1 == 1.0
        assert box.p25 == 25.0
        assert box.p75 == 75.0
        assert box.p99 == 99.0

    def test_as_dict_roundtrip(self):
        box = summarize([1.0, 2.0, 3.0])
        d = box.as_dict()
        assert d["count"] == 3
        assert d["mean"] == 2.0

    def test_str_formatting(self):
        text = str(summarize([1.0, 2.0]))
        assert "mean=1.5" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])
