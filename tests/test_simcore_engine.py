"""Unit tests for the discrete-event engine."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro.simcore import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


@pytest.fixture
def env():
    return Environment()


class TestClockAndTimeout:
    def test_initial_time_is_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self, env):
        def proc():
            yield env.timeout(10.0)
            return env.now

        p = env.process(proc())
        assert env.run(p) == 10.0

    def test_timeout_value_passthrough(self, env):
        def proc():
            got = yield env.timeout(1.0, value="payload")
            return got

        assert env.run(env.process(proc())) == "payload"

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_run_until_number_advances_clock_exactly(self, env):
        env.run(until=42.5)
        assert env.now == 42.5

    def test_run_until_past_raises(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_zero_delay_events_fire_in_fifo_order(self, env):
        order = []

        def proc(tag):
            yield env.timeout(0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_ordered_by_schedule_time(self, env):
        order = []

        def late():
            yield env.timeout(5)
            order.append("late")

        def early():
            yield env.timeout(5)
            order.append("early")

        env.process(early())
        env.process(late())
        env.run()
        assert order == ["early", "late"]


class TestEvents:
    def test_succeed_delivers_value(self, env):
        ev = env.event()

        def proc():
            value = yield ev
            return value

        p = env.process(proc())
        ev.succeed(99)
        assert env.run(p) == 99

    def test_double_succeed_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_raises_inside_process(self, env):
        ev = env.event()

        def proc():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        p = env.process(proc())
        ev.fail(RuntimeError("boom"))
        assert env.run(p) == "caught boom"

    def test_fail_requires_exception(self, env):
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unhandled_failure_surfaces_from_run(self, env):
        ev = env.event()
        ev.fail(ValueError("lost"))
        with pytest.raises(ValueError, match="lost"):
            env.run()

    def test_value_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_yield_non_event_fails_process(self, env):
        def proc():
            yield 42

        p = env.process(proc())
        with pytest.raises(SimulationError):
            env.run(p)


class TestProcesses:
    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        assert env.run(env.process(proc())) == "done"

    def test_process_joins_process(self, env):
        def child():
            yield env.timeout(3)
            return "child-result"

        def parent():
            result = yield env.process(child())
            return (env.now, result)

        assert env.run(env.process(parent())) == (3.0, "child-result")

    def test_is_alive_lifecycle(self, env):
        def proc():
            yield env.timeout(1)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_interrupt_wakes_waiting_process(self, env):
        def victim():
            try:
                yield env.timeout(100)
                return "finished"
            except Interrupt as intr:
                return ("interrupted", intr.cause, env.now)

        def attacker(target):
            yield env.timeout(10)
            target.interrupt("wake-up")

        v = env.process(victim())
        env.process(attacker(v))
        assert env.run(v) == ("interrupted", "wake-up", 10.0)

    def test_interrupt_finished_process_raises(self, env):
        def proc():
            yield env.timeout(1)

        p = env.process(proc())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_continue(self, env):
        log = []

        def victim():
            while True:
                try:
                    yield env.timeout(100)
                    log.append("slept")
                    return
                except Interrupt:
                    log.append(f"intr@{env.now}")

        def attacker(target):
            yield env.timeout(5)
            target.interrupt()
            yield env.timeout(5)
            target.interrupt()

        v = env.process(victim())
        env.process(attacker(v))
        env.run()
        assert log == ["intr@5.0", "intr@10.0", "slept"]
        assert env.now == 110.0

    def test_exception_in_process_propagates(self, env):
        def proc():
            yield env.timeout(1)
            raise KeyError("inner")

        p = env.process(proc())
        with pytest.raises(KeyError):
            env.run(p)

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def proc():
            t1 = env.timeout(5, value="a")
            t2 = env.timeout(10, value="b")
            yield AllOf(env, [t1, t2])
            return env.now

        assert env.run(env.process(proc())) == 10.0

    def test_any_of_fires_on_first(self, env):
        def proc():
            t1 = env.timeout(5, value="fast")
            t2 = env.timeout(10, value="slow")
            result = yield AnyOf(env, [t1, t2])
            return (env.now, t1 in result)

        assert env.run(env.process(proc())) == (5.0, True)

    def test_all_of_helper(self, env):
        def proc():
            yield env.all_of([env.timeout(1), env.timeout(2)])
            return env.now

        assert env.run(env.process(proc())) == 2.0

    def test_any_of_helper(self, env):
        def proc():
            yield env.any_of([env.timeout(1), env.timeout(2)])
            return env.now

        assert env.run(env.process(proc())) == 1.0

    def test_condition_value_mapping(self, env):
        def proc():
            t1 = env.timeout(1, value="x")
            t2 = env.timeout(1, value="y")
            result = yield env.all_of([t1, t2])
            return (result[t1], result[t2])

        assert env.run(env.process(proc())) == ("x", "y")


class TestCallAt:
    def test_call_at_runs_function(self, env):
        seen = []
        env.call_at(7.0, lambda: seen.append(env.now))
        env.run()
        assert seen == [7.0]

    def test_call_at_past_raises(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env.call_at(5.0, lambda: None)


class TestRunSemantics:
    def test_run_until_event(self, env):
        ev = env.event()

        def proc():
            yield env.timeout(4)
            ev.succeed("sig")
            yield env.timeout(100)

        env.process(proc())
        assert env.run(until=ev) == "sig"
        assert env.now == 4.0

    def test_run_until_never_triggered_raises(self, env):
        ev = env.event()

        def proc():
            yield env.timeout(1)

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run(until=ev)

    def test_step_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")
