"""Run records (runmeta) and the append-only run ledger."""

import json

import pytest

from repro.experiments.config import ExperimentConfig, PlatformRes
from repro.obs import (
    RunLedger,
    Telemetry,
    build_record,
    config_fingerprint,
    load_record,
    metrics_digest,
    resolve_record,
    run_id_for,
)
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import PLATFORMS, Resolution

PAYLOAD = {
    "benchmark": "IM",
    "platform": "private",
    "resolution": "720p",
    "regulator": "ODR60",
    "duration_ms": 4000.0,
    "warmup_ms": 1000.0,
}


def run_once(seed=1, regulator="ODR60", probe=True):
    config = SystemConfig(
        benchmark="IM",
        platform=PLATFORMS["private"],
        resolution=Resolution("720p"),
        seed=seed,
        duration_ms=4000.0,
        warmup_ms=1000.0,
    )
    telemetry = Telemetry(engine_probe=probe)
    return CloudSystem(config, make_regulator(regulator), telemetry=telemetry).run()


@pytest.fixture(scope="module")
def record():
    return build_record(
        run_once(), PAYLOAD, label="IM/ODR60", wall_clock_s=0.25, git_rev="abc1234"
    )


class TestRunIdentity:
    def test_run_id_is_16_hex(self):
        run_id = run_id_for(PAYLOAD, 1)
        assert len(run_id) == 16
        int(run_id, 16)

    def test_run_id_stable_and_order_independent(self):
        shuffled = dict(reversed(list(PAYLOAD.items())))
        assert run_id_for(PAYLOAD, 1) == run_id_for(shuffled, 1)

    def test_run_id_depends_on_seed_and_config(self):
        assert run_id_for(PAYLOAD, 1) != run_id_for(PAYLOAD, 2)
        other = dict(PAYLOAD, regulator="NoReg")
        assert run_id_for(PAYLOAD, 1) != run_id_for(other, 1)

    def test_fingerprint_is_sha256_hex(self):
        assert len(config_fingerprint(PAYLOAD)) == 64


class TestBuildRecord:
    def test_identity_fields(self, record):
        assert record["run_id"] == run_id_for(PAYLOAD, 1)
        assert record["seed"] == 1
        assert record["config"] == PAYLOAD
        assert record["label"] == "IM/ODR60"
        assert record["git_rev"] == "abc1234"
        assert record["wall_clock_s"] == 0.25
        assert record["schema"] == 1

    def test_summary_metrics(self, record):
        metrics = record["metrics"]
        assert metrics["client_fps"] > 0
        assert metrics["render_fps"] >= metrics["client_fps"] - 1.0
        assert metrics["qos_target"] == 60.0
        assert metrics["mtp_mean_ms"] > 0
        assert metrics["frames_rendered"] > 0
        assert set(metrics["stage_utilization"]) >= {"render", "encode"}
        # telemetry was attached, so gate-delay stats made it in
        assert metrics["gate_delay"]["count"] > 0

    def test_distribution_series(self, record):
        series = record["series"]
        assert len(series["client_fps"]) >= 3
        assert len(series["fps_gap"]) == len(series["client_fps"])
        assert len(series["mtp_ms"]) > 0

    def test_engine_stats_with_probe(self, record):
        engine = record["engine"]
        assert engine["events_fired"] > 0
        assert engine["events_per_sec"] == engine["events_fired"] / 0.25

    def test_rng_stream_provenance(self, record):
        assert any(s.startswith("stage/") for s in record["rng_streams"])

    def test_record_round_trips_through_json(self, record):
        assert json.loads(json.dumps(record)) == record

    def test_same_seed_rerun_has_equal_metrics_digest(self, record):
        again = build_record(
            run_once(), PAYLOAD, label="IM/ODR60", wall_clock_s=9.9, git_rev="zzz"
        )
        # wall clock and provenance differ; the measured content must not
        assert metrics_digest(again) == metrics_digest(record)
        assert again["run_id"] == record["run_id"]


class TestRunLedger:
    def test_append_and_get(self, tmp_path, record):
        ledger = RunLedger(tmp_path / "runs")
        assert ledger.append(record) == record["run_id"]
        assert len(ledger) == 1
        assert ledger.get(record["run_id"][:6]) == record
        assert ledger.latest() == record

    def test_identical_rerun_dedupes(self, tmp_path, record):
        ledger = RunLedger(tmp_path / "runs")
        ledger.append(record)
        ledger.append(dict(record))
        assert len(ledger) == 1

    def test_changed_content_appends_new_version(self, tmp_path, record):
        ledger = RunLedger(tmp_path / "runs")
        ledger.append(record)
        changed = json.loads(json.dumps(record))
        changed["metrics"]["client_fps"] += 1.0
        ledger.append(changed)
        assert len(ledger) == 2
        # lookups return the latest version of the id
        assert ledger.get(record["run_id"]) == changed

    def test_record_without_id_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunLedger(tmp_path / "runs").append({"metrics": {}})

    def test_baseline_pin_and_read(self, tmp_path, record):
        ledger = RunLedger(tmp_path / "runs")
        assert ledger.baseline() is None
        path = ledger.set_baseline(record)
        assert ledger.baseline() == record
        assert load_record(path) == record


class TestResolveRecord:
    def test_all_reference_forms(self, tmp_path, record):
        ledger = RunLedger(tmp_path / "runs")
        ledger.append(record)
        older = json.loads(json.dumps(record))
        older["run_id"] = "feedfacefeedface"
        ledger.append(older)
        ledger.set_baseline(record)
        standalone = tmp_path / "one.json"
        standalone.write_text(json.dumps(record))

        assert resolve_record("latest", ledger) == older
        assert resolve_record("latest~1", ledger) == record
        assert resolve_record("baseline", ledger) == record
        assert resolve_record(str(standalone), ledger) == record
        assert resolve_record("feedface", ledger) == older

    def test_unresolvable_reference_raises(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        for ref in ("latest", "latest~2", "baseline", "nope123"):
            with pytest.raises(ValueError):
                resolve_record(ref, ledger)


class TestRunnerIntegration:
    def test_runner_appends_one_record_per_executed_cell(self, tmp_path):
        from repro.experiments.runner import Runner

        runner = Runner(
            seed=1, duration_ms=3000.0, warmup_ms=500.0,
            ledger=str(tmp_path / "runs"),
        )
        combo = PlatformRes(PLATFORMS["private"], Resolution("720p"))
        config = ExperimentConfig(combo, "ODR60")
        runner.run_cell("IM", config)
        assert len(runner.ledger) == 1
        record = runner.ledger.latest()
        assert record["label"] == "IM/" + config.label
        assert record["config"]["benchmark"] == "IM"
        assert record["config"]["regulator"] == "ODR60"
        assert record["wall_clock_s"] > 0
        assert record["engine"]["events_per_sec"] > 0
        # memoized recall must not execute (or append) again
        runner.run_cell("IM", config)
        assert len(runner.ledger) == 1

    def test_runner_without_ledger_stays_ledger_free(self):
        from repro.experiments.runner import Runner

        assert Runner(seed=1).ledger is None
