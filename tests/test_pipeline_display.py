"""Tests for the client display presentation models."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CloudSystem, SystemConfig, make_regulator
from repro.pipeline.display import (
    ImmediateDisplay,
    Presentation,
    VrrDisplay,
    VsyncDisplay,
)
from repro.workloads import PRIVATE_CLOUD, Resolution


def feed(model, times):
    return [model.present(t) for t in times]


class TestImmediateDisplay:
    def test_zero_added_latency(self):
        model = ImmediateDisplay(refresh_hz=60)
        feed(model, [10.0, 30.0, 55.0])
        assert model.stats.mean_added_latency_ms == 0.0
        assert model.stats.presented == 3

    def test_tearing_when_faster_than_scanout(self):
        model = ImmediateDisplay(refresh_hz=60)  # 16.6ms scan-out
        feed(model, [0.0, 5.0, 10.0, 40.0])
        # frames at 5 and 10 land mid-scan-out of their predecessors
        assert model.stats.torn == 2

    def test_no_tearing_below_refresh_rate(self):
        model = ImmediateDisplay(refresh_hz=60)
        feed(model, [0.0, 20.0, 40.0, 60.0])
        assert model.stats.torn == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ImmediateDisplay(refresh_hz=0)


class TestVsyncDisplay:
    def test_presents_at_next_vblank(self):
        model = VsyncDisplay(refresh_hz=60)
        [p] = feed(model, [5.0])
        assert p.display_time == pytest.approx(1000 / 60)

    def test_never_tears(self):
        model = VsyncDisplay(refresh_hz=60)
        results = feed(model, [float(t) for t in range(0, 200, 3)])
        assert all(not p.torn for p in results)

    def test_drops_second_frame_in_same_interval(self):
        model = VsyncDisplay(refresh_hz=60)
        a, b = feed(model, [2.0, 9.0])
        assert not a.dropped
        assert b.dropped
        assert model.stats.dropped == 1

    def test_added_latency_bounded_by_period(self):
        model = VsyncDisplay(refresh_hz=60)
        feed(model, [3.0, 20.0, 39.0, 55.0])
        assert 0 < model.stats.mean_added_latency_ms <= 1000 / 60

    def test_steady_sixty_fps_stream_keeps_all_frames(self):
        model = VsyncDisplay(refresh_hz=60)
        period = 1000.0 / 60.0
        results = feed(model, [i * period + 2.0 for i in range(100)])
        assert all(not p.dropped for p in results)

    @given(st.lists(st.floats(min_value=0, max_value=5000), min_size=2, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_display_times_strictly_increase(self, times):
        model = VsyncDisplay(refresh_hz=60)
        shown = [
            p.display_time for p in feed(model, sorted(times)) if not p.dropped
        ]
        assert all(b > a for a, b in zip(shown, shown[1:]))


class TestVrrDisplay:
    def test_validation(self):
        with pytest.raises(ValueError):
            VrrDisplay(min_hz=100, max_hz=60)

    def test_immediate_within_window(self):
        model = VrrDisplay(min_hz=48, max_hz=144)
        a, b = feed(model, [0.0, 10.0])  # 100 FPS pace: inside window
        assert a.display_time == 0.0
        assert b.display_time == 10.0
        assert model.stats.added_latency_total_ms == 0.0

    def test_min_frame_distance_enforced(self):
        model = VrrDisplay(min_hz=48, max_hz=144)  # min distance ~6.94ms
        a, b = feed(model, [0.0, 2.0])
        assert b.display_time == pytest.approx(1000 / 144)

    def test_low_framerate_compensation_repeats(self):
        model = VrrDisplay(min_hz=48, max_hz=144)  # max hold ~20.8ms
        feed(model, [0.0, 100.0])
        assert model.stats.repeats >= 4

    def test_vrr_beats_vsync_for_varying_stream(self):
        """The paper's future-work hypothesis: VRR panels "reduce lag by
        allowing frames to arrive at high but varying rates" — a fixed
        60 Hz vsync display fed the same stream drops a third of the
        frames and adds most of a refresh period of latency."""
        import random  # simlint: disable=R1 -- test shuffles input order to prove order-independence

        rng = random.Random(3)
        t, times = 0.0, []
        for _ in range(400):
            t += rng.uniform(8.0, 14.0)  # 70-125 FPS varying arrival
            times.append(t)
        vrr = VrrDisplay(min_hz=48, max_hz=144)
        vsync = VsyncDisplay(refresh_hz=60)
        feed(vrr, times)
        feed(vsync, times)
        assert vrr.stats.dropped == 0
        assert vsync.stats.dropped > 0.2 * len(times)
        assert vrr.stats.mean_added_latency_ms < vsync.stats.mean_added_latency_ms
        assert vrr.stats.torn == 0


class TestStatsValidation:
    def test_empty_stats_raise(self):
        model = VsyncDisplay()
        with pytest.raises(ValueError):
            _ = model.stats.mean_added_latency_ms
        with pytest.raises(ValueError):
            _ = model.stats.tear_fraction
        with pytest.raises(ValueError):
            model.stats.pacing_jitter_ms()

    def test_presentation_dropped_property(self):
        assert Presentation(display_time=None).dropped
        assert not Presentation(display_time=1.0).dropped


class TestClientIntegration:
    def run(self, display_model, spec="ODR60"):
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                              duration_ms=8000, warmup_ms=1500)
        return CloudSystem(config, make_regulator(spec), display_model=display_model).run()

    def test_vsync_client_end_to_end(self):
        model = VsyncDisplay(refresh_hz=60)
        result = self.run(model)
        assert model.stats.presented > 300
        # display FPS tracks decode FPS minus drops
        display_fps = result.stage_mean_fps("display")
        assert display_fps <= result.client_fps + 0.5
        assert display_fps > 50

    def test_dropped_frame_inputs_still_answered(self):
        model = VsyncDisplay(refresh_hz=60)
        result = self.run(model, spec="NoReg")  # ~90 FPS into 60Hz: many drops
        assert model.stats.dropped > 100
        assert result.tracker.open_count <= 3  # no input lost

    def test_vsync_raises_mtp_vs_immediate(self):
        vsync_result = self.run(VsyncDisplay(refresh_hz=60))
        plain_result = self.run(None)
        assert vsync_result.mean_mtp_ms() > plain_result.mean_mtp_ms()

    def test_displayed_frames_have_photon_timestamps(self):
        model = VsyncDisplay(refresh_hz=60)
        result = self.run(model)
        period = 1000.0 / 60.0
        for frame in result.system.client.displayed[:100]:
            ratio = frame.t_displayed / period
            assert abs(ratio - round(ratio)) < 1e-6  # on the vblank grid
