"""Tests for the tools built on the sweep event log: the live
dashboard, the whole-sweep Chrome trace, and the cost-attribution
report.

All three are pure consumers — they are fed synthetic or real
:class:`~repro.obs.sweep.SweepEvent` streams and never touch the
executor, so these tests exercise rendering/aggregation logic in
isolation (plus one end-to-end pass over a real sweep's log).
"""

import io
import json

import pytest

from repro.experiments import CellSpec, ParallelExecutor, Plan, SerialExecutor
from repro.obs import sweep as sweepbus
from repro.obs.cost import render_cost, sweep_cost
from repro.obs.dashboard import SweepDashboard, follow_events
from repro.obs.sweep import SweepEvent, SweepEventBus, read_events
from repro.obs.sweeptrace import sweep_chrome_trace, write_sweep_trace

DURATION_MS = 2000.0
WARMUP_MS = 500.0


def spec(benchmark="IM", regulator="ODR60", seed=1) -> CellSpec:
    return CellSpec(
        benchmark=benchmark,
        platform="private",
        resolution="720p",
        regulator=regulator,
        seed=seed,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


def make_event(kind, seq, epoch_s, **fields) -> SweepEvent:
    return SweepEvent(
        sweep_id="synthetic", seq=seq, kind=kind, t_s=epoch_s, epoch_s=epoch_s,
        fields=fields,
    )


def synthetic_sweep():
    """A hand-built two-worker sweep: 2 executed, 1 cached, 1 failed."""
    resources_a = {
        "pid": 101, "started_epoch_s": 10.5, "wall_s": 2.0,
        "cpu_user_s": 1.5, "cpu_sys_s": 0.1, "max_rss_kb": 50000,
        "events_fired": 4000, "events_per_sec": 2000.0,
    }
    resources_b = {
        "pid": 102, "started_epoch_s": 10.6, "wall_s": 1.0,
        "cpu_user_s": 0.8, "cpu_sys_s": 0.05, "max_rss_kb": 40000,
        "events_fired": 1000, "events_per_sec": 1000.0,
    }
    return [
        make_event("sweep_begin", 0, 10.0, cells=4, executor="parallel", workers=2),
        make_event("cell_cached", 1, 10.05, run_id="cc", label="IM/cached"),
        make_event("cell_scheduled", 2, 10.1, run_id="aa", label="IM/a"),
        make_event("cell_scheduled", 3, 10.1, run_id="bb", label="RE/b"),
        make_event("cell_scheduled", 4, 10.1, run_id="dd", label="STK/d"),
        make_event("pool_opened", 5, 10.2, workers=2, batch=3),
        make_event("worker_spawned", 6, 10.4, pid=101),
        make_event("worker_spawned", 7, 10.45, pid=102),
        make_event("cell_started", 8, 10.5, run_id="aa", label="IM/a", pid=101),
        make_event("cell_started", 9, 10.6, run_id="bb", label="RE/b", pid=102),
        make_event("cell_started", 10, 11.7, run_id="dd", label="STK/d", pid=102),
        make_event(
            "cell_finished", 11, 12.6, run_id="aa", label="IM/a", wall_s=2.0,
            faults=True, fault_class="spike", resources=resources_a,
        ),
        make_event(
            "cell_finished", 12, 12.7, run_id="bb", label="RE/b", wall_s=1.0,
            resources=resources_b,
        ),
        make_event(
            "cell_failed", 13, 12.8, run_id="dd", label="STK/d",
            error="ValueError: boom", attempts=2,
        ),
        make_event(
            "sweep_end", 14, 13.0, executed=2, cached=1, failed=1, wall_s=3.0
        ),
    ]


class TestSweepTrace:
    def test_spans_lanes_and_colors(self):
        trace = sweep_chrome_trace(synthetic_sweep())
        events = trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"
        # Lane metadata: control, cached, and one lane per worker pid.
        names = {
            (e["tid"], e["args"]["name"])
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert (0, "sweep control") in names
        assert (1, "cached cells") in names
        assert any(value == "worker pid 101" for _, value in names)
        assert any(value == "worker pid 102" for _, value in names)
        spans = [e for e in events if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        # Executed cell: positioned by worker-measured start, not
        # parent harvest order.
        cell = by_name["RE/b"]
        assert cell["cat"] == "cell"
        assert cell["ts"] == pytest.approx((10.6 - 10.0) * 1e6)
        assert cell["dur"] == pytest.approx(1.0 * 1e6)
        assert cell["args"]["cpu_user_s"] == 0.8
        assert cell["args"]["max_rss_kb"] == 40000
        # Fault-plan cell: distinct category and reserved color.
        fault = by_name["IM/a"]
        assert fault["cat"] == "fault" and fault["cname"] == "terrible"
        assert fault["args"]["fault_class"] == "spike"
        # Cached cell: grey instant on the cached lane.
        cached = [e for e in events if e["ph"] == "i" and e["cat"] == "cached"]
        assert len(cached) == 1
        assert cached[0]["tid"] == 1 and cached[0]["cname"] == "grey"
        # Failed cell: doomed-attempt span plus control-lane instant.
        doomed = by_name["cell_failed:STK/d"]
        assert doomed["cat"] == "failure"
        assert doomed["dur"] == pytest.approx((12.8 - 11.7) * 1e6)
        fails = [e for e in events if e["ph"] == "i" and e["cat"] == "failure"]
        assert fails[0]["args"]["error"] == "ValueError: boom"
        # The throughput counter accumulates completions.
        counters = [e for e in events if e["ph"] == "C"]
        assert [c["args"]["done"] for c in counters] == [1, 2]

    def test_empty_events_trace_is_valid(self):
        trace = sweep_chrome_trace([])
        assert all(e["ph"] == "M" for e in trace["traceEvents"])

    def test_write_sweep_trace_roundtrip(self, tmp_path):
        out = tmp_path / "sweep.trace.json"
        count = write_sweep_trace(synthetic_sweep(), out)
        loaded = json.loads(out.read_text(encoding="utf-8"))
        assert len(loaded["traceEvents"]) == count
        assert count > 10

    def test_real_sweep_end_to_end(self, tmp_path):
        path = tmp_path / "events.jsonl"
        plan = Plan([spec("IM"), spec("STK")])
        with SweepEventBus(path=path) as bus:
            ParallelExecutor(workers=2).run(plan, bus=bus)
        trace = sweep_chrome_trace(read_events(path))
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 2
        for span in spans:
            assert span["dur"] > 0
            assert span["args"]["max_rss_kb"] > 0


class TestCost:
    def test_breakdown_from_synthetic_sweep(self):
        report = sweep_cost(synthetic_sweep())
        assert report["sweep_id"] == "synthetic"
        assert report["cells"] == 4 and report["workers"] == 2
        assert report["executed"] == 2 and report["cached"] == 1
        assert report["failed"] == 1
        assert report["pools_opened"] == 1
        assert report["cache_hit_ratio"] == pytest.approx(1 / 3)
        # Warmup: pool opened at 10.2, first cell started at 10.5.
        assert report["pool_warmup_s"] == pytest.approx(0.3)
        # Lanes: pid 101 busy 2.0s, pid 102 busy 1.0s.
        assert report["busy_s_by_pid"] == {"101": 2.0, "102": 1.0}
        assert report["busy_s_total"] == pytest.approx(3.0)
        assert report["cell_skew_s"] == pytest.approx(1.0)
        # Serialization: 3.0 wall - 0.3 warmup - 2.0 busiest lane.
        assert report["serialization_s"] == pytest.approx(0.7)
        assert report["parallel_efficiency"] == pytest.approx(3.0 / (2 * 3.0))
        # Rows sort slowest-first.
        assert [row["run_id"] for row in report["cell_rows"]] == ["aa", "bb"]

    def test_render_cost_mentions_every_budget_term(self):
        text = render_cost(sweep_cost(synthetic_sweep()), top=1)
        assert "pool_warmup" in text
        assert "cell_skew" in text
        assert "serialization" in text
        assert "parallel_efficiency" in text
        assert "cache_hit=33%" in text
        assert "slowest cells (top 1 of 2)" in text
        assert "IM/a" in text and "RE/b" not in text  # top=1 truncates

    def test_empty_events(self):
        report = sweep_cost([])
        assert report["cells"] == 0 and report["cell_rows"] == []
        assert report["serialization_s"] is None
        assert "0 cell(s)" in render_cost(report)


class TestDashboard:
    def feed(self, events, **kwargs):
        stream = io.StringIO()
        dash = SweepDashboard(stream=stream, ansi=kwargs.pop("ansi", False), **kwargs)
        for event in events:
            dash.handle(event)
        return dash, stream.getvalue()

    def test_counters_and_plain_lines(self):
        dash, output = self.feed(synthetic_sweep())
        assert dash.total_cells == 4 and dash.workers == 2
        assert dash.finished == 2 and dash.cached == 1 and dash.failed == 1
        assert dash.ended
        lines = output.strip().splitlines()
        assert lines[0] == "sweep begin: 4 cell(s) via parallel x2"
        assert any(line.endswith("done IM/a (2.00s)") for line in lines)
        assert "[4/4] FAILED STK/d" in lines
        assert lines[-1].startswith("sweep end: executed=2 cached=1 failed=1")

    def test_lanes_track_in_flight_cells_by_run_id(self):
        events = synthetic_sweep()
        # Stop right after both workers picked up their first cells.
        dash, _ = self.feed(events[:10])
        assert set(dash.active) == {101, 102}
        assert dash.active[101][0] == "aa"
        # One cell finishing clears exactly its own lane.
        dash.handle(events[10])  # pid 102 moves on to "dd"
        dash.handle(events[11])  # "aa" finishes
        assert 101 not in dash.active
        assert dash.active[102][0] == "dd"

    def test_render_snapshot_mid_sweep(self):
        events = synthetic_sweep()
        dash, _ = self.feed(events[:11], now=lambda: 11.0)
        text = dash.render()
        assert text.startswith("sweep: 1/4 cells  [parallel x2]")
        assert "pid     102: STK/d" in text

    def test_eta_uses_mean_wall_over_workers(self):
        events = synthetic_sweep()
        dash, _ = self.feed(events[:13])  # both executed cells done
        # 1 of 4 cells remains; mean executed wall (2.0+1.0)/2 over 2 workers.
        assert dash.eta_s() == pytest.approx(1 * 1.5 / 2)
        dash.handle(events[13])
        dash.handle(events[14])
        assert dash.eta_s() is None  # sweep over

    def test_throughput(self):
        events = synthetic_sweep()
        dash, _ = self.feed(events[:13], now=lambda: 13.0)
        # 2 cells finished over 3 epoch-seconds since sweep_begin.
        assert dash.throughput_cells_per_min() == pytest.approx(2 / 3.0 * 60)

    def test_new_sweep_begin_resets_state(self):
        events = synthetic_sweep()
        dash, _ = self.feed(events)
        assert dash.finished == 2
        dash.handle(make_event("sweep_begin", 0, 20.0, cells=1,
                               executor="serial", workers=1))
        assert dash.finished == 0 and dash.failed == 0
        assert not dash.ended and dash.active == {} and dash.failures == []

    def test_failure_tail_is_bounded(self):
        dash = SweepDashboard(stream=io.StringIO(), ansi=False)
        for i in range(12):
            dash._push_failure(f"f{i}")
        assert len(dash.failures) == 5
        assert dash.failures[-1] == "f11"

    def test_ansi_mode_repaints_in_place(self):
        stream = io.StringIO()
        dash = SweepDashboard(stream=stream, ansi=True)
        for event in synthetic_sweep()[:2]:
            dash.handle(event)
        output = stream.getvalue()
        assert "\x1b[" in output  # cursor-up + clear control sequences
        assert dash._painted_lines == dash.render().count("\n") + 1

    def test_pool_broken_clears_lanes_and_notes_it(self):
        events = synthetic_sweep()
        dash, _ = self.feed(events[:10] + [make_event("pool_broken", 10, 11.0)])
        assert dash.active == {}
        assert any("pool broke" in f for f in dash.failures)


class TestFollowEvents:
    def test_follow_replays_to_sweep_end(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            bus.emit(sweepbus.SWEEP_BEGIN, cells=0, executor="serial", workers=1)
            bus.emit(sweepbus.SWEEP_END, executed=0, cached=0, failed=0,
                     wall_s=0.0)
        dash = SweepDashboard(stream=io.StringIO(), ansi=False)
        consumed = follow_events(str(path), dash, poll_s=0.01, timeout_s=2.0)
        assert consumed == 2
        assert dash.ended

    def test_follow_times_out_on_missing_file(self, tmp_path):
        dash = SweepDashboard(stream=io.StringIO(), ansi=False)
        consumed = follow_events(
            str(tmp_path / "never.jsonl"), dash, poll_s=0.01, timeout_s=0.05
        )
        assert consumed == 0

    def test_follow_skips_junk_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            bus.emit(sweepbus.SWEEP_BEGIN, cells=0, executor="serial", workers=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json\n[1,2]\n")
        with SweepEventBus(path=path) as bus:
            bus.emit(sweepbus.SWEEP_END, executed=0, cached=0, failed=0,
                     wall_s=0.0)
        dash = SweepDashboard(stream=io.StringIO(), ansi=False)
        consumed = follow_events(str(path), dash, poll_s=0.01, timeout_s=2.0)
        assert consumed == 2

    def test_follow_live_serial_sweep(self, tmp_path):
        """Follow the log a real serial sweep writes, post hoc."""
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            SerialExecutor().run(Plan([spec("IM")]), bus=bus)
        stream = io.StringIO()
        dash = SweepDashboard(stream=stream, ansi=False)
        consumed = follow_events(str(path), dash, poll_s=0.01, timeout_s=2.0)
        assert consumed == 5  # begin, scheduled, started, finished, end
        assert dash.ended and dash.finished == 1
        assert "sweep end:" in stream.getvalue()
