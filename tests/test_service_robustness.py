"""Tests for the gateway's self-protection and typed failure surface.

Framing edges (oversized line, invalid UTF-8, half-closed socket
mid-frame, unknown op) must come back as *structured* error frames with
taxonomy codes while the server keeps serving everyone else; admission
control must shed load explicitly (BUSY + retry-after + a ``load_shed``
event); a broken worker pool must degrade to serial in-process
execution, not a failed job; and the client must absorb the
server-startup race and resume watch streams from the last seen seq.
"""

import asyncio
import contextlib
import socket
import threading
import time

import pytest

from repro.experiments import CellSpec, Plan, ResultStore, SerialExecutor
from repro.experiments.pool import PoolUnavailableError, WorkerPool
from repro.obs import sweep as sweepbus
from repro.obs.ledger import RunLedger
from repro.obs.runmeta import metrics_digest
from repro.service import (
    JobLost,
    JobSpec,
    ProtocolError,
    RetryPolicy,
    ServerBusy,
    ServiceClient,
    ServiceError,
    ServiceGateway,
    SweepScheduler,
    TransportError,
    error_for_code,
)
from repro.service.protocol import MAX_FRAME_BYTES, decode_frame, encode_frame, plan_payload

DURATION_MS = 2000.0
WARMUP_MS = 500.0


def spec(benchmark="IM", regulator="ODR60", seed=1) -> CellSpec:
    return CellSpec(
        benchmark=benchmark,
        platform="private",
        resolution="720p",
        regulator=regulator,
        seed=seed,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


class GatewayHarness:
    """One scheduler + gateway served from a background thread."""

    def __init__(self, tmp_path, workers=2, **scheduler_kwargs):
        self.ledger = RunLedger(tmp_path / "ledger")
        self.store = ResultStore(tmp_path / "ledger" / "cells")
        self.scheduler = SweepScheduler(
            self.store, ledger=self.ledger, workers=workers, **scheduler_kwargs
        )
        self.gateway = ServiceGateway(self.scheduler, port=0)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        asyncio.run(self._main())

    async def _main(self):
        await self.gateway.start()
        self._ready.set()
        await self.gateway.serve_until_shutdown()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "gateway did not come up"
        return self

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(port=self.gateway.port, **kwargs)

    def __exit__(self, *exc):
        try:
            self.client().shutdown()
            self._thread.join(timeout=30)
        finally:
            self.scheduler.close()


class TestErrorTaxonomy:
    def test_retryability_policy(self):
        assert TransportError("x").retryable
        assert ServerBusy("x").retryable
        assert not ProtocolError("x").retryable
        assert not JobLost("x").retryable
        assert not ServiceError("x").retryable

    def test_everything_is_still_a_runtime_error(self):
        # The pre-taxonomy contract: except RuntimeError catches all.
        for exc in (TransportError("x"), ProtocolError("x"), ServerBusy("x"), JobLost("x")):
            assert isinstance(exc, ServiceError)
            assert isinstance(exc, RuntimeError)

    def test_error_for_code_round_trips_the_taxonomy(self):
        for cls in (TransportError, ProtocolError, JobLost):
            rebuilt = error_for_code(cls.code, "m")
            assert type(rebuilt) is cls
        busy = error_for_code("busy", "m", retry_after_s=2.5)
        assert isinstance(busy, ServerBusy) and busy.retry_after_s == 2.5

    def test_unknown_code_degrades_to_base(self):
        exc = error_for_code("from-the-future", "m")
        assert type(exc) is ServiceError and not exc.retryable
        assert type(error_for_code(None, "m")) is ServiceError


class TestRetryPolicy:
    def test_delays_are_pure_functions_of_seed_and_attempt(self):
        a = RetryPolicy(seed=42)
        b = RetryPolicy(seed=42)
        assert [a.delay_for(i) for i in range(6)] == [
            b.delay_for(i) for i in range(6)
        ]
        c = RetryPolicy(seed=43)
        assert [a.delay_for(i) for i in range(6)] != [
            c.delay_for(i) for i in range(6)
        ]

    def test_delays_grow_and_stay_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, seed=7)
        for attempt in range(10):
            delay = policy.delay_for(attempt)
            ceiling = min(1.0, 0.1 * 2**attempt)
            assert 0.5 * ceiling <= delay <= ceiling

    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=2.0, max_delay_s=1.0)


class TestFramingEdges:
    def _dial(self, harness):
        return socket.create_connection(
            ("127.0.0.1", harness.gateway.port), timeout=30
        )

    def test_invalid_utf8_gets_structured_error_and_connection_survives(
        self, tmp_path
    ):
        with GatewayHarness(tmp_path) as harness:
            with self._dial(harness) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"\xff\xfe not utf8 \xff\n")
                stream.write(encode_frame({"op": "ping"}))
                stream.flush()
                bad = decode_frame(stream.readline())
                pong = decode_frame(stream.readline())
            assert not bad["ok"] and bad["code"] == "protocol"
            assert pong["ok"]

    def test_unknown_op_is_a_protocol_error(self, tmp_path):
        with GatewayHarness(tmp_path) as harness:
            with self._dial(harness) as sock:
                stream = sock.makefile("rwb")
                stream.write(encode_frame({"op": "frobnicate"}))
                stream.flush()
                frame = decode_frame(stream.readline())
            assert not frame["ok"] and frame["code"] == "protocol"

    def test_oversized_line_answered_then_dropped_server_keeps_serving(
        self, tmp_path
    ):
        with GatewayHarness(tmp_path) as harness:
            with self._dial(harness) as sock:
                # The server may answer-and-close before the line ends.
                with contextlib.suppress(BrokenPipeError, ConnectionResetError):
                    sock.sendall(b"x" * (MAX_FRAME_BYTES + 65536))
                    sock.sendall(b"\n")
                stream = sock.makefile("rb")
                frame = decode_frame(stream.readline())
                assert not frame["ok"] and frame["code"] == "protocol"
                assert "exceeds" in frame["error"]
                # The stream cannot be re-framed: server closes it.
                assert stream.readline() == b""
            # Other connections never noticed.
            assert harness.client().ping()["ok"]

    def test_half_closed_socket_mid_frame(self, tmp_path):
        with GatewayHarness(tmp_path) as harness:
            with self._dial(harness) as sock:
                sock.sendall(b'{"op": "ping"')  # no newline: mid-frame
                sock.shutdown(socket.SHUT_WR)
                stream = sock.makefile("rb")
                frame = decode_frame(stream.readline())
            assert not frame["ok"] and frame["code"] == "protocol"
            assert "half-closed" in frame["error"]
            assert harness.client().ping()["ok"]


class TestAdmissionControl:
    def test_submit_beyond_bound_is_shed_with_retry_after(
        self, tmp_path, monkeypatch
    ):
        stuck = spec("STK", "NoReg")
        monkeypatch.setenv(
            "ODR_EXECUTOR_SIMULATED_STALL", f"{stuck.run_id}:3.0"
        )
        with GatewayHarness(tmp_path, max_queued_jobs=1) as harness:
            client = harness.client(retry=RetryPolicy(attempts=1))
            job = client.submit(plan_payload(Plan([stuck])))
            with pytest.raises(ServerBusy) as excinfo:
                client.submit(plan_payload(Plan([spec("IM")])))
            assert excinfo.value.retry_after_s is not None
            shed = [
                e
                for e in harness.scheduler.server_bus.events
                if e.kind == sweepbus.LOAD_SHED
            ]
            assert shed and "max_queued_jobs" in shed[0].fields["reason"]
            # Once the running job drains, admission reopens.
            assert client.wait(job["job_id"])["state"] == "done"
            retried = client.submit(plan_payload(Plan([spec("IM")])))
            assert client.wait(retried["job_id"])["state"] == "done"

    def test_duplicate_token_joins_existing_job(self, tmp_path):
        with GatewayHarness(tmp_path) as harness:
            client = harness.client()
            payload = plan_payload(Plan([spec("IM")]))
            first = client.submit(payload, token="tok-fixed")
            second = client.submit(payload, token="tok-fixed")
            assert first["job_id"] == second["job_id"]
            retries = [
                e
                for e in harness.scheduler.server_bus.events
                if e.kind == sweepbus.CLIENT_RETRY
            ]
            assert retries and retries[0].fields["op"] == "submit"
            assert retries[0].fields["job_id"] == first["job_id"]
            # Distinct tokens still fork distinct jobs.
            third = client.submit(payload, token="tok-other")
            assert third["job_id"] != first["job_id"]


class TestDegradedSerial:
    def test_broken_pool_falls_back_to_serial_in_process(self, tmp_path):
        pool = WorkerPool(1, events=False)
        pool.close()  # every submit now raises PoolUnavailableError
        with pytest.raises(PoolUnavailableError):
            pool.submit(print)
        ledger = RunLedger(tmp_path / "ledger")
        store = ResultStore(tmp_path / "ledger" / "cells")
        scheduler = SweepScheduler(store, ledger=ledger, pool=pool)
        try:
            cells = [spec("IM"), spec("STK", "NoReg")]
            job = scheduler.submit(
                JobSpec(kind="cells", params={"cells": [c.to_dict() for c in cells]})
            )
            for _ in range(1200):
                if job.state.terminal:
                    break
                time.sleep(0.05)
            assert job.state.value == "done"
            assert job.report is not None and not job.report.failures
            kinds = [e.kind for e in job.bus.events]
            assert sweepbus.DEGRADED_SERIAL in kinds
            assert kinds.count(sweepbus.CELL_FINISHED) == 2

            # Degraded execution is bit-identical to an offline run.
            offline = SerialExecutor().run(
                Plan(cells),
                store=ResultStore(),
                ledger=RunLedger(tmp_path / "offline"),
            )
            by_run = {r["run_id"]: r for r in ledger.records()}
            assert sorted(by_run) == sorted(c.run_id for c in cells)
            for outcome in offline.outcomes:
                assert metrics_digest(by_run[outcome.spec.run_id]) == (
                    metrics_digest(outcome.ledger_record)
                )
        finally:
            scheduler.close()


def _start_gateway_late(gateway, ready, delay_s):
    """Bind ``gateway`` only after ``delay_s`` — the startup race."""

    async def _main():
        await gateway.start()
        ready.set()
        await gateway.serve_until_shutdown()

    time.sleep(delay_s)
    asyncio.run(_main())


class TestConnectWait:
    def _free_port(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            return probe.getsockname()[1]

    def test_client_waits_for_late_server(self, tmp_path):
        port = self._free_port()
        ledger = RunLedger(tmp_path / "ledger")
        store = ResultStore(tmp_path / "ledger" / "cells")
        scheduler = SweepScheduler(store, ledger=ledger, workers=1)
        gateway = ServiceGateway(scheduler, port=port)
        ready = threading.Event()
        thread = threading.Thread(
            target=_start_gateway_late, args=(gateway, ready, 0.5), daemon=True
        )
        thread.start()
        try:
            client = ServiceClient(port=port, connect_wait_s=15.0)
            assert client.ping()["ok"]  # dialed while nothing listened
        finally:
            ready.wait(timeout=30)
            ServiceClient(port=port).shutdown()
            thread.join(timeout=30)
            scheduler.close()

    def test_connect_wait_is_bounded(self, tmp_path):
        port = self._free_port()
        client = ServiceClient(
            port=port, connect_wait_s=0.2, retry=RetryPolicy(attempts=1)
        )
        with pytest.raises(TransportError):
            client.ping()


class TestWatchResume:
    def test_since_seq_resumes_without_gaps_or_duplicates(self, tmp_path):
        with GatewayHarness(tmp_path) as harness:
            client = harness.client()
            job = client.submit(
                plan_payload(Plan([spec("IM"), spec("STK", "NoReg")]))
            )
            assert client.wait(job["job_id"])["state"] == "done"
            events = list(client.watch(job["job_id"]))
            assert [e.kind for e in events][0] == sweepbus.SWEEP_BEGIN
            assert [e.kind for e in events][-1] == sweepbus.SWEEP_END

            # Resume from the middle: exactly the tail, once each.
            mid = events[len(events) // 2].seq
            resumed = list(client.watch(job["job_id"], since_seq=mid))
            assert [e.seq for e in resumed] == [
                e.seq for e in events if e.seq > mid
            ]

            # Resume past the end: the stream closes cleanly, no hang.
            assert list(
                client.watch(job["job_id"], since_seq=events[-1].seq)
            ) == []

    def test_watch_unknown_job_is_job_lost(self, tmp_path):
        with GatewayHarness(tmp_path) as harness:
            client = harness.client(retry=RetryPolicy(attempts=1))
            with pytest.raises(JobLost):
                list(client.watch("job-nonexistent"))
