"""Unit tests for the recovery analytics on synthetic event series."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro.metrics.recovery import RecoveryStats, compute_recovery


def steady(rate_fps, start, end):
    """Perfectly periodic event times at ``rate_fps`` over [start, end)."""
    period = 1000.0 / rate_fps
    times = []
    t = start
    while t < end:
        times.append(t)
        t += period
    return times


T_START, T_END = 1000.0, 20000.0
FAULT = (8000.0, 8500.0)


def series_with_gap(resume_at, rate=60.0):
    """60 FPS everywhere except a silent gap [fault_start, resume_at)."""
    return steady(rate, T_START, FAULT[0]) + steady(rate, resume_at, T_END)


class TestComputeRecovery:
    def test_instant_recovery(self):
        decode = series_with_gap(FAULT[1])
        stats = compute_recovery(
            decode, decode, [], FAULT[0], FAULT[1], T_START, T_END
        )
        assert stats.pre_fault_fps == pytest.approx(60.0, abs=1.0)
        assert stats.recovered
        assert stats.time_to_recover_ms == 0.0
        # 500 ms of silence at 60 FPS = 30 frames missing.
        assert stats.frames_lost == pytest.approx(30.0, abs=1.5)

    def test_delayed_recovery(self):
        decode = series_with_gap(FAULT[1] + 2000.0)
        stats = compute_recovery(
            decode, decode, [], FAULT[0], FAULT[1], T_START, T_END
        )
        assert stats.recovered
        assert stats.time_to_recover_ms == pytest.approx(2000.0, abs=250.0)

    def test_never_recovers(self):
        # Delivery stops at the fault and never resumes.
        decode = steady(60.0, T_START, FAULT[0])
        stats = compute_recovery(
            decode, decode, [], FAULT[0], FAULT[1], T_START, T_END
        )
        assert not stats.recovered
        assert stats.time_to_recover_ms is None
        assert isinstance(stats, RecoveryStats)

    def test_degraded_rate_below_band_never_recovers(self):
        # Resumes instantly, but at half rate: below the 0.9 band.
        decode = steady(60.0, T_START, FAULT[0]) + steady(30.0, FAULT[1], T_END)
        stats = compute_recovery(
            decode, decode, [], FAULT[0], FAULT[1], T_START, T_END
        )
        assert not stats.recovered

    def test_worst_gap_measures_excess_rendering(self):
        # Render keeps running at 60 through the fault; decode gaps out.
        render = steady(60.0, T_START, T_END)
        decode = series_with_gap(FAULT[1] + 1000.0)
        stats = compute_recovery(
            decode, render, [], FAULT[0], FAULT[1], T_START, T_END
        )
        assert stats.worst_fps_gap == pytest.approx(60.0, abs=4.0)

    def test_mtp_tail_covers_fault_and_recovery_only(self):
        decode = series_with_gap(FAULT[1])
        samples = [
            (7000.0, 10.0),    # pre-fault: excluded
            (8100.0, 400.0),   # during the fault: included
            (8600.0, 80.0),    # during recovery hold: included
            (19000.0, 999.0),  # long after: excluded
        ]
        stats = compute_recovery(
            decode, decode, samples, FAULT[0], FAULT[1], T_START, T_END
        )
        assert stats.recovery_mtp_p99_ms == pytest.approx(400.0, rel=0.05)

    def test_pre_fault_fallback_when_fault_is_immediate(self):
        decode = steady(50.0, T_START, T_END)
        stats = compute_recovery(
            decode, decode, [], T_START, T_START + 100.0, T_START, T_END
        )
        assert stats.pre_fault_fps == pytest.approx(50.0, abs=1.0)

    def test_validation(self):
        decode = steady(60.0, T_START, T_END)
        with pytest.raises(ValueError):
            compute_recovery(decode, decode, [], 5000.0, 5000.0, T_START, T_END)
        with pytest.raises(ValueError):
            compute_recovery(
                decode, decode, [], *FAULT, T_START, T_END, band_frac=0.0
            )
        with pytest.raises(ValueError):
            compute_recovery(
                decode, decode, [], *FAULT, T_START, T_END, hold_windows=0
            )
