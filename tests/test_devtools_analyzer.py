"""The whole-program determinism analyzer, tested in both directions.

Positive direction: today's tree analyzes clean (the analyzer gates CI,
so this test *is* the gate's local twin).  Negative direction: the
contract and purity rules must actually fire — each negative test
analyzes the real tree with a source *overlay* that reintroduces a
historical bug class (dropping a CellSpec hash input, adding an
unregistered FaultSpec, calling ``time.time()`` in engine-reachable
code) and asserts the named finding appears.  Suppression machinery
(waivers, baseline, SARIF, cache) is exercised on the same driver.
"""

import json
import time  # simlint: disable=R2 -- imported to time the analyzer itself below

import pytest

from repro.devtools.analyzer import (
    RULES,
    AnalyzerReport,
    Finding,
    analyze,
    explain,
    findings_from_sarif,
    to_sarif,
)
from repro.devtools.analyzer.baseline import (
    apply_baseline,
    baseline_entry,
    load_baseline,
    write_baseline_payload,
)

SRC = ["src/repro"]

PLAN_PATH = "src/repro/experiments/plan.py"
ENGINE_PATH = "src/repro/simcore/engine.py"
EXECUTOR_PATH = "src/repro/experiments/executor.py"


def _read(path):
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


@pytest.fixture(scope="module")
def cache_path(tmp_path_factory):
    """One shared facts cache: overlay tests re-extract only one file."""
    return str(tmp_path_factory.mktemp("analyzer") / "facts-cache.json")


def _analyze(overlay=None, cache_path=None, **kwargs):
    return analyze(SRC, overlay=overlay, cache_path=cache_path, **kwargs)


def _rules(report):
    return {f.rule for f in report.findings}


# -- positive: HEAD is clean ----------------------------------------------


def test_head_tree_analyzes_clean(cache_path):
    report = _analyze(cache_path=cache_path)
    assert report.ok, "\n".join(f.render() for f in report.findings)
    assert report.files_scanned > 100
    # The dogfooded waivers (executor chaos hooks) are alive, not stale.
    assert sum(report.waived.values()) >= 2


def test_tests_tree_analyzes_clean(cache_path):
    report = analyze(["src/repro", "tests"], cache_path=cache_path)
    assert report.ok, "\n".join(f.render() for f in report.findings)


# -- C1: cache-key drift (the PR-4 horizon bug as a lint rule) ------------


def test_deleting_hash_input_field_fires_c1(cache_path):
    source = _read(PLAN_PATH).replace(
        '            "duration_ms": self.duration_ms,\n', ""
    )
    assert '"duration_ms"' not in source.split("def config_payload")[1].split(
        "def "
    )[0]
    report = _analyze(overlay={PLAN_PATH: source}, cache_path=cache_path)
    c1 = [f for f in report.findings if f.rule == "C1"]
    assert len(c1) == 1
    assert c1[0].detail == "field:duration_ms"
    assert c1[0].path == PLAN_PATH
    assert "collide" in c1[0].message


def test_removing_hash_exempt_marker_fires_c1(cache_path):
    source = _read(PLAN_PATH).replace(
        "  # analyzer: hash-exempt -- catalog label; the fault specs "
        "themselves are hashed",
        "",
    )
    report = _analyze(overlay={PLAN_PATH: source}, cache_path=cache_path)
    assert any(
        f.rule == "C1" and f.detail == "field:fault_class" for f in report.findings
    )


# -- C2/C3: fault registry drift ------------------------------------------


def test_unregistered_faultspec_fires_c2(cache_path):
    rogue = (
        "from dataclasses import dataclass\n"
        "from typing import ClassVar\n"
        "from repro.faults.spec import FaultSpec\n"
        "\n\n"
        "@dataclass(frozen=True)\n"
        "class RogueFault(FaultSpec):\n"
        '    kind: ClassVar[str] = "rogue"\n'
    )
    report = _analyze(
        overlay={"src/repro/faults/rogue.py": rogue}, cache_path=cache_path
    )
    c2 = [f for f in report.findings if f.rule == "C2"]
    assert any(f.detail == "class:RogueFault:unregistered" for f in c2)
    # An unregistered kind is by definition also uncataloged.
    assert any(
        f.rule == "C3" and "rogue" in f.detail for f in report.findings
    ) is False  # C3 only covers *registered* kinds; C2 is the finding here


def test_faultspec_without_kind_fires_c2(cache_path):
    rogue = (
        "from dataclasses import dataclass\n"
        "from repro.faults.spec import FaultSpec\n"
        "\n\n"
        "@dataclass(frozen=True)\n"
        "class KindlessFault(FaultSpec):\n"
        "    pass\n"
    )
    report = _analyze(
        overlay={"src/repro/faults/rogue.py": rogue}, cache_path=cache_path
    )
    assert any(
        f.rule == "C2" and f.detail == "class:KindlessFault:no-kind"
        for f in report.findings
    )


# -- P1: wall clock inside the sim-pure boundary --------------------------


def test_clock_read_in_engine_fires_p1_with_chain(cache_path):
    source = _read(ENGINE_PATH) + (
        "\n\nimport time\n\n\n"
        "def _smuggled_timestamp() -> float:\n"
        "    return time.time()\n"
    )
    report = _analyze(overlay={ENGINE_PATH: source}, cache_path=cache_path)
    p1 = [f for f in report.findings if f.rule == "P1"]
    assert len(p1) == 1
    assert p1[0].path == ENGINE_PATH
    assert "time.time()" in p1[0].message
    assert p1[0].chain  # evidence: the call chain from the root
    assert p1[0].chain[-1].endswith(":_smuggled_timestamp")


def test_clock_read_behind_helper_is_still_found(cache_path):
    # Two calls deep: engine -> helper -> clock.  Per-file linting with
    # an allowlist could never see this; the call graph does.
    source = _read(EXECUTOR_PATH).replace(
        "def _chaos_hooks(spec: CellSpec) -> None:",
        "def _hidden_clock() -> float:\n"
        "    import time\n"
        "    return time.perf_counter()\n"
        "\n\n"
        "def _chaos_hooks(spec: CellSpec) -> None:\n"
        "    _hidden_clock()",
        1,
    )
    report = _analyze(overlay={EXECUTOR_PATH: source}, cache_path=cache_path)
    p1 = [f for f in report.findings if f.rule == "P1"]
    assert len(p1) == 1
    chain = p1[0].chain
    assert any(h.endswith(":execute_cell") for h in chain)
    assert chain[-1].endswith(":_hidden_clock")


def test_clock_read_outside_boundary_is_not_flagged(cache_path):
    overlay = {
        "src/repro/obs/offline_tool.py": (
            "import time\n\n\n"
            "def wall_now() -> float:\n"
            "    return time.time()\n"
        )
    }
    report = _analyze(overlay=overlay, cache_path=cache_path)
    assert "P1" not in _rules(report)


# -- C4: sweep event vocabulary drift -------------------------------------


def test_emitting_unknown_event_kind_fires_c4(cache_path):
    overlay = {
        "src/repro/obs/rogue_emitter.py": (
            "from repro.obs.sweep import SweepEventBus\n\n\n"
            "def chatter(bus: SweepEventBus) -> None:\n"
            '    bus.emit("mystery_kind", cell="x")\n'
        )
    }
    report = _analyze(overlay=overlay, cache_path=cache_path)
    c4 = [f for f in report.findings if f.rule == "C4"]
    assert any(f.detail == "kind:mystery_kind:unschema'd" for f in c4)


# -- F1/F2: fork safety ---------------------------------------------------


def test_lambda_submitted_to_pool_fires_f1(cache_path):
    overlay = {
        "src/repro/experiments/rogue_pool.py": (
            "from concurrent.futures import ProcessPoolExecutor\n\n\n"
            "def run() -> None:\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(lambda: 1)\n"
        )
    }
    report = _analyze(overlay=overlay, cache_path=cache_path)
    assert any(
        f.rule == "F1" and f.detail == "submit:lambda" for f in report.findings
    )


def test_smuggled_lock_fires_f2(cache_path):
    overlay = {
        "src/repro/experiments/rogue_pool.py": (
            "import threading\n"
            "from concurrent.futures import ProcessPoolExecutor\n\n\n"
            "def work(lock) -> None:\n"
            "    pass\n\n\n"
            "def run() -> None:\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(work, threading.Lock())\n"
        )
    }
    report = _analyze(overlay=overlay, cache_path=cache_path)
    assert any(
        f.rule == "F2" and "threading.Lock" in f.detail for f in report.findings
    )


# -- waivers --------------------------------------------------------------


def test_live_waiver_suppresses_and_counts(cache_path):
    source = _read(ENGINE_PATH) + (
        "\n\nimport time\n\n\n"
        "def _sanctioned_peek() -> float:\n"
        "    return time.time()  # analyzer: allow=P1 -- test fixture, proves waivers work\n"
    )
    report = _analyze(overlay={ENGINE_PATH: source}, cache_path=cache_path)
    assert "P1" not in _rules(report)
    assert report.waived.get("P1", 0) >= 1
    assert "W1" not in _rules(report)


def test_stale_waiver_fails_the_run(cache_path):
    source = _read(ENGINE_PATH) + (
        "\n\nHARMLESS = 1  # analyzer: allow=P1 -- nothing impure here anymore\n"
    )
    report = _analyze(overlay={ENGINE_PATH: source}, cache_path=cache_path)
    w1 = [f for f in report.findings if f.rule == "W1"]
    assert any(f.detail == "waiver:stale:P1" for f in w1)
    assert not report.ok


def test_waiver_without_rationale_fails_the_run(cache_path):
    source = _read(ENGINE_PATH) + (
        "\n\nimport time\n\n\n"
        "def _peek() -> float:\n"
        "    return time.time()  # analyzer: allow=P1\n"
    )
    report = _analyze(overlay={ENGINE_PATH: source}, cache_path=cache_path)
    assert any(
        f.rule == "W1" and f.detail == "waiver:no-rationale" for f in report.findings
    )
    # The rationale-less waiver still suppresses nothing: P1 survives.
    assert "P1" in _rules(report)


def test_waiver_example_in_docstring_is_not_a_waiver():
    report = analyze(
        [],
        overlay={
            "src/repro/example_doc.py": (
                '"""Docs quoting `# analyzer: allow=P1 -- like so`."""\n'
                "VALUE = 1\n"
            )
        },
    )
    assert "W1" not in _rules(report)


# -- baseline -------------------------------------------------------------


def _one_finding_report(cache_path):
    source = _read(PLAN_PATH).replace(
        '            "duration_ms": self.duration_ms,\n', ""
    )
    return _analyze(overlay={PLAN_PATH: source}, cache_path=cache_path)


def test_baseline_adopts_and_silences(cache_path):
    report = _one_finding_report(cache_path)
    baseline = write_baseline_payload(list(report.findings))
    source = _read(PLAN_PATH).replace(
        '            "duration_ms": self.duration_ms,\n', ""
    )
    silenced = _analyze(
        overlay={PLAN_PATH: source},
        cache_path=cache_path,
        baseline_text=baseline,
    )
    assert silenced.ok
    assert silenced.baselined.get("C1") == 1
    assert silenced.stale_baseline == []


def test_baseline_fingerprints_survive_line_renumbering(cache_path):
    report = _one_finding_report(cache_path)
    baseline = write_baseline_payload(list(report.findings))
    # Shift every line in the file down: the finding moves, the
    # fingerprint (no line numbers) still matches.
    source = "# a new leading comment line\n" + _read(PLAN_PATH).replace(
        '            "duration_ms": self.duration_ms,\n', ""
    )
    silenced = _analyze(
        overlay={PLAN_PATH: source},
        cache_path=cache_path,
        baseline_text=baseline,
    )
    assert silenced.ok
    assert silenced.baselined.get("C1") == 1


def test_baseline_entry_for_deleted_file_is_stale_not_fatal(cache_path):
    baseline = json.dumps(
        {
            "version": 1,
            "entries": [
                {
                    "rule": "P1",
                    "path": "src/repro/deleted/gone.py",
                    "key": "clock:time.time()",
                }
            ],
        }
    )
    report = _analyze(cache_path=cache_path, baseline_text=baseline)
    assert report.ok  # stale entries never fail the run
    assert report.stale_baseline == [
        {"rule": "P1", "path": "src/repro/deleted/gone.py", "key": "clock:time.time()"}
    ]


def test_malformed_baseline_fails_loudly():
    with pytest.raises(ValueError):
        load_baseline('{"entries": "not-a-list"}')
    with pytest.raises(ValueError):
        load_baseline('{"entries": [{"rule": "P1"}]}')


def test_apply_baseline_splits_matched_and_stale():
    finding = Finding(
        rule="P1", path="a.py", line=3, col=1, message="m", detail="clock:x"
    )
    entries = [
        baseline_entry(finding),
        {"rule": "P2", "path": "b.py", "key": "entropy:y"},
    ]
    kept, baselined, stale = apply_baseline([finding], entries)
    assert kept == []
    assert baselined == {"P1": 1}
    assert stale == [{"rule": "P2", "path": "b.py", "key": "entropy:y"}]


# -- SARIF ----------------------------------------------------------------


def test_sarif_round_trip_preserves_findings():
    findings = [
        Finding(
            rule="P1",
            path="src/repro/simcore/engine.py",
            line=10,
            col=5,
            message="wall-clock read",
            chain=("repro.simcore.engine:step", "repro.simcore.engine:_bad"),
            detail="clock:time.time()",
        ),
        Finding(rule="C1", path=PLAN_PATH, line=74, col=1, message="drift"),
    ]
    text = to_sarif(findings)
    payload = json.loads(text)
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    assert run["tool"]["driver"]["name"] == "odr-analyze"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert set(RULES) <= rule_ids
    assert findings_from_sarif(text) == findings


def test_sarif_of_clean_run_has_no_results(cache_path):
    report = _analyze(cache_path=cache_path)
    payload = json.loads(to_sarif(list(report.findings)))
    assert payload["runs"][0]["results"] == []


# -- cache ----------------------------------------------------------------


def test_warm_cache_hits_every_file_and_is_fast(tmp_path):
    path = str(tmp_path / "cache.json")
    cold = _analyze(cache_path=path)
    assert cold.cache_misses == cold.files_scanned
    started = time.perf_counter()  # simlint: disable=R2 -- timing the analyzer, not sim state
    warm = _analyze(cache_path=path)
    elapsed = time.perf_counter() - started  # simlint: disable=R2 -- timing the analyzer, not sim state
    assert warm.cache_hits == warm.files_scanned
    assert warm.cache_misses == 0
    assert warm.findings == cold.findings
    assert elapsed < 5.0, f"warm analyze took {elapsed:.2f}s"


def test_cache_invalidates_on_content_change(tmp_path):
    path = str(tmp_path / "cache.json")
    _analyze(cache_path=path)
    touched = _read(ENGINE_PATH) + "\n# trailing comment\n"
    second = _analyze(overlay={ENGINE_PATH: touched}, cache_path=path)
    assert second.cache_misses == 1
    assert second.cache_hits == second.files_scanned - 1


def test_corrupt_cache_file_runs_cold(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{ not json", encoding="utf-8")
    report = _analyze(cache_path=str(path))
    assert report.ok
    assert report.cache_hits == 0


# -- rule catalogue -------------------------------------------------------


def test_every_rule_has_an_explanation():
    for rule in RULES:
        text = explain(rule)
        assert text is not None and rule in text and len(text) > 80


def test_unknown_rule_explains_to_none():
    assert explain("Z9") is None


def test_report_json_is_sorted_and_complete(cache_path):
    report = _analyze(cache_path=cache_path)
    payload = json.loads(report.to_json())
    assert payload["files_scanned"] == report.files_scanned
    assert payload["findings"] == []
    assert isinstance(report, AnalyzerReport)
