"""Edge-case tests for simcore paths not covered by the basic suites."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro.simcore import (
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)
from repro.simcore.engine import ConditionValue


@pytest.fixture
def env():
    return Environment()


class TestConditionEdges:
    def test_any_of_empty_fires_immediately(self, env):
        def proc():
            yield AnyOf(env, [])
            return env.now

        assert env.run(env.process(proc())) == 0.0

    def test_all_of_empty_fires_immediately(self, env):
        def proc():
            yield env.all_of([])
            return env.now

        assert env.run(env.process(proc())) == 0.0

    def test_condition_with_already_processed_event(self, env):
        ev = env.timeout(1, value="early")

        def proc():
            yield env.timeout(5)  # let ev process first
            result = yield env.all_of([ev])
            return result[ev]

        assert env.run(env.process(proc())) == "early"

    def test_condition_fails_when_member_fails(self, env):
        bad = env.event()

        def proc():
            try:
                yield env.all_of([env.timeout(10), bad])
            except RuntimeError as exc:
                return f"caught {exc}"

        p = env.process(proc())
        bad.fail(RuntimeError("member"))
        assert env.run(p) == "caught member"

    def test_condition_value_mapping_api(self, env):
        t1 = env.timeout(1, value="a")
        value = ConditionValue([t1])
        env.run(until=2)
        assert t1 in value
        assert value[t1] == "a"
        assert value.todict() == {t1: "a"}

    def test_condition_value_untriggered_keyerror(self, env):
        pending = env.event()
        value = ConditionValue([pending])
        with pytest.raises(KeyError):
            _ = value[pending]

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AnyOf(env, [env.timeout(1), other.timeout(1)])


class TestEventEdges:
    def test_trigger_copies_state(self, env):
        source = env.event()
        mirror = env.event()
        source.callbacks.append(mirror.trigger)
        source.succeed("payload")
        env.run()
        assert mirror.value == "payload"

    def test_trigger_on_already_triggered_is_noop(self, env):
        mirror = env.event()
        mirror.succeed("first")
        source = env.event()
        source.succeed("second")
        mirror.trigger(source)  # must not raise or overwrite
        assert mirror.value == "first"

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().ok

    def test_repr_states(self, env):
        ev = env.event()
        assert "pending" in repr(ev)
        ev.succeed()
        assert "triggered" in repr(ev)


class TestProcessEdges:
    def test_interrupt_cause_none(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                return intr.cause

        def attacker(target):
            yield env.timeout(1)
            target.interrupt()

        v = env.process(victim())
        env.process(attacker(v))
        assert env.run(v) is None

    def test_interrupt_before_first_yield_rejected(self, env):
        def proc():
            yield env.timeout(1)

        p = env.process(proc())
        # the process has not started executing yet (no target)
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_process_name_defaults(self, env):
        def my_loop():
            yield env.timeout(1)

        p = env.process(my_loop())
        assert p.name == "my_loop"
        q = env.process(my_loop(), name="custom")
        assert q.name == "custom"

    def test_process_joining_failed_process_sees_exception(self, env):
        def child():
            yield env.timeout(1)
            raise ValueError("child failed")

        def parent():
            try:
                yield env.process(child())
            except ValueError as exc:
                return f"caught {exc}"

        assert env.run(env.process(parent())) == "caught child failed"

    def test_immediate_return_process(self, env):
        def proc():
            return "done"
            yield  # pragma: no cover

        assert env.run(env.process(proc())) == "done"


class TestRunEdges:
    def test_run_until_event_already_processed(self, env):
        ev = env.timeout(1, value="v")
        env.run(until=5)
        assert env.run(until=ev) == "v"

    def test_run_until_failing_event_raises(self, env):
        ev = env.event()

        def proc():
            yield env.timeout(1)
            ev.fail(KeyError("boom"))

        env.process(proc())
        with pytest.raises(KeyError):
            env.run(until=ev)

    def test_clock_does_not_regress_on_empty_queue(self, env):
        env.run(until=100)
        env.run(until=200)
        assert env.now == 200
