"""Tests for stage-time and frame-size models."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simcore import SeededRng
from repro.workloads import FrameSizeModel, StageTimeModel


class TestStageTimeModelValidation:
    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            StageTimeModel(mean_ms=-1)

    def test_bad_spike_prob_rejected(self):
        with pytest.raises(ValueError):
            StageTimeModel(mean_ms=10, spike_prob=1.5)

    def test_alpha_at_most_one_rejected(self):
        with pytest.raises(ValueError):
            StageTimeModel(mean_ms=10, spike_prob=0.1, spike_scale_ms=5, spike_alpha=1.0)

    def test_bad_rho_rejected(self):
        with pytest.raises(ValueError):
            StageTimeModel(mean_ms=10, rho=1.0)

    def test_spike_budget_exceeding_mean_rejected(self):
        with pytest.raises(ValueError):
            StageTimeModel(mean_ms=1.0, spike_prob=0.5, spike_scale_ms=10, spike_alpha=2.0)


class TestStageTimeModelAnalytics:
    def test_spike_mean_formula(self):
        model = StageTimeModel(mean_ms=10, spike_prob=0.1, spike_scale_ms=6, spike_alpha=2.0)
        assert model.spike_mean_ms == pytest.approx(12.0)
        assert model.body_mean_ms == pytest.approx(10 - 1.2)

    def test_no_spikes_body_is_mean(self):
        model = StageTimeModel(mean_ms=8.0)
        assert model.spike_mean_ms == 0.0
        assert model.body_mean_ms == 8.0

    def test_scaled_preserves_shape(self):
        model = StageTimeModel(mean_ms=10, cv=0.3, spike_prob=0.1, spike_scale_ms=5)
        doubled = model.scaled(2.0)
        assert doubled.mean_ms == 20
        assert doubled.spike_scale_ms == 10
        assert doubled.cv == model.cv
        assert doubled.spike_prob == model.spike_prob

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            StageTimeModel(mean_ms=10).scaled(0)


class TestStageTimeSampler:
    def test_long_run_mean_matches_target(self):
        model = StageTimeModel(
            mean_ms=10.0, cv=0.35, spike_prob=0.1, spike_scale_ms=5.0, spike_alpha=2.2
        )
        sampler = model.sampler(SeededRng(42))
        draws = sampler.draw_many(60000)
        assert sum(draws) / len(draws) == pytest.approx(10.0, rel=0.05)

    def test_floor_respected(self):
        model = StageTimeModel(mean_ms=0.2, cv=1.0, floor_ms=0.1)
        sampler = model.sampler(SeededRng(7))
        assert all(d >= 0.1 for d in sampler.draw_many(2000))

    def test_deterministic_given_seed(self):
        model = StageTimeModel(mean_ms=5.0, cv=0.3)
        a = model.sampler(SeededRng(3)).draw_many(50)
        b = model.sampler(SeededRng(3)).draw_many(50)
        assert a == b

    def test_autocorrelation_positive(self):
        model = StageTimeModel(mean_ms=10.0, cv=0.4, rho=0.8)
        draws = model.sampler(SeededRng(11)).draw_many(20000)
        mu = sum(draws) / len(draws)
        num = sum((a - mu) * (b - mu) for a, b in zip(draws, draws[1:]))
        den = sum((d - mu) ** 2 for d in draws)
        lag1 = num / den
        assert lag1 > 0.5

    def test_zero_rho_uncorrelated(self):
        model = StageTimeModel(mean_ms=10.0, cv=0.4, rho=0.0)
        draws = model.sampler(SeededRng(13)).draw_many(20000)
        mu = sum(draws) / len(draws)
        num = sum((a - mu) * (b - mu) for a, b in zip(draws, draws[1:]))
        den = sum((d - mu) ** 2 for d in draws)
        assert abs(num / den) < 0.05

    def test_spike_tail_present(self):
        model = StageTimeModel(
            mean_ms=6.0, cv=0.3, spike_prob=0.12, spike_scale_ms=8.0, spike_alpha=1.8
        )
        draws = model.sampler(SeededRng(17)).draw_many(20000)
        above = sum(1 for d in draws if d > 16.6) / len(draws)
        # the paper's Fig. 4a: roughly 10-20% of frames well above 16.6 ms
        assert 0.05 < above < 0.25

    @given(
        mean=st.floats(min_value=1.0, max_value=50.0),
        cv=st.floats(min_value=0.05, max_value=0.8),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_draws_always_positive(self, mean, cv, seed):
        model = StageTimeModel(mean_ms=mean, cv=cv)
        for d in model.sampler(SeededRng(seed)).draw_many(100):
            assert d > 0 and math.isfinite(d)


class TestFrameSizeModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameSizeModel(mean_kb=0)
        with pytest.raises(ValueError):
            FrameSizeModel(mean_kb=10, gop_length=0)
        with pytest.raises(ValueError):
            FrameSizeModel(mean_kb=10, i_frame_ratio=0.5)

    def test_p_frame_mean_weighting(self):
        model = FrameSizeModel(mean_kb=60, gop_length=30, i_frame_ratio=4.0)
        # 1 I-frame (4p) + 29 P-frames per GoP must average to 60
        p = model.p_frame_mean_kb
        assert (4 * p + 29 * p) / 30 == pytest.approx(60)

    def test_long_run_mean(self):
        model = FrameSizeModel(mean_kb=60, cv=0.25)
        sampler = model.sampler(SeededRng(5))
        sizes = [sampler.next() for _ in range(30000)]
        mean_kb = sum(sizes) / len(sizes) / 1024
        assert mean_kb == pytest.approx(60, rel=0.05)

    def test_i_frames_larger_on_average(self):
        model = FrameSizeModel(mean_kb=60, gop_length=10, i_frame_ratio=4.0, cv=0.1)
        sampler = model.sampler(SeededRng(9))
        sizes = [sampler.next() for _ in range(1000)]
        i_frames = sizes[::10]
        p_frames = [s for i, s in enumerate(sizes) if i % 10 != 0]
        assert sum(i_frames) / len(i_frames) > 2.5 * sum(p_frames) / len(p_frames)

    def test_sizes_positive_ints(self):
        sampler = FrameSizeModel(mean_kb=1, cv=0.5).sampler(SeededRng(3))
        for _ in range(100):
            size = sampler.next()
            assert isinstance(size, int) and size >= 1

    def test_scaled(self):
        model = FrameSizeModel(mean_kb=60)
        assert model.scaled(2.1).mean_kb == pytest.approx(126)
        with pytest.raises(ValueError):
            model.scaled(-1)
