"""Behavioural tests for fault application: every taxonomy entry, end to end.

Each fault class must (a) visibly disturb the pipeline it targets,
(b) leave the run a pure function of ``(config, seed)``, and (c) show
up on the observability surface — telemetry windows, trace events,
regulator hooks.
"""

import json

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.devtools.determinism import verify_determinism
from repro.faults import (
    BandwidthCollapse,
    ClientPause,
    FaultPlan,
    GpuPreemption,
    NetworkOutage,
    PacketLossBurst,
    StageStall,
    StallStorm,
    build_fault_plan,
)
from repro.obs import Telemetry, write_chrome_trace, write_jsonl
from repro.pipeline.frames import DropReason
from repro.workloads import PRIVATE_CLOUD, Resolution

DURATION_MS = 8000.0
WARMUP_MS = 1000.0


def run_with(plan, spec="NoReg", seed=1, telemetry=None):
    config = SystemConfig(
        "IM", PRIVATE_CLOUD, Resolution.R720P, seed=seed,
        duration_ms=DURATION_MS, warmup_ms=WARMUP_MS,
    )
    system = CloudSystem(
        config, make_regulator(spec), telemetry=telemetry, fault_plan=plan
    )
    return system, system.run()


def delivered_in(result, start, end):
    return len([t for t in result.counter.times("decode") if start <= t < end])


class TestOutageAndLoss:
    def test_outage_blackholes_the_window(self):
        plan = FaultPlan([NetworkOutage(4000.0, 800.0)])
        system, result = run_with(plan)
        # Nothing new serializes during the outage; at most one frame
        # already in flight lands just after the window opens.
        assert delivered_in(result, 4050.0, 4800.0) == 0
        # Delivery resumes after release.
        assert delivered_in(result, 4800.0, 5800.0) > 30

    def test_packet_loss_drops_and_carries_inputs(self):
        plan = FaultPlan([PacketLossBurst(3000.0, 2000.0, loss_prob=0.5)])
        system, result = run_with(plan)
        assert system.faults is not None
        assert system.faults.frames_lost > 10
        lost = result.dropped_frames(DropReason.NETWORK_LOSS)
        assert len(lost) == system.faults.frames_lost
        # Input-to-photon accounting survives the loss: inputs issued
        # during the burst still close (on a later delivered frame).
        during = [
            s for s in result.tracker.samples if 3000.0 <= s.issued_at < 5000.0
        ]
        assert during, "inputs issued during the burst must still close"

    def test_loss_is_seeded_not_wallclock(self):
        plan = FaultPlan([PacketLossBurst(3000.0, 2000.0, loss_prob=0.5)])
        first, _ = run_with(plan, seed=7)
        second, _ = run_with(plan, seed=7)
        assert first.faults.frames_lost == second.faults.frames_lost


class TestThroughputFaults:
    def test_bandwidth_collapse_slows_delivery(self):
        plan = FaultPlan([BandwidthCollapse(3500.0, 2000.0, factor=0.1)])
        _, clean = run_with(FaultPlan())
        _, collapsed = run_with(plan)
        window = (3500.0, 5500.0)
        assert delivered_in(collapsed, *window) < delivered_in(clean, *window)

    def test_gpu_preemption_slows_render_in_slices(self):
        plan = FaultPlan(
            [GpuPreemption(3000.0, 400.0, slowdown=6.0, period_ms=1200.0, count=3)]
        )
        _, clean = run_with(FaultPlan())
        _, preempted = run_with(plan)
        in_slices = lambda r: sum(
            len([t for t in r.counter.times("render") if s <= t < e])
            for s, e in ((3000.0, 3400.0), (4200.0, 4600.0), (5400.0, 5800.0))
        )
        assert in_slices(preempted) < in_slices(clean)

    def test_client_pause_freezes_decode(self):
        plan = FaultPlan([ClientPause(4000.0, 500.0)])
        _, result = run_with(plan)
        # The pause inflates one decode: a visible delivery gap >= the
        # pause length starts within a frame or two of the pause point.
        times = result.counter.times("decode")
        gaps = [
            (a, b - a) for a, b in zip(times, times[1:]) if 3900.0 <= a < 4700.0
        ]
        assert max(gap for _, gap in gaps) >= 450.0

    def test_stall_storm_is_deterministic_per_seed(self):
        plan = FaultPlan(
            [StallStorm("render", 3000.0, 6000.0, rate_per_s=5.0, mean_stall_ms=30.0)]
        )
        first, _ = run_with(plan, seed=3)
        second, _ = run_with(plan, seed=3)
        other, _ = run_with(plan, seed=4)
        fired = lambda s: s.faults.injectors["render"].fired
        assert fired(first) == fired(second)
        assert fired(first), "a 5/s storm over 3 s must fire at least once"
        assert fired(first) != fired(other)


class TestObservabilitySurface:
    @pytest.fixture()
    def faulted_telemetry(self):
        telemetry = Telemetry()
        plan = FaultPlan(
            [
                StageStall("encode", 4000.0, 300.0),
                NetworkOutage(5500.0, 400.0),
            ]
        )
        run_with(plan, telemetry=telemetry)
        return telemetry

    def test_fault_windows_recorded(self, faulted_telemetry):
        kinds = {w["kind"] for w in faulted_telemetry.fault_windows}
        assert kinds == {"stage_stall", "net_outage"}
        snapshot = faulted_telemetry.snapshot()
        total = sum(
            value
            for key, value in snapshot.counters.items()
            if key.name == "fault_windows_total"
        )
        assert total == 2

    def test_chrome_trace_has_fault_lane(self, faulted_telemetry, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(faulted_telemetry, str(path))
        events = json.loads(path.read_text())["traceEvents"]
        faults = [e for e in events if e.get("cat") == "fault"]
        assert {e["name"] for e in faults} == {"fault:encode_stall", "fault:net_outage"}
        assert all(e["ph"] == "X" and e["dur"] > 0 for e in faults)

    def test_jsonl_has_fault_windows(self, faulted_telemetry, tmp_path):
        path = tmp_path / "dump.jsonl"
        write_jsonl(faulted_telemetry, str(path))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        windows = [r for r in records if r["type"] == "fault_window"]
        assert len(windows) == 2

    def test_regulator_hooks_fire_in_order(self):
        calls = []
        regulator = make_regulator("ODR60")
        regulator.on_fault_begin = lambda kind, at: calls.append(("begin", kind, at))
        regulator.on_fault_end = lambda kind, at: calls.append(("end", kind, at))
        config = SystemConfig(
            "IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
            duration_ms=DURATION_MS, warmup_ms=WARMUP_MS,
        )
        plan = FaultPlan([NetworkOutage(4000.0, 500.0)])
        CloudSystem(config, regulator, fault_plan=plan).run()
        assert calls == [
            ("begin", "net_outage", 4000.0),
            ("end", "net_outage", 4500.0),
        ]


class TestDeterminismWithFaults:
    @pytest.mark.parametrize("fault_class", ["packet_loss", "stall_storm"])
    def test_double_run_fingerprints_match(self, fault_class):
        """Satellite: the determinism verifier over a fault-plan config.

        The stochastic fault classes draw from seeded RNG streams; a
        same-seed double run must produce bit-identical schedules."""
        plan = build_fault_plan(fault_class, 2000.0, 500.0)
        report = verify_determinism(
            seed=5, duration_ms=2000.0, warmup_ms=500.0, fault_plan=plan
        )
        assert report.ok, report.describe()

    def test_fault_plan_changes_the_schedule(self):
        from repro.devtools.determinism import fingerprint_run

        clean = fingerprint_run(seed=5, duration_ms=2000.0, warmup_ms=500.0)
        faulted = fingerprint_run(
            seed=5, duration_ms=2000.0, warmup_ms=500.0,
            fault_plan=build_fault_plan("encode_stall", 2000.0, 500.0),
        )
        assert clean.digest != faulted.digest


class TestDeprecationShim:
    def test_old_inject_stall_warns_and_still_works(self):
        from repro.pipeline.faults import inject_stall

        config = SystemConfig(
            "IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
            duration_ms=4000.0, warmup_ms=500.0,
        )
        system = CloudSystem(config, make_regulator("NoReg"))
        with pytest.deprecated_call():
            inject_stall(system, "encode", 2000.0, 300.0)
        result = system.run()
        assert delivered_in(result, 2050.0, 2250.0) == 0
