"""Tests for the reusable scheduling core: pool reuse and chunking.

The refactor's guarantees: a caller-owned :class:`WorkerPool` survives
across runs (warmup paid once), chunked submissions stay bit-identical
to serial execution, and :func:`resolve_chunk` implements the dispatch
policy the executor and service both inherit.
"""

import pytest

from repro.experiments import (
    CellSpec,
    ParallelExecutor,
    Plan,
    ResultStore,
    SerialExecutor,
    WorkerPool,
    execute_cells,
    resolve_chunk,
)
from repro.obs.ledger import RunLedger
from repro.obs.runmeta import metrics_digest
from repro.obs.sweep import CELL_FINISHED, POOL_OPENED, SweepEventBus

DURATION_MS = 2000.0
WARMUP_MS = 500.0


def spec(benchmark="IM", regulator="ODR60", seed=1) -> CellSpec:
    return CellSpec(
        benchmark=benchmark,
        platform="private",
        resolution="720p",
        regulator=regulator,
        seed=seed,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


def four_cell_plan() -> Plan:
    return Plan(
        [
            spec("IM", "ODR60"),
            spec("RE", "NoReg"),
            spec("STK", "Int60"),
            spec("IM", "ODR60", seed=2),
        ]
    )


class TestResolveChunk:
    def test_timeout_forces_one(self):
        assert resolve_chunk(100, 4, chunk=8, cell_timeout_s=1.0) == 1

    def test_explicit_chunk_wins(self):
        assert resolve_chunk(100, 4, chunk=8) == 8
        with pytest.raises(ValueError):
            resolve_chunk(100, 4, chunk=0)

    def test_default_two_submissions_per_worker(self):
        assert resolve_chunk(8, 2) == 2
        assert resolve_chunk(28, 2) == 7
        # Plans smaller than 2x workers stay per-cell (chaos blast radius).
        assert resolve_chunk(4, 2) == 1
        assert resolve_chunk(1, 8) == 1
        with pytest.raises(ValueError):
            resolve_chunk(8, 0)


class TestChunkedEquivalence:
    def test_chunked_run_bit_identical_to_serial(self, tmp_path):
        serial_ledger = RunLedger(tmp_path / "serial")
        chunked_ledger = RunLedger(tmp_path / "chunked")
        serial = SerialExecutor().run(
            four_cell_plan(), store=ResultStore(), ledger=serial_ledger
        )
        chunked = ParallelExecutor(workers=2, chunk=2).run(
            four_cell_plan(), store=ResultStore(), ledger=chunked_ledger
        )
        assert chunked.ok and chunked.executed == 4
        for a, b in zip(serial.outcomes, chunked.outcomes):
            assert a.spec == b.spec
            assert a.record == b.record
            assert metrics_digest(a.ledger_record) == metrics_digest(
                b.ledger_record
            )

    def test_chunk_groups_submissions(self):
        bus = SweepEventBus()
        report = ParallelExecutor(workers=2, chunk=2).run(
            four_cell_plan(), store=ResultStore(), bus=bus
        )
        assert report.ok
        finished = [e for e in bus.events if e.kind == CELL_FINISHED]
        assert len(finished) == 4
        opened = [e for e in bus.events if e.kind == POOL_OPENED]
        assert opened and opened[0].fields["batch"] == 4


class TestPoolReuse:
    def test_one_pool_many_runs(self):
        plan_a = Plan([spec("IM"), spec("STK", "NoReg")])
        plan_b = Plan([spec("RE", "Int60"), spec("IM", seed=3)])
        serial_a = SerialExecutor().run(plan_a, store=ResultStore())
        serial_b = SerialExecutor().run(plan_b, store=ResultStore())
        with WorkerPool(workers=2) as pool:
            pool.warm()
            executor = ParallelExecutor(workers=2, pool=pool)
            report_a = executor.run(plan_a, store=ResultStore())
            report_b = executor.run(plan_b, store=ResultStore())
            assert pool.respawns == 0
        for serial, pooled in ((serial_a, report_a), (serial_b, report_b)):
            assert pooled.ok
            for a, b in zip(serial.outcomes, pooled.outcomes):
                assert a.spec == b.spec and a.record == b.record

    def test_borrowed_pool_survives_run(self):
        with WorkerPool(workers=2) as pool:
            ParallelExecutor(workers=2, pool=pool).run(
                Plan([spec()]), store=ResultStore()
            )
            # The run must not close a pool it does not own.
            future = pool.submit(execute_cells, [spec("STK", "NoReg")])
            results = future.result(timeout=60)
            assert len(results) == 1 and results[0].record is not None

    def test_event_plane_routes_to_attached_sink(self):
        seen = []
        with WorkerPool(workers=1, events=True) as pool:
            pool.attach_sink(lambda kind, fields: seen.append(kind))
            pool.warm()
            bus = SweepEventBus()
            ParallelExecutor(workers=1, pool=pool).run(
                Plan([spec()]), store=ResultStore(), bus=bus
            )
            # The executor temporarily claims the sink for its bus and
            # must hand it back afterwards.
            kinds = [e.kind for e in bus.events]
            assert CELL_FINISHED in kinds
            before = len(seen)
            pool.submit(execute_cells, [spec("STK", "NoReg")]).result(timeout=60)
            assert len(seen) > before  # worker events flow to our sink again
