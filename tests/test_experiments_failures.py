"""Execution-layer fault tolerance: failed cells, crashed workers, resume.

The guarantees under test: a cell failure never aborts a sweep (it
becomes a :class:`CellFailure` on a partial report), a SIGKILLed pool
worker costs at most the cells in flight (bounded retry in a fresh
pool), everything that did finish persists, and a later ``--resume``
run completes only the missing cells — bit-identically.
"""

import json

import pytest

from repro.experiments import (
    CellSpec,
    ExecutionError,
    ParallelExecutor,
    Plan,
    ResultStore,
    Runner,
    SerialExecutor,
    execute_cell,
    make_executor,
)

DURATION_MS = 1500.0
WARMUP_MS = 300.0


def spec(benchmark="IM", regulator="ODR60", seed=1) -> CellSpec:
    return CellSpec(
        benchmark=benchmark,
        platform="private",
        resolution="720p",
        regulator=regulator,
        seed=seed,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


BAD = spec(regulator="NotARegulator")


class TestSerialFailures:
    def test_bad_cell_becomes_failure_not_abort(self):
        plan = Plan([spec("IM"), BAD, spec("STK")])
        report = SerialExecutor().run(plan)
        assert not report.ok
        assert len(report.outcomes) == 2
        assert len(report.failures) == 1
        failure = report.failure_for(BAD.run_id)
        assert "ValueError" in failure.error
        assert failure.attempts == 1
        assert "failed=1" in report.describe()

    def test_runner_raises_execution_error_by_default(self):
        runner = Runner(seed=1, duration_ms=DURATION_MS, warmup_ms=WARMUP_MS)
        with pytest.raises(ExecutionError) as excinfo:
            runner.run_plan(Plan([spec(), BAD]))
        report = excinfo.value.report
        assert len(report.outcomes) == 1 and len(report.failures) == 1
        # allow_failures opts into the partial report instead.
        partial = runner.run_plan(Plan([spec(), BAD]), allow_failures=True)
        assert not partial.ok and len(partial.outcomes) == 1


class TestWorkerCrash:
    def test_crash_once_retries_and_completes(self, tmp_path, monkeypatch):
        """A worker SIGKILLed mid-cell breaks the pool; the casualty
        re-runs in a fresh pool and the sweep still completes, with
        output bit-identical to a serial run."""
        plan = Plan([spec("IM"), spec("STK"), spec("RE"), spec("IM", seed=2)])
        victim = plan.specs[2]
        marker = tmp_path / "kills.txt"
        monkeypatch.setenv(
            "ODR_EXECUTOR_SIMULATED_CRASH", f"{victim.run_id}:{marker}:1"
        )
        report = ParallelExecutor(workers=2).run(plan)
        assert report.ok, [f.error for f in report.failures]
        assert marker.read_text().strip() == victim.run_id
        monkeypatch.delenv("ODR_EXECUTOR_SIMULATED_CRASH")
        serial = SerialExecutor().run(plan)
        for a, b in zip(serial.outcomes, report.outcomes):
            assert a.spec == b.spec and a.record == b.record

    def test_crash_always_yields_partial_report(self, tmp_path, monkeypatch):
        """A cell that kills its worker on every attempt fails after
        max_attempts; cells that finished meanwhile are kept."""
        survivor, victim = spec("IM"), spec("STK")
        marker = tmp_path / "kills.txt"
        monkeypatch.setenv(
            "ODR_EXECUTOR_SIMULATED_CRASH", f"{victim.run_id}:{marker}:99"
        )
        # The victim stalls before dying so the survivor finishes first
        # (a crash fails *every* in-flight future in the broken pool).
        monkeypatch.setenv(
            "ODR_EXECUTOR_SIMULATED_STALL", f"{victim.run_id}:1.0"
        )
        store = ResultStore(tmp_path / "cells")
        report = ParallelExecutor(workers=2, max_attempts=2).run(
            Plan([survivor, victim]), store=store
        )
        assert not report.ok
        assert [o.spec.run_id for o in report.outcomes] == [survivor.run_id]
        failure = report.failure_for(victim.run_id)
        assert "worker crashed" in failure.error
        assert failure.attempts == 2
        assert len(marker.read_text().split()) == 2

        # Resume: with the chaos hooks off, a fresh run over the same
        # store executes only the missing cell — bit-identically.
        monkeypatch.delenv("ODR_EXECUTOR_SIMULATED_CRASH")
        monkeypatch.delenv("ODR_EXECUTOR_SIMULATED_STALL")
        resumed = ParallelExecutor(workers=2).run(
            Plan([survivor, victim]), store=ResultStore(tmp_path / "cells")
        )
        assert resumed.ok
        assert (resumed.executed, resumed.cached) == (1, 1)
        assert resumed.outcome_for(survivor.run_id).cached
        clean = execute_cell(victim)
        assert resumed.outcome_for(victim.run_id).record == clean.record


class TestCellTimeout:
    def test_hung_cell_times_out(self, monkeypatch):
        healthy, hung = spec("IM"), spec("STK")
        monkeypatch.setenv("ODR_EXECUTOR_SIMULATED_STALL", f"{hung.run_id}:5.0")
        executor = ParallelExecutor(workers=2, cell_timeout_s=1.0)
        report = executor.run(Plan([healthy, hung]))
        assert not report.ok
        assert [o.spec.run_id for o in report.outcomes] == [healthy.run_id]
        assert "timed out" in report.failure_for(hung.run_id).error

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, cell_timeout_s=0.0)
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, max_attempts=0)
        pool = make_executor(3, cell_timeout_s=2.5)
        assert pool.cell_timeout_s == 2.5


class TestStoreQuarantine:
    def test_corrupt_cell_is_quarantined_and_reexecuted(self, tmp_path):
        outcome = execute_cell(spec())
        run_id = outcome.spec.run_id
        store = ResultStore(tmp_path)
        store.put(run_id, outcome.record)
        path = store.cell_path(run_id)
        path.write_text("{ not json at all")

        fresh = ResultStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="failed to decode"):
            assert fresh.get(run_id) is None
        assert not path.exists()
        quarantined = tmp_path / "corrupt" / path.name
        assert quarantined.read_text() == "{ not json at all"

        # The executor treats it as a miss and re-runs the cell;
        # the rewritten cell file round-trips again.
        report = SerialExecutor().run(Plan([spec()]), store=fresh)
        assert report.ok and report.executed == 1
        assert ResultStore(tmp_path).get(run_id) == outcome.record

    def test_stale_shape_is_a_plain_miss_without_quarantine(self, tmp_path):
        outcome = execute_cell(spec())
        run_id = outcome.spec.run_id
        store = ResultStore(tmp_path)
        store.put(run_id, outcome.record)
        path = store.cell_path(run_id)
        payload = json.loads(path.read_text())
        del payload["record"]["client_fps"]
        path.write_text(json.dumps(payload))
        assert ResultStore(tmp_path).get(run_id) is None
        assert path.exists()
        assert not (tmp_path / "corrupt").exists()
