"""Tests for frame-pacing analysis."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CloudSystem, SystemConfig, make_regulator
from repro.metrics.pacing import pacing_report
from repro.workloads import PRIVATE_CLOUD, Resolution


class TestPacingReport:
    def test_perfect_stream(self):
        report = pacing_report([i * 10.0 for i in range(100)])
        assert report.mean_gap_ms == 10.0
        assert report.jitter_ms == 0.0
        assert report.stutter_events == 0
        assert report.badness == 1.0
        assert report.mean_fps == pytest.approx(100.0)

    def test_single_stutter_detected(self):
        times = [i * 10.0 for i in range(50)]
        times = times[:25] + [t + 25.0 for t in times[25:]]  # one 35ms gap
        report = pacing_report(times)
        assert report.stutter_events == 1
        assert report.max_gap_ms == pytest.approx(35.0)

    def test_stutter_threshold_respected(self):
        times = [0.0, 10.0, 29.0, 39.0]  # one 19ms gap, factor 2 of median 10
        assert pacing_report(times, stutter_factor=2.0).stutter_events == 0
        assert pacing_report(times, stutter_factor=1.5).stutter_events == 1

    def test_stutter_rate_per_minute(self):
        # 60s of 10ms frames with 6 stutters -> 6 per minute
        times = []
        t = 0.0
        for i in range(6000):
            t += 25.0 if i % 1000 == 500 else 10.0
            times.append(t)
        report = pacing_report(times)
        assert report.stutter_rate_per_minute == pytest.approx(6.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            pacing_report([1.0, 2.0])
        with pytest.raises(ValueError):
            pacing_report([3.0, 2.0, 1.0])
        with pytest.raises(ValueError):
            pacing_report([1.0, 2.0, 3.0], stutter_factor=1.0)
        with pytest.raises(ValueError):
            pacing_report([1.0, 1.0, 1.0])  # zero median gap

    @given(
        gaps=st.lists(st.floats(min_value=0.5, max_value=100.0), min_size=3, max_size=200)
    )
    @settings(max_examples=80, deadline=None)
    def test_invariants(self, gaps):
        times = []
        t = 0.0
        for g in gaps:
            t += g
            times.append(t)
        report = pacing_report(times)
        assert report.median_gap_ms <= report.p99_gap_ms <= report.max_gap_ms
        assert report.badness >= 1.0 - 1e-9
        assert 0 <= report.stutter_events <= len(gaps)


class TestPacingOnRuns:
    def run(self, spec):
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                              duration_ms=10000, warmup_ms=1500)
        return CloudSystem(config, make_regulator(spec)).run()

    def test_odr_paces_more_evenly_than_noreg_at_client(self):
        """Regulated delivery has lower relative pacing badness than the
        free-running stream whose encoder queue breathes with load."""
        odr = pacing_report(self.run("ODR60").counter.times("decode"))
        noreg = pacing_report(self.run("NoReg").counter.times("decode"))
        assert odr.badness <= noreg.badness * 1.6  # at least comparable
        assert odr.stutter_rate_per_minute < 60

    def test_interval_grid_shows_in_render_pacing(self):
        result = self.run("Int60")
        report = pacing_report(result.counter.times("render"))
        # renders land on the 16.6ms grid: median gap is the interval
        assert report.median_gap_ms == pytest.approx(1000 / 60, rel=0.02)
