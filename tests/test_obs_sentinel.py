"""The regression sentinel and its stdlib inference kit."""

import json

import pytest

from repro.metrics import (
    bootstrap_diff_ci,
    bootstrap_mean_ci,
    mann_whitney_u,
)
from repro.obs import Telemetry, build_record, compare_records
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import PLATFORMS, Resolution


class TestMannWhitney:
    def test_identical_samples_are_not_significant(self):
        result = mann_whitney_u([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.p_value == 1.0
        assert not result.significant()

    def test_fully_separated_samples_are_significant(self):
        a = [float(i) for i in range(20)]
        b = [float(i) + 100.0 for i in range(20)]
        result = mann_whitney_u(a, b)
        assert result.p_value < 1e-4
        assert result.significant(alpha=0.01)

    def test_u_statistic_counts_wins(self):
        # every b beats every a: U (wins of a over b) is 0
        assert mann_whitney_u([1.0, 2.0], [10.0, 11.0]).u == 0.0
        # symmetric case splits the wins
        assert mann_whitney_u([1.0, 10.0], [1.0, 10.0]).u == 2.0

    def test_empty_input_degenerates_to_p_one(self):
        assert mann_whitney_u([], [1.0]).p_value == 1.0
        assert mann_whitney_u([1.0], []).p_value == 1.0

    def test_all_tied_degenerates_to_p_one(self):
        assert mann_whitney_u([5.0] * 10, [5.0] * 10).p_value == 1.0


class TestBootstrap:
    def test_mean_ci_brackets_the_mean(self):
        values = [10.0, 11.0, 12.0, 13.0, 14.0]
        ci = bootstrap_mean_ci(values, seed=3)
        assert ci.low <= 12.0 <= ci.high
        assert ci.estimate == pytest.approx(12.0)

    def test_deterministic_for_a_seed(self):
        values = [1.0, 4.0, 2.0, 8.0, 5.0, 7.0]
        a = bootstrap_mean_ci(values, seed=9)
        b = bootstrap_mean_ci(values, seed=9)
        assert (a.low, a.high) == (b.low, b.high)

    def test_diff_ci_sign_and_containment(self):
        a = [10.0, 10.5, 11.0, 10.2, 10.8] * 4
        b = [v + 5.0 for v in a]
        ci = bootstrap_diff_ci(a, b, seed=1)
        assert ci.estimate == pytest.approx(5.0)
        assert ci.low > 0.0
        assert not ci.contains(0.0)
        same = bootstrap_diff_ci(a, a, seed=1)
        assert same.contains(0.0)


def make_record(run_id, client_fps, fps_gap, mtp, label="cell", wall=1.0, eps=None):
    record = {
        "run_id": run_id,
        "label": label,
        "wall_clock_s": wall,
        "metrics": {},
        "series": {
            "client_fps": list(client_fps),
            "fps_gap": list(fps_gap),
            "mtp_ms": list(mtp),
        },
    }
    if eps is not None:
        record["engine"] = {"events_per_sec": eps}
    return record


BASE = make_record(
    "a" * 16,
    client_fps=[59.0, 60.0, 61.0, 60.0, 59.5, 60.5, 60.0, 59.8, 60.2, 60.0] * 3,
    fps_gap=[1.0, 2.0, 1.5, 2.5, 1.8, 2.2, 1.2, 1.9, 2.1, 1.6] * 3,
    mtp=[22.0, 25.0, 24.0, 23.0, 26.0, 24.5, 23.5, 25.5, 24.2, 23.8] * 3,
    eps=50_000.0,
)


class TestCompareRecords:
    def test_identical_records_verdict_ok(self):
        report = compare_records(BASE, BASE)
        assert report.verdict == "ok"
        assert report.ok
        for comp in report.comparisons:
            assert comp.verdict in ("ok", "info")

    def test_degraded_candidate_flags_regressed(self):
        worse = make_record(
            "b" * 16,
            client_fps=[v - 8.0 for v in BASE["series"]["client_fps"]],
            fps_gap=BASE["series"]["fps_gap"],
            mtp=BASE["series"]["mtp_ms"],
        )
        report = compare_records(BASE, worse)
        assert report.verdict == "regressed"
        assert not report.ok
        by_name = {c.name: c for c in report.comparisons}
        assert by_name["client FPS"].verdict == "regressed"
        assert by_name["client FPS"].p_value < 0.01
        assert not by_name["client FPS"].ci.contains(0.0)

    def test_bad_direction_is_metric_specific(self):
        # MtP going *up* is a regression even though client FPS held
        slower = make_record(
            "c" * 16,
            client_fps=BASE["series"]["client_fps"],
            fps_gap=BASE["series"]["fps_gap"],
            mtp=[v + 10.0 for v in BASE["series"]["mtp_ms"]],
        )
        report = compare_records(BASE, slower)
        by_name = {c.name: c for c in report.comparisons}
        assert by_name["MtP latency (ms)"].verdict == "regressed"
        # and MtP going *down* is an improvement
        faster = make_record(
            "d" * 16,
            client_fps=BASE["series"]["client_fps"],
            fps_gap=BASE["series"]["fps_gap"],
            mtp=[v - 10.0 for v in BASE["series"]["mtp_ms"]],
        )
        assert compare_records(BASE, faster).verdict == "improved"

    def test_tiny_significant_shift_is_within_tolerance(self):
        # statistically detectable but 0.5% shift: tolerance absorbs it
        nudged = make_record(
            "e" * 16,
            client_fps=[v - 0.3 for v in BASE["series"]["client_fps"]],
            fps_gap=BASE["series"]["fps_gap"],
            mtp=BASE["series"]["mtp_ms"],
        )
        report = compare_records(BASE, nudged, tolerance=0.02)
        assert report.verdict == "ok"

    def test_engine_scalars_never_gate(self):
        # a 10x events/sec and wall-clock swing is machine noise: info only
        slow_host = json.loads(json.dumps(BASE))
        slow_host["wall_clock_s"] = 10.0
        slow_host["engine"]["events_per_sec"] = 5_000.0
        report = compare_records(BASE, slow_host)
        assert report.verdict == "ok"
        by_name = {c.name: c for c in report.comparisons}
        assert by_name["events/sec"].verdict == "info"
        assert by_name["wall clock (s)"].verdict == "info"

    def test_missing_series_reported_not_fatal(self):
        bare = {"run_id": "f" * 16, "label": "bare", "series": {}}
        report = compare_records(BASE, bare)
        by_name = {c.name: c for c in report.comparisons}
        assert by_name["client FPS"].verdict == "missing"

    def test_json_and_text_outputs(self):
        report = compare_records(BASE, BASE, alpha=0.05, tolerance=0.1)
        payload = json.loads(report.to_json())
        assert payload["verdict"] == "ok"
        assert payload["alpha"] == 0.05
        assert len(payload["metrics"]) == len(report.comparisons)
        text = report.describe()
        assert "OK" in text
        assert "client FPS" in text


def simulate_record(regulator, seed=1, duration_ms=12000.0):
    config = SystemConfig(
        benchmark="IM",
        platform=PLATFORMS["private"],
        resolution=Resolution("720p"),
        seed=seed,
        duration_ms=duration_ms,
        warmup_ms=2000.0,
    )
    telemetry = Telemetry(engine_probe=True)
    result = CloudSystem(config, make_regulator(regulator), telemetry=telemetry).run()
    payload = {"benchmark": "IM", "regulator": regulator, "duration_ms": duration_ms}
    return build_record(result, payload, label=f"IM/{regulator}", wall_clock_s=1.0)


class TestEndToEnd:
    """The acceptance loop: real simulations through the sentinel."""

    def test_same_seed_rerun_is_ok(self):
        a = simulate_record("ODR60")
        b = simulate_record("ODR60")
        report = compare_records(a, b)
        assert report.verdict == "ok"
        # deterministic re-run: identical distributions, p = 1 everywhere
        for comp in report.comparisons:
            if comp.p_value is not None:
                assert comp.p_value == 1.0

    def test_perturbed_run_is_flagged_regressed(self):
        # halving the FPS target is an unmistakable client-FPS regression
        a = simulate_record("ODR60")
        b = simulate_record("ODR30")
        report = compare_records(a, b)
        assert report.verdict == "regressed"
        by_name = {c.name: c for c in report.comparisons}
        assert by_name["client FPS"].verdict == "regressed"
