"""Telemetry overhead guard: disabled telemetry must stay within 5%.

Two complementary checks:

* a pytest-benchmark case timing the standard 20 s run with telemetry
  disabled (the configuration every experiment uses by default), kept
  for ``--benchmark-compare`` workflows across revisions;
* a self-contained A/B guard comparing the current engine (probe hooks
  compiled in, ``probe=None``) against a baseline environment whose
  ``schedule``/``step``/``process`` replicate the pre-telemetry bodies
  with no probe branch at all.  This is the acceptance gate: the probe
  branches on the disabled path must cost <5%.
"""

import heapq
import time

import pytest

from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.simcore import Environment
from repro.simcore.engine import NORMAL
from repro.workloads import PLATFORMS, Resolution

OVERHEAD_LIMIT = 1.05


def standard_config(duration_ms=20_000.0):
    return SystemConfig(
        benchmark="IM",
        platform=PLATFORMS["private"],
        resolution=Resolution("720p"),
        seed=7,
        duration_ms=duration_ms,
        warmup_ms=2_000.0,
    )


def run_disabled():
    return CloudSystem(standard_config(), make_regulator("ODR60")).run()


class BaselineEnvironment(Environment):
    """Pre-telemetry hot path: schedule/step/process without probe branches."""

    def schedule(self, event, delay=0.0, priority=NORMAL):
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def step(self):
        if not self._queue:
            raise RuntimeError("no more events")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(repr(exc))

    def process(self, generator, name=""):
        from repro.simcore.engine import Process

        return Process(self, generator, name=name)


def churn(env, events):
    for _ in range(events):
        yield env.timeout(0.25)


def drive(env_cls, events=60_000):
    env = env_cls()
    env.process(churn(env, events))
    start = time.perf_counter()  # simlint: disable=R2 -- benchmark harness times the host run on purpose
    env.run()
    return time.perf_counter() - start  # simlint: disable=R2 -- benchmark harness times the host run on purpose


def best_of(fn, rounds=5):
    return min(fn() for _ in range(rounds))


def test_standard_run_benchmark_telemetry_disabled(benchmark):
    result = benchmark.pedantic(run_disabled, rounds=3, warmup_rounds=1)
    assert result.client_fps > 0
    assert result.telemetry() is None


def test_disabled_probe_overhead_under_five_percent():
    # min-of-N timings on an event-churn microbenchmark, which maximizes
    # the relative weight of the schedule/step hot path (a full pipeline
    # run would only dilute any regression).  Retry to ride out noise.
    drive(Environment, events=5_000)  # warm both paths
    drive(BaselineEnvironment, events=5_000)
    for attempt in range(3):
        baseline = best_of(lambda: drive(BaselineEnvironment))
        current = best_of(lambda: drive(Environment))
        ratio = current / baseline
        if ratio < OVERHEAD_LIMIT:
            return
    pytest.fail(
        f"disabled-telemetry engine is {ratio:.3f}x the pre-telemetry "
        f"baseline (limit {OVERHEAD_LIMIT}x)"
    )


def test_disabled_pipeline_run_matches_baseline_results():
    # Telemetry-off runs must be numerically identical to the seed
    # behaviour: the hooks may observe, never perturb.
    a = run_disabled()
    b = CloudSystem(standard_config(), make_regulator("ODR60")).run()
    assert a.client_fps == b.client_fps
    assert a.render_fps == b.render_fps
