"""The sim-engine self-profiler: attribution, accounting, and overlay."""

import json

import pytest

from repro.obs import SimProfiler, Telemetry, chrome_trace, stage_for_process
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.simcore import Environment
from repro.workloads import PLATFORMS, Resolution


class FakeClock:
    """Deterministic wall clock: advances a fixed tick per read."""

    def __init__(self, tick=1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self):
        self.now += self.tick
        return self.now


def spin(env, period, count):
    for _ in range(count):
        yield env.timeout(period)


class TestStageMapping:
    @pytest.mark.parametrize(
        "name,stage",
        [
            ("app", "render"),
            ("proxy", "encode"),
            ("odr-proxy", "encode"),
            ("network", "transmit"),
            ("odr-network", "transmit"),
            ("client", "client"),
            ("input-actions", "inputs"),
            ("input-polling", "inputs"),
            ("fps-reporter-0", "control"),
            ("abr", "control"),
            ("mystery-process", "other"),
        ],
    )
    def test_prefix_mapping(self, name, stage):
        assert stage_for_process(name) == stage


class TestFakeClockAccounting:
    def run_profiled(self):
        clock = FakeClock()
        profiler = SimProfiler(wallclock=clock, depth_sample_ms=100.0)
        env = Environment(probe=profiler)
        env.process(spin(env, 10.0, 20), name="app")
        env.process(spin(env, 25.0, 8), name="client")
        env.process(spin(env, 50.0, 4), name="mystery")
        profiler.start()
        env.run(until=1000.0)
        profiler.finish()
        return profiler

    def test_every_process_attributed(self):
        profiler = self.run_profiled()
        assert set(profiler.wall_by_process) == {"app", "client", "mystery"}
        # one resume per timeout plus the priming resume
        assert profiler.resumes_by_process["app"] == 21
        assert profiler.resumes_by_process["client"] == 9
        assert profiler.resumes_by_process["mystery"] == 5

    def test_attributed_wall_is_sum_of_processes(self):
        profiler = self.run_profiled()
        assert profiler.attributed_wall_s == pytest.approx(
            sum(profiler.wall_by_process.values())
        )
        assert 0.0 < profiler.attributed_wall_s <= profiler.total_wall_s

    def test_stage_table_sums_to_profiled_total(self):
        profiler = self.run_profiled()
        stages = profiler.wall_by_stage()
        assert "engine" in stages
        assert stages["render"] == pytest.approx(profiler.wall_by_process["app"])
        assert stages["other"] == pytest.approx(profiler.wall_by_process["mystery"])
        assert sum(stages.values()) == pytest.approx(profiler.total_wall_s)

    def test_callsites_resolve_to_generator_code(self):
        profiler = self.run_profiled()
        callsites = dict(profiler.top_callsites())
        assert len(callsites) == 1  # all three processes share spin()
        (callsite,) = callsites
        assert callsite.startswith("spin (")
        assert "test_obs_profiler.py" in callsite

    def test_depth_timeline_is_bucketed_and_ordered(self):
        profiler = self.run_profiled()
        timeline = profiler.depth_timeline()
        assert timeline
        times = [t for t, _ in timeline]
        assert times == sorted(times)
        assert all(t % 100.0 == 0.0 for t in times)
        assert all(depth >= 0 for _, depth in timeline)

    def test_events_per_sec_uses_framed_total(self):
        profiler = self.run_profiled()
        assert profiler.events_per_sec() == pytest.approx(
            profiler.events_fired / profiler.total_wall_s
        )

    def test_unframed_profiler_has_no_total(self):
        profiler = SimProfiler(wallclock=FakeClock())
        assert profiler.total_wall_s is None
        assert profiler.events_per_sec() is None
        assert "engine" not in profiler.wall_by_stage()

    def test_bad_sample_width_rejected(self):
        with pytest.raises(ValueError):
            SimProfiler(depth_sample_ms=0.0)


@pytest.fixture(scope="module")
def pipeline_profile():
    telemetry = Telemetry()
    profiler = SimProfiler()
    telemetry.probe = profiler
    config = SystemConfig(
        benchmark="IM",
        platform=PLATFORMS["private"],
        resolution=Resolution("720p"),
        seed=3,
        duration_ms=5000.0,
        warmup_ms=1000.0,
    )
    system = CloudSystem(config, make_regulator("ODR60"), telemetry=telemetry)
    profiler.start()
    system.run()
    profiler.finish()
    return telemetry, profiler


class TestPipelineProfile:
    def test_stage_sums_within_ten_percent_of_total(self, pipeline_profile):
        _, profiler = pipeline_profile
        total = profiler.total_wall_s
        assert total > 0
        stage_sum = sum(profiler.wall_by_stage().values())
        assert abs(stage_sum - total) <= 0.10 * total

    def test_pipeline_stages_show_up(self, pipeline_profile):
        _, profiler = pipeline_profile
        stages = profiler.wall_by_stage()
        for stage in ("render", "encode", "transmit", "client", "engine"):
            assert stage in stages, stages

    def test_summary_is_json_serializable(self, pipeline_profile):
        _, profiler = pipeline_profile
        summary = json.loads(json.dumps(profiler.summary()))
        assert summary["events_fired"] > 0
        assert summary["total_wall_s"] > 0
        assert summary["wall_by_stage"]
        assert summary["top_callsites"]
        assert summary["queue_depth_timeline"]

    def test_report_renders_the_tables(self, pipeline_profile):
        _, profiler = pipeline_profile
        text = profiler.report(top_k=3)
        assert "engine profile:" in text
        assert "stage wall time:" in text
        assert "generator callsites:" in text
        assert "queue depth:" in text

    def test_chrome_trace_overlay(self, pipeline_profile):
        telemetry, profiler = pipeline_profile
        trace = chrome_trace(telemetry, profiler=profiler)
        names = {event["name"] for event in trace["traceEvents"]}
        assert "event_queue_depth" in names
        assert "wall_ms_per_stage" in names
        overlay = [e for e in trace["traceEvents"] if e.get("pid") == 0 and e["ph"] == "C"]
        assert len(overlay) == len(profiler.depth_timeline()) + 1
        # overlay must not displace the pipeline's own slices
        plain = chrome_trace(telemetry)
        assert len(trace["traceEvents"]) == len(plain["traceEvents"]) + len(overlay) + 1
