"""Telemetry under multi-tenant runs: isolation, fidelity, overhead.

Three guarantees when several sessions share one server and one
telemetry object:

* per-session spans and metric series never collide — every span and
  series carries its ``s<index>`` label and stays separately queryable;
* observation never perturbs: a telemetry-on run is numerically
  identical to the same seed run telemetry-off;
* the disabled path stays cheap: a shared-server run without telemetry
  must be within 5% of a baseline environment with no probe branches
  at all (same A/B scheme as ``test_obs_benchmark``).
"""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import time

import pytest

import repro.multitenant.server as server_mod
from repro.multitenant import SharedServer
from repro.obs import Telemetry
from repro.regulators import make_regulator
from repro.workloads import PRIVATE_CLOUD, Resolution

from tests.test_obs_benchmark import OVERHEAD_LIMIT, BaselineEnvironment, best_of


def make_server(n=2, telemetry=None, duration=6000.0, seed=1):
    return SharedServer(
        benchmarks=["IM", "RE", "STK", "ITP"][:n],
        platform=PRIVATE_CLOUD,
        resolution=Resolution.R720P,
        regulator_factory=lambda i: make_regulator("ODR60"),
        seed=seed,
        duration_ms=duration,
        warmup_ms=1000.0,
        telemetry=telemetry,
    )


@pytest.fixture(scope="module")
def shared_run():
    telemetry = Telemetry(engine_probe=True)
    server = make_server(telemetry=telemetry)
    results = server.run()
    return server, telemetry, results


class TestSessionIsolation:
    def test_every_session_gets_its_own_span_namespace(self, shared_run):
        _, telemetry, _ = shared_run
        assert telemetry.spans.sessions() == ["s0", "s1"]

    def test_sessions_record_disjoint_span_populations(self, shared_run):
        _, telemetry, _ = shared_run
        spans_a = telemetry.spans.spans(session="s0")
        spans_b = telemetry.spans.spans(session="s1")
        assert spans_a and spans_b
        assert all(span.session == "s0" for span in spans_a)
        assert all(span.session == "s1" for span in spans_b)

    def test_same_frame_id_resolves_per_session(self, shared_run):
        # both pipelines number frames from zero; lookups must not
        # cross-talk even where the ids overlap
        _, telemetry, _ = shared_run
        ids_a = {s.frame_id for s in telemetry.spans.spans(session="s0")}
        ids_b = {s.frame_id for s in telemetry.spans.spans(session="s1")}
        shared_ids = ids_a & ids_b
        assert shared_ids, "expected overlapping frame ids across sessions"
        frame_id = min(shared_ids)
        span_a = telemetry.spans.get(frame_id, session="s0")
        span_b = telemetry.spans.get(frame_id, session="s1")
        assert span_a is not span_b
        assert (span_a.session, span_b.session) == ("s0", "s1")

    def test_metric_series_carry_session_labels(self, shared_run):
        _, telemetry, _ = shared_run
        snapshot = telemetry.snapshot()
        created = {
            key.label("session"): value
            for key, value in snapshot.counters.items()
            if key.name == "frames_created_total"
        }
        assert set(created) == {"s0", "s1"}
        assert all(value > 0 for value in created.values())

    def test_shared_probe_sees_the_union(self, shared_run):
        server, telemetry, _ = shared_run
        names = telemetry.probe.process_names
        assert sum(1 for n in names if n.startswith("fps-reporter-")) == len(
            server.sessions
        )


class TestObservationFidelity:
    def test_telemetry_on_run_matches_telemetry_off(self, shared_run):
        _, _, observed = shared_run
        plain = make_server(telemetry=None).run()
        assert len(plain) == len(observed)
        for a, b in zip(plain, observed):
            assert a.client_fps == b.client_fps
            assert a.render_fps == b.render_fps
            assert a.fps_gap_mean == b.fps_gap_mean
            assert a.mtp_mean_ms == b.mtp_mean_ms

    def test_span_counts_match_session_results(self, shared_run):
        _, telemetry, results = shared_run
        for index, _ in enumerate(results):
            spans = telemetry.spans.spans(session=f"s{index}")
            displayed = [s for s in spans if s.closed_at is not None and not s.dropped]
            # every counted client frame left a closed span behind
            assert len(displayed) > 0
            assert len(spans) >= len(displayed)


class TestDisabledOverhead:
    def test_disabled_multitenant_overhead_under_five_percent(self, monkeypatch):
        def run_server():
            server = make_server(duration=3000.0)
            start = time.perf_counter()  # simlint: disable=R2 -- scheduler fairness test times host-side work on purpose
            server.run()
            return time.perf_counter() - start  # simlint: disable=R2 -- scheduler fairness test times host-side work on purpose

        run_server()  # warm caches on the current engine
        monkeypatch.setattr(server_mod, "Environment", BaselineEnvironment)
        run_server()  # and on the baseline
        for _ in range(3):
            monkeypatch.setattr(server_mod, "Environment", BaselineEnvironment)
            baseline = best_of(run_server, rounds=3)
            monkeypatch.undo()
            current = best_of(run_server, rounds=3)
            ratio = current / baseline
            if ratio < OVERHEAD_LIMIT:
                return
        pytest.fail(
            f"disabled-telemetry shared server is {ratio:.3f}x the "
            f"no-probe baseline (limit {OVERHEAD_LIMIT}x)"
        )
