"""Tests for the double-run schedule verifier (``repro.devtools.determinism``)."""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.determinism import (
    ScheduleRecorder,
    fingerprint_run,
    verify_determinism,
)


class _WallClockJitterSampler:
    """Wraps a stage-time sampler with host-wall-clock noise.

    The perturbation is tiny (ppm-scale) and only applied on demand, so
    it models exactly the class of bug the verifier exists to catch: a
    real-time dependency silently leaking into simulated durations.
    """

    def __init__(self, inner):
        self.inner = inner

    def next(self):
        jitter = (time.perf_counter() % 1e-3) * 1e-3  # simlint: disable=R2 -- measuring the lint run itself, host time is the subject
        return self.inner.next() * (1.0 + jitter)


def _perturb_second_run(system, run_index):
    if run_index == 1:
        system.app._render_sampler = _WallClockJitterSampler(
            system.app._render_sampler
        )


class TestFingerprint:
    def test_same_seed_same_digest(self):
        a = fingerprint_run(11, duration_ms=600.0, warmup_ms=150.0)
        b = fingerprint_run(11, duration_ms=600.0, warmup_ms=150.0)
        assert a.digest == b.digest
        assert a == b

    def test_different_seeds_differ(self):
        a = fingerprint_run(1, duration_ms=600.0, warmup_ms=150.0)
        b = fingerprint_run(2, duration_ms=600.0, warmup_ms=150.0)
        assert a.digest != b.digest

    def test_different_regulators_differ(self):
        a = fingerprint_run(5, regulator="NoReg", duration_ms=600.0, warmup_ms=150.0)
        b = fingerprint_run(5, regulator="ODR60", duration_ms=600.0, warmup_ms=150.0)
        assert a.digest != b.digest

    def test_fingerprint_counts_events_and_spans(self):
        fp = fingerprint_run(7, duration_ms=600.0, warmup_ms=150.0)
        assert fp.events_fired > 0
        assert fp.events_scheduled >= fp.events_fired
        assert fp.processes_started > 0
        assert fp.spans > 0


class TestVerify:
    def test_verifier_passes_on_clean_engine(self):
        report = verify_determinism(seed=4, duration_ms=600.0, warmup_ms=150.0)
        assert report.ok
        assert "MATCH" in report.describe()

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_verifier_passes_for_random_seeds(self, seed):
        report = verify_determinism(
            seed=seed, regulator="NoReg", duration_ms=400.0, warmup_ms=100.0
        )
        assert report.ok

    def test_verifier_catches_wall_clock_leak(self):
        report = verify_determinism(
            seed=4,
            duration_ms=600.0,
            warmup_ms=150.0,
            mutate=_perturb_second_run,
        )
        assert not report.ok
        assert "DIVERGED" in report.describe()


class TestScheduleRecorder:
    def test_recorder_pins_wall_clock(self):
        recorder = ScheduleRecorder()
        assert recorder._perf_counter() == 0.0

    def test_digest_sensitive_to_single_event(self):
        a = ScheduleRecorder()
        b = ScheduleRecorder()
        a.on_event_scheduled(1.0, 0, 1)
        b.on_event_scheduled(1.0 + 1e-12, 0, 1)
        assert a.hexdigest() != b.hexdigest()

    def test_digest_sensitive_to_order(self):
        a = ScheduleRecorder()
        b = ScheduleRecorder()
        a.on_event_scheduled(1.0, 0, 1)
        a.on_event_scheduled(2.0, 0, 2)
        b.on_event_scheduled(2.0, 0, 2)
        b.on_event_scheduled(1.0, 0, 1)
        assert a.hexdigest() != b.hexdigest()
