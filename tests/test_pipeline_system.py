"""Integration tests for the assembled cloud-3D system."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.pipeline.frames import DropReason
from repro.workloads import GCE, PRIVATE_CLOUD, Resolution


def run(spec="NoReg", bench="IM", platform=PRIVATE_CLOUD, resolution=Resolution.R720P,
        seed=1, duration=8000.0, **kwargs):
    config = SystemConfig(bench, platform, resolution, seed=seed,
                          duration_ms=duration, warmup_ms=1500.0, **kwargs)
    return CloudSystem(config, make_regulator(spec)).run()


class TestConservation:
    """Frame-accounting invariants that must hold for any regulator."""

    @pytest.mark.parametrize("spec", ["NoReg", "Int60", "IntMax", "RVS60", "ODR60", "ODRMax"])
    def test_counts_monotone_through_pipeline(self, spec):
        result = run(spec)
        counter = result.counter
        rendered = counter.count("render")
        encoded = counter.count("encode")
        transmitted = counter.count("transmit")
        decoded = counter.count("decode")
        assert rendered >= encoded >= transmitted >= decoded
        # in-flight frames are bounded by the pipeline's buffering
        assert encoded - decoded < 120

    @pytest.mark.parametrize("spec", ["NoReg", "ODRMax"])
    def test_drops_account_for_render_encode_difference(self, spec):
        result = run(spec)
        rendered = result.counter.count("render")
        encoded = result.counter.count("encode")
        dropped = len([f for f in result.system.app.frames if f.dropped is not None])
        # rendered = encoded + dropped + (in-flight at end)
        assert 0 <= rendered - encoded - dropped <= 3

    def test_every_displayed_frame_was_encoded_first(self):
        result = run("ODR60")
        for f in result.system.client.displayed:
            assert f.t_encode_end is not None
            assert f.t_displayed >= f.t_encode_end

    def test_frames_displayed_in_order(self):
        result = run("NoReg", platform=GCE)
        displayed = result.system.client.displayed
        ids = [f.frame_id for f in displayed]
        assert ids == sorted(ids)

    def test_timestamps_monotone_per_frame(self):
        result = run("ODRMax")
        for f in result.system.client.displayed[:500]:
            stamps = [f.t_created, f.t_render_start, f.t_render_end,
                      f.t_copy_end, f.t_encode_end, f.t_send_start,
                      f.t_send_end, f.t_received, f.t_displayed]
            assert all(s is not None for s in stamps)
            assert stamps == sorted(stamps)


class TestDeterminism:
    def test_same_seed_identical_results(self):
        a = run("ODR60", seed=42, duration=5000)
        b = run("ODR60", seed=42, duration=5000)
        assert a.client_fps == b.client_fps
        assert a.mtp_samples() == b.mtp_samples()
        assert a.fps_gap().series == b.fps_gap().series

    def test_different_seed_different_results(self):
        a = run("NoReg", seed=1, duration=5000)
        b = run("NoReg", seed=2, duration=5000)
        assert a.client_fps != b.client_fps

    def test_regulator_change_does_not_change_workload_draw_streams(self):
        """Common random numbers: the render-time stream is identical
        across regulators under the same seed (paired comparisons)."""
        a = run("NoReg", seed=5, duration=4000)
        b = run("ODRMax", seed=5, duration=4000)
        # Compare the first few *uncontended-equivalent* render durations:
        # divide out the contention multiplier by comparing frame counts
        # instead — both systems must create frame #1 at t=0.
        assert a.system.app.frames[0].t_render_start == 0.0
        assert b.system.app.frames[0].t_render_start == 0.0


class TestRunResultAccessors:
    def test_summary_keys(self):
        result = run("ODR60")
        summary = result.summary()
        for key in ("render_fps", "encode_fps", "client_fps", "fps_gap_mean",
                    "fps_gap_max", "bandwidth_mbps", "mtp_mean_ms"):
            assert key in summary

    def test_qos_report(self):
        result = run("ODR60")
        report = result.qos(60.0)
        assert report.n_windows > 0
        assert 0.0 <= report.satisfaction <= 1.0

    def test_stage_utilization_bounds(self):
        result = run("NoReg")
        for stage in ("render", "copy", "encode", "transmit"):
            assert 0.0 <= result.stage_utilization(stage) <= 1.0

    def test_bandwidth_in_paper_range(self):
        # Sec. 6.6: 15 to 60 Mbps depending on benchmark/configuration.
        result = run("ODR60")
        assert 10.0 <= result.bandwidth_mbps() <= 70.0

    def test_dropped_frames_filter(self):
        result = run("NoReg")
        all_drops = result.dropped_frames()
        overwrites = result.dropped_frames(DropReason.MAILBOX_OVERWRITE)
        assert len(overwrites) <= len(all_drops)
        assert all(f.dropped is DropReason.MAILBOX_OVERWRITE for f in overwrites)

    def test_mtp_without_samples_raises(self):
        result = run("NoReg", duration=4000)
        result.tracker._samples.clear()
        result.tracker._open.clear()
        with pytest.raises(ValueError):
            result.mean_mtp_ms()


class TestBehaviouralShape:
    """Cheap single-benchmark versions of the paper's headline effects."""

    def test_noreg_has_large_fps_gap(self):
        result = run("NoReg")
        assert result.fps_gap().mean_gap > 60

    def test_noreg_client_fps_bounded_by_encoder(self):
        result = run("NoReg")
        assert result.client_fps < result.render_fps / 1.5

    def test_regulated_systems_remove_the_gap(self):
        for spec in ("Int60", "RVS60", "ODR60"):
            result = run(spec)
            assert result.fps_gap().mean_gap < 5, spec

    def test_gce_congestion_inflates_noreg_latency(self):
        private = run("NoReg", platform=PRIVATE_CLOUD)
        gce = run("NoReg", platform=GCE)
        assert gce.mean_mtp_ms() > 15 * private.mean_mtp_ms()

    def test_odr_keeps_gce_latency_low(self):
        gce = run("ODRMax", platform=GCE)
        assert gce.mean_mtp_ms() < 90.0

    def test_1080p_slower_than_720p(self):
        hi = run("NoReg", resolution=Resolution.R1080P)
        lo = run("NoReg", resolution=Resolution.R720P)
        assert hi.render_fps < lo.render_fps

    def test_contention_feedback_present(self):
        """Disabling contention must speed NoReg's pipeline up."""
        base = run("NoReg", duration=6000)
        free = run("NoReg", duration=6000, contention_beta=0.0)
        assert free.client_fps > base.client_fps * 1.1
