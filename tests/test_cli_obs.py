"""CLI tests for the observability verbs: profile, bench, runs, baseline,
compare-runs."""

import json

import pytest

from repro.cli import main

FAST = ("--duration", "4000", "--warmup", "500")


def run_cli(capsys, *argv, expect=0):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == expect, captured.out + captured.err
    return captured.out


@pytest.fixture()
def ledger_dir(tmp_path):
    return str(tmp_path / "runs")


def bench_fast(capsys, ledger_dir, out_path, seeds=("1",)):
    return run_cli(
        capsys, *FAST, "bench", "--ledger", ledger_dir,
        "--seeds", *seeds, "--benchmarks", "IM", "--regulators", "NoReg", "ODR60",
        "-o", out_path,
    )


class TestProfile:
    def test_profile_text_report(self, capsys):
        out = run_cli(capsys, *FAST, "profile", "--benchmark", "IM",
                      "--regulator", "ODR60")
        assert "engine profile:" in out
        assert "stage wall time:" in out
        assert "render" in out
        assert "generator callsites:" in out

    def test_profile_json_summary(self, capsys):
        out = run_cli(capsys, *FAST, "profile", "--json")
        summary = json.loads(out)
        assert summary["events_fired"] > 0
        assert summary["total_wall_s"] > 0
        # per-stage wall time sums to the profiled total within 10%
        stage_sum = sum(summary["wall_by_stage"].values())
        assert abs(stage_sum - summary["total_wall_s"]) <= 0.1 * summary["total_wall_s"]

    def test_profile_trace_overlay(self, capsys, tmp_path):
        trace_path = tmp_path / "prof.trace.json"
        out = run_cli(capsys, *FAST, "profile", "--trace", str(trace_path))
        assert "with overlay" in out
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "event_queue_depth" in names


class TestBenchAndLedgerVerbs:
    def test_bench_writes_ledger_and_report(self, capsys, ledger_dir, tmp_path):
        report_path = tmp_path / "BENCH.json"
        out = bench_fast(capsys, ledger_dir, str(report_path))
        assert "2 cell(s)" in out
        report = json.loads(report_path.read_text())
        assert len(report["cells"]) == 2
        for cell in report["cells"]:
            assert cell["wall_clock_s"] > 0
            assert cell["events_per_sec"] > 0
            assert cell["events_fired"] > 0
        labels = {(c["benchmark"], c["regulator"]) for c in report["cells"]}
        assert labels == {("IM", "NoReg"), ("IM", "ODR60")}

    def test_runs_lists_the_ledger(self, capsys, ledger_dir, tmp_path):
        bench_fast(capsys, ledger_dir, str(tmp_path / "b.json"))
        out = run_cli(capsys, "runs", "--ledger", ledger_dir)
        assert "2 record(s)" in out
        # Labels carry the platform-resolution group since the plan/execute split.
        assert "IM/Priv720p/NoReg" in out and "IM/Priv720p/ODR60" in out

    def test_runs_on_empty_ledger(self, capsys, ledger_dir):
        out = run_cli(capsys, "runs", "--ledger", ledger_dir)
        assert "empty" in out

    def test_baseline_pin_show_and_missing(self, capsys, ledger_dir, tmp_path):
        run_cli(capsys, "baseline", "--ledger", ledger_dir, expect=1)
        bench_fast(capsys, ledger_dir, str(tmp_path / "b.json"))
        out = run_cli(capsys, "baseline", "latest", "--ledger", ledger_dir)
        assert "pinned" in out
        out = run_cli(capsys, "baseline", "--ledger", ledger_dir)
        assert "IM/Priv720p/ODR60" in out

    def test_compare_runs_same_cell_ok(self, capsys, ledger_dir, tmp_path):
        bench_fast(capsys, ledger_dir, str(tmp_path / "b.json"))
        out = run_cli(capsys, "compare-runs", "latest", "latest",
                      "--ledger", ledger_dir)
        assert "OK" in out

    def test_compare_runs_regression_exits_one(self, capsys, ledger_dir, tmp_path):
        bench_fast(capsys, ledger_dir, str(tmp_path / "b.json"))
        # ODR60 (latest) -> NoReg (latest~1): MtP latency balloons
        out = run_cli(capsys, "compare-runs", "latest", "latest~1",
                      "--ledger", ledger_dir, expect=1)
        assert "REGRESSED" in out

    def test_compare_runs_json_format(self, capsys, ledger_dir, tmp_path):
        bench_fast(capsys, ledger_dir, str(tmp_path / "b.json"))
        out = run_cli(capsys, "compare-runs", "latest", "latest",
                      "--ledger", ledger_dir, "--format", "json")
        payload = json.loads(out)
        assert payload["verdict"] == "ok"
        assert {m["name"] for m in payload["metrics"]} >= {
            "client FPS", "FPS gap", "MtP latency (ms)"
        }

    def test_compare_runs_bad_reference_exits_two(self, capsys, ledger_dir):
        run_cli(capsys, "compare-runs", "latest", "--ledger", ledger_dir,
                expect=2)

    def test_compare_runs_accepts_record_files(self, capsys, ledger_dir, tmp_path):
        bench_fast(capsys, ledger_dir, str(tmp_path / "b.json"))
        from repro.obs import RunLedger

        record = RunLedger(ledger_dir).latest()
        standalone = tmp_path / "baseline.json"
        standalone.write_text(json.dumps(record))
        out = run_cli(capsys, "compare-runs", str(standalone), record["run_id"],
                      "--ledger", ledger_dir)
        assert "OK" in out

    def test_matrix_ledger_flag(self, capsys, tmp_path):
        ledger_dir = str(tmp_path / "mruns")
        run_cli(capsys, "--duration", "2000", "--warmup", "500",
                "matrix", str(tmp_path / "out.csv"), "--ledger", ledger_dir)
        from repro.obs import RunLedger

        ledger = RunLedger(ledger_dir)
        # full paper matrix: 28 configurations x 6 benchmarks
        assert len(ledger) == 168
        assert all("engine" in r for r in ledger.records())
