"""Failure-injection tests: transient stalls and recovery.

The paper's acceleration argument, falsified or confirmed: after a
sudden processing-time spike, ODR must recover the QoS target within a
bounded window, while delay-only regulation permanently loses the
frames.
"""

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.pipeline.faults import StallInjector, inject_stall
from repro.simcore import Environment
from repro.simcore.tracing import windowed_counts
from repro.workloads import PRIVATE_CLOUD, Resolution


def build(spec, seed=1, duration=12000.0):
    config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=seed,
                          duration_ms=duration, warmup_ms=2000.0)
    return CloudSystem(config, make_regulator(spec))


class FixedSampler:
    def __init__(self, value):
        self.value = value

    def next(self):
        return self.value


class TestStallInjector:
    def test_stall_fires_once_at_scheduled_time(self):
        env = Environment()
        injector = StallInjector(FixedSampler(5.0), env, [(100.0, 50.0)])
        assert injector.next() == 5.0       # before the stall time
        env.run(until=150)
        assert injector.next() == 55.0      # stall delivered
        assert injector.next() == 5.0       # only once
        assert injector.fired == [(150.0, 50.0)]

    def test_multiple_stalls_ordered(self):
        env = Environment()
        injector = StallInjector(FixedSampler(1.0), env, [(200.0, 10.0), (100.0, 20.0)])
        env.run(until=300)
        assert injector.next() == 31.0  # both pending stalls collapse
        assert len(injector.fired) == 2

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            StallInjector(FixedSampler(1.0), env, [(0.0, 0.0)])
        with pytest.raises(ValueError):
            StallInjector(FixedSampler(1.0), env, [(-1.0, 5.0)])

    def test_unknown_stage_rejected(self):
        system = build("NoReg")
        with pytest.raises(KeyError):
            inject_stall(system, "teleport", 100.0, 10.0)


class TestStallRecovery:
    STALL_AT = 6000.0
    STALL_MS = 400.0

    def window_fps(self, result, start, end):
        counts = windowed_counts(result.counter.times("decode"), 200.0, start, end)
        return [c * 5 for c in counts]

    @pytest.mark.parametrize("stage", ["render", "encode"])
    def test_odr_recovers_within_a_second(self, stage):
        system = build("ODR60")
        inject_stall(system, stage, self.STALL_AT, self.STALL_MS)
        result = system.run()
        # the stall is visible: some window right after it dips
        during = self.window_fps(result, self.STALL_AT, self.STALL_AT + self.STALL_MS)
        assert min(during) < 40
        # one second after the stall ends, delivery is back at target
        after = result.counter.mean_fps(
            "decode", self.STALL_AT + self.STALL_MS + 1000.0, result.t_end
        )
        assert after >= 59.0

    def test_odr_acceleration_repays_stalled_frames(self):
        """Immediately after the stall, ODR runs *above* target to repay
        the debt window — the Fig. 5d catch-up burst."""
        system = build("ODR60")
        inject_stall(system, "encode", self.STALL_AT, self.STALL_MS)
        result = system.run()
        burst = result.counter.mean_fps(
            "decode", self.STALL_AT + self.STALL_MS, self.STALL_AT + self.STALL_MS + 400.0
        )
        assert burst > 65.0

    def test_delay_only_does_not_repay(self):
        accel_sys = build("ODR60", seed=3)
        inject_stall(accel_sys, "encode", self.STALL_AT, self.STALL_MS)
        accel = accel_sys.run()
        noaccel_sys = CloudSystem(
            SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=3,
                         duration_ms=12000.0, warmup_ms=2000.0),
            make_regulator("ODR60-noAccel"),
        )
        inject_stall(noaccel_sys, "encode", self.STALL_AT, self.STALL_MS)
        noaccel = noaccel_sys.run()
        window = (self.STALL_AT, self.STALL_AT + 2000.0)
        accel_delivered = len([t for t in accel.counter.times("decode")
                               if window[0] <= t < window[1]])
        noaccel_delivered = len([t for t in noaccel.counter.times("decode")
                                 if window[0] <= t < window[1]])
        assert accel_delivered > noaccel_delivered

    def test_decode_stall_bounded_under_odr(self):
        """A client-side freeze must not wedge the pipeline: ODR's
        bounded buffering backpressures and then recovers."""
        system = build("ODRMax")
        inject_stall(system, "decode", self.STALL_AT, self.STALL_MS)
        result = system.run()
        after = result.counter.mean_fps("decode", self.STALL_AT + 1500.0, result.t_end)
        assert after > 90
        # latency right after the stall is not seconds (queue stayed tiny)
        post = [s.latency_ms for s in result.tracker.samples
                if self.STALL_AT + self.STALL_MS <= s.issued_at < result.t_end]
        assert post and max(post) < 250

    def test_render_stall_drops_noreg_client_too(self):
        """Sanity: stalls propagate in all systems, not just ODR."""
        system = build("NoReg")
        inject_stall(system, "render", self.STALL_AT, self.STALL_MS)
        result = system.run()
        during = self.window_fps(result, self.STALL_AT, self.STALL_AT + self.STALL_MS)
        assert min(during) < 40
