"""Unit tests for Store / PriorityStore / Resource / Gate."""

import pytest

from repro.simcore import Environment, Gate, PriorityStore, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get_fifo(self, env):
        store = Store(env)
        results = []

        def producer():
            for item in ("a", "b", "c"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                results.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert results == ["a", "b", "c"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        times = []

        def consumer():
            item = yield store.get()
            times.append((env.now, item))

        def producer():
            yield env.timeout(8)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [(8.0, "late")]

    def test_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            log.append(("p1", env.now))
            yield store.put(2)
            log.append(("p2", env.now))

        def consumer():
            yield env.timeout(5)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [("p1", 0.0), ("p2", 5.0)]

    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_try_get_nonblocking(self, env):
        store = Store(env)
        assert store.try_get() is None

        def producer():
            yield store.put("x")

        env.process(producer())
        env.run()
        assert store.try_get() == "x"
        assert store.try_get() is None

    def test_clear_drops_items_and_unblocks_producers(self, env):
        store = Store(env, capacity=2)
        log = []

        def producer():
            for i in range(4):
                yield store.put(i)
                log.append((i, env.now))

        def clearer():
            yield env.timeout(3)
            dropped = store.clear()
            log.append(("cleared", dropped))

        env.process(producer())
        env.process(clearer())
        env.run()
        assert ("cleared", [0, 1]) in log
        # producers 2 and 3 complete after the clear
        assert (2, 3.0) in log and (3, 3.0) in log

    def test_is_full(self, env):
        store = Store(env, capacity=1)

        def producer():
            yield store.put("x")

        env.process(producer())
        env.run()
        assert store.is_full
        assert len(store) == 1


class TestPriorityStore:
    def test_smallest_first(self, env):
        store = PriorityStore(env)
        results = []

        def producer():
            yield store.put((5, "low"))
            yield store.put((1, "high"))
            yield store.put((3, "mid"))

        def consumer():
            yield env.timeout(1)
            for _ in range(3):
                item = yield store.get()
                results.append(item[1])

        env.process(producer())
        env.process(consumer())
        env.run()
        assert results == ["high", "mid", "low"]


class TestResource:
    def test_exclusive_access(self, env):
        res = Resource(env, capacity=1)
        log = []

        def worker(name, hold):
            req = res.request()
            yield req
            log.append((name, "in", env.now))
            yield env.timeout(hold)
            res.release(req)
            log.append((name, "out", env.now))

        env.process(worker("a", 10))
        env.process(worker("b", 5))
        env.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 10.0),
            ("b", "in", 10.0),
            ("b", "out", 15.0),
        ]

    def test_capacity_two_allows_concurrency(self, env):
        res = Resource(env, capacity=2)
        entries = []

        def worker(name):
            req = res.request()
            yield req
            entries.append((name, env.now))
            yield env.timeout(5)
            res.release(req)

        for name in ("a", "b", "c"):
            env.process(worker(name))
        env.run()
        assert entries == [("a", 0.0), ("b", 0.0), ("c", 5.0)]

    def test_release_unknown_raises(self, env):
        res = Resource(env)
        other = Resource(env)
        req = other.request()
        from repro.simcore import SimulationError

        with pytest.raises(SimulationError):
            res.release(req)

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        held = res.request()  # granted immediately
        queued = res.request()
        res.release(queued)  # cancel while still queued
        assert res.count == 1
        res.release(held)
        assert res.count == 0

    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)


class TestGate:
    def test_wait_on_open_gate_is_immediate(self, env):
        gate = Gate(env, is_open=True)

        def proc():
            yield gate.wait()
            return env.now

        assert env.run(env.process(proc())) == 0.0

    def test_wait_blocks_until_open(self, env):
        gate = Gate(env)

        def waiter():
            yield gate.wait()
            return env.now

        def opener():
            yield env.timeout(12)
            gate.open()

        p = env.process(waiter())
        env.process(opener())
        assert env.run(p) == 12.0

    def test_open_is_broadcast(self, env):
        gate = Gate(env)
        woken = []

        def waiter(tag):
            yield gate.wait()
            woken.append(tag)

        for tag in range(3):
            env.process(waiter(tag))

        def opener():
            yield env.timeout(1)
            gate.open()

        env.process(opener())
        env.run()
        assert woken == [0, 1, 2]

    def test_close_reblocks(self, env):
        gate = Gate(env, is_open=True)
        log = []

        def waiter():
            yield gate.wait()
            log.append(env.now)
            gate.close()
            yield gate.wait()
            log.append(env.now)

        def opener():
            yield env.timeout(20)
            gate.open()

        env.process(waiter())
        env.process(opener())
        env.run()
        assert log == [0.0, 20.0]

    def test_pulse_releases_but_stays_closed(self, env):
        gate = Gate(env)
        log = []

        def waiter(tag):
            yield gate.wait()
            log.append((tag, env.now))

        env.process(waiter("first"))

        def pulser():
            yield env.timeout(5)
            gate.pulse()
            assert not gate.is_open

        env.process(pulser())
        env.run()
        assert log == [("first", 5.0)]
