"""Tests for the sweep telemetry plane: bus, events, resources, drain.

The two guarantees everything else rests on:

* **out-of-band** — executor output is bit-identical with the event
  bus attached and detached, serially and in parallel (the double-run
  determinism tests); and
* **cheap when off** — the disabled emit path costs well under the 2%
  budget of a typical cell (mirrors PR 1's engine-probe guard).

Plus the edge cases the exporters must survive: an empty sweep, an
all-cached resume sweep, and an event log cut short by a SIGKILLed
worker (the queue drain must neither hang nor corrupt the log).
"""

import json

import pytest

from repro.experiments import (
    CellSpec,
    ParallelExecutor,
    Plan,
    ResultStore,
    Runner,
    SerialExecutor,
)
from repro.obs import sweep as sweepbus
from repro.obs.runmeta import metrics_digest
from repro.obs.sweep import (
    EVENT_SCHEMA,
    CellResources,
    ResourceMeter,
    SweepEventBus,
    disabled_overhead_report,
    events_path_for,
    read_events,
    sweep_ids,
    validate_events,
    validate_events_file,
)

DURATION_MS = 2000.0
WARMUP_MS = 500.0


def spec(benchmark="IM", regulator="ODR60", seed=1) -> CellSpec:
    return CellSpec(
        benchmark=benchmark,
        platform="private",
        resolution="720p",
        regulator=regulator,
        seed=seed,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


def four_cell_plan() -> Plan:
    return Plan(
        [
            spec("IM", "ODR60"),
            spec("RE", "NoReg"),
            spec("STK", "Int60"),
            spec("IM", "ODR60", seed=2),
        ]
    )


def kinds(events):
    return [event.kind for event in events]


class TestBus:
    def test_emit_envelope_and_order(self):
        bus = SweepEventBus()
        bus.emit(sweepbus.SWEEP_BEGIN, cells=0, executor="serial", workers=1)
        bus.emit(sweepbus.SWEEP_END, executed=0, cached=0, failed=0, wall_s=0.0)
        assert len(bus) == 2
        first, second = bus.events
        assert first.seq == 0 and second.seq == 1
        assert first.sweep_id == second.sweep_id == bus.sweep_id
        assert second.t_s >= first.t_s
        assert first.to_dict()["schema"] == EVENT_SCHEMA

    def test_persist_read_validate_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            bus.emit(sweepbus.SWEEP_BEGIN, cells=1, executor="serial", workers=1)
            bus.emit(sweepbus.CELL_SCHEDULED, run_id="abc", label="IM/x")
            bus.emit(
                sweepbus.CELL_FINISHED, run_id="abc", label="IM/x", wall_s=0.5
            )
            bus.emit(sweepbus.SWEEP_END, executed=1, cached=0, failed=0, wall_s=0.6)
        assert validate_events_file(path) == []
        events = read_events(path)
        assert kinds(events) == [
            "sweep_begin", "cell_scheduled", "cell_finished", "sweep_end",
        ]
        assert events[1].run_id == "abc"
        # from_dict round-trips the envelope and the fields.
        reloaded = sweepbus.SweepEvent.from_dict(events[2].to_dict())
        assert reloaded == events[2]

    def test_log_appends_across_sweeps_and_selects(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ids = []
        for _ in range(2):
            with SweepEventBus(path=path) as bus:
                ids.append(bus.sweep_id)
                bus.emit(
                    sweepbus.SWEEP_BEGIN, cells=0, executor="serial", workers=1
                )
                bus.emit(
                    sweepbus.SWEEP_END, executed=0, cached=0, failed=0, wall_s=0.0
                )
        assert sweep_ids(path) == ids
        assert read_events(path)[0].sweep_id == ids[-1]  # latest by default
        assert read_events(path, sweep_id=ids[0])[0].sweep_id == ids[0]
        with pytest.raises(ValueError):
            read_events(path, sweep_id="nope")

    def test_subscriber_sees_every_event(self):
        seen = []
        bus = SweepEventBus()
        bus.subscribe(seen.append)
        bus.emit(sweepbus.POOL_BROKEN)
        assert [event.kind for event in seen] == ["pool_broken"]

    def test_validation_catches_bad_logs(self):
        def envelope(kind, seq, **fields):
            record = {
                "schema": EVENT_SCHEMA, "sweep_id": "s1", "seq": seq,
                "kind": kind, "t_s": 0.0, "epoch_s": 0.0,
            }
            record.update(fields)
            return record

        ok = [
            envelope("sweep_begin", 0, cells=0, executor="serial", workers=1),
            envelope("sweep_end", 1, executed=0, cached=0, failed=0, wall_s=0.0),
        ]
        assert validate_events(ok) == []
        assert any(
            "schema" in e for e in validate_events([{"schema": 99, "kind": "x"}])
        )
        assert any(
            "unknown kind" in e
            for e in validate_events([envelope("not_a_kind", 0)])
        )
        assert any(
            "missing field" in e
            for e in validate_events([envelope("sweep_begin", 0, cells=1)])
        )
        assert any(
            "before sweep_begin" in e
            for e in validate_events([envelope("pool_broken", 0)])
        )
        shuffled = [ok[0], dict(ok[1], seq=0)]
        assert any("not increasing" in e for e in validate_events(shuffled))
        trailing = ok + [envelope("pool_broken", 2)]
        assert any("after sweep_end" in e for e in validate_events(trailing))

    def test_worker_sink_detached_is_noop_and_swallows_errors(self):
        sweepbus.detach_worker_sink()
        sweepbus.emit_cell_event(sweepbus.CELL_STARTED, run_id="x")  # no sink
        boom = []

        def bad_sink(kind, fields):
            boom.append(kind)
            raise RuntimeError("queue full")

        sweepbus.attach_worker_sink(bad_sink)
        try:
            sweepbus.emit_cell_event(sweepbus.CELL_STARTED, run_id="x")
        finally:
            sweepbus.detach_worker_sink()
        assert boom == ["cell_started"]  # raised, swallowed


class TestResources:
    def test_meter_measures_the_cell_body(self):
        meter = ResourceMeter()
        total = sum(i * i for i in range(200000))
        assert total > 0
        resources = meter.finish(events_fired=1000)
        assert resources.wall_s > 0.0
        assert resources.cpu_user_s >= 0.0 and resources.cpu_sys_s >= 0.0
        assert resources.max_rss_kb > 0
        assert resources.events_per_sec == pytest.approx(
            1000 / resources.wall_s
        )

    def test_roundtrip(self):
        resources = CellResources(
            pid=7, started_epoch_s=1.0, wall_s=2.0, cpu_user_s=0.5,
            cpu_sys_s=0.25, max_rss_kb=1024, events_fired=10, events_per_sec=5.0,
        )
        assert CellResources.from_dict(resources.to_dict()) == resources
        sparse = CellResources.from_dict({"pid": 1})
        assert sparse.events_fired is None and sparse.events_per_sec is None


class TestExecutorIntegration:
    def test_serial_sweep_narrates_itself(self, tmp_path):
        path = tmp_path / "events.jsonl"
        plan = Plan([spec("IM"), spec("STK")])
        with SweepEventBus(path=path) as bus:
            report = SerialExecutor().run(plan, bus=bus)
        assert report.ok
        assert validate_events_file(path) == []
        events = read_events(path)
        assert kinds(events) == [
            "sweep_begin",
            "cell_scheduled", "cell_scheduled",
            "cell_started", "cell_finished",
            "cell_started", "cell_finished",
            "sweep_end",
        ]
        begin, end = events[0], events[-1]
        assert begin.get("cells") == 2 and begin.get("executor") == "serial"
        assert end.get("executed") == 2 and end.get("failed") == 0
        finished = [e for e in events if e.kind == "cell_finished"]
        for event in finished:
            resources = event.get("resources")
            assert resources is not None
            assert resources["wall_s"] == pytest.approx(
                event.get("wall_s"), rel=1e-6
            )
            assert resources["max_rss_kb"] > 0

    def test_parallel_sweep_ships_worker_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            report = ParallelExecutor(workers=2).run(four_cell_plan(), bus=bus)
        assert report.ok
        assert validate_events_file(path) == []
        events = read_events(path)
        by_kind = {}
        for event in events:
            by_kind.setdefault(event.kind, []).append(event)
        assert len(by_kind["worker_spawned"]) == 2
        assert len(by_kind["pool_opened"]) == 1
        assert len(by_kind["cell_started"]) == 4
        assert len(by_kind["cell_finished"]) == 4
        # Worker events carry worker pids, distinct from the parent's.
        import os

        worker_pids = {event.get("pid") for event in by_kind["cell_started"]}
        assert os.getpid() not in worker_pids
        assert len(worker_pids) <= 2

    def test_failure_and_quarantine_events(self, tmp_path):
        bad = CellSpec(
            benchmark="IM", platform="private", resolution="720p",
            regulator="definitely-not-a-regulator", seed=1,
            duration_ms=DURATION_MS, warmup_ms=WARMUP_MS,
        )
        store = ResultStore(tmp_path / "cells")
        good = spec("IM")
        SerialExecutor().run(Plan([good]), store=store)
        # Corrupt the persisted cell so the next scan quarantines it.
        cell_path = store.cell_path(good.run_id)
        cell_path.write_text("{ not json", encoding="utf-8")
        with SweepEventBus() as bus, pytest.warns(RuntimeWarning):
            report = SerialExecutor().run(
                Plan([good, bad]), store=ResultStore(tmp_path / "cells"), bus=bus
            )
        assert not report.ok
        observed = kinds(bus.events)
        assert "cell_quarantined" in observed
        assert "cell_failed" in observed
        failed = [e for e in bus.events if e.kind == "cell_failed"][0]
        assert failed.run_id == bad.run_id
        assert "unrecognized regulator" in failed.get("error")
        quarantine = [e for e in bus.events if e.kind == "cell_quarantined"][0]
        assert quarantine.run_id == good.run_id
        assert "corrupt" in quarantine.get("path")
        # The quarantine hook is restored afterwards.
        assert ResultStore(tmp_path / "cells").on_quarantine is None

    def test_exec_meta_persists_cached_cell_cost(self, tmp_path):
        """Satellite: cached-vs-executed cost stays queryable."""
        store = ResultStore(tmp_path / "cells")
        cell = spec("IM")
        report = SerialExecutor().run(Plan([cell]), store=store)
        executed_wall = report.outcomes[0].wall_clock_s
        meta = store.exec_meta(cell.run_id)
        assert meta is not None
        assert meta["wall_clock_s"] == pytest.approx(executed_wall)
        assert meta["resources"]["max_rss_kb"] > 0
        # A fresh store (new process, resume) reads it back from disk.
        cold = ResultStore(tmp_path / "cells")
        cold_meta = cold.exec_meta(cell.run_id)
        assert cold_meta is not None
        assert cold_meta["wall_clock_s"] == pytest.approx(executed_wall)
        # The cached outcome itself reports zero wall: the distinction
        # between "cost now" and "cost when it ran" is the point.
        resumed = SerialExecutor().run(Plan([cell]), store=cold)
        assert resumed.outcomes[0].cached
        assert resumed.outcomes[0].wall_clock_s == 0.0
        assert cold.exec_meta(cell.run_id)["wall_clock_s"] > 0.0


class TestOutOfBand:
    """The double-run determinism guarantee, bus on vs off."""

    def test_serial_records_identical_with_and_without_bus(self, tmp_path):
        plan = four_cell_plan()
        bare = SerialExecutor().run(plan, store=ResultStore())
        with SweepEventBus(path=tmp_path / "events.jsonl") as bus:
            observed = SerialExecutor().run(plan, store=ResultStore(), bus=bus)
        assert [o.record for o in bare.outcomes] == [
            o.record for o in observed.outcomes
        ]

    def test_parallel_records_identical_with_and_without_bus(self, tmp_path):
        plan = four_cell_plan()
        bare = ParallelExecutor(workers=2).run(plan, store=ResultStore())
        with SweepEventBus(path=tmp_path / "events.jsonl") as bus:
            observed = ParallelExecutor(workers=2).run(
                plan, store=ResultStore(), bus=bus
            )
        assert [o.record for o in bare.outcomes] == [
            o.record for o in observed.outcomes
        ]

    def test_ledger_digests_identical_with_and_without_bus(self, tmp_path):
        from repro.obs.ledger import RunLedger

        plan = Plan([spec("IM"), spec("STK")])
        ledger_off = RunLedger(tmp_path / "off")
        ledger_on = RunLedger(tmp_path / "on")
        SerialExecutor().run(plan, store=ResultStore(), ledger=ledger_off)
        with SweepEventBus() as bus:
            SerialExecutor().run(
                plan, store=ResultStore(), ledger=ledger_on, bus=bus
            )
        digests_off = [metrics_digest(r) for r in ledger_off.records()]
        digests_on = [metrics_digest(r) for r in ledger_on.records()]
        assert digests_off == digests_on

    def test_disabled_overhead_within_budget(self):
        report = disabled_overhead_report(reference_cell_wall_s=0.05)
        assert report["ok"], report
        assert report["disabled_overhead_frac"] < report["budget_frac"]
        assert report["per_emit_ns"] > 0.0


class TestEdgeCases:
    def test_empty_sweep(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            report = SerialExecutor().run(Plan([]), bus=bus)
        assert report.ok and len(report.outcomes) == 0
        assert validate_events_file(path) == []
        events = read_events(path)
        assert kinds(events) == ["sweep_begin", "sweep_end"]
        assert events[0].get("cells") == 0
        assert events[-1].get("executed") == 0

    def test_all_cached_resume_sweep(self, tmp_path):
        plan = Plan([spec("IM"), spec("STK")])
        SerialExecutor().run(plan, store=ResultStore(tmp_path / "cells"))
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            report = ParallelExecutor(workers=2).run(
                plan, store=ResultStore(tmp_path / "cells"), bus=bus
            )
        assert report.ok and report.cached == 2 and report.executed == 0
        assert validate_events_file(path) == []
        events = read_events(path)
        assert kinds(events) == [
            "sweep_begin", "cell_cached", "cell_cached", "sweep_end",
        ]
        assert events[-1].get("cached") == 2

    def test_bus_drains_cleanly_after_worker_sigkill(self, tmp_path, monkeypatch):
        """A SIGKILLed worker breaks the pool mid-sweep; the event queue
        (manager-hosted) survives, the drain stops cleanly, and the log
        stays schema-valid with the crash visible."""
        plan = four_cell_plan()
        victim = plan.specs[2]
        marker = tmp_path / "kills.txt"
        monkeypatch.setenv(
            "ODR_EXECUTOR_SIMULATED_CRASH", f"{victim.run_id}:{marker}:1"
        )
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            report = ParallelExecutor(workers=2).run(plan, bus=bus)
        monkeypatch.delenv("ODR_EXECUTOR_SIMULATED_CRASH")
        assert report.ok, [f.error for f in report.failures]
        assert validate_events_file(path) == []
        observed = kinds(read_events(path))
        assert "pool_broken" in observed
        assert "cell_retried" in observed
        assert observed.count("pool_opened") == 2  # fresh pool for the retry
        assert observed[-1] == "sweep_end"
        # And the records still match an unobserved serial run.
        serial = SerialExecutor().run(plan)
        for a, b in zip(serial.outcomes, report.outcomes):
            assert a.record == b.record

    def test_timeout_emits_cell_timed_out(self, monkeypatch):
        hung, ok = spec("IM"), spec("STK")
        monkeypatch.setenv("ODR_EXECUTOR_SIMULATED_STALL", f"{hung.run_id}:5.0")
        with SweepEventBus() as bus:
            report = ParallelExecutor(workers=2, cell_timeout_s=1.0).run(
                Plan([hung, ok]), bus=bus
            )
        assert not report.ok
        timed_out = [e for e in bus.events if e.kind == "cell_timed_out"]
        assert len(timed_out) == 1
        assert timed_out[0].run_id == hung.run_id
        assert timed_out[0].get("timeout_s") == pytest.approx(1.0)


class TestRunnerWiring:
    def test_runner_passes_bus_through(self, tmp_path):
        runner = Runner(seed=1, duration_ms=DURATION_MS, warmup_ms=WARMUP_MS)
        runner.bus = SweepEventBus(path=tmp_path / "events.jsonl")
        runner.run_plan(Plan([spec("IM")]))
        runner.bus.close()
        observed = kinds(runner.bus.events)
        assert observed[0] == "sweep_begin" and observed[-1] == "sweep_end"
        assert "cell_finished" in observed

    def test_events_path_for(self, tmp_path):
        assert events_path_for(tmp_path) == str(tmp_path / "events.jsonl")


class TestEventsFileToughness:
    def test_blank_lines_and_junk_are_tolerated_by_reader(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            bus.emit(sweepbus.SWEEP_BEGIN, cells=0, executor="serial", workers=1)
            bus.emit(sweepbus.SWEEP_END, executed=0, cached=0, failed=0, wall_s=0.0)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n")  # torn/blank line
        assert len(read_events(path)) == 2
        assert validate_events_file(path) == []

    def test_validate_reports_unreadable_file(self, tmp_path):
        errors = validate_events_file(tmp_path / "missing.jsonl")
        assert errors and "unreadable" in errors[0]
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{ not json\n", encoding="utf-8")
        errors = validate_events_file(bad)
        assert errors and "not JSONL" in errors[0]

    def test_events_jsonl_is_one_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with SweepEventBus(path=path) as bus:
            bus.emit(sweepbus.SWEEP_BEGIN, cells=0, executor="serial", workers=1)
            bus.emit(sweepbus.SWEEP_END, executed=0, cached=0, failed=0, wall_s=0.0)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["schema"] == EVENT_SCHEMA
