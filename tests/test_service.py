"""Tests for the sweep gateway: dedupe, streaming, restart, identity.

The service's non-negotiable invariant, end to end: two clients with
overlapping sweeps get every unique cell executed exactly once, one
ledger row per ``run_id``, and bits identical to an offline serial run
of the union plan.  The stall chaos hook keeps the first job's overlap
cell in flight long enough for the second client to join it.
"""

import asyncio
import socket
import threading
import time

import pytest

from repro.experiments import CellSpec, Plan, ResultStore, SerialExecutor
from repro.obs import sweep as sweepbus
from repro.obs.ledger import RunLedger
from repro.obs.runmeta import metrics_digest
from repro.service import ServiceClient, ServiceGateway, SweepScheduler
from repro.service.protocol import (
    build_plan,
    decode_frame,
    encode_frame,
    plan_payload,
)

DURATION_MS = 2000.0
WARMUP_MS = 500.0


def spec(benchmark="IM", regulator="ODR60", seed=1) -> CellSpec:
    return CellSpec(
        benchmark=benchmark,
        platform="private",
        resolution="720p",
        regulator=regulator,
        seed=seed,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


class GatewayHarness:
    """One scheduler + gateway served from a background thread."""

    def __init__(self, tmp_path, workers=2):
        self.ledger = RunLedger(tmp_path / "ledger")
        self.store = ResultStore(tmp_path / "ledger" / "cells")
        self.scheduler = SweepScheduler(
            self.store, ledger=self.ledger, workers=workers
        )
        self.gateway = ServiceGateway(self.scheduler, port=0)
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        asyncio.run(self._main())

    async def _main(self):
        await self.gateway.start()
        self._ready.set()
        await self.gateway.serve_until_shutdown()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=30), "gateway did not come up"
        return self

    def client(self) -> ServiceClient:
        return ServiceClient(port=self.gateway.port)

    def __exit__(self, *exc):
        try:
            self.client().shutdown()
            self._thread.join(timeout=30)
        finally:
            self.scheduler.close()


def _job_bus(scheduler, job_id):
    job = scheduler.get(job_id)
    assert job is not None
    return job.bus


def _wait_for_started(scheduler, job_id, run_id, timeout_s=30.0):
    """Block until the job's bus shows ``run_id`` executing."""
    bus = _job_bus(scheduler, job_id)
    for _ in range(int(timeout_s / 0.05)):
        for event in bus.events:
            if (
                event.kind == sweepbus.CELL_STARTED
                and event.fields.get("run_id") == run_id
            ):
                return
        time.sleep(0.05)
    raise AssertionError(f"{run_id} never started in job {job_id}")


class TestCrossJobDedupe:
    def test_overlapping_clients_execute_each_cell_once(
        self, tmp_path, monkeypatch
    ):
        x, y, z = spec("IM"), spec("STK", "NoReg"), spec("RE", "Int60")
        # Keep the overlap cell in flight while the second client joins.
        monkeypatch.setenv("ODR_EXECUTOR_SIMULATED_STALL", f"{y.run_id}:2.0")
        with GatewayHarness(tmp_path) as harness:
            client_a, client_b = harness.client(), harness.client()
            job_a = client_a.submit(plan_payload(Plan([x, y])), label="a")
            _wait_for_started(harness.scheduler, job_a["job_id"], y.run_id)
            job_b = client_b.submit(plan_payload(Plan([y, z])), label="b")
            done_a = client_a.wait(job_a["job_id"])
            done_b = client_b.wait(job_b["job_id"])
            assert done_a["state"] == "done" and done_b["state"] == "done"
            assert done_a["executed"] == 2 and done_a["deduped"] == 0

            # The joiner saw the overlap cell as deduped, not re-executed.
            assert done_b["executed"] == 1
            assert done_b["deduped"] == 1
            cells_b = {
                c["run_id"]: c
                for c in client_b.result(job_b["job_id"])["cells"]
            }
            assert cells_b[y.run_id]["deduped"] is True
            assert cells_b[z.run_id]["deduped"] is False

            # Exactly one execution per unique run_id, across both jobs.
            started = [
                e.fields["run_id"]
                for job in (job_a, job_b)
                for e in _job_bus(harness.scheduler, job["job_id"]).events
                if e.kind == sweepbus.CELL_STARTED
            ]
            assert sorted(started) == sorted([x.run_id, y.run_id, z.run_id])

            # The joiner's stream carries the dedupe event.
            kinds_b = [
                e.kind
                for e in _job_bus(harness.scheduler, job_b["job_id"]).events
            ]
            assert sweepbus.CELL_DEDUPED in kinds_b

            # One ledger row per unique run_id.
            rows = harness.ledger.records()
            assert sorted(r["run_id"] for r in rows) == sorted(
                [x.run_id, y.run_id, z.run_id]
            )

            # Bit-identity: the service's persisted bits match an offline
            # serial run of the union plan.
            monkeypatch.delenv("ODR_EXECUTOR_SIMULATED_STALL")
            offline_ledger = RunLedger(tmp_path / "offline")
            offline = SerialExecutor().run(
                Plan([x, y, z]), store=ResultStore(), ledger=offline_ledger
            )
            by_run = {r["run_id"]: r for r in rows}
            for outcome in offline.outcomes:
                run_id = outcome.spec.run_id
                served = client_a.fetch(run_id)
                assert served["metrics_digest"] == metrics_digest(
                    by_run[run_id]
                )
                assert served["metrics_digest"] == metrics_digest(
                    outcome.ledger_record
                )
                # Ledger rows match bit-for-bit modulo host timing
                # (wall clock and events/sec are real elapsed time,
                # outside the digest).
                def _deterministic(row):
                    row = dict(row)
                    row.pop("wall_clock_s", None)
                    engine = dict(row.get("engine", {}))
                    engine.pop("events_per_sec", None)
                    engine.pop("wall_per_sim_second_mean", None)
                    row["engine"] = engine
                    return row

                assert _deterministic(served["ledger_record"]) == (
                    _deterministic(outcome.ledger_record)
                )


class TestWatchStream:
    def test_disconnect_mid_stream_leaves_job_running(
        self, tmp_path, monkeypatch
    ):
        slow = spec("STK", "NoReg")
        monkeypatch.setenv(
            "ODR_EXECUTOR_SIMULATED_STALL", f"{slow.run_id}:2.0"
        )
        with GatewayHarness(tmp_path) as harness:
            client = harness.client()
            job = client.submit(plan_payload(Plan([spec("IM"), slow])))

            # Hand-rolled watcher: read the header and one event, then
            # drop the connection mid-stream.
            with socket.create_connection(
                ("127.0.0.1", harness.gateway.port), timeout=30
            ) as sock:
                stream = sock.makefile("rwb")
                stream.write(
                    encode_frame({"op": "watch", "job_id": job["job_id"]})
                )
                stream.flush()
                header = decode_frame(stream.readline())
                assert header["ok"]
                assert decode_frame(stream.readline())["event"]

            # The job finishes and the server keeps answering.
            done = client.wait(job["job_id"])
            assert done["state"] == "done" and done["executed"] == 2

            # A late watcher still gets the whole history, exactly once.
            events = list(client.watch(job["job_id"]))
            kinds = [e.kind for e in events]
            assert kinds[0] == sweepbus.SWEEP_BEGIN
            assert kinds[-1] == sweepbus.SWEEP_END
            assert kinds.count(sweepbus.CELL_FINISHED) == 2
            seqs = [e.seq for e in events]
            assert seqs == sorted(set(seqs))


class TestRestartResume:
    def test_restart_serves_cells_from_persistent_store(self, tmp_path):
        plan = Plan([spec("IM"), spec("STK", "NoReg")])
        with GatewayHarness(tmp_path) as harness:
            client = harness.client()
            job = client.submit(plan_payload(plan))
            done = client.wait(job["job_id"])
            assert done["executed"] == 2
            first_rows = harness.ledger.records()

        # "Restart": a brand-new scheduler/gateway over the same dirs.
        with GatewayHarness(tmp_path) as harness:
            client = harness.client()
            job = client.submit(plan_payload(plan))
            done = client.wait(job["job_id"])
            assert done["state"] == "done"
            assert done["executed"] == 0 and done["cached"] == 2
            # Cache hits append nothing new to the ledger.
            assert harness.ledger.records() == first_rows


class TestProtocolEdges:
    def test_bad_frames_and_unknown_ops(self, tmp_path):
        with GatewayHarness(tmp_path) as harness:
            with socket.create_connection(
                ("127.0.0.1", harness.gateway.port), timeout=30
            ) as sock:
                stream = sock.makefile("rwb")
                stream.write(b"this is not json\n")
                stream.write(encode_frame({"op": "frobnicate"}))
                stream.write(encode_frame({"op": "ping"}))
                stream.flush()
                bad = decode_frame(stream.readline())
                unknown = decode_frame(stream.readline())
                pong = decode_frame(stream.readline())
            assert not bad["ok"] and "bad frame" in bad["error"]
            assert not unknown["ok"] and "unknown op" in unknown["error"]
            assert pong["ok"] and pong["protocol"] == 1

            client = harness.client()
            with pytest.raises(Exception) as excinfo:
                client.fetch("deadbeef00000000")
            assert "not in store or ledger" in str(excinfo.value)

    def test_matrix_plan_rejects_regulator_selector(self):
        # Builders must reject selectors they can't honor — silently
        # dropping one would execute a different plan than requested.
        with pytest.raises(ValueError, match="groups"):
            build_plan("matrix", {"regulators": ["ODR60"]})
