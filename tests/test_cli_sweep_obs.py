"""CLI tests for the sweep telemetry plane: ``--events``/``--live``,
``watch``, ``sweep-trace``, ``cost``, and the failure surfacing that
``runs`` grew alongside them."""

import json
import os

import pytest

from repro.cli import main
from repro.obs import sweep as sweepbus
from repro.obs.sweep import SweepEventBus, events_path_for, validate_events_file

FAST = ("--duration", "2000", "--warmup", "500")
SMALL_MATRIX = ("--benchmarks", "IM", "--groups", "Priv720p")


def run_cli(capsys, *argv, expect=0):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == expect, captured.out + captured.err
    return captured.out


@pytest.fixture()
def ledger_dir(tmp_path):
    return str(tmp_path / "runs")


def matrix_with_events(capsys, tmp_path, ledger_dir, *extra):
    return run_cli(
        capsys, *FAST, "matrix", str(tmp_path / "m.csv"), *SMALL_MATRIX,
        "--ledger", ledger_dir, "--events", *extra,
    )


class TestEventsFlag:
    def test_matrix_events_writes_valid_log(self, capsys, tmp_path, ledger_dir):
        out = matrix_with_events(capsys, tmp_path, ledger_dir)
        path = events_path_for(ledger_dir)
        assert f"sweep events at {path}" in out
        assert os.path.exists(path)
        assert validate_events_file(path) == []

    def test_live_without_events_needs_no_ledger_file(self, capsys, tmp_path):
        ledger = str(tmp_path / "runs")
        out = run_cli(
            capsys, *FAST, "matrix", str(tmp_path / "m.csv"), *SMALL_MATRIX,
            "--ledger", ledger, "--live",
        )
        # Plain-line dashboard output went to stdout; no events file.
        assert "sweep begin:" in out
        assert "sweep end:" in out
        assert not os.path.exists(events_path_for(ledger))

    def test_chaos_events_flag(self, capsys, tmp_path, ledger_dir):
        out = run_cli(
            capsys, *FAST, "chaos", "--benchmarks", "IM",
            "--fault", "packet_loss", "--seeds", "1",
            "--ledger", ledger_dir, "--events",
        )
        path = events_path_for(ledger_dir)
        assert "chaos: sweep events at" in out
        assert validate_events_file(path) == []


class TestWatch:
    def test_watch_replays_recorded_sweep(self, capsys, tmp_path, ledger_dir):
        matrix_with_events(capsys, tmp_path, ledger_dir)
        out = run_cli(
            capsys, "watch", "--ledger", ledger_dir, "--timeout", "2",
            "--poll", "0.01",
        )
        assert "watch: following" in out
        assert "sweep end:" in out

    def test_watch_times_out_without_events(self, capsys, ledger_dir):
        out = run_cli(
            capsys, "watch", "--ledger", ledger_dir, "--timeout", "0.05",
            "--poll", "0.01", expect=1,
        )
        assert "watch: no events at" in out


class TestSweepTraceVerb:
    def test_trace_renders_from_ledger(self, capsys, tmp_path, ledger_dir):
        matrix_with_events(capsys, tmp_path, ledger_dir)
        trace_path = tmp_path / "sweep.trace.json"
        out = run_cli(
            capsys, "sweep-trace", "--ledger", ledger_dir, "-o", str(trace_path)
        )
        assert "trace event(s) for sweep" in out
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 7  # IM x Priv720p: one span per regulator cell
        lanes = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "sweep control" in lanes and "cached cells" in lanes

    def test_trace_missing_events_exits_two(self, capsys, ledger_dir, tmp_path):
        run_cli(
            capsys, "sweep-trace", "--ledger", ledger_dir,
            "-o", str(tmp_path / "t.json"), expect=2,
        )

    def test_trace_unknown_sweep_id_exits_two(self, capsys, tmp_path, ledger_dir):
        matrix_with_events(capsys, tmp_path, ledger_dir)
        run_cli(
            capsys, "sweep-trace", "--ledger", ledger_dir, "--sweep", "zzzzzz",
            "-o", str(tmp_path / "t.json"), expect=2,
        )


class TestCostVerb:
    def test_cost_breakdown_and_json(self, capsys, tmp_path, ledger_dir):
        matrix_with_events(capsys, tmp_path, ledger_dir, "--workers", "2")
        json_path = tmp_path / "cost.json"
        out = run_cli(
            capsys, "cost", "--ledger", ledger_dir, "-o", str(json_path)
        )
        assert "where the wall clock went:" in out
        assert "pool_warmup" in out and "serialization" in out
        report = json.loads(json_path.read_text(encoding="utf-8"))
        assert report["cells"] == 7
        assert report["executed"] == 7
        assert report["workers"] == 2
        assert len(report["cell_rows"]) == 7
        assert report["parallel_efficiency"] is not None

    def test_cost_without_events_exits_two(self, capsys, ledger_dir):
        run_cli(capsys, "cost", "--ledger", ledger_dir, expect=2)


class TestRunsSurfacing:
    """Satellite: ``runs`` reports quarantined cells and sweep failures."""

    def test_runs_lists_quarantined_cells(self, capsys, tmp_path, ledger_dir):
        # --resume persists cells under <ledger>/cells/ for the next pass.
        matrix_with_events(capsys, tmp_path, ledger_dir, "--resume")
        cells_dir = os.path.join(ledger_dir, "cells")
        victim = sorted(os.listdir(cells_dir))[0]
        with open(os.path.join(cells_dir, victim), "w", encoding="utf-8") as f:
            f.write("{ corrupt")
        # A resume pass trips over the corrupt cell and quarantines it.
        with pytest.warns(RuntimeWarning):
            matrix_with_events(capsys, tmp_path, ledger_dir, "--resume")
        out = run_cli(capsys, "runs", "--ledger", ledger_dir)
        assert "quarantined corrupt cell(s)" in out
        assert victim.replace(".json", "") in out
        assert "will re-execute on the next resume" in out

    def test_runs_lists_last_sweep_failures(self, capsys, ledger_dir):
        os.makedirs(ledger_dir, exist_ok=True)
        with SweepEventBus(path=events_path_for(ledger_dir)) as bus:
            bus.emit(sweepbus.SWEEP_BEGIN, cells=2, executor="serial", workers=1)
            bus.emit(
                sweepbus.CELL_FAILED, run_id="deadbeef", label="IM/x",
                error="ValueError: boom", attempts=2,
            )
            bus.emit(
                sweepbus.CELL_TIMED_OUT, run_id="cafebabe", label="RE/y",
                timeout_s=1.5,
            )
            bus.emit(sweepbus.SWEEP_END, executed=0, cached=0, failed=2,
                     wall_s=0.1)
        out = run_cli(capsys, "runs", "--ledger", ledger_dir)
        assert "failed cell(s) in the last recorded sweep:" in out
        assert "IM/x [deadbeef]: ValueError: boom (after 2 attempt(s))" in out
        assert "RE/y [cafebabe]: timed out after 1.5s" in out

    def test_runs_quiet_when_all_green(self, capsys, tmp_path, ledger_dir):
        matrix_with_events(capsys, tmp_path, ledger_dir)
        out = run_cli(capsys, "runs", "--ledger", ledger_dir)
        assert "quarantined" not in out
        assert "failed cell(s)" not in out
