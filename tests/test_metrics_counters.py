"""Tests for FPS counters and gap computation."""

import pytest

from repro.metrics import FpsCounter


def regular_times(fps, duration_ms, offset=0.0):
    gap = 1000.0 / fps
    n = int(duration_ms / gap)
    return [offset + i * gap for i in range(n)]


class TestFpsCounter:
    def test_record_and_count(self):
        counter = FpsCounter()
        counter.record("render", 1.0)
        counter.record("render", 2.0)
        counter.record("decode", 3.0)
        assert counter.count("render") == 2
        assert counter.count("decode") == 1
        assert counter.count("missing") == 0

    def test_stages_sorted(self):
        counter = FpsCounter()
        counter.record("render", 1)
        counter.record("decode", 1)
        assert counter.stages() == ["decode", "render"]

    def test_mean_fps_regular_stream(self):
        counter = FpsCounter()
        for t in regular_times(60, 5000):
            counter.record("decode", t)
        assert counter.mean_fps("decode", 0, 5000) == pytest.approx(60, abs=0.5)

    def test_mean_fps_respects_range(self):
        counter = FpsCounter()
        for t in regular_times(100, 1000):  # only first second
            counter.record("render", t)
        assert counter.mean_fps("render", 0, 2000) == pytest.approx(50, abs=1)

    def test_mean_fps_empty_window_raises(self):
        with pytest.raises(ValueError):
            FpsCounter().mean_fps("render", 5, 5)

    def test_fps_series_scaling(self):
        counter = FpsCounter(window_ms=500.0)
        for t in regular_times(60, 2000):
            counter.record("decode", t)
        series = counter.fps_series("decode", 0, 2000)
        assert len(series) == 4
        for fps in series:
            assert fps == pytest.approx(60, abs=2)

    def test_stage_fps_summary(self):
        counter = FpsCounter()
        for t in regular_times(30, 10000):
            counter.record("render", t)
        summary = counter.stage_fps("render", 0, 10000)
        assert summary.stage == "render"
        assert summary.mean_fps == pytest.approx(30, abs=0.5)
        assert summary.box.count == 10

    def test_stage_fps_no_windows_raises(self):
        with pytest.raises(ValueError):
            FpsCounter().stage_fps("render", 0, 100)


class TestFpsGap:
    def test_gap_between_stages(self):
        counter = FpsCounter()
        for t in regular_times(180, 5000):
            counter.record("render", t)
        for t in regular_times(90, 5000):
            counter.record("decode", t)
        gap = counter.fps_gap(0, 5000)
        assert gap.mean_gap == pytest.approx(90, abs=2)
        assert gap.max_gap >= gap.mean_gap

    def test_zero_gap_when_rates_match(self):
        counter = FpsCounter()
        for t in regular_times(60, 5000):
            counter.record("render", t)
            counter.record("decode", t + 5.0)
        gap = counter.fps_gap(0, 5000)
        assert gap.mean_gap < 1.5

    def test_negative_gaps_clamped(self):
        counter = FpsCounter()
        for t in regular_times(30, 3000):
            counter.record("render", t)
        for t in regular_times(60, 3000):
            counter.record("decode", t)
        gap = counter.fps_gap(0, 3000)
        assert gap.mean_gap == 0.0

    def test_gap_series_length(self):
        counter = FpsCounter()
        for t in regular_times(60, 4000):
            counter.record("render", t)
            counter.record("decode", t)
        gap = counter.fps_gap(0, 4000)
        assert len(gap.series) == 4

    def test_gap_without_data_raises(self):
        with pytest.raises(ValueError):
            FpsCounter().fps_gap(0, 10)
