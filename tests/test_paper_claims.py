"""End-to-end assertions of the paper's headline claims (shape, not
absolute numbers).

These tests run the same machinery as the benchmark harness but with
short simulations and a reduced benchmark set, so the whole module
stays fast while still pinning every qualitative result the paper
reports.  The full-scale regeneration lives in ``benchmarks/``.
"""

import pytest

from repro.experiments import ExperimentConfig, PlatformRes, Runner
from repro.workloads import GCE, PRIVATE_CLOUD, Resolution

PRIV720 = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)
GCE720 = PlatformRes(GCE, Resolution.R720P)
GCE1080 = PlatformRes(GCE, Resolution.R1080P)


@pytest.fixture(scope="module")
def runner():
    return Runner(seed=1, duration_ms=10000.0, warmup_ms=1500.0)


def cell(runner, bench, combo, spec):
    return runner.run_cell(bench, ExperimentConfig(combo, spec))


class TestSection4Analysis:
    """The InMind analysis of Sec. 4 (Figs. 3, 6, 7)."""

    def test_fig3_noreg_fps_split(self, runner):
        r = cell(runner, "IM", PRIV720, "NoReg")
        assert 170 <= r.render_fps <= 210          # paper: ~189
        assert 80 <= r.encode_fps <= 100           # paper: ~93
        assert abs(r.encode_fps - r.client_fps) < 3

    def test_fig3_int60_undershoots(self, runner):
        r = cell(runner, "IM", PRIV720, "Int60")
        assert 50 <= r.client_fps < 60             # paper: 53

    def test_fig3_intmax_collapses(self, runner):
        # The ratchet keeps decaying with run length (0.78x at 10 s,
        # 0.58x at 60 s); the paper's minutes-long runs land at ~0.5x
        # (46 vs 93 FPS).  At this module's 10 s horizon, assert the
        # collapse is already well underway.
        r = cell(runner, "IM", PRIV720, "IntMax")
        noreg = cell(runner, "IM", PRIV720, "NoReg")
        assert r.client_fps < 0.85 * noreg.client_fps

    def test_fig3_rvs60_undershoots(self, runner):
        r = cell(runner, "IM", PRIV720, "RVS60")
        assert 48 <= r.client_fps < 60             # paper: 54

    def test_fig3_rvsmax_below_noreg(self, runner):
        r = cell(runner, "IM", PRIV720, "RVSMax")
        noreg = cell(runner, "IM", PRIV720, "NoReg")
        assert r.client_fps < 0.92 * noreg.client_fps   # paper: 76 vs 93

    def test_fig6_regulation_raises_latency(self, runner):
        noreg = cell(runner, "IM", PRIV720, "NoReg").mtp_mean_ms
        for spec in ("Int60", "IntMax", "RVS60"):
            assert cell(runner, "IM", PRIV720, spec).mtp_mean_ms > noreg

    def test_fig7_regulation_improves_dram(self, runner):
        noreg = cell(runner, "IM", PRIV720, "NoReg")
        int60 = cell(runner, "IM", PRIV720, "Int60")
        assert int60.row_miss_rate < noreg.row_miss_rate - 0.05
        assert int60.read_access_ns < noreg.read_access_ns * 0.8
        assert int60.ipc > noreg.ipc * 1.05


class TestTable2Claims:
    BENCHES = ("IM", "ITP", "D2")

    def test_noreg_gaps_huge(self, runner):
        gaps = [cell(runner, b, PRIV720, "NoReg").fps_gap_mean for b in self.BENCHES]
        assert sum(gaps) / len(gaps) > 40

    def test_itp_is_worst_offender(self, runner):
        gaps = {b: cell(runner, b, PRIV720, "NoReg").fps_gap_mean for b in self.BENCHES}
        assert max(gaps, key=gaps.get) == "ITP"

    def test_odr_gap_small(self, runner):
        for b in self.BENCHES:
            assert cell(runner, b, PRIV720, "ODRMax").fps_gap_mean < 5

    def test_nopri_gap_below_odr(self, runner):
        for b in self.BENCHES:
            nopri = cell(runner, b, PRIV720, "ODRMax-noPri").fps_gap_mean
            odr = cell(runner, b, PRIV720, "ODRMax").fps_gap_mean
            assert nopri <= odr + 0.5
            assert nopri < 1.2


class TestSection63ClientFps:
    def test_odrmax_beats_noreg(self, runner):
        for bench in ("IM", "RE", "STK"):
            odr = cell(runner, bench, PRIV720, "ODRMax").client_fps
            noreg = cell(runner, bench, PRIV720, "NoReg").client_fps
            assert odr > noreg

    def test_odr_fixed_targets_met(self, runner):
        for bench in ("IM", "RE", "D2"):
            assert cell(runner, bench, PRIV720, "ODR60").client_fps >= 59.5
            assert cell(runner, bench, GCE1080, "ODR30").client_fps >= 29.5

    def test_int_rvs_miss_fixed_targets(self, runner):
        assert cell(runner, "IM", PRIV720, "Int60").client_fps < 60
        assert cell(runner, "IM", PRIV720, "RVS60").client_fps < 60

    def test_odrmax_beats_intmax_and_rvsmax(self, runner):
        odr = cell(runner, "IM", PRIV720, "ODRMax").client_fps
        assert odr > cell(runner, "IM", PRIV720, "IntMax").client_fps * 1.3
        assert odr > cell(runner, "IM", PRIV720, "RVSMax").client_fps * 1.15


class TestSection64Latency:
    def test_noreg_gce_latency_blows_up(self, runner):
        r = cell(runner, "IM", GCE720, "NoReg")
        assert r.mtp_mean_ms > 500          # paper: seconds

    def test_odr_gce_720p_meets_100ms(self, runner):
        for spec in ("ODRMax", "ODR60"):
            r = cell(runner, "IM", GCE720, spec)
            assert r.mtp_mean_ms < 100      # paper: <77ms avg

    def test_odr_gce_1080p_near_120ms(self, runner):
        for spec in ("ODRMax", "ODR30"):
            r = cell(runner, "IM", GCE1080, spec)
            assert r.mtp_mean_ms < 160      # paper: <120ms avg

    def test_odr_latency_below_noreg_on_private(self, runner):
        odr = cell(runner, "IM", PRIV720, "ODRMax").mtp_mean_ms
        noreg = cell(runner, "IM", PRIV720, "NoReg").mtp_mean_ms
        assert odr < noreg

    def test_odr_latency_beats_int_and_rvs(self, runner):
        for bench in ("IM", "RE"):
            odr = cell(runner, bench, PRIV720, "ODR60").mtp_mean_ms
            assert odr < cell(runner, bench, PRIV720, "Int60").mtp_mean_ms
            assert odr < cell(runner, bench, PRIV720, "RVS60").mtp_mean_ms


class TestSection65Efficiency:
    def test_power_reduction_ordering(self, runner):
        noreg = cell(runner, "ITP", PRIV720, "NoReg").power_w
        odrmax = cell(runner, "ITP", PRIV720, "ODRMax").power_w
        odr60 = cell(runner, "ITP", PRIV720, "ODR60").power_w
        assert noreg > odrmax > odr60   # paper: 264 > 206 > 145 (ITP)

    def test_odr60_power_saving_magnitude(self, runner):
        """Paper: ODR60 saves ~22% on average (720p private)."""
        savings = []
        for bench in ("IM", "ITP", "RE"):
            noreg = cell(runner, bench, PRIV720, "NoReg").power_w
            odr = cell(runner, bench, PRIV720, "ODR60").power_w
            savings.append(1 - odr / noreg)
        avg = sum(savings) / len(savings)
        assert 0.10 <= avg <= 0.35

    def test_odr_ipc_gain_magnitude(self, runner):
        """Paper: ODR improves IPC by ~7-21% depending on goal."""
        gains = []
        for bench in ("IM", "ITP", "RE"):
            noreg = cell(runner, bench, PRIV720, "NoReg").ipc
            odr = cell(runner, bench, PRIV720, "ODR60").ipc
            gains.append(odr / noreg - 1)
        avg = sum(gains) / len(gains)
        assert 0.05 <= avg <= 0.35

    def test_int_rvs_power_similar_or_lower_than_odr(self, runner):
        """Paper: Int/RVS burn slightly less — but only because they
        deliver less QoS."""
        int60 = cell(runner, "IM", PRIV720, "Int60")
        odr60 = cell(runner, "IM", PRIV720, "ODR60")
        assert int60.power_w <= odr60.power_w + 5
        assert int60.client_fps < odr60.client_fps

    def test_bandwidth_in_paper_range(self, runner):
        """Sec. 6.6: 15-60 Mbps across benchmarks and configurations."""
        for bench in ("IM", "ITP"):
            for combo, spec in ((PRIV720, "ODR60"), (GCE1080, "ODR30")):
                bw = cell(runner, bench, combo, spec).bandwidth_mbps
                assert 10 <= bw <= 70
