"""Tests for the DRAM / IPC / power / PMU hardware models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CloudSystem, SystemConfig, make_regulator
from repro.hardware import (
    DramModel,
    IpcModel,
    PowerModel,
    evaluate_hardware,
    simulate_pmu_counters,
)
from repro.hardware.dram import DramReport
from repro.simcore import IntervalTrace
from repro.workloads import PRIVATE_CLOUD, Resolution


def make_trace(intervals):
    trace = IntervalTrace()
    for stage, start, end in intervals:
        trace.record(stage, start, end)
    return trace


class TestDramModel:
    def test_idle_system_has_base_behaviour(self):
        report = DramModel().evaluate(IntervalTrace(), 0, 1000)
        assert report.row_miss_rate == pytest.approx(0.594)
        assert report.overlap2_frac == 0.0

    def test_full_overlap_matches_noreg_calibration(self):
        """Fig. 7 anchor: fully overlapped pipeline -> ~70% miss, ~68ns."""
        trace = make_trace([("render", 0, 1000), ("encode", 0, 1000)])
        report = DramModel().evaluate(trace, 0, 1000)
        assert report.row_miss_rate == pytest.approx(0.70, abs=0.01)
        assert report.read_access_ns == pytest.approx(68.0, abs=1.5)

    def test_regulated_overlap_matches_int60_calibration(self):
        """Fig. 7 anchor: ~15% overlap -> ~61% miss, ~47ns."""
        trace = make_trace([("render", 0, 300), ("encode", 150, 700)])
        report = DramModel().evaluate(trace, 0, 1000)
        assert report.overlap2_frac == pytest.approx(0.15)
        assert 0.60 <= report.row_miss_rate <= 0.62
        assert 43 <= report.read_access_ns <= 50

    def test_three_way_overlap_adds_extra_misses(self):
        two = make_trace([("render", 0, 1000), ("encode", 0, 1000)])
        three = make_trace(
            [("render", 0, 1000), ("encode", 0, 1000), ("copy", 0, 1000)]
        )
        model = DramModel()
        assert (
            model.evaluate(three, 0, 1000).row_miss_rate
            > model.evaluate(two, 0, 1000).row_miss_rate
        )

    def test_miss_rate_capped_at_one(self):
        model = DramModel(base_miss_rate=0.95, miss_per_overlap2=0.2)
        trace = make_trace([("render", 0, 1000), ("encode", 0, 1000)])
        assert model.evaluate(trace, 0, 1000).row_miss_rate == 1.0

    @given(
        overlap=st.floats(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_overlap(self, overlap):
        model = DramModel()
        trace = make_trace([("render", 0, 1000), ("encode", 0, overlap)]) if overlap > 0 else make_trace([("render", 0, 1000)])
        report = model.evaluate(trace, 0, 1000)
        baseline = model.evaluate(make_trace([("render", 0, 1000)]), 0, 1000)
        assert report.row_miss_rate >= baseline.row_miss_rate - 1e-12
        assert report.read_access_ns >= baseline.read_access_ns - 1e-9


class TestIpcModel:
    def test_faster_memory_higher_ipc(self):
        model = IpcModel()
        slow = DramReport(0.7, 68.0, 1.0, 0.0)
        fast = DramReport(0.6, 47.0, 0.1, 0.0)
        assert model.evaluate(fast, 1.37) > model.evaluate(slow, 1.37)

    def test_calibration_anchor_plus_21_percent(self):
        """68ns -> 47ns must give roughly +21% IPC (Sec. 6.5)."""
        model = IpcModel()
        slow = model.evaluate(DramReport(0.7, 68.0, 1.0, 0.0), 1.0)
        fast = model.evaluate(DramReport(0.6, 47.0, 0.1, 0.0), 1.0)
        assert (fast / slow - 1.0) == pytest.approx(0.21, abs=0.03)

    def test_scales_linearly_with_peak(self):
        model = IpcModel()
        report = DramReport(0.7, 68.0, 1.0, 0.0)
        assert model.evaluate(report, 2.0) == pytest.approx(2 * model.evaluate(report, 1.0))

    def test_invalid_peak_rejected(self):
        with pytest.raises(ValueError):
            IpcModel().evaluate(DramReport(0.7, 68.0, 1.0, 0.0), 0.0)


class TestPmuCounters:
    def test_derived_read_time_roundtrips(self):
        report = DramReport(0.7, 68.0, 1.0, 0.0)
        counters = simulate_pmu_counters(report, window_ms=10000)
        assert counters.derived_read_time_ns == pytest.approx(68.0, rel=0.01)

    def test_inserts_scale_with_overlap(self):
        busy = simulate_pmu_counters(DramReport(0.7, 68.0, 1.0, 0.0), 1000)
        idle = simulate_pmu_counters(DramReport(0.6, 40.0, 0.0, 0.0), 1000)
        assert busy.unc_m_rpq_inserts > idle.unc_m_rpq_inserts

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            simulate_pmu_counters(DramReport(0.7, 68.0, 1.0, 0.0), 0)

    def test_zero_inserts_rejected_in_derivation(self):
        from repro.hardware.pmu import PmuCounters

        with pytest.raises(ValueError):
            PmuCounters(0, 0, 1000).derived_read_time_ns


class TestPowerModel:
    def run(self, spec, bench="IM", seed=1):
        config = SystemConfig(bench, PRIVATE_CLOUD, Resolution.R720P, seed=seed,
                              duration_ms=8000, warmup_ms=1500)
        return CloudSystem(config, make_regulator(spec)).run()

    def test_breakdown_sums_to_total(self):
        report = PowerModel().evaluate(self.run("NoReg"))
        parts = (report.idle_w + report.render_dynamic_w + report.encode_dynamic_w
                 + report.gpu_residency_w + report.cpu_residency_w)
        assert report.total_w == pytest.approx(parts)

    def test_noreg_burns_more_than_odr60(self):
        noreg = PowerModel().evaluate(self.run("NoReg"))
        odr = PowerModel().evaluate(self.run("ODR60"))
        assert noreg.total_w > odr.total_w

    def test_power_tracks_render_rate(self):
        noreg = PowerModel().evaluate(self.run("NoReg"))
        odr_max = PowerModel().evaluate(self.run("ODRMax"))
        odr_60 = PowerModel().evaluate(self.run("ODR60"))
        # the more excessive rendering removed, the more power saved
        assert noreg.total_w > odr_max.total_w > odr_60.total_w

    def test_logic_weight_raises_render_cost(self):
        heavy = PowerModel().evaluate(self.run("NoReg", bench="0AD"))
        # 0AD has logic_cpu_weight=1.6; its per-frame render power factor
        # must exceed a weight-0.9 benchmark's at the same frame rate.
        light = PowerModel().evaluate(self.run("NoReg", bench="IM"))
        heavy_per_fps = heavy.render_dynamic_w / max(1.0, self.run("NoReg", bench="0AD").render_fps)
        light_per_fps = light.render_dynamic_w / max(1.0, self.run("NoReg", bench="IM").render_fps)
        assert heavy_per_fps > light_per_fps


class TestEvaluateHardware:
    def test_report_fields_populated(self):
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                              duration_ms=6000, warmup_ms=1000)
        result = CloudSystem(config, make_regulator("NoReg")).run()
        hw = evaluate_hardware(result)
        assert 0 < hw.dram.row_miss_rate <= 1
        assert hw.dram.read_access_ns > 0
        assert hw.ipc > 0
        assert hw.power.total_w > 100
        assert hw.pmu.unc_m_rpq_inserts > 0
        d = hw.as_dict()
        assert set(d) == {"row_miss_rate", "read_access_ns", "ipc", "power_w"}

    def test_pmu_consistent_with_dram_model(self):
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                              duration_ms=6000, warmup_ms=1000)
        result = CloudSystem(config, make_regulator("ODR60")).run()
        hw = evaluate_hardware(result)
        assert hw.pmu.derived_read_time_ns == pytest.approx(
            hw.dram.read_access_ns, rel=0.01
        )
