"""Tests for the experiment harness: configs, runner, report, user study."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest

from repro.experiments import (
    ExperimentConfig,
    PlatformRes,
    Runner,
    format_table,
    paper_configuration_matrix,
    platform_res_combos,
)
from repro.experiments.config import regulator_specs_for
from repro.experiments.userstudy import UserStudy, extract_features
from repro.workloads import GCE, PRIVATE_CLOUD, Resolution


@pytest.fixture(scope="module")
def runner():
    return Runner(seed=1, duration_ms=6000.0, warmup_ms=1000.0)


class TestConfigMatrix:
    def test_28_paper_configurations(self):
        assert len(paper_configuration_matrix()) == 28

    def test_32_with_ablation(self):
        assert len(paper_configuration_matrix(include_ablation=True)) == 32

    def test_four_platform_res_groups(self):
        combos = platform_res_combos()
        assert [c.label for c in combos] == ["Priv720p", "GCE720p", "Priv1080p", "GCE1080p"]

    def test_fixed_targets_follow_resolution(self):
        combos = platform_res_combos()
        assert combos[0].fixed_target == 60   # 720p
        assert combos[2].fixed_target == 30   # 1080p

    def test_specs_for_720p_use_60(self):
        combo = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)
        specs = regulator_specs_for(combo)
        assert "Int60" in specs and "ODR60" in specs and "Int30" not in specs

    def test_specs_for_1080p_use_30(self):
        combo = PlatformRes(GCE, Resolution.R1080P)
        specs = regulator_specs_for(combo)
        assert "ODR30" in specs and "ODR60" not in specs

    def test_labels_unique(self):
        labels = [c.label for c in paper_configuration_matrix(include_ablation=True)]
        assert len(labels) == len(set(labels))


class TestRunner:
    def test_record_fields(self, runner):
        combo = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)
        record = runner.run_cell("IM", ExperimentConfig(combo, "ODR60"))
        assert record.benchmark == "IM"
        assert record.regulator == "ODR60"
        assert record.client_fps > 50
        assert record.power_w > 100
        assert 0 <= record.qos_satisfaction <= 1
        assert record.mtp_mean_ms is not None

    def test_memoization_returns_same_object(self, runner):
        combo = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)
        config = ExperimentConfig(combo, "NoReg")
        a = runner.run_cell("RE", config)
        b = runner.run_cell("RE", config)
        assert a is b

    def test_different_seed_not_cached_together(self, runner):
        combo = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)
        config = ExperimentConfig(combo, "NoReg")
        a = runner.run_cell("RE", config, seed=1)
        b = runner.run_cell("RE", config, seed=2)
        assert a is not b

    def test_run_group(self, runner):
        combo = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)
        records = runner.run_group(combo, ["NoReg"], benchmarks=["IM", "RE"])
        assert len(records) == 2
        assert {r.benchmark for r in records} == {"IM", "RE"}

    def test_local_and_gce_labels_do_not_collide(self, runner):
        """Regression test: the Local platform must not share a cache
        label with GCE."""
        from repro.workloads.platforms import LOCAL_MACHINE

        local = PlatformRes(LOCAL_MACHINE, Resolution.R1080P)
        gce = PlatformRes(GCE, Resolution.R1080P)
        assert local.label != gce.label
        a = runner.run_cell("IM", ExperimentConfig(local, "NoReg"))
        b = runner.run_cell("IM", ExperimentConfig(gce, "NoReg"))
        assert a.mtp_mean_ms != b.mtp_mean_ms


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.123]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_none_rendered_as_na(self):
        text = format_table(["x"], [[None]])
        assert "n/a" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_number_formats(self):
        text = format_table(["x"], [[1234.5], [12.34], [1.234]])
        assert "1234" in text and "12.3" in text and "1.23" in text


class TestUserStudyModel:
    def make_record(self, runner, spec="ODR30"):
        combo = PlatformRes(GCE, Resolution.R1080P)
        return runner.run_cell("IM", ExperimentConfig(combo, spec))

    def test_features_extracted(self, runner):
        record = self.make_record(runner)
        features = extract_features(record)
        assert features.client_fps > 0
        assert features.mtp_ms > 0
        assert 0 <= features.stutter_frac <= 1
        assert 0 <= features.tear_score <= 1

    def test_display_synced_caps_fps_and_removes_tearing(self, runner):
        record = self.make_record(runner, spec="NoReg")
        synced = extract_features(record, display_synced=True)
        free = extract_features(record, display_synced=False)
        assert synced.tear_score == 0.0
        assert synced.client_fps <= 60.0
        assert free.tear_score > 0.0

    def test_noreg_tears_more_than_odr(self, runner):
        noreg = extract_features(self.make_record(runner, "NoReg"))
        odr = extract_features(self.make_record(runner, "ODRMax"))
        assert noreg.tear_score > odr.tear_score

    def test_participants_deterministic(self, runner):
        a = UserStudy(runner, seed=3).participants
        b = UserStudy(runner, seed=3).participants
        assert [p.benchmark for p in a] == [p.benchmark for p in b]
        assert [p.lag_threshold_ms for p in a] == [p.lag_threshold_ms for p in b]

    def test_rating_bounds(self, runner):
        study = UserStudy(runner, seed=3)
        from repro.experiments.userstudy import SessionFeatures

        terrible = SessionFeatures(client_fps=5, mtp_ms=5000, stutter_frac=1.0, tear_score=1.0)
        great = SessionFeatures(client_fps=60, mtp_ms=20, stutter_frac=0.0, tear_score=0.0)
        for participant in study.participants[:5]:
            assert 1.0 <= study.rate(participant, terrible) <= 4.0
            assert 6.0 <= study.rate(participant, great) <= 10.0

    def test_reports_thresholding(self, runner):
        study = UserStudy(runner, seed=3)
        from repro.experiments.userstudy import SessionFeatures

        participant = study.participants[0]
        laggy = SessionFeatures(client_fps=60, mtp_ms=10000, stutter_frac=0, tear_score=0)
        clean = SessionFeatures(client_fps=60, mtp_ms=5, stutter_frac=0, tear_score=0)
        assert study.reports(participant, laggy)["lag"] == "yes"
        assert study.reports(participant, clean)["lag"] == "no"
