"""Tests for frame-log export, trace record/replay, and replication."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import io

import pytest

from repro import CloudSystem, SystemConfig, make_regulator
from repro.analysis import (
    RecordedStageModel,
    StageTraces,
    export_frame_log,
    load_frame_log,
    paired_compare,
    record_stage_traces,
    replicate,
)
from repro.analysis.traces import ReplaySampler
from repro.workloads import PRIVATE_CLOUD, Resolution, get_benchmark


def run(spec="ODR60", seed=1, duration=5000.0, benchmark="IM", **kwargs):
    config = SystemConfig(benchmark, PRIVATE_CLOUD, Resolution.R720P, seed=seed,
                          duration_ms=duration, warmup_ms=1000.0, **kwargs)
    return CloudSystem(config, make_regulator(spec)).run()


class TestFrameLog:
    def test_roundtrip(self):
        result = run()
        buffer = io.StringIO()
        count = export_frame_log(result, buffer)
        assert count == len(result.system.app.frames)
        buffer.seek(0)
        frames = load_frame_log(buffer)
        assert len(frames) == count
        original = result.system.app.frames
        for a, b in zip(original[:50], frames[:50]):
            assert a.frame_id == b.frame_id
            assert a.input_ids == b.input_ids
            assert a.priority == b.priority
            assert a.dropped == b.dropped
            assert (a.t_displayed is None) == (b.t_displayed is None)
            if a.t_displayed is not None:
                assert a.t_displayed == pytest.approx(b.t_displayed, abs=1e-5)

    def test_file_path_roundtrip(self, tmp_path):
        result = run(duration=2000)
        path = tmp_path / "frames.csv"
        export_frame_log(result, str(path))
        frames = load_frame_log(str(path))
        assert frames and frames[0].frame_id == 1

    def test_missing_columns_rejected(self):
        buffer = io.StringIO("frame_id,priority\n1,0\n")
        with pytest.raises(ValueError):
            load_frame_log(buffer)

    def test_drop_reasons_preserved(self):
        result = run(spec="NoReg")
        buffer = io.StringIO()
        export_frame_log(result, buffer)
        buffer.seek(0)
        frames = load_frame_log(buffer)
        dropped = [f for f in frames if f.dropped is not None]
        assert len(dropped) == len(result.dropped_frames())


class TestReplaySampler:
    def test_sequence_and_wrap(self):
        sampler = ReplaySampler([1.0, 2.0, 3.0])
        assert [sampler.next() for _ in range(7)] == [1, 2, 3, 1, 2, 3, 1]
        assert sampler.wraps == 2

    def test_scale(self):
        sampler = ReplaySampler([2.0], scale=1.5)
        assert sampler.next() == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplaySampler([])
        with pytest.raises(ValueError):
            ReplaySampler([1.0, -1.0])


class TestRecordedStageModel:
    def test_mean_and_scaling(self):
        model = RecordedStageModel((2.0, 4.0))
        assert model.mean_ms == 3.0
        assert model.scaled(2.0).mean_ms == 6.0
        with pytest.raises(ValueError):
            model.scaled(0)

    def test_sampler_ignores_rng(self):
        model = RecordedStageModel((5.0,))
        assert model.sampler(None).next() == 5.0


class TestStageTraces:
    def test_record_from_run(self):
        result = run()
        traces = record_stage_traces(result)
        for stage in ("render", "copy", "encode", "decode"):
            assert traces.length(stage) > 100

    def test_save_load_roundtrip(self):
        result = run(duration=3000)
        traces = record_stage_traces(result)
        buffer = io.StringIO()
        traces.save(buffer)
        buffer.seek(0)
        loaded = StageTraces.load(buffer)
        for stage in traces.stages:
            assert loaded.stages[stage] == pytest.approx(traces.stages[stage], abs=1e-5)

    def test_load_empty_rejected(self):
        with pytest.raises(ValueError):
            StageTraces.load(io.StringIO("stage,index,duration_ms\n"))

    def test_empty_stage_rejected(self):
        with pytest.raises(ValueError):
            StageTraces(stages={"render": []})

    def test_replay_profile_reproduces_run(self):
        """Replaying a recorded workload (contention off on both sides)
        must reproduce the original run's FPS nearly exactly."""
        original = run(spec="ODR60", duration=6000, contention_beta=0.0)
        traces = record_stage_traces(original)
        profile = traces.as_profile(get_benchmark("IM"))
        replay = run(spec="ODR60", duration=6000, benchmark=profile,
                     contention_beta=0.0)
        assert replay.client_fps == pytest.approx(original.client_fps, rel=0.03)

    def test_replay_what_if_changes_regulator(self):
        """The same recorded workload can be pushed through another
        regulator — a deterministic what-if."""
        original = run(spec="NoReg", duration=6000, contention_beta=0.0)
        traces = record_stage_traces(original)
        profile = traces.as_profile(get_benchmark("IM"))
        what_if = run(spec="ODR60", duration=6000, benchmark=profile,
                      contention_beta=0.0)
        assert what_if.client_fps >= 59.0
        assert what_if.fps_gap().mean_gap < original.fps_gap().mean_gap / 10


class TestReplication:
    def test_replicate_summaries(self):
        rep = replicate(lambda seed: {"x": float(seed), "y": 2.0}, seeds=[1, 2, 3])
        assert rep["x"].mean == 2.0
        assert rep["x"].n == 3
        assert rep["y"].std == 0.0
        assert "x" in rep and "z" not in rep
        assert rep.names() == ["x", "y"]

    def test_ci_narrows_with_n(self):
        wide = replicate(lambda s: {"x": float(s % 5)}, seeds=range(5))
        narrow = replicate(lambda s: {"x": float(s % 5)}, seeds=range(50))
        assert narrow["x"].ci95_halfwidth < wide["x"].ci95_halfwidth

    def test_metric_set_mismatch_rejected(self):
        def factory(seed):
            return {"x": 1.0} if seed == 1 else {"y": 1.0}

        with pytest.raises(ValueError):
            replicate(factory, seeds=[1, 2])

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {"x": 1.0}, seeds=[])

    def test_significance_helpers(self):
        pos = replicate(lambda s: {"x": 10.0 + (s % 3) * 0.1}, seeds=range(10))
        assert pos["x"].significantly_positive()
        assert not pos["x"].significantly_negative()

    def test_paired_compare_removes_workload_variance(self):
        """ODRMax vs NoReg client FPS, paired by seed: every delta is
        positive and the CI excludes zero."""
        def noreg(seed):
            return {"client_fps": run("NoReg", seed=seed, duration=4000).client_fps}

        def odr(seed):
            return {"client_fps": run("ODRMax", seed=seed, duration=4000).client_fps}

        deltas = paired_compare(noreg, odr, seeds=[1, 2, 3, 4])
        summary = deltas["client_fps"]
        assert all(v > 0 for v in summary.values)
        assert summary.significantly_positive()

    def test_paired_no_shared_metrics_rejected(self):
        with pytest.raises(ValueError):
            paired_compare(lambda s: {"a": 1.0}, lambda s: {"b": 1.0}, seeds=[1])
