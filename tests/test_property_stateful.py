"""Model-based (stateful hypothesis) tests for the buffer disciplines.

Each rule machine drives the real implementation and a trivial Python
model side by side through random operation sequences, checking they
never diverge.  These catch ordering/bookkeeping bugs that example-based
tests miss.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.pipeline.buffers import ByteBudgetQueue, Mailbox, MultiBuffer
from repro.pipeline.frames import Frame
from repro.simcore import Environment


def frame(fid, size=100):
    f = Frame(frame_id=fid)
    f.size_bytes = size
    return f


class MailboxMachine(RuleBasedStateMachine):
    """Mailbox vs a one-slot model: latest-wins, handoff to waiters."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.box = Mailbox(self.env)
        self.model_slot = None
        self.model_drops = 0
        self.received = []
        self.expected = []
        self.next_id = 1
        self.waiting = 0

    @rule()
    def offer(self):
        fid = self.next_id
        self.next_id += 1
        self.box.offer(frame(fid))
        if self.waiting:
            # direct hand-off to the oldest waiting getter; the engine
            # delivers the callback at the current instant
            while self.env.peek() <= self.env.now:
                self.env.step()
            self.waiting -= 1
            self.expected.append(fid)
        elif self.model_slot is not None:
            self.model_drops += 1
            self.model_slot = fid
        else:
            self.model_slot = fid

    @rule()
    def get(self):
        event = self.box.get()

        def _collect(ev):
            self.received.append(ev.value.frame_id)

        if event.triggered:
            self.env.run(until=self.env.now)  # flush the immediate event
            self.received.append(event.value.frame_id)
        else:
            event.callbacks.append(_collect)
            self.waiting += 1
            return
        # model: immediate get consumed the slot
        assert self.model_slot is not None
        self.expected.append(self.model_slot)
        self.model_slot = None

    @invariant()
    def histories_match(self):
        assert self.received == self.expected
        assert self.box.drop_count == self.model_drops
        assert self.box.occupied == (self.model_slot is not None)


class ByteQueueMachine(RuleBasedStateMachine):
    """ByteBudgetQueue vs a FIFO model with byte accounting."""

    BUDGET = 500

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.queue = ByteBudgetQueue(self.env, budget_bytes=self.BUDGET)
        self.model = []          # admitted frames (fid, size)
        self.model_waiting = []  # blocked puts
        self.model_getters = 0
        self.received = []
        self.expected = []
        self.next_id = 1

    def _model_dispatch(self):
        progressed = True
        while progressed:
            progressed = False
            while self.model_waiting:
                fid, size = self.model_waiting[0]
                used = sum(s for _, s in self.model)
                fits = (not self.model and size >= self.BUDGET) or used + size <= self.BUDGET
                if not fits:
                    break
                self.model.append(self.model_waiting.pop(0))
                progressed = True
            while self.model_getters and self.model:
                self.model_getters -= 1
                fid, _ = self.model.pop(0)
                self.expected.append(fid)
                progressed = True

    @rule(size=__import__("hypothesis").strategies.integers(min_value=50, max_value=400))
    def put(self, size):
        fid = self.next_id
        self.next_id += 1
        self.queue.put(frame(fid, size=size))
        self.model_waiting.append((fid, size))
        self._model_dispatch()

    @rule()
    def get(self):
        event = self.queue.get()
        event.callbacks.append(lambda ev: self.received.append(ev.value.frame_id))
        if event.triggered:
            self.env.step()  # deliver the already-triggered event
        self.model_getters += 1
        self._model_dispatch()

    @invariant()
    def fifo_order_and_bytes_match(self):
        # drain any pending engine events at the current instant
        while self.env.peek() <= self.env.now:
            self.env.step()
        assert self.received == self.expected
        assert self.queue.queued_bytes == sum(s for _, s in self.model)


class MultiBufferMachine(RuleBasedStateMachine):
    """MultiBuffer front/back state machine vs its invariants."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.buf = MultiBuffer(self.env)
        self.back = None
        self.front = None
        self.next_id = 1
        self.consumed = []
        self.flushed = []

    @precondition(lambda self: self.back is None)
    @rule()
    def put(self):
        fid = self.next_id
        self.next_id += 1
        self.buf.put_back(frame(fid))
        self.back = fid

    @precondition(lambda self: self.back is not None and self.front is None)
    @rule()
    def swap(self):
        self.buf.swap()
        self.front, self.back = self.back, None

    @precondition(lambda self: self.front is not None)
    @rule()
    def take(self):
        got = self.buf.take_front()
        self.consumed.append(got.frame_id)
        assert got.frame_id == self.front
        self.front = None

    @rule()
    def flush(self):
        dropped = self.buf.flush_back()
        if self.back is None:
            assert dropped is None
        else:
            assert dropped is not None and dropped.frame_id == self.back
            self.flushed.append(self.back)
            self.back = None

    @invariant()
    def occupancy_matches(self):
        assert self.buf.back_occupied == (self.back is not None)
        assert (self.buf.front is not None) == (self.front is not None)

    @invariant()
    def consumed_in_order(self):
        assert self.consumed == sorted(self.consumed)
        # no frame is both consumed and flushed
        assert not set(self.consumed) & set(self.flushed)


TestMailboxMachine = MailboxMachine.TestCase
TestByteQueueMachine = ByteQueueMachine.TestCase
TestMultiBufferMachine = MultiBufferMachine.TestCase

for case in (TestMailboxMachine, TestByteQueueMachine, TestMultiBufferMachine):
    case.settings = settings(max_examples=60, stateful_step_count=40, deadline=None)
