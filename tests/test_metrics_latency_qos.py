"""Tests for MtP latency tracking and windowed QoS checks."""
# simlint: disable-file=R6 -- determinism tests assert exact reproduced timestamps on purpose

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MtpLatencyTracker, qos_satisfaction


class TestMtpLatencyTracker:
    def test_single_sample(self):
        tracker = MtpLatencyTracker()
        tracker.input_issued(1, 100.0)
        closed = tracker.frame_displayed([1], 150.0)
        assert len(closed) == 1
        assert closed[0].latency_ms == 50.0
        assert tracker.mean_latency() == 50.0

    def test_input_combining_closes_multiple(self):
        tracker = MtpLatencyTracker()
        tracker.input_issued(1, 100.0)
        tracker.input_issued(2, 110.0)
        closed = tracker.frame_displayed([1, 2], 160.0)
        assert sorted(s.latency_ms for s in closed) == [50.0, 60.0]

    def test_first_display_wins(self):
        tracker = MtpLatencyTracker()
        tracker.input_issued(1, 0.0)
        tracker.frame_displayed([1], 30.0)
        again = tracker.frame_displayed([1], 60.0)
        assert again == []
        assert tracker.latencies() == [30.0]

    def test_unknown_input_ignored(self):
        tracker = MtpLatencyTracker()
        assert tracker.frame_displayed([42], 10.0) == []

    def test_duplicate_input_id_raises(self):
        tracker = MtpLatencyTracker()
        tracker.input_issued(1, 0.0)
        with pytest.raises(ValueError):
            tracker.input_issued(1, 5.0)

    def test_display_before_issue_raises(self):
        tracker = MtpLatencyTracker()
        tracker.input_issued(1, 100.0)
        with pytest.raises(ValueError):
            tracker.frame_displayed([1], 50.0)

    def test_open_count(self):
        tracker = MtpLatencyTracker()
        tracker.input_issued(1, 0.0)
        tracker.input_issued(2, 0.0)
        tracker.frame_displayed([1], 10.0)
        assert tracker.open_count == 1

    def test_mean_without_samples_raises(self):
        with pytest.raises(ValueError):
            MtpLatencyTracker().mean_latency()

    def test_box_summary(self):
        tracker = MtpLatencyTracker()
        for i in range(10):
            tracker.input_issued(i, float(i))
            tracker.frame_displayed([i], float(i) + 20.0 + i)
        box = tracker.box()
        assert box.count == 10
        assert box.mean == pytest.approx(24.5)

    @given(
        issue_times=st.lists(
            st.floats(min_value=0, max_value=1e4), min_size=1, max_size=30, unique=True
        ),
        delay=st.floats(min_value=0.1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_latency_always_equals_delay(self, issue_times, delay):
        tracker = MtpLatencyTracker()
        for i, t in enumerate(issue_times):
            tracker.input_issued(i, t)
            tracker.frame_displayed([i], t + delay)
        for sample in tracker.samples:
            assert sample.latency_ms == pytest.approx(delay)


class TestQosSatisfaction:
    def make_stream(self, fps, duration_ms):
        gap = 1000.0 / fps
        return [i * gap for i in range(int(duration_ms / gap))]

    def test_steady_stream_meets_target(self):
        report = qos_satisfaction(self.make_stream(60, 10000), 60, 0, 10000)
        assert report.met
        assert report.satisfaction == 1.0

    def test_slow_stream_fails_target(self):
        report = qos_satisfaction(self.make_stream(30, 10000), 60, 0, 10000)
        assert not report.met
        assert report.satisfaction < 0.2

    def test_stall_detected(self):
        # steady 60 FPS except for a 400ms stall at 5s
        times = [t for t in self.make_stream(60, 10000) if not 5000 <= t < 5400]
        report = qos_satisfaction(times, 60, 0, 10000)
        assert not report.met
        assert report.worst_window_fps < 30

    def test_window_count(self):
        report = qos_satisfaction(self.make_stream(60, 1000), 60, 0, 1000, window_ms=200)
        assert report.n_windows == 5

    def test_bad_target_raises(self):
        with pytest.raises(ValueError):
            qos_satisfaction([1.0], 0, 0, 100)

    def test_satisfaction_without_windows_raises(self):
        report = qos_satisfaction([], 60, 0, 100)
        with pytest.raises(ValueError):
            _ = report.satisfaction

    def test_tolerance_allows_boundary_jitter(self):
        # exactly-at-target stream shifted by half a frame
        times = [t + 8.0 for t in self.make_stream(60, 10000)]
        report = qos_satisfaction(times, 60, 0, 10000)
        assert report.satisfaction > 0.95
