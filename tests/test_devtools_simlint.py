"""Per-rule tests for ``repro.devtools.simlint``.

Each rule gets at least one positive snippet (must fire) and one
negative snippet (must stay silent), all linted via :func:`lint_source`
so the tests exercise the same AST path as the CLI.
"""

import textwrap

import pytest

from repro.devtools.simlint import (
    RULES,
    Finding,
    LintReport,
    lint_paths,
    lint_source,
)


def lint(source, module="repro.obs.example", **kwargs):
    # Default module sits outside the R7/R8 package gates so snippets
    # exercising other rules need not be fully annotated.
    return lint_source(textwrap.dedent(source), module=module, **kwargs)


def rules_of(findings):
    return [f.rule for f in findings]


class TestR1RandomUse:
    def test_import_random_fires(self):
        findings = lint("import random\n")
        assert "R1" in rules_of(findings)

    def test_from_random_import_fires(self):
        findings = lint("from random import choice\n")
        assert "R1" in rules_of(findings)

    def test_numpy_random_attribute_fires(self):
        findings = lint(
            """
            import numpy as np

            def draw():
                return np.random.random()
            """
        )
        assert "R1" in rules_of(findings)

    def test_default_rng_fires(self):
        findings = lint(
            """
            from numpy.random import default_rng

            GEN = default_rng(7)
            """
        )
        assert "R1" in rules_of(findings)

    def test_allowlisted_module_is_silent(self):
        findings = lint("import random\n", module="repro.simcore.rng")
        assert "R1" not in rules_of(findings)

    def test_seeded_rng_use_is_silent(self):
        findings = lint(
            """
            from repro.simcore import SeededRng

            def draw(rng: SeededRng) -> float:
                return rng.uniform()
            """
        )
        assert findings == []


class TestR2WallClock:
    def test_time_time_fires(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.time()
            """
        )
        assert "R2" in rules_of(findings)

    def test_perf_counter_alias_fires(self):
        findings = lint(
            """
            from time import perf_counter

            def stamp():
                return perf_counter()
            """
        )
        assert "R2" in rules_of(findings)

    def test_datetime_now_fires(self):
        findings = lint(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert "R2" in rules_of(findings)

    def test_probes_module_is_allowlisted(self):
        findings = lint(
            """
            import time

            def stamp():
                return time.perf_counter()
            """,
            module="repro.obs.probes",
        )
        assert "R2" not in rules_of(findings)

    def test_env_now_is_silent(self):
        findings = lint(
            """
            def stamp(env):
                return env.now
            """
        )
        assert findings == []


class TestR3MutableDefaults:
    def test_list_default_fires(self):
        findings = lint("def f(items=[]):\n    return items\n")
        assert "R3" in rules_of(findings)

    def test_dict_call_default_fires(self):
        findings = lint("def f(table=dict()):\n    return table\n")
        assert "R3" in rules_of(findings)

    def test_none_default_is_silent(self):
        findings = lint("def f(items=None):\n    return items or []\n")
        assert "R3" not in rules_of(findings)

    def test_tuple_default_is_silent(self):
        findings = lint("def f(items=()):\n    return items\n")
        assert "R3" not in rules_of(findings)


class TestR4SetIteration:
    def test_for_over_set_literal_fires(self):
        findings = lint(
            """
            def f():
                for x in {1, 2, 3}:
                    print(x)
            """
        )
        assert "R4" in rules_of(findings)

    def test_for_over_set_call_fires(self):
        findings = lint(
            """
            def f(items):
                for x in set(items):
                    print(x)
            """
        )
        assert "R4" in rules_of(findings)

    def test_comprehension_over_set_union_fires(self):
        findings = lint(
            """
            def f(a, b):
                return [x for x in set(a) | set(b)]
            """
        )
        assert "R4" in rules_of(findings)

    def test_sorted_set_is_silent(self):
        findings = lint(
            """
            def f(items):
                for x in sorted(set(items)):
                    print(x)
            """
        )
        assert "R4" not in rules_of(findings)

    def test_list_iteration_is_silent(self):
        findings = lint(
            """
            def f(items):
                for x in list(items):
                    print(x)
            """
        )
        assert findings == []


class TestR5EngineProcesses:
    def test_non_generator_process_fires(self):
        findings = lint(
            """
            def loop(env):
                return None

            def build(env):
                env.process(loop(env))
            """
        )
        assert "R5" in rules_of(findings)

    def test_generator_process_is_silent(self):
        findings = lint(
            """
            def loop(env):
                yield env.timeout(1.0)

            def build(env):
                env.process(loop(env))
            """
        )
        assert "R5" not in rules_of(findings)

    def test_method_generator_resolved_across_class(self):
        findings = lint(
            """
            class Stage:
                def run(self, env):
                    yield env.timeout(1.0)

                def build(self, env):
                    env.process(self.run(env))
            """
        )
        assert "R5" not in rules_of(findings)

    def test_method_non_generator_fires(self):
        findings = lint(
            """
            class Stage:
                def run(self, env):
                    return 1

                def build(self, env):
                    env.process(self.run(env))
            """
        )
        assert "R5" in rules_of(findings)


class TestR6TimestampEquality:
    def test_eq_on_timestamps_fires(self):
        findings = lint(
            """
            def f(frame, env):
                return frame.t_displayed == env.now
            """
        )
        assert "R6" in rules_of(findings)

    def test_neq_on_ms_suffix_fires(self):
        findings = lint(
            """
            def f(deadline_ms, elapsed_ms):
                return deadline_ms != elapsed_ms
            """
        )
        assert "R6" in rules_of(findings)

    def test_ordering_comparison_is_silent(self):
        findings = lint(
            """
            def f(deadline_ms, elapsed_ms):
                return elapsed_ms < deadline_ms
            """
        )
        assert "R6" not in rules_of(findings)

    def test_non_timestamp_names_are_silent(self):
        findings = lint(
            """
            def f(count, total):
                return count == total
            """
        )
        assert findings == []

    def test_is_none_check_is_silent(self):
        findings = lint(
            """
            def f(t_displayed):
                return t_displayed is None
            """
        )
        assert findings == []


class TestR7ModuleState:
    def test_module_level_list_fires(self):
        findings = lint("CACHE = []\n", module="repro.pipeline.example")
        assert "R7" in rules_of(findings)

    def test_module_level_dict_fires(self):
        findings = lint("REGISTRY = {}\n", module="repro.regulators.example")
        assert "R7" in rules_of(findings)

    def test_outside_r7_packages_is_silent(self):
        findings = lint("CACHE = []\n", module="repro.analysis.example")
        assert "R7" not in rules_of(findings)

    def test_dunder_all_exempt(self):
        findings = lint('__all__ = ["f"]\n', module="repro.pipeline.example")
        assert "R7" not in rules_of(findings)

    def test_frozen_constants_are_silent(self):
        findings = lint(
            """
            LIMIT = 5
            NAMES = ("a", "b")
            KINDS = frozenset({"x"})
            """,
            module="repro.core.example",
        )
        assert "R7" not in rules_of(findings)

    def test_class_attributes_are_silent(self):
        findings = lint(
            """
            class Config:
                defaults = {"a": 1}
            """,
            module="repro.pipeline.example",
        )
        assert "R7" not in rules_of(findings)


class TestR8Annotations:
    def test_unannotated_public_function_fires(self):
        findings = lint(
            "def step(event):\n    return event\n", module="repro.simcore.example"
        )
        assert "R8" in rules_of(findings)
        assert "step" in findings[0].message

    def test_missing_return_annotation_fires(self):
        findings = lint(
            "def step(event: object):\n    return event\n",
            module="repro.core.example",
        )
        assert "R8" in rules_of(findings)
        assert "return" in findings[0].message

    def test_fully_annotated_is_silent(self):
        findings = lint(
            "def step(event: object) -> object:\n    return event\n",
            module="repro.simcore.example",
        )
        assert "R8" not in rules_of(findings)

    def test_private_function_exempt(self):
        findings = lint(
            "def _step(event):\n    return event\n", module="repro.simcore.example"
        )
        assert "R8" not in rules_of(findings)

    def test_self_needs_no_annotation(self):
        findings = lint(
            """
            class Engine:
                def step(self) -> None:
                    pass
            """,
            module="repro.simcore.example",
        )
        assert "R8" not in rules_of(findings)

    def test_outside_r8_packages_is_silent(self):
        findings = lint(
            "def step(event):\n    return event\n", module="repro.obs.example"
        )
        assert "R8" not in rules_of(findings)

    def test_r8_covers_the_mypy_strict_packages(self):
        for module in (
            "repro.pipeline.example",
            "repro.multitenant.example",
            "repro.analysis.example",
        ):
            findings = lint(
                "def step(event):\n    return event\n", module=module
            )
            assert "R8" in rules_of(findings), module


class TestSuppressions:
    def test_disable_comment_silences_rule(self):
        findings = lint(
            """
            def f():
                for x in {1, 2}:  # simlint: disable=R4 -- order irrelevant
                    print(x)
            """
        )
        assert "R4" not in rules_of(findings)

    def test_disable_is_rule_specific(self):
        findings = lint(
            """
            def f(t_a, t_b):
                return t_a == t_b  # simlint: disable=R4
            """
        )
        assert "R6" in rules_of(findings)

    def test_disable_multiple_rules(self):
        findings = lint(
            """
            def f(t_a, t_b):
                return t_a == t_b  # simlint: disable=R4, R6
            """
        )
        assert findings == []


class TestFileLevelSuppressions:
    def test_disable_file_silences_rule_everywhere(self):
        findings = lint(
            """
            # simlint: disable-file=R6 -- exact-timestamp asserts are the point
            def f(t_a, t_b):
                return t_a == t_b

            def g(t_c, t_d):
                return t_c != t_d
            """
        )
        assert "R6" not in rules_of(findings)

    def test_disable_file_is_rule_specific(self):
        findings = lint(
            """
            # simlint: disable-file=R6 -- timestamps only
            import random

            def f(t_a, t_b):
                return t_a == t_b
            """
        )
        assert "R1" in rules_of(findings)
        assert "R6" not in rules_of(findings)

    def test_disable_file_requires_rationale(self):
        findings = lint(
            """
            # simlint: disable-file=R6
            def f(t_a, t_b):
                return t_a == t_b
            """
        )
        assert "R6" in rules_of(findings)

    def test_disable_file_below_header_is_ignored(self):
        findings = lint(
            """
            def f(t_a, t_b):
                return t_a == t_b

            # simlint: disable-file=R6 -- too late, mid-file
            def g(t_c, t_d):
                return t_c == t_d
            """
        )
        assert rules_of(findings).count("R6") == 2


class TestHarness:
    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def broken(:\n")
        assert rules_of(findings) == ["E1"]

    def test_select_restricts_rules(self):
        source = "import random\nCACHE = []\n"
        findings = lint_source(
            source, module="repro.pipeline.example", select=["R7"]
        )
        assert rules_of(findings) == ["R7"]

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError):
            lint_source("x = 1\n", select=["R99"])

    def test_findings_sorted_by_location(self):
        source = "import random\nimport time\n\ndef f():\n    return time.time()\n"
        findings = lint_source(source, module="repro.pipeline.example")
        assert [f.line for f in findings] == sorted(f.line for f in findings)

    def test_finding_render_format(self):
        finding = Finding(rule="R1", path="a.py", line=3, col=5, message="m")
        assert finding.render() == "a.py:3:5: R1 m"

    def test_rules_catalogue_complete(self):
        assert sorted(RULES) == [f"R{i}" for i in range(1, 9)]

    def test_lint_paths_on_tree(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 5\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import random\n")
        report = lint_paths([str(tmp_path)])
        assert isinstance(report, LintReport)
        assert report.files_scanned == 2
        assert not report.ok
        assert report.counts() == {"R1": 1}

    def test_repo_tree_is_clean(self):
        report = lint_paths(["src/repro", "tests"])
        assert report.ok, "\n".join(f.render() for f in report.findings)
