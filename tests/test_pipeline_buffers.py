"""Unit tests for the three inter-stage buffer disciplines."""

import pytest

from repro.pipeline.buffers import ByteBudgetQueue, Mailbox, MultiBuffer
from repro.pipeline.frames import DropReason, Frame
from repro.simcore import Environment


@pytest.fixture
def env():
    return Environment()


def frame(fid, size=0, inputs=()):
    f = Frame(frame_id=fid, input_ids=set(inputs))
    f.size_bytes = size
    return f


class TestMailbox:
    def test_offer_then_get(self, env):
        box = Mailbox(env)
        box.offer(frame(1))

        def consumer():
            got = yield box.get()
            return got.frame_id

        assert env.run(env.process(consumer())) == 1

    def test_get_blocks_until_offer(self, env):
        box = Mailbox(env)

        def consumer():
            got = yield box.get()
            return (got.frame_id, env.now)

        def producer():
            yield env.timeout(5)
            box.offer(frame(7))

        p = env.process(consumer())
        env.process(producer())
        assert env.run(p) == (7, 5.0)

    def test_overwrite_drops_older_frame(self, env):
        box = Mailbox(env)
        old, new = frame(1), frame(2)
        dropped = box.offer(old)
        assert dropped is None
        dropped = box.offer(new)
        assert dropped is old
        assert old.dropped is DropReason.MAILBOX_OVERWRITE
        assert box.drop_count == 1

    def test_overwrite_inherits_input_ids(self, env):
        box = Mailbox(env)
        old = frame(1, inputs=(10, 11))
        new = frame(2, inputs=(12,))
        box.offer(old)
        box.offer(new)
        assert new.input_ids == {10, 11, 12}

    def test_direct_handoff_to_waiting_getter_never_drops(self, env):
        box = Mailbox(env)
        results = []

        def consumer():
            for _ in range(2):
                got = yield box.get()
                results.append(got.frame_id)

        env.process(consumer())

        def producer():
            yield env.timeout(1)
            box.offer(frame(1))
            yield env.timeout(1)
            box.offer(frame(2))

        env.process(producer())
        env.run()
        assert results == [1, 2]
        assert box.drop_count == 0

    def test_drop_callback_invoked(self, env):
        seen = []
        box = Mailbox(env, on_drop=lambda f: seen.append(f.frame_id))
        box.offer(frame(1))
        box.offer(frame(2))
        assert seen == [1]

    def test_occupied_flag(self, env):
        box = Mailbox(env)
        assert not box.occupied
        box.offer(frame(1))
        assert box.occupied


class TestMultiBuffer:
    def test_producer_consumer_handshake(self, env):
        buf = MultiBuffer(env)
        consumed = []

        def producer():
            for fid in range(1, 4):
                yield from buf.put_when_free(frame(fid))
                yield env.timeout(1)

        def consumer():
            for _ in range(3):
                yield from buf.swap_when_ready()
                got = buf.take_front()
                consumed.append(got.frame_id)
                yield env.timeout(5)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert consumed == [1, 2, 3]
        assert buf.swap_count == 3

    def test_producer_blocks_while_back_full(self, env):
        buf = MultiBuffer(env)
        times = []

        def producer():
            yield from buf.put_when_free(frame(1))
            times.append(env.now)
            yield from buf.put_when_free(frame(2))
            times.append(env.now)

        def consumer():
            yield env.timeout(10)
            yield from buf.swap_when_ready()
            buf.take_front()

        env.process(producer())
        env.process(consumer())
        env.run()
        # second put had to wait for the consumer's swap at t=10
        assert times == [0.0, 10.0]

    def test_consumer_blocks_until_back_full(self, env):
        buf = MultiBuffer(env)

        def consumer():
            yield from buf.swap_when_ready()
            return env.now

        def producer():
            yield env.timeout(4)
            yield from buf.put_when_free(frame(1))

        p = env.process(consumer())
        env.process(producer())
        assert env.run(p) == 4.0

    def test_swap_requires_full_back(self, env):
        buf = MultiBuffer(env)
        with pytest.raises(RuntimeError):
            buf.swap()

    def test_swap_over_unconsumed_front_rejected(self, env):
        buf = MultiBuffer(env)

        def run():
            yield from buf.put_when_free(frame(1))
            buf.swap()
            yield from buf.put_when_free(frame(2))
            buf.swap()  # front still holds frame 1

        p = env.process(run())
        with pytest.raises(RuntimeError):
            env.run(p)

    def test_double_put_rejected(self, env):
        buf = MultiBuffer(env)

        def run():
            yield from buf.put_when_free(frame(1))
            buf.put_back(frame(2))

        p = env.process(run())
        with pytest.raises(RuntimeError):
            env.run(p)

    def test_take_front_empty_rejected(self, env):
        buf = MultiBuffer(env)
        with pytest.raises(RuntimeError):
            buf.take_front()

    def test_flush_back_drops_and_unblocks_producer(self, env):
        buf = MultiBuffer(env)
        log = []

        def producer():
            yield from buf.put_when_free(frame(1, inputs=(5,)))
            yield from buf.put_when_free(frame(2))
            log.append(("second-put", env.now))

        env.process(producer())

        def flusher():
            yield env.timeout(3)
            dropped = buf.flush_back()
            log.append(("flushed", dropped.frame_id, dropped.input_ids))

        env.process(flusher())
        env.run()
        assert ("flushed", 1, {5}) in log
        assert ("second-put", 3.0) in log
        assert buf.flush_count == 1

    def test_flush_empty_back_is_noop(self, env):
        buf = MultiBuffer(env)
        assert buf.flush_back() is None
        assert buf.flush_count == 0

    def test_swap_when_ready_survives_flush_race(self, env):
        """A flush between the gate firing and the consumer running must
        re-block the consumer instead of swapping an empty buffer."""
        buf = MultiBuffer(env)
        consumed = []

        def consumer():
            yield from buf.swap_when_ready()
            consumed.append(buf.take_front().frame_id)

        env.process(consumer())

        def producer():
            yield env.timeout(1)
            yield from buf.put_when_free(frame(1))
            # flush at the same timestamp the gate opened
            buf.flush_back()
            yield env.timeout(1)
            yield from buf.put_when_free(frame(2))

        env.process(producer())
        env.run()
        assert consumed == [2]


class TestByteBudgetQueue:
    def test_put_get_fifo(self, env):
        q = ByteBudgetQueue(env, budget_bytes=10**6)
        order = []

        def producer():
            for fid in (1, 2, 3):
                yield q.put(frame(fid, size=100))

        def consumer():
            for _ in range(3):
                got = yield q.get()
                order.append(got.frame_id)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert order == [1, 2, 3]

    def test_put_blocks_when_budget_exceeded(self, env):
        q = ByteBudgetQueue(env, budget_bytes=250)
        times = []

        def producer():
            for fid in range(4):
                yield q.put(frame(fid, size=100))
                times.append(env.now)

        def consumer():
            yield env.timeout(10)
            yield q.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        # 2 frames fit; the third waits for the consumer at t=10; the
        # fourth still blocks forever (only one get happened)
        assert times[:3] == [0.0, 0.0, 10.0]
        assert len(times) == 3

    def test_oversized_frame_admitted_alone(self, env):
        q = ByteBudgetQueue(env, budget_bytes=100)

        def producer():
            yield q.put(frame(1, size=500))
            return env.now

        assert env.run(env.process(producer())) == 0.0
        assert q.queued_bytes == 500

    def test_queued_bytes_accounting(self, env):
        q = ByteBudgetQueue(env, budget_bytes=10**6)

        def run():
            yield q.put(frame(1, size=100))
            yield q.put(frame(2, size=250))
            assert q.queued_bytes == 350
            yield q.get()
            assert q.queued_bytes == 250

        env.run(env.process(run()))

    def test_put_requires_size(self, env):
        q = ByteBudgetQueue(env, budget_bytes=100)
        with pytest.raises(ValueError):
            q.put(frame(1, size=0))

    def test_clear_drops_queued(self, env):
        q = ByteBudgetQueue(env, budget_bytes=10**6)

        def run():
            yield q.put(frame(1, size=10))
            yield q.put(frame(2, size=10))
            dropped = q.clear()
            assert [f.frame_id for f in dropped] == [1, 2]
            assert q.queued_bytes == 0

        env.run(env.process(run()))

    def test_bad_budget_rejected(self, env):
        with pytest.raises(ValueError):
            ByteBudgetQueue(env, budget_bytes=0)

    def test_congestion_backpressure_throttles_producer(self, env):
        """The GCE NoReg mechanism: a slow drainer bounds producer rate."""
        q = ByteBudgetQueue(env, budget_bytes=1000)
        put_times = []

        def producer():
            for fid in range(20):
                yield q.put(frame(fid, size=500))
                put_times.append(env.now)

        def consumer():
            while True:
                yield q.get()
                yield env.timeout(10)  # slow drain

        env.process(producer())
        env.process(consumer())
        env.run(until=200)
        # steady state: one put per 10ms drain period
        steady = [b - a for a, b in zip(put_times[3:], put_times[4:])]
        assert all(abs(gap - 10) < 1e-6 for gap in steady)
