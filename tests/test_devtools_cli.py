"""CLI-level tests for ``odr-sim lint`` and ``odr-sim verify-determinism``."""

import json

import pytest

from repro.cli import main


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 5\n")
        code = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 finding(s)" in out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        code = main(["lint", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "R1" in out
        assert "bad.py" in out

    def test_repo_source_tree_lints_clean(self, capsys):
        assert main(["lint", "src/repro"]) == 0

    def test_seeded_violation_detected_in_repo_scan(self, tmp_path, capsys):
        """End-to-end guard: a planted violation flips the exit code."""
        bad = tmp_path / "planted.py"
        bad.write_text("import time\n\ndef f():\n    return time.time()\n")
        code = main(["lint", "src/repro", str(bad)])
        assert code == 1

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\nCACHE = []\n")
        code = main(["lint", str(tmp_path), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 1
        payload = json.loads(out)
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"R1": 1}
        assert payload["findings"][0]["rule"] == "R1"

    def test_select_filters_rules(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import random\n")
        assert main(["lint", str(tmp_path), "--select", "R2"]) == 0
        assert main(["lint", str(tmp_path), "--select", "R1,R2"]) == 1
        capsys.readouterr()

    def test_bad_select_is_usage_error(self, tmp_path, capsys):
        code = main(["lint", str(tmp_path), "--select", "R99"])
        err = capsys.readouterr().err
        assert code == 2
        assert "R99" in err

    def test_missing_path_is_usage_error(self, capsys):
        code = main(["lint", "no/such/dir.txt"])
        assert code == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        code = main(["lint", "--list-rules"])
        out = capsys.readouterr().out
        assert code == 0
        for rule in ("R1", "R8"):
            assert rule in out


class TestVerifyDeterminismCommand:
    def test_deterministic_run_exits_zero(self, capsys):
        code = main(
            [
                "--seed", "3", "--duration", "800", "--warmup", "200",
                "verify-determinism", "--regulator", "NoReg",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "MATCH" in out

    def test_reports_both_digests(self, capsys):
        main(
            [
                "--duration", "500", "--warmup", "100",
                "verify-determinism", "--regulator", "NoReg",
            ]
        )
        out = capsys.readouterr().out
        assert "run 1:" in out and "run 2:" in out

    def test_unknown_regulator_rejected(self):
        with pytest.raises(ValueError):
            main(["--duration", "500", "verify-determinism",
                  "--regulator", "Bogus"])
