"""Tests for the job journal and ``serve --resume`` crash recovery.

The contract under test: a SIGKILLed gateway owes its clients the jobs
it acknowledged.  The append-only ``<ledger>/jobs.jsonl`` journal plus
``SweepScheduler.recover`` must resurrect every submitted-but-unfinished
job under its original job id and token, re-execute *only* the cells
the first life never finished, and leave a ledger that is row-for-row
identical to an uninterrupted sweep's.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments import CellSpec, Plan, ResultStore, SerialExecutor
from repro.obs import sweep as sweepbus
from repro.obs.ledger import RunLedger
from repro.obs.runmeta import metrics_digest
from repro.service import (
    JobJournal,
    JobSpec,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    SweepScheduler,
    journal_path_for,
)

DURATION_MS = 2000.0
WARMUP_MS = 500.0


def spec(benchmark="IM", regulator="ODR60", seed=1) -> CellSpec:
    return CellSpec(
        benchmark=benchmark,
        platform="private",
        resolution="720p",
        regulator=regulator,
        seed=seed,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
    )


class TestJobJournal:
    def test_pending_tracks_unfinished_submissions(self, tmp_path):
        journal = JobJournal(journal_path_for(tmp_path))
        journal.record_submitted(
            "job-a", "cells", {"cells": []}, label="", token="tok-a", cells=0
        )
        journal.record_submitted(
            "job-b", "cells", {"cells": []}, label="lbl", token="tok-b", cells=2
        )
        assert [e.job_id for e in journal.pending()] == ["job-a", "job-b"]

        journal.record_finished("job-a", "done", executed=0, cached=0)
        pending = journal.pending()
        assert [e.job_id for e in pending] == ["job-b"]
        assert pending[0].token == "tok-b" and pending[0].cells == 2
        assert journal.finished_ids() == {"job-a": "done"}

        journal.record_finished("job-b", "failed", failed=2, error="boom")
        assert journal.pending() == []

    def test_replay_reopens_from_disk(self, tmp_path):
        path = journal_path_for(tmp_path)
        JobJournal(path).record_submitted(
            "job-x", "cells", {"cells": []}, label="", token="t", cells=1
        )
        # A different instance (a restarted process) sees the entry.
        assert [e.job_id for e in JobJournal(path).pending()] == ["job-x"]

    def test_torn_final_line_and_junk_are_skipped(self, tmp_path):
        path = journal_path_for(tmp_path)
        journal = JobJournal(path)
        journal.record_submitted(
            "job-ok", "cells", {"cells": []}, label="", token="t", cells=1
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"schema": 999, "kind": "job_submitted"}) + "\n")
            handle.write('{"schema": 1, "kind": "job_subm')  # torn mid-append
        assert [e.job_id for e in journal.pending()] == ["job-ok"]

    def test_missing_file_is_empty(self, tmp_path):
        journal = JobJournal(journal_path_for(tmp_path / "never-created"))
        assert journal.pending() == [] and journal.entries() == []


class TestInProcessRecovery:
    def test_recover_resumes_only_missing_cells(self, tmp_path):
        ledger_dir = tmp_path / "ledger"
        cells = [spec("IM"), spec("STK", "NoReg")]
        done, missing = cells

        # Life one: the job was journaled, one cell finished (persisted
        # store + ledger), then the process "died".
        SerialExecutor().run(
            Plan([done]),
            store=ResultStore(ledger_dir / "cells"),
            ledger=RunLedger(ledger_dir),
        )
        journal = JobJournal(journal_path_for(ledger_dir))
        params = {"cells": [c.to_dict() for c in cells]}
        journal.record_submitted(
            "job-test123", "cells", params, label="resumed",
            token="tok-recover", cells=len(cells),
        )

        # Life two: a fresh scheduler over the same dirs recovers it.
        scheduler = SweepScheduler(
            ResultStore(ledger_dir / "cells"),
            ledger=RunLedger(ledger_dir),
            workers=1,
            journal=journal,
        )
        try:
            recovered = scheduler.recover()
            assert [job.job_id for job in recovered] == ["job-test123"]
            job = recovered[0]
            assert job.recovered and job.spec.label == "resumed"

            for _ in range(1200):
                if job.state.terminal:
                    break
                time.sleep(0.05)
            assert job.state.value == "done"
            report = job.report
            assert report is not None
            assert report.executed == 1 and report.cached == 1
            cached_ids = {o.spec.run_id for o in report.outcomes if o.cached}
            assert cached_ids == {done.run_id}

            kinds = [e.kind for e in job.bus.events]
            assert sweepbus.JOB_RECOVERED in kinds
            summary = job.summary()
            assert summary["recovered"] is True

            # Recovery closed the journal entry: nothing pends anymore.
            assert journal.pending() == []
            # A client submit-retry with the pre-crash token joins the
            # recovered job instead of forking a duplicate sweep.
            joined = scheduler.submit(
                JobSpec(kind="cells", params=params, token="tok-recover")
            )
            assert joined is job
        finally:
            scheduler.close()

        # One ledger row per cell — re-execution deduped, bit-identical.
        rows = RunLedger(ledger_dir).records()
        assert sorted(r["run_id"] for r in rows) == sorted(
            c.run_id for c in cells
        )


class TestKillDashNineRecovery:
    def _serve(self, ledger_dir, extra_env=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
        )
        env["PYTHONUNBUFFERED"] = "1"
        if extra_env:
            env.update(extra_env)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--workers", "1", "--chunk", "1",
                "--ledger", str(ledger_dir), "--resume", "--no-warm",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        port = None
        assert proc.stdout is not None
        for _ in range(200):
            line = proc.stdout.readline()
            if not line:
                break
            if "serve: listening on" in line:
                port = int(line.split(":")[2].split()[0])
                break
        assert port, "server never reported its port"
        return proc, port

    def test_sigkill_resume_executes_only_missing_cells(self, tmp_path):
        ledger_dir = tmp_path / "ledger"
        fast, stalled = spec("IM"), spec("STK", "NoReg")
        plan = Plan([fast, stalled])

        # Life one: the second cell stalls forever; kill -9 mid-sweep.
        proc, port = self._serve(
            ledger_dir,
            extra_env={
                "ODR_EXECUTOR_SIMULATED_STALL": f"{stalled.run_id}:300"
            },
        )
        job_id = None
        try:
            client = ServiceClient(port=port, connect_wait_s=30.0)
            job_id = client.submit(
                {"kind": "cells", "cells": [c.to_dict() for c in plan]},
                label="kill-nine",
            )["job_id"]
            for _ in range(600):
                try:
                    if client.fetch(fast.run_id).get("ledger_record"):
                        break
                except ServiceError:
                    pass
                time.sleep(0.1)
            else:
                pytest.fail("first cell never persisted before the kill")
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)

        journal = JobJournal(journal_path_for(ledger_dir))
        assert [e.job_id for e in journal.pending()] == [job_id]

        # Life two: same ledger, no stall — recovery finishes the sweep.
        proc, port = self._serve(ledger_dir)
        try:
            client = ServiceClient(
                port=port, connect_wait_s=30.0,
                retry=RetryPolicy(attempts=3, base_delay_s=0.05, seed=3),
            )
            status = None
            for _ in range(600):
                try:
                    status = client.status(job_id)["job"]
                    break
                except ServiceError:
                    time.sleep(0.1)  # recovery races the listener
            assert status is not None, "recovered job never reappeared"
            done = client.wait(job_id)
            assert done["state"] == "done" and done.get("recovered") is True
            # Only the stalled cell re-executed; the fast one warmed in.
            assert done["executed"] == 1 and done["cached"] == 1
            served = {
                c.run_id: client.fetch(c.run_id)["metrics_digest"]
                for c in plan
            }
            client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        # Post-mortem: journal drained, one ledger row per cell, and the
        # interrupted sweep's bits match an uninterrupted offline run.
        assert journal.pending() == []
        rows = RunLedger(ledger_dir).records()
        assert sorted(r["run_id"] for r in rows) == sorted(
            c.run_id for c in plan
        )
        offline = SerialExecutor().run(
            Plan(list(plan)), ledger=RunLedger(tmp_path / "offline")
        )
        for outcome in offline.outcomes:
            assert outcome.ledger_record is not None
            assert served[outcome.spec.run_id] == metrics_digest(
                outcome.ledger_record
            )
