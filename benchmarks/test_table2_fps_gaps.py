"""Table 2 — average/max FPS gaps for every configuration.

Paper anchors: NoReg averages 60.7 (720p private), 154.7 (720p GCE),
140.6 (1080p GCE) frames of gap with IMHOTEP the worst offender;
every regulated configuration sits in single digits; ODRMax-noPri is
always below one frame; PriorityFrame adds only ~1-2 frames.
"""

from repro.experiments.tables import table2


def test_table2_fps_gaps(benchmark, runner, save_text):
    result = benchmark.pedantic(lambda: table2(runner), rounds=1, iterations=1)
    save_text(
        "table2_fps_gaps",
        result["text"],
        data=[
            {
                "group": r.group,
                "spec": r.spec,
                "avg_gap": r.avg_gap,
                "max_gap": r.max_gap,
                "worst_benchmark": r.worst_benchmark,
            }
            for r in result["rows"]
        ],
    )
    rows = {(r.group, r.spec): r for r in result["rows"]}

    # NoReg gaps are enormous on every platform
    assert rows[("Priv720p", "NoReg")].avg_gap > 40
    assert rows[("GCE720p", "NoReg")].avg_gap > 100
    assert rows[("GCE1080p", "NoReg")].avg_gap > 40

    # IMHOTEP is the worst NoReg offender everywhere
    for group in ("Priv720p", "GCE720p", "GCE1080p"):
        assert rows[(group, "NoReg")].worst_benchmark == "ITP"

    # every regulated configuration collapses the gap to single digits
    for (group, spec), row in rows.items():
        if spec != "NoReg":
            assert row.avg_gap < 8, f"{group}/{spec} avg gap {row.avg_gap}"

    # the ODRMax-noPri ablation stays below one frame (multi-buffering
    # alone nearly eliminates the gap)
    for group in ("Priv720p", "GCE720p", "GCE1080p"):
        assert rows[(group, "ODRMax-noPri")].avg_gap < 1.0

    # PriorityFrame costs only a couple of frames of gap
    for group in ("Priv720p", "GCE720p", "GCE1080p"):
        delta = rows[(group, "ODRMax")].avg_gap - rows[(group, "ODRMax-noPri")].avg_gap
        assert delta < 6.0

    benchmark.extra_info["noreg_priv720_avg_gap"] = round(
        rows[("Priv720p", "NoReg")].avg_gap, 1
    )
    benchmark.extra_info["odrmax_priv720_avg_gap"] = round(
        rows[("Priv720p", "ODRMax")].avg_gap, 2
    )
