"""Ablation — ODR's three components isolated.

Not a paper table, but implied by its component analysis: multi-
buffering alone (ODRMax-noPri) eliminates the gap; PriorityFrame buys
latency at a small gap cost; acceleration (vs a delay-only clock) is
what holds the windowed QoS target under spikes.
"""

from repro.experiments.config import ExperimentConfig, PlatformRes
from repro.experiments.report import format_table
from repro.workloads import BENCHMARKS, PRIVATE_CLOUD, Resolution

PRIV720 = PlatformRes(PRIVATE_CLOUD, Resolution.R720P)

SPECS = ["NoReg", "ODRMax", "ODRMax-noPri", "ODR60", "ODR60-noAccel", "ODR60-noPri"]


def run_ablation(runner):
    rows = {}
    for spec in SPECS:
        records = [
            runner.run_cell(bench, ExperimentConfig(PRIV720, spec)) for bench in BENCHMARKS
        ]
        rows[spec] = {
            "client_fps": sum(r.client_fps for r in records) / len(records),
            "gap": sum(r.fps_gap_mean for r in records) / len(records),
            "mtp_ms": sum(r.mtp_mean_ms for r in records) / len(records),
            "qos": sum(r.qos_satisfaction for r in records) / len(records),
        }
    return rows


def test_ablation_components(benchmark, runner, save_text):
    rows = benchmark.pedantic(lambda: run_ablation(runner), rounds=1, iterations=1)
    text = format_table(
        ["config", "client FPS", "gap", "MtP ms", "QoS windows"],
        [[s, v["client_fps"], v["gap"], v["mtp_ms"], v["qos"]] for s, v in rows.items()],
        title="Ablation: ODR components (720p private, averaged over benchmarks)",
    )
    save_text("ablation_components", text)

    # multi-buffering alone removes the gap entirely
    assert rows["ODRMax-noPri"]["gap"] < 1.0
    assert rows["NoReg"]["gap"] > 40

    # PriorityFrame trades a small gap for a large latency cut
    assert rows["ODRMax"]["gap"] - rows["ODRMax-noPri"]["gap"] < 3.0
    assert rows["ODRMax"]["mtp_ms"] < rows["ODRMax-noPri"]["mtp_ms"]
    assert rows["ODR60"]["mtp_ms"] < rows["ODR60-noPri"]["mtp_ms"]

    # acceleration defends the windowed QoS target
    assert rows["ODR60"]["qos"] >= rows["ODR60-noAccel"]["qos"]
    assert rows["ODR60"]["client_fps"] >= rows["ODR60-noAccel"]["client_fps"]

    benchmark.extra_info["priority_latency_cut_ms"] = round(
        rows["ODRMax-noPri"]["mtp_ms"] - rows["ODRMax"]["mtp_ms"], 1
    )
