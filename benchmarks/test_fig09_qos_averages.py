"""Figure 9 — average client FPS and MtP latency, all 28 configurations.

Paper anchors: ODRMax's average client FPS beats NoReg's (+5.5 %
overall) and crushes IntMax (+62 %) and RVSMax (+33 %); ODR30/60 hit
their targets while Int/RVS miss them; NoReg's GCE latency reaches
seconds while ODR stays around 60-120 ms everywhere.
"""

from repro.experiments.figures import fig09_qos_averages


def test_fig09_qos_averages(benchmark, runner, save_text):
    result = benchmark.pedantic(lambda: fig09_qos_averages(runner), rounds=1, iterations=1)
    save_text("fig09_qos_averages", result["text"])
    groups = result["data"]["groups"]
    overall = result["data"]["overall"]

    # --- client FPS ---------------------------------------------------
    priv720 = groups["Priv720p"]
    assert priv720["ODRMax"]["client_fps"] > priv720["NoReg"]["client_fps"]
    assert priv720["ODRMax"]["client_fps"] > 1.3 * priv720["IntMax"]["client_fps"]
    assert priv720["ODRMax"]["client_fps"] > 1.1 * priv720["RVSMax"]["client_fps"]
    assert priv720["ODR60"]["client_fps"] >= 60.0
    assert priv720["Int60"]["client_fps"] < 60.0
    assert priv720["RVS60"]["client_fps"] < 60.0

    gce1080 = groups["GCE1080p"]
    assert gce1080["ODR30"]["client_fps"] >= 30.0
    assert gce1080["Int30"]["client_fps"] < 30.5

    # --- MtP latency -----------------------------------------------------
    assert groups["GCE720p"]["NoReg"]["mtp_ms"] > 500      # seconds-scale
    assert groups["GCE720p"]["ODRMax"]["mtp_ms"] < 100     # paper: <77ms
    assert groups["GCE720p"]["ODR60"]["mtp_ms"] < 100
    assert groups["GCE1080p"]["ODR30"]["mtp_ms"] < 160     # paper: <120ms
    assert priv720["ODRMax"]["mtp_ms"] < priv720["NoReg"]["mtp_ms"]
    assert priv720["ODR60"]["mtp_ms"] < priv720["Int60"]["mtp_ms"]
    assert priv720["ODR60"]["mtp_ms"] < priv720["RVS60"]["mtp_ms"]

    # --- overall bars -----------------------------------------------------
    assert overall["ODRMax"]["client_fps"] > overall["IntMax"]["client_fps"]
    assert overall["ODRMax"]["mtp_ms"] < overall["NoReg"]["mtp_ms"] * 0.25

    benchmark.extra_info["odrmax_overall_fps"] = round(overall["ODRMax"]["client_fps"], 1)
    benchmark.extra_info["noreg_overall_mtp_ms"] = round(overall["NoReg"]["mtp_ms"], 0)
