"""Figure 3 — InMind per-stage FPS under five regulation configurations.

Paper anchors (InMind, 720p private): NoReg ≈ 189/93/93 (render/encode/
decode), Int60 ≈ 55/53, IntMax ≈ 46, RVS60 ≈ 54, RVSMax ≈ 76.
"""

from repro.experiments.figures import fig03_regulation_fps


def test_fig03_regulation_fps(benchmark, runner, save_text):
    result = benchmark.pedantic(
        lambda: fig03_regulation_fps(runner), rounds=1, iterations=1
    )
    save_text("fig03_regulation_fps", result["text"])
    data = result["data"]

    noreg = data["NoReg"]
    assert 170 <= noreg["render_fps"] <= 210
    assert 80 <= noreg["encode_fps"] <= 100

    assert 50 <= data["Int60"]["decode_fps"] < 60
    assert data["IntMax"]["decode_fps"] < 0.9 * noreg["decode_fps"]
    assert 48 <= data["RVS60"]["decode_fps"] < 60
    assert 65 <= data["RVSMax"]["decode_fps"] <= 88   # paper: 76

    # every regulator removes the render-vs-decode gap
    for spec in ("Int60", "IntMax", "RVS60", "RVSMax"):
        assert data[spec]["render_fps"] - data[spec]["decode_fps"] < 5

    for spec, values in data.items():
        benchmark.extra_info[spec] = round(values["decode_fps"], 1)
