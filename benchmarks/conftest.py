"""Shared fixtures for the table/figure regeneration benches.

A single session-scoped :class:`~repro.experiments.runner.Runner` is
shared by every bench module.  Since the plan/execute split it sits on
the run_id-keyed :class:`~repro.experiments.store.ResultStore`, so
figures that share cells (most of them) re-use simulations instead of
re-running them, and the executor is configurable:

* ``ODR_BENCH_WORKERS=N`` — execute cells through the process-pool
  :class:`~repro.experiments.executor.ParallelExecutor` (bit-identical
  to serial; the default is serial);
* ``ODR_BENCH_RESUME=1`` — persist completed cells under
  ``.odr-runs/cells/`` and warm-start the next bench session from
  them.  Opt-in, because persisted cells outlive code changes: only
  use it to resume an interrupted sweep of *unchanged* code.

The runner also appends every executed cell's run record to the run
ledger under ``.odr-runs/`` at the repo root, so bench sessions feed
the regression sentinel (``odr-sim compare-runs``) for free.

Bench outputs (the regenerated tables/figures) are printed through
pytest's captured stdout; run with ``-s`` or ``-rA`` to see them, or
read ``benchmarks/results/*.txt`` which each bench also writes.  A
bench that passes ``data=`` to :func:`save_text` additionally writes
``benchmarks/results/*.json`` — the machine-readable twin of the text
artifact.
"""

import json
import os
import pathlib

import pytest

from repro.experiments.executor import make_executor
from repro.experiments.runner import Runner
from repro.experiments.store import ResultStore
from repro.obs import DEFAULT_LEDGER_DIR

#: Simulated milliseconds measured per cell.  Long enough for stable
#: FPS/latency statistics, short enough for the full matrix to run in
#: a few minutes.
BENCH_DURATION_MS = 15000.0
BENCH_WARMUP_MS = 2000.0

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
LEDGER_DIR = pathlib.Path(__file__).parent.parent / DEFAULT_LEDGER_DIR


@pytest.fixture(scope="session")
def runner():
    workers = int(os.environ.get("ODR_BENCH_WORKERS", "1"))
    resume = os.environ.get("ODR_BENCH_RESUME") == "1"
    store = ResultStore(LEDGER_DIR / "cells") if resume else ResultStore()
    return Runner(
        seed=1,
        duration_ms=BENCH_DURATION_MS,
        warmup_ms=BENCH_WARMUP_MS,
        ledger=str(LEDGER_DIR),
        executor=make_executor(workers),
        store=store,
    )


@pytest.fixture(scope="session")
def save_text():
    """Persist a regenerated table/figure under benchmarks/results/.

    ``_save(name, text)`` writes ``results/<name>.txt``; passing
    ``data=`` (any JSON-serializable object) also writes
    ``results/<name>.json`` so downstream tooling never has to parse
    the human-readable tables.
    """

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, data=None) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            (RESULTS_DIR / f"{name}.json").write_text(
                json.dumps(data, sort_keys=True, indent=2, default=str) + "\n"
            )
        print()
        print(text)

    return _save
