"""Shared fixtures for the table/figure regeneration benches.

A single session-scoped :class:`~repro.experiments.runner.Runner` is
shared by every bench module; it memoizes (benchmark × configuration)
cells, so figures that share cells (most of them) re-use simulations
instead of re-running them.

Bench outputs (the regenerated tables/figures) are printed through
pytest's captured stdout; run with ``-s`` or ``-rA`` to see them, or
read ``benchmarks/results/*.txt`` which each bench also writes.
"""

import pathlib

import pytest

from repro.experiments.runner import Runner

#: Simulated milliseconds measured per cell.  Long enough for stable
#: FPS/latency statistics, short enough for the full matrix to run in
#: a few minutes.
BENCH_DURATION_MS = 15000.0
BENCH_WARMUP_MS = 2000.0

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner():
    return Runner(seed=1, duration_ms=BENCH_DURATION_MS, warmup_ms=BENCH_WARMUP_MS)


@pytest.fixture(scope="session")
def save_text():
    """Persist a regenerated table/figure under benchmarks/results/."""

    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
