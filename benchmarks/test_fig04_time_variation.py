"""Figure 4 — frame processing-time variation (InMind CDFs + trace).

Paper: the bulk of render/encode/transmit times sits well below 16.6 ms
but 10-20 % of frames spike far above; the 100-frame trace shows
substantial frame-to-frame variation.
"""

from repro.experiments.figures import fig04_time_variation


def test_fig04_time_variation(benchmark, save_text):
    result = benchmark.pedantic(
        lambda: fig04_time_variation(seed=1), rounds=1, iterations=1
    )
    save_text("fig04_time_variation", result["text"])
    cdf = result["data"]["cdf"]

    # encode is the dominant stage; its median sits under 16.6 ms
    assert cdf["encode"]["p50"] < 16.6
    assert cdf["render"]["p50"] < 16.6

    # combined spike mass: a meaningful minority of frames exceed 16.6 ms
    above = 1 - min(cdf[s]["below_16_6ms"] for s in ("render", "encode"))
    assert 0.02 <= above <= 0.30

    # the tail reaches well beyond the interval (paper traces reach ~60ms)
    assert max(cdf[s]["max"] for s in cdf) > 25

    # the per-frame trace is genuinely varying
    trace = result["data"]["trace"]["encode"]
    assert len(trace) == 100
    assert max(trace) > 1.8 * (sum(trace) / len(trace))

    for stage, summary in cdf.items():
        benchmark.extra_info[f"{stage}_p90_ms"] = round(summary["p90"], 2)
