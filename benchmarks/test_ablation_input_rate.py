"""Ablation — stressing PriorityFrame's input-sparsity assumption.

Sec. 5.3 rests on users producing ≤ ~5 discrete actions per second
("a normal user typically only produces fewer than 250 APM").  This
sweep raises the action rate far beyond that and measures what happens
to ODR's FPS gap, delivered FPS, and latency: the gap cost of
obsolete-frame flushing grows roughly linearly with action rate, while
the latency benefit persists — quantifying exactly how far the paper's
assumption can be pushed before PriorityFrame should be throttled.
"""

import dataclasses

from repro.experiments.report import format_table
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import PRIVATE_CLOUD, Resolution, get_benchmark

ACTION_RATES = [1.0, 3.6, 8.0, 15.0]


def run_input_sweep(duration_ms=15000.0):
    base = get_benchmark("IM")
    rows = {}
    for rate in ACTION_RATES:
        profile = dataclasses.replace(base, actions_per_second=rate)
        cells = {}
        for spec in ("ODR60", "ODR60-noPri"):
            config = SystemConfig(profile, PRIVATE_CLOUD, Resolution.R720P, seed=1,
                                  duration_ms=duration_ms, warmup_ms=2000.0)
            result = CloudSystem(config, make_regulator(spec)).run()
            cells[spec] = result
        with_pri = cells["ODR60"]
        without = cells["ODR60-noPri"]
        rows[rate] = {
            "gap": with_pri.fps_gap().mean_gap,
            "client_fps": with_pri.client_fps,
            "mtp_ms": with_pri.mean_mtp_ms(),
            "mtp_nopri_ms": without.mean_mtp_ms(),
            "latency_benefit_ms": without.mean_mtp_ms() - with_pri.mean_mtp_ms(),
        }
    return rows


def test_ablation_input_rate(benchmark, save_text):
    rows = benchmark.pedantic(run_input_sweep, rounds=1, iterations=1)
    text = format_table(
        ["actions/s", "gap", "client FPS", "MtP ms", "MtP noPri ms", "benefit ms"],
        [[r, v["gap"], v["client_fps"], v["mtp_ms"], v["mtp_nopri_ms"],
          v["latency_benefit_ms"]] for r, v in rows.items()],
        title="Ablation: PriorityFrame vs user action rate (InMind, ODR60, 720p private)",
    )
    save_text("ablation_input_rate", text)

    # within the paper's APM band, the gap cost is small
    assert rows[3.6]["gap"] < 4.0
    # the gap cost grows with action rate (flushes per second)
    assert rows[15.0]["gap"] > rows[1.0]["gap"]
    # the latency benefit holds across the sweep
    for rate in ACTION_RATES:
        assert rows[rate]["latency_benefit_ms"] > 0
    # even at 4x the paper's assumed rate, the target still holds
    assert rows[15.0]["client_fps"] >= 58.0

    benchmark.extra_info["gap_at_15aps"] = round(rows[15.0]["gap"], 2)
