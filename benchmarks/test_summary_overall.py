"""Section 6.6 — the paper's overall evaluation summary.

Paper anchors: ODR's overall average FPS gap 2.6 frames (NoReg ≥ 60);
ODR client FPS +62 %/+35 % over Int/RVS; ODR MtP 92-95 % below NoReg
and 27-31 % below Int/RVS; 720p-private efficiency: IPC +14.4 %, DRAM
read time −19 %, row misses −11 %, power −16 %; bandwidth 15-60 Mbps.
"""

from repro.experiments.figures import summary_overall


def test_summary_overall(benchmark, runner, save_text):
    result = benchmark.pedantic(lambda: summary_overall(runner), rounds=1, iterations=1)
    save_text("summary_overall", result["text"])
    data = result["data"]

    # FPS gap: NoReg enormous, ODR single digits
    assert data["fps_gap"]["NoReg"] > 50
    assert data["fps_gap"]["ODR"] < 6          # paper: 2.6

    # client FPS superiority over the baselines
    assert data["client_fps"]["ODR_vs_Int_pct"] > 20    # paper: +62%
    assert data["client_fps"]["ODR_vs_RVS_pct"] > 10    # paper: +35%

    # MtP latency: the 92%+ overall reduction vs NoReg
    assert data["mtp"]["ODR_vs_NoReg_pct"] > 80          # paper: 92-95%
    assert data["mtp"]["ODR_vs_Int_pct"] > 10            # paper: ~31%
    assert data["mtp"]["ODR_vs_RVS_pct"] > 10            # paper: ~27%

    # efficiency aggregates (720p private)
    eff = data["efficiency_720p_private"]
    assert 5 <= eff["ipc_improvement_pct"] <= 30         # paper: 14.4%
    assert 5 <= eff["read_time_reduction_pct"] <= 35     # paper: 19%
    assert 3 <= eff["miss_rate_reduction_pct"] <= 20     # paper: 11%
    assert 8 <= eff["power_reduction_pct"] <= 28         # paper: 16%

    # bandwidth usage in the paper's 15-60 Mbps envelope
    for spec, bw in data["bandwidth_mbps"].items():
        assert 10 <= bw <= 70, f"{spec}: {bw} Mbps"

    benchmark.extra_info.update(
        {
            "odr_gap": round(data["fps_gap"]["ODR"], 2),
            "mtp_cut_vs_noreg_pct": round(data["mtp"]["ODR_vs_NoReg_pct"], 1),
            "power_cut_pct": round(eff["power_reduction_pct"], 1),
            "ipc_gain_pct": round(eff["ipc_improvement_pct"], 1),
        }
    )
