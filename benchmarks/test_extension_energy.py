"""Extension — energy per delivered frame.

Energy efficiency is the paper's headline; this bench expresses it in
the capacity-planning unit: joules per frame the client actually sees.
Marginal J/frame (above idle) is the number excessive rendering
corrupts — every delivered NoReg frame drags the energy of ~1 discarded
frame along.  Average J/frame surfaces the honest caveat that idle
power dominates at regulated rates, motivating consolidation
(`test_extension_multitenant.py`).
"""

from repro.experiments.report import format_table
from repro.hardware import energy_report
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import BENCHMARKS, PRIVATE_CLOUD, Resolution

SPECS = ["NoReg", "ODRMax", "ODR60"]


def run_energy_study(duration_ms=12000.0):
    rows = {}
    for spec in SPECS:
        marginal, average, waste = [], [], []
        for bench in BENCHMARKS:
            config = SystemConfig(bench, PRIVATE_CLOUD, Resolution.R720P, seed=1,
                                  duration_ms=duration_ms, warmup_ms=2000.0)
            result = CloudSystem(config, make_regulator(spec)).run()
            report = energy_report(result)
            marginal.append(report.marginal_j_per_delivered_frame)
            average.append(report.avg_j_per_delivered_frame)
            waste.append(report.waste_fraction)
        n = len(BENCHMARKS)
        rows[spec] = {
            "marginal_j": sum(marginal) / n,
            "avg_j": sum(average) / n,
            "waste": sum(waste) / n,
        }
    return rows


def test_extension_energy(benchmark, save_text):
    rows = benchmark.pedantic(run_energy_study, rounds=1, iterations=1)
    text = format_table(
        ["config", "marginal J/frame", "avg J/frame", "wasted renders"],
        [[s, v["marginal_j"], v["avg_j"], v["waste"]] for s, v in rows.items()],
        title="Extension: energy per delivered frame (720p private, benchmark average)",
    )
    save_text("extension_energy", text)

    noreg, odrmax, odr60 = rows["NoReg"], rows["ODRMax"], rows["ODR60"]

    # NoReg discards roughly half of what it renders
    assert noreg["waste"] > 0.35
    assert odrmax["waste"] < 0.05

    # marginal energy per delivered frame drops substantially under ODR
    assert odrmax["marginal_j"] < 0.8 * noreg["marginal_j"]
    assert odr60["marginal_j"] < noreg["marginal_j"]

    # the honest caveat: per AVERAGE J/frame, the 60 FPS-regulated server
    # is not cheaper than free-running — idle power dominates
    assert odr60["avg_j"] > odrmax["avg_j"]

    benchmark.extra_info["noreg_marginal_j"] = round(noreg["marginal_j"], 3)
    benchmark.extra_info["odrmax_marginal_j"] = round(odrmax["marginal_j"], 3)
