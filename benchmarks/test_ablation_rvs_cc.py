"""Ablation — RVS's cc low-pass constant.

Sec. 4.1 argues cc is a fragile hand-tuned constant: too small and the
feedback barely acts; too large and the stale feedback over-throttles
rendering.  This sweep quantifies the trade-off the paper describes
("cc ... had to be manually tuned for each hardware setup").
"""

from repro.experiments.report import format_table
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import RemoteVsync
from repro.workloads import PRIVATE_CLOUD, Resolution

CC_VALUES = [0.0, 0.1, 0.25, 0.5, 1.0, 2.0]


def run_cc_sweep(duration_ms=12000.0):
    rows = {}
    for cc in CC_VALUES:
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                              duration_ms=duration_ms, warmup_ms=2000.0)
        result = CloudSystem(config, RemoteVsync(refresh_hz=240, cc=cc)).run()
        rows[cc] = {
            "client_fps": result.client_fps,
            "gap": result.fps_gap().mean_gap,
            "mtp_ms": result.mean_mtp_ms(),
        }
    return rows


def test_ablation_rvs_cc(benchmark, save_text):
    rows = benchmark.pedantic(run_cc_sweep, rounds=1, iterations=1)
    text = format_table(
        ["cc", "client FPS", "gap", "MtP ms"],
        [[cc, v["client_fps"], v["gap"], v["mtp_ms"]] for cc, v in rows.items()],
        title="Ablation: RVSMax cc sweep (InMind, 720p private, 240Hz display)",
    )
    save_text("ablation_rvs_cc", text)

    # a larger cc always throttles FPS further
    fps = [rows[cc]["client_fps"] for cc in CC_VALUES]
    assert all(a >= b - 1.0 for a, b in zip(fps, fps[1:]))
    assert fps[0] - fps[-1] > 5.0

    # but even cc=0 cannot exceed the feedback-window bound (<< NoReg's 93)
    assert fps[0] < 88.0

    benchmark.extra_info["fps_cc0"] = round(fps[0], 1)
    benchmark.extra_info["fps_cc2"] = round(fps[-1], 1)
