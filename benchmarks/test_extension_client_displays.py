"""Extension — client-side presentation (the paper's future work).

Sec. 5.2: "high frequency (90-240hz) displays with FreeSync/GSync are
designed to reduce lag by allowing frames to arrive at high but varying
rates... We will explore client optimizations in the future."

This bench performs that exploration on top of ODR: the same ODRMax
stream (high but varying arrival rate) is presented through an
unsynchronized client, a fixed 60 Hz VSync client, and a 48-144 Hz
FreeSync-style VRR client, comparing delivered photon rate, added
latency, tearing, and drops.
"""

from repro.experiments.report import format_table
from repro.pipeline import CloudSystem, SystemConfig
from repro.pipeline.display import ImmediateDisplay, VrrDisplay, VsyncDisplay
from repro.regulators import make_regulator
from repro.workloads import PRIVATE_CLOUD, Resolution


def run_display_comparison(duration_ms=15000.0):
    rows = {}
    for label, factory in (
        ("unsynced", lambda: ImmediateDisplay(refresh_hz=60)),
        ("vsync60", lambda: VsyncDisplay(refresh_hz=60)),
        ("vrr48-144", lambda: VrrDisplay(min_hz=48, max_hz=144)),
    ):
        model = factory()
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                              duration_ms=duration_ms, warmup_ms=2000.0)
        result = CloudSystem(config, make_regulator("ODRMax"), display_model=model).run()
        stats = model.stats
        rows[label] = {
            "decode_fps": result.client_fps,
            "photon_fps": result.stage_mean_fps("display"),
            "added_latency_ms": stats.mean_added_latency_ms,
            "mtp_ms": result.mean_mtp_ms(),
            "torn_frac": stats.tear_fraction,
            "dropped": stats.dropped,
        }
    return rows


def test_extension_client_displays(benchmark, save_text):
    rows = benchmark.pedantic(run_display_comparison, rounds=1, iterations=1)
    text = format_table(
        ["display", "decode FPS", "photon FPS", "disp lat ms", "MtP ms", "torn", "dropped"],
        [
            [k, v["decode_fps"], v["photon_fps"], v["added_latency_ms"],
             v["mtp_ms"], v["torn_frac"], v["dropped"]]
            for k, v in rows.items()
        ],
        title="Extension: ODRMax through different client displays (InMind, 720p private)",
    )
    save_text("extension_client_displays", text)

    unsynced, vsync, vrr = rows["unsynced"], rows["vsync60"], rows["vrr48-144"]

    # unsynchronized: full rate, zero added latency, but it tears
    assert unsynced["added_latency_ms"] == 0.0
    assert unsynced["torn_frac"] > 0.3

    # vsync60: clean but caps photons at 60 and adds latency + drops
    assert vsync["photon_fps"] <= 60.5
    assert vsync["dropped"] > 100
    assert vsync["mtp_ms"] > unsynced["mtp_ms"]
    assert vsync["torn_frac"] == 0.0

    # VRR: clean AND nearly the full rate with almost no added latency —
    # the future-work payoff of generating "enough frames at targeted
    # rates" in the cloud
    assert vrr["torn_frac"] == 0.0
    assert vrr["dropped"] == 0
    assert vrr["photon_fps"] > 0.95 * unsynced["photon_fps"]
    assert vrr["added_latency_ms"] < 4.0
    assert vrr["mtp_ms"] < vsync["mtp_ms"]

    benchmark.extra_info["vrr_photon_fps"] = round(vrr["photon_fps"], 1)
    benchmark.extra_info["vsync_drops"] = vsync["dropped"]
