"""Figure 6 — InMind MtP latency under five regulation configurations.

Paper: every existing FPS regulation *raises* MtP latency over NoReg
(IntMax +59 %, RVS60 +63 % on InMind); the delays injected to close the
FPS gap are the cause.
"""

from repro.experiments.figures import fig06_mtp_latency


def test_fig06_mtp_latency(benchmark, runner, save_text):
    result = benchmark.pedantic(lambda: fig06_mtp_latency(runner), rounds=1, iterations=1)
    save_text("fig06_mtp_latency", result["text"])
    data = result["data"]

    noreg = data["NoReg"]
    assert 25 <= noreg <= 60  # paper: ~42ms

    # the headline Sec. 4.2 claim: Int and RVS increase latency
    for spec in ("Int60", "IntMax", "RVS60"):
        assert data[spec] > noreg, f"{spec} should raise latency over NoReg"

    # magnitudes stay within interactive range on the private cloud
    for spec, value in data.items():
        assert value < 100
        benchmark.extra_info[spec] = round(value, 1)
