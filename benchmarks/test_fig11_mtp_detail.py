"""Figure 11 — per-benchmark MtP latency with tails (box statistics).

Paper: ODR's mean and tail latency beat NoReg/Int/RVS for most
configurations; ODR stays below ~92 ms on 720p GCE and ~150 ms on
1080p GCE for every benchmark — the public-cloud feasibility claim.
"""

from repro.experiments.figures import fig11_mtp_detail
from repro.workloads import BENCHMARKS


def test_fig11_mtp_detail(benchmark, runner, save_text):
    result = benchmark.pedantic(lambda: fig11_mtp_detail(runner), rounds=1, iterations=1)
    save_text("fig11_mtp_detail", result["text"])
    data = result["data"]

    priv = data["Priv720p"]
    odr_wins_int = sum(
        1 for b in BENCHMARKS if priv[b]["ODR60"]["mean"] < priv[b]["Int60"]["mean"]
    )
    odr_wins_rvs = sum(
        1 for b in BENCHMARKS if priv[b]["ODR60"]["mean"] < priv[b]["RVS60"]["mean"]
    )
    assert odr_wins_int >= 5 and odr_wins_rvs >= 5

    # GCE public-cloud feasibility, per benchmark
    for bench in BENCHMARKS:
        assert data["GCE720p"][bench]["ODRMax"]["mean"] < 110
        assert data["GCE720p"][bench]["ODR60"]["mean"] < 110
        assert data["GCE1080p"][bench]["ODR30"]["mean"] < 170
        # NoReg's congestion blow-up per benchmark on GCE
        assert data["GCE720p"][bench]["NoReg"]["mean"] > 300

    # tails: ODR's p99 stays interactive on GCE 720p
    for bench in BENCHMARKS:
        box = data["GCE720p"][bench]["ODR60"]["box"]
        assert box.p99 < 200

    benchmark.extra_info["odr_vs_int_wins"] = odr_wins_int
