"""Figure 13 — server power per benchmark (720p private cloud).

Paper anchors: NoReg averages ≈ 198.7 W; ODRMax saves ≈ 7.9 % and
ODR60 ≈ 22 %; IMHOTEP is both the biggest consumer under NoReg and the
biggest saver under ODR; Int/RVS burn slightly less than ODR only
because they deliver less QoS.
"""

from repro.experiments.figures import fig13_power
from repro.workloads import BENCHMARKS


def test_fig13_power(benchmark, runner, save_text):
    result = benchmark.pedantic(lambda: fig13_power(runner), rounds=1, iterations=1)
    save_text("fig13_power", result["text"])
    per_bench = result["data"]["per_benchmark"]
    avg = result["data"]["avg"]

    # average NoReg power near the paper's 198.7 W
    assert 180 <= avg["NoReg"] <= 215

    # savings ordering and magnitudes
    save_max = 1 - avg["ODRMax"] / avg["NoReg"]
    save_60 = 1 - avg["ODR60"] / avg["NoReg"]
    assert 0.03 <= save_max <= 0.15          # paper: 7.9%
    assert 0.12 <= save_60 <= 0.32           # paper: 22%
    assert save_60 > save_max

    # IMHOTEP is the worst NoReg consumer and a top saver
    noreg_by_bench = {b: per_bench[b]["NoReg"] for b in BENCHMARKS}
    assert max(noreg_by_bench, key=noreg_by_bench.get) == "ITP"
    itp_saving = 1 - per_bench["ITP"]["ODR60"] / per_bench["ITP"]["NoReg"]
    assert itp_saving >= save_60  # ITP saves at least the average

    # every benchmark saves power under both ODR modes
    for bench in BENCHMARKS:
        assert per_bench[bench]["ODRMax"] < per_bench[bench]["NoReg"]
        assert per_bench[bench]["ODR60"] < per_bench[bench]["NoReg"]

    benchmark.extra_info["noreg_avg_w"] = round(avg["NoReg"], 1)
    benchmark.extra_info["odr60_saving_pct"] = round(save_60 * 100, 1)
