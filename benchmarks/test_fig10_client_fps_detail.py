"""Figure 10 — per-benchmark client FPS with tails (box statistics).

Paper: ODRMax matches or beats NoReg for nearly all benchmarks; ODR's
tail (1 %ile) windows stay close to the fixed targets; Int and RVS sit
below ODR across the board.
"""

from repro.experiments.figures import fig10_client_fps_detail
from repro.workloads import BENCHMARKS


def test_fig10_client_fps_detail(benchmark, runner, save_text):
    result = benchmark.pedantic(
        lambda: fig10_client_fps_detail(runner), rounds=1, iterations=1
    )
    save_text("fig10_client_fps_detail", result["text"])
    data = result["data"]

    priv = data["Priv720p"]
    beats = sum(
        1 for b in BENCHMARKS
        if priv[b]["ODRMax"]["mean"] >= priv[b]["NoReg"]["mean"] - 1.0
    )
    assert beats >= 5, "ODRMax should match/beat NoReg on nearly all benchmarks"

    for bench in BENCHMARKS:
        # fixed-target tails: ODR60's p1 window stays near 60
        odr60 = priv[bench]["ODR60"]
        assert odr60["mean"] >= 59.0
        assert odr60["box"].p1 >= 45.0

        # ODRMax ahead of IntMax and RVSMax per benchmark
        assert priv[bench]["ODRMax"]["mean"] >= priv[bench]["IntMax"]["mean"]
        assert priv[bench]["ODRMax"]["mean"] >= priv[bench]["RVSMax"]["mean"] * 0.97

    # 1080p GCE: ODR30 meets 30 FPS on every benchmark
    gce1080 = data["GCE1080p"]
    for bench in BENCHMARKS:
        assert gce1080[bench]["ODR30"]["mean"] >= 29.0

    benchmark.extra_info["benchmarks_where_odrmax_beats_noreg"] = beats
