"""Figure 5 — pipeline schedules under Int60, RVS60, and ODR60.

The paper's Fig. 5 sketches how each regulator spaces render/encode
work.  This bench regenerates the schedule data from real simulation
traces and checks the structural properties the sketches illustrate:
Int60 renders on the 16.6 ms grid, RVS renders no faster than its
feedback loop allows, and ODR back-pressures rendering to the encoder.
"""

from repro.experiments.figures import fig05_pipeline_schedules


def _starts(schedule, stage):
    return [s for st, s, e in schedule if st == stage]


def test_fig05_pipeline_schedules(benchmark, save_text):
    result = benchmark.pedantic(
        lambda: fig05_pipeline_schedules(seed=1, n_frames=12), rounds=1, iterations=1
    )
    save_text("fig05_pipeline_schedules", result["text"])
    data = result["data"]

    # Int60: render starts align with the 16.6ms grid.
    int_starts = _starts(data["Int60"], "render")
    interval = 1000.0 / 60.0
    on_grid = sum(1 for s in int_starts if min(s % interval, interval - s % interval) < 0.02)
    assert on_grid >= 0.8 * len(int_starts)

    # RVS60: consecutive render starts at least ~one vblank apart.
    rvs_starts = _starts(data["RVS60"], "render")
    gaps = [b - a for a, b in zip(rvs_starts, rvs_starts[1:])]
    assert gaps and min(gaps) > 0.8 * interval

    # ODR60: encodes pace to roughly the target interval once the
    # pipeline fills, and renders track encodes one-for-one.
    odr_encodes = _starts(data["ODR60"], "encode")
    odr_renders = _starts(data["ODR60"], "render")
    assert abs(len(odr_renders) - len(odr_encodes)) <= 3
    encode_gaps = [b - a for a, b in zip(odr_encodes[2:], odr_encodes[3:])]
    mean_gap = sum(encode_gaps) / len(encode_gaps)
    assert 0.7 * interval <= mean_gap <= 1.3 * interval
    benchmark.extra_info["odr_encode_gap_ms"] = round(mean_gap, 2)
