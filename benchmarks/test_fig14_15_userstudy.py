"""Figures 14-15 — the user experience study (surrogate QoE model).

Paper anchors: ODRMax rates ≈ 8.0, statistically indistinguishable from
local execution (8.03); NoReg rates ≈ 3.1 (unacceptable); ODR ahead of
Int and RVS at both QoS goals; far fewer participants report lag,
stutter, or tearing under ODR than under NoReg.
"""

from repro.experiments.userstudy import run_user_study


def test_fig14_15_userstudy(benchmark, runner, save_text):
    study = benchmark.pedantic(lambda: run_user_study(runner, seed=7), rounds=1, iterations=1)
    save_text("fig14_user_ratings", study["fig14_text"])
    save_text("fig15_user_reports", study["fig15_text"])
    ratings = study["ratings"]
    reports = study["reports"]

    # Fig. 14 shape
    assert ratings["NoReg"] < 4.0                      # paper: 3.1
    assert ratings["ODRMax"] > 7.0                     # paper: 8.0
    assert abs(ratings["ODRMax"] - ratings["NonCloud"]) < 1.2
    assert ratings["ODRMax"] >= ratings["IntMax"]
    assert ratings["ODRMax"] >= ratings["RVSMax"]
    assert ratings["ODR30"] >= ratings["Int30"]
    assert ratings["ODR30"] >= ratings["RVS30"]

    # Fig. 15 shape: tearing and lag dominate NoReg, not ODR
    def no_count(spec, question):
        return reports[spec][question]["no"]

    assert no_count("NoReg", "lag") < 10
    assert no_count("ODRMax", "lag") >= 14   # paper: 18 of 30
    assert no_count("NoReg", "tearing") < no_count("ODRMax", "tearing")
    assert no_count("NonCloud", "tearing") >= 25
    assert no_count("ODRMax", "stutter") > 20

    # totals always sum to the participant count
    for spec, questions in reports.items():
        for question, counts in questions.items():
            assert sum(counts.values()) == 30

    benchmark.extra_info["rating_ODRMax"] = round(ratings["ODRMax"], 2)
    benchmark.extra_info["rating_NoReg"] = round(ratings["NoReg"], 2)
    benchmark.extra_info["rating_NonCloud"] = round(ratings["NonCloud"], 2)
