"""Figure 1 — excessive rendering causes large FPS gaps (RE and IM).

Paper: Red Eclipse and InMind both show cloud rendering FPS far above
client FPS under NoReg (gaps of roughly 60-100 frames at 720p).
"""

from repro.experiments.figures import fig01_fps_gap


def test_fig01_fps_gap(benchmark, runner, save_text):
    result = benchmark.pedantic(lambda: fig01_fps_gap(runner), rounds=1, iterations=1)
    save_text("fig01_fps_gap", result["text"], data=result["data"])
    data = result["data"]
    for bench in ("RE", "IM"):
        assert data[bench]["gap"] > 50, f"{bench} gap collapsed"
        assert data[bench]["cloud_fps"] > data[bench]["client_fps"]
    # InMind's gap is ~96 frames in the paper
    assert 70 <= data["IM"]["gap"] <= 130
    benchmark.extra_info["IM_gap"] = data["IM"]["gap"]
    benchmark.extra_info["RE_gap"] = data["RE"]["gap"]
