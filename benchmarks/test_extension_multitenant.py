"""Extension — server consolidation density.

The paper's datacenter-efficiency motivation, made quantitative: how
many cloud-gaming sessions can one server host at the 60 FPS target?
Free-running rendering burns the whole GPU on excessive frames, so a
single NoReg tenant already crowds out neighbours; ODR sessions consume
only what their targets need, multiplying consolidation density and
cutting energy per session.
"""

from repro.experiments.report import format_table
from repro.multitenant import SharedServer
from repro.regulators import make_regulator
from repro.workloads import PRIVATE_CLOUD, Resolution

SESSION_BENCHMARKS = ["ITP", "IM", "RE", "STK"]
TARGET_FPS = 59.0


def run_consolidation(duration_ms=12000.0):
    rows = []
    for spec in ("NoReg", "ODR60"):
        for n in (1, 2, 3, 4):
            server = SharedServer(
                benchmarks=SESSION_BENCHMARKS[:n],
                platform=PRIVATE_CLOUD,
                resolution=Resolution.R720P,
                regulator_factory=lambda i: make_regulator(spec),
                seed=1,
                duration_ms=duration_ms,
                warmup_ms=2000.0,
            )
            results = server.run()
            min_fps = min(r.client_fps for r in results)
            rows.append(
                {
                    "spec": spec,
                    "sessions": n,
                    "min_fps": min_fps,
                    "all_meet_target": min_fps >= TARGET_FPS,
                    "gpu_util": server.gpu_utilization(),
                    "power_w": server.server_power_w(),
                    "w_per_session": server.server_power_w() / n,
                }
            )
    return rows


def density(rows, spec):
    return max(
        (r["sessions"] for r in rows if r["spec"] == spec and r["all_meet_target"]),
        default=0,
    )


def test_extension_multitenant(benchmark, save_text):
    rows = benchmark.pedantic(run_consolidation, rounds=1, iterations=1)
    text = format_table(
        ["config", "sessions", "min FPS", "meets 60", "GPU util", "power W", "W/session"],
        [
            [r["spec"], r["sessions"], r["min_fps"], str(r["all_meet_target"]),
             r["gpu_util"], r["power_w"], r["w_per_session"]]
            for r in rows
        ],
        title="Extension: consolidation density (sessions per server at 60 FPS, 720p private)",
    )
    save_text("extension_multitenant", text)

    noreg_density = density(rows, "NoReg")
    odr_density = density(rows, "ODR60")
    assert odr_density >= 2 * max(noreg_density, 1)

    # consolidation amortizes idle power: W/session falls with tenants
    odr_rows = {r["sessions"]: r for r in rows if r["spec"] == "ODR60"}
    assert odr_rows[2]["w_per_session"] < odr_rows[1]["w_per_session"]

    # NoReg saturates the GPU early; ODR leaves headroom at its density
    noreg2 = next(r for r in rows if r["spec"] == "NoReg" and r["sessions"] == 2)
    odr2 = next(r for r in rows if r["spec"] == "ODR60" and r["sessions"] == 2)
    assert noreg2["gpu_util"] > 0.9
    assert odr2["gpu_util"] < 0.6

    benchmark.extra_info["noreg_density"] = noreg_density
    benchmark.extra_info["odr_density"] = odr_density
