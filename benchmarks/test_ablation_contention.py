"""Ablation — the DRAM-contention feedback coefficient (beta).

DESIGN.md calls this design choice out: beta couples pipeline overlap
back into stage service times and is what lets ODRMax's client FPS
exceed NoReg's (the paper's Sec. 4.3/6.5 mechanism).  The sweep shows
the effect switches off smoothly with beta and that the paper's InMind
split (NoReg 93 vs ODRMax 107) pins beta near 0.25.
"""

from repro.experiments.report import format_table
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import PRIVATE_CLOUD, Resolution

BETAS = [0.0, 0.1, 0.25, 0.4]


def run_beta_sweep(duration_ms=12000.0):
    rows = {}
    for beta in BETAS:
        cells = {}
        for spec in ("NoReg", "ODRMax"):
            config = SystemConfig(
                "IM", PRIVATE_CLOUD, Resolution.R720P, seed=1,
                duration_ms=duration_ms, warmup_ms=2000.0, contention_beta=beta,
            )
            cells[spec] = CloudSystem(config, make_regulator(spec)).run().client_fps
        rows[beta] = {
            "noreg_fps": cells["NoReg"],
            "odrmax_fps": cells["ODRMax"],
            "odr_gain_pct": 100.0 * (cells["ODRMax"] / cells["NoReg"] - 1.0),
        }
    return rows


def test_ablation_contention_beta(benchmark, save_text):
    rows = benchmark.pedantic(run_beta_sweep, rounds=1, iterations=1)
    text = format_table(
        ["beta", "NoReg FPS", "ODRMax FPS", "ODR gain %"],
        [[b, v["noreg_fps"], v["odrmax_fps"], v["odr_gain_pct"]] for b, v in rows.items()],
        title="Ablation: DRAM-contention feedback beta (InMind, 720p private)",
    )
    save_text("ablation_contention_beta", text)

    # without contention, ODRMax cannot beat NoReg's client FPS
    assert rows[0.0]["odr_gain_pct"] < 3.0
    # the gain grows with beta
    gains = [rows[b]["odr_gain_pct"] for b in BETAS]
    assert gains == sorted(gains)
    # the default beta reproduces the paper's ~+15% InMind split
    assert 8.0 <= rows[0.25]["odr_gain_pct"] <= 30.0

    benchmark.extra_info["gain_at_default_beta_pct"] = round(rows[0.25]["odr_gain_pct"], 1)
