"""Replicated headline claims — multi-seed confidence intervals.

Every other bench runs seed 1; this one replicates the paper's three
headline comparisons across five seeds with common random numbers and
requires the 95 % confidence interval of each paired delta to exclude
zero — the claims hold as *effects*, not lucky draws:

1. ODRMax raises client FPS over NoReg (paper: +5.5 % overall);
2. ODRMax collapses the FPS gap (paper: ~100 → ~2 frames on InMind);
3. ODR cuts MtP latency on the congested GCE path (paper: >92 %).
"""

from repro.analysis import paired_compare
from repro.experiments.report import format_table
from repro.pipeline import CloudSystem, SystemConfig
from repro.regulators import make_regulator
from repro.workloads import GCE, PRIVATE_CLOUD, Resolution

SEEDS = range(1, 6)


def factory(spec, platform):
    def run_seed(seed):
        config = SystemConfig("IM", platform, Resolution.R720P, seed=seed,
                              duration_ms=10000.0, warmup_ms=2000.0)
        result = CloudSystem(config, make_regulator(spec)).run()
        return {
            "client_fps": result.client_fps,
            "fps_gap": result.fps_gap().mean_gap,
            "mtp_ms": result.mean_mtp_ms(),
        }

    return run_seed


def run_replication():
    private = paired_compare(
        factory("NoReg", PRIVATE_CLOUD), factory("ODRMax", PRIVATE_CLOUD), SEEDS
    )
    gce = paired_compare(factory("NoReg", GCE), factory("ODR60", GCE), SEEDS)
    return {"private": private, "gce": gce}


def test_replicated_headlines(benchmark, save_text):
    deltas = benchmark.pedantic(run_replication, rounds=1, iterations=1)
    rows = []
    for label, rep in deltas.items():
        for name in rep.names():
            summary = rep[name]
            rows.append([label, name, summary.mean, summary.ci95_halfwidth, summary.n])
    text = format_table(
        ["comparison", "metric (ODR - NoReg)", "mean delta", "95% CI ±", "n"],
        rows,
        title="Replicated headline claims (paired common-random-number seeds)",
    )
    save_text(
        "replicated_headlines",
        text,
        data=[
            {
                "comparison": comparison,
                "metric": metric,
                "mean_delta": mean,
                "ci95_halfwidth": ci,
                "n": n,
            }
            for comparison, metric, mean, ci, n in rows
        ],
    )

    private, gce = deltas["private"], deltas["gce"]
    # 1. client FPS gain, significant across seeds
    assert private["client_fps"].significantly_positive()
    # 2. gap collapse, significant and huge
    assert private["fps_gap"].significantly_negative()
    assert private["fps_gap"].mean < -80
    # 3. GCE latency collapse, significant and order-of-magnitude
    assert gce["mtp_ms"].significantly_negative()
    assert gce["mtp_ms"].mean < -500

    benchmark.extra_info["fps_gain_ci"] = (
        f"{private['client_fps'].mean:+.1f} ± {private['client_fps'].ci95_halfwidth:.1f}"
    )
    benchmark.extra_info["gce_mtp_cut_ci"] = (
        f"{gce['mtp_ms'].mean:+.0f} ± {gce['mtp_ms'].ci95_halfwidth:.0f} ms"
    )
