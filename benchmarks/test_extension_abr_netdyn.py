"""Extensions — adaptive bitrate and time-varying network robustness.

Two studies the paper's fixed-network, fixed-bitrate setup leaves open:

1. **ODR + ABR unlocks 1080p60 on GCE.**  60 FPS at full 1080p quality
   needs ~60 Mbps, more than the GCE path's ~42: plain ODR60 is
   bandwidth-capped near 40 FPS.  The quality-ladder controller walks
   the encoder down until the target fits, restoring 60 FPS.
2. **Robustness under congestion events.**  With periodic half-capacity
   dips, ODR's bounded buffering absorbs each dip and recovers; NoReg's
   standing send queue keeps latency in the seconds regardless.
"""

from repro.experiments.report import format_table
from repro.pipeline import CloudSystem, SystemConfig
from repro.pipeline.abr import AdaptiveBitrate
from repro.pipeline.netdyn import dips
from repro.regulators import make_regulator
from repro.workloads import GCE, Resolution


def run_abr_study(duration_ms=15000.0):
    rows = {}
    for label, abr in (("ODR60", None), ("ODR60+ABR", AdaptiveBitrate())):
        config = SystemConfig("IM", GCE, Resolution.R1080P, seed=1,
                              duration_ms=duration_ms, warmup_ms=2000.0)
        result = CloudSystem(config, make_regulator("ODR60"), abr=abr).run()
        rows[label] = {
            "client_fps": result.client_fps,
            "mtp_ms": result.mean_mtp_ms(),
            "bandwidth_mbps": result.bandwidth_mbps(),
            "quality": (result.system.abr.mean_scale(result.t_start, result.t_end)
                        if result.system.abr else 1.0),
        }
    return rows


def run_dip_study(duration_ms=20000.0):
    schedule = dips(period_ms=8000, dip_duration_ms=2000, dip_factor=0.5,
                    first_dip_at_ms=5000)
    rows = {}
    for spec in ("NoReg", "ODR60"):
        config = SystemConfig("IM", GCE, Resolution.R720P, seed=1,
                              duration_ms=duration_ms, warmup_ms=2000.0)
        result = CloudSystem(config, make_regulator(spec),
                             bandwidth_schedule=schedule).run()
        box = result.mtp_box()
        rows[spec] = {"mean_mtp_ms": box.mean, "p99_mtp_ms": box.p99,
                      "client_fps": result.client_fps}
    return rows


def test_extension_abr(benchmark, save_text):
    rows = benchmark.pedantic(run_abr_study, rounds=1, iterations=1)
    text = format_table(
        ["config", "client FPS", "MtP ms", "bandwidth Mbps", "mean quality"],
        [[k, v["client_fps"], v["mtp_ms"], v["bandwidth_mbps"], v["quality"]]
         for k, v in rows.items()],
        title="Extension: ODR60 + adaptive bitrate (InMind, GCE 1080p)",
    )
    save_text("extension_abr", text)
    plain, abr = rows["ODR60"], rows["ODR60+ABR"]
    assert plain["client_fps"] < 50          # bandwidth-capped
    assert abr["client_fps"] >= 59.0         # target restored
    assert abr["quality"] < 0.9              # by trading quality
    assert abr["bandwidth_mbps"] < 45        # inside the path capacity
    assert abr["mtp_ms"] <= plain["mtp_ms"] + 10
    benchmark.extra_info["abr_fps"] = round(abr["client_fps"], 1)
    benchmark.extra_info["abr_quality"] = round(abr["quality"], 2)


def test_extension_bandwidth_dips(benchmark, save_text):
    rows = benchmark.pedantic(run_dip_study, rounds=1, iterations=1)
    text = format_table(
        ["config", "mean MtP ms", "p99 MtP ms", "client FPS"],
        [[k, v["mean_mtp_ms"], v["p99_mtp_ms"], v["client_fps"]] for k, v in rows.items()],
        title="Extension: periodic 50% bandwidth dips (InMind, GCE 720p)",
    )
    save_text("extension_bandwidth_dips", text)
    odr, noreg = rows["ODR60"], rows["NoReg"]
    assert odr["mean_mtp_ms"] < 150
    assert noreg["mean_mtp_ms"] > 8 * odr["mean_mtp_ms"]
    assert odr["client_fps"] >= 55
    benchmark.extra_info["odr_mean_mtp"] = round(odr["mean_mtp_ms"], 1)
    benchmark.extra_info["noreg_mean_mtp"] = round(noreg["mean_mtp_ms"], 0)
