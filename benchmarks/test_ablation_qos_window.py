"""Ablation — ODR's debt window (the 200 ms QoS accounting horizon).

Sec. 5.2 sets ODR's goal as meeting the target "for each small period
(e.g., 200 ms)".  The debt window bounds how much catch-up the
regulator attempts: too small and spikes go unrepaired (QoS windows
fail); very large values buy nothing further because real spikes are
short.
"""

from repro.experiments.report import format_table
from repro.pipeline import CloudSystem, SystemConfig
from repro.core import OnDemandRendering
from repro.workloads import PRIVATE_CLOUD, Resolution

WINDOWS_MS = [0.0, 50.0, 200.0, 1000.0]


def run_window_sweep(duration_ms=15000.0):
    rows = {}
    for window in WINDOWS_MS:
        config = SystemConfig("IM", PRIVATE_CLOUD, Resolution.R720P, seed=2,
                              duration_ms=duration_ms, warmup_ms=2000.0)
        regulator = OnDemandRendering(target_fps=60.0, debt_window_ms=window)
        result = CloudSystem(config, regulator).run()
        qos = result.qos(60.0)
        rows[window] = {
            "client_fps": result.client_fps,
            "qos_satisfaction": qos.satisfaction,
            "worst_window_fps": qos.worst_window_fps,
        }
    return rows


def test_ablation_qos_window(benchmark, save_text):
    rows = benchmark.pedantic(run_window_sweep, rounds=1, iterations=1)
    text = format_table(
        ["debt window ms", "client FPS", "QoS satisfaction", "worst window FPS"],
        [
            [w, v["client_fps"], v["qos_satisfaction"], v["worst_window_fps"]]
            for w, v in rows.items()
        ],
        title="Ablation: ODR60 debt-window sweep (InMind, 720p private)",
    )
    save_text("ablation_qos_window", text)

    # zero window (no catch-up memory) must not beat the default
    assert rows[0.0]["qos_satisfaction"] <= rows[200.0]["qos_satisfaction"] + 1e-9
    assert rows[0.0]["client_fps"] <= rows[200.0]["client_fps"] + 0.5

    # diminishing returns beyond the paper's 200ms scale
    assert abs(rows[1000.0]["client_fps"] - rows[200.0]["client_fps"]) < 1.5

    # the default meets the windowed QoS criterion nearly everywhere
    assert rows[200.0]["qos_satisfaction"] > 0.95

    benchmark.extra_info["default_qos"] = round(rows[200.0]["qos_satisfaction"], 4)
