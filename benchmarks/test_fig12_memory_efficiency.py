"""Figure 12 — memory efficiency per benchmark (720p private cloud).

Paper anchors: averaged over the six benchmarks, ODRMax improves IPC by
~7.6 % and ODR60 by ~21 % over NoReg; ODR cuts row-miss rates ~10 pts
and DRAM read time 13-25 %; NoReg's average IPC is ~0.66.
"""

from repro.experiments.figures import fig12_memory_efficiency
from repro.workloads import BENCHMARKS


def test_fig12_memory_efficiency(benchmark, runner, save_text):
    result = benchmark.pedantic(
        lambda: fig12_memory_efficiency(runner), rounds=1, iterations=1
    )
    save_text("fig12_memory_efficiency", result["text"])
    per_bench = result["data"]["per_benchmark"]
    avg = result["data"]["avg"]

    # NoReg average IPC lands near the paper's 0.66
    assert 0.55 <= avg["NoReg"]["ipc"] <= 0.80

    # ODR improves IPC over NoReg, ODR60 more than ODRMax
    gain_max = avg["ODRMax"]["ipc"] / avg["NoReg"]["ipc"] - 1
    gain_60 = avg["ODR60"]["ipc"] / avg["NoReg"]["ipc"] - 1
    assert 0.02 <= gain_max <= 0.20          # paper: +7.6%
    assert 0.08 <= gain_60 <= 0.35           # paper: +21.2%
    assert gain_60 > gain_max

    # miss-rate and read-time reductions
    assert avg["NoReg"]["row_miss_rate"] - avg["ODR60"]["row_miss_rate"] >= 0.03
    assert avg["ODR60"]["read_access_ns"] <= 0.87 * avg["NoReg"]["read_access_ns"]

    # per-benchmark: ODRMax never hurts IPC
    for bench in BENCHMARKS:
        assert per_bench[bench]["ODRMax"]["ipc"] >= per_bench[bench]["NoReg"]["ipc"]

    benchmark.extra_info["ipc_gain_odr60_pct"] = round(gain_60 * 100, 1)
    benchmark.extra_info["noreg_avg_ipc"] = round(avg["NoReg"]["ipc"], 3)
