"""Figure 7 — FPS regulation and DRAM efficiency (InMind).

Paper anchors: NoReg ≈ 70 % row-miss / 68 ns read; Int60 cuts the miss
rate by ~9 points, read time to ~47 ns, and gains ~10 % IPC.
"""

from repro.experiments.figures import fig07_dram_efficiency


def test_fig07_dram_efficiency(benchmark, runner, save_text):
    result = benchmark.pedantic(
        lambda: fig07_dram_efficiency(runner), rounds=1, iterations=1
    )
    save_text("fig07_dram_efficiency", result["text"])
    data = result["data"]

    noreg = data["NoReg"]
    assert 0.66 <= noreg["row_miss_rate"] <= 0.73     # paper: ~0.70
    assert 60 <= noreg["read_access_ns"] <= 72        # paper: ~68

    int60 = data["Int60"]
    assert noreg["row_miss_rate"] - int60["row_miss_rate"] >= 0.05
    assert int60["read_access_ns"] <= 52              # paper: ~47
    assert int60["ipc"] >= 1.05 * noreg["ipc"]        # paper: +10%

    # all regulated configurations improve on NoReg
    for spec in ("Int60", "IntMax", "RVS60", "RVSMax"):
        assert data[spec]["ipc"] > noreg["ipc"]
        benchmark.extra_info[f"{spec}_ipc"] = round(data[spec]["ipc"], 3)
