#!/usr/bin/env python
"""Quickstart: run one cloud-3D benchmark with and without ODR.

Simulates InMind (a VR game from the Pictor suite) at 720p on a
private-cloud deployment, first with no FPS regulation and then under
OnDemand Rendering with a 60 FPS target, and prints the comparison the
paper's abstract summarizes: ODR removes the FPS gap, meets the QoS
target, and cuts latency and power.

Run:  python examples/quickstart.py
"""

from repro import CloudSystem, SystemConfig, make_regulator
from repro.hardware import evaluate_hardware
from repro.workloads import PRIVATE_CLOUD, Resolution


def run_one(spec: str):
    """Simulate 20 s of InMind under the given regulator spec."""
    config = SystemConfig(
        benchmark="IM",
        platform=PRIVATE_CLOUD,
        resolution=Resolution.R720P,
        seed=1,
        duration_ms=20000.0,
        warmup_ms=3000.0,
    )
    result = CloudSystem(config, make_regulator(spec)).run()
    hardware = evaluate_hardware(result)
    return result, hardware


def main() -> None:
    print("Quickstart: InMind @ 720p, private cloud, 20 s simulated")
    print()
    header = (
        f"{'config':8s} {'render':>7s} {'client':>7s} {'gap':>6s} "
        f"{'MtP ms':>7s} {'power W':>8s} {'IPC':>5s}"
    )
    print(header)
    print("-" * len(header))
    for spec in ("NoReg", "ODR60"):
        result, hardware = run_one(spec)
        gap = result.fps_gap()
        print(
            f"{spec:8s} {result.render_fps:7.1f} {result.client_fps:7.1f} "
            f"{gap.mean_gap:6.1f} {result.mean_mtp_ms():7.1f} "
            f"{hardware.power.total_w:8.1f} {hardware.ipc:5.2f}"
        )
    print()
    noreg, noreg_hw = run_one("NoReg")
    odr, odr_hw = run_one("ODR60")
    saved = 1 - odr_hw.power.total_w / noreg_hw.power.total_w
    print(f"ODR60 removed {noreg.fps_gap().mean_gap - odr.fps_gap().mean_gap:.0f} frames/s")
    print(f"of excessive rendering and saved {saved:.0%} of server power,")
    print(f"while meeting the 60 FPS target ({odr.client_fps:.1f} FPS delivered)")
    qos = odr.qos(60.0)
    print(f"in {qos.satisfaction:.0%} of all 200 ms QoS windows.")


if __name__ == "__main__":
    main()
