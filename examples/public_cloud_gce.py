#!/usr/bin/env python
"""Public-cloud deployment: why NoReg melts down on GCE and ODR doesn't.

The paper's most practically important result (Sec. 6.4): on a
conventional public cloud behind a commodity Internet path, unregulated
rendering congests the network — every frame, including input
responses, queues behind megabytes of stale frames, and motion-to-
photon latency explodes to *seconds*.  ODR's multi-buffering removes
the standing queue entirely; with PriorityFrame the 100 ms action-game
budget holds even at 25 ms ping.

This example reproduces that story for every benchmark of the suite.

Run:  python examples/public_cloud_gce.py
"""

from repro import CloudSystem, SystemConfig, make_regulator
from repro.workloads import BENCHMARKS, GCE, Resolution

ACTION_GAME_BUDGET_MS = 100.0


def simulate(bench: str, spec: str):
    config = SystemConfig(
        benchmark=bench,
        platform=GCE,
        resolution=Resolution.R720P,
        seed=1,
        duration_ms=15000.0,
        warmup_ms=3000.0,
    )
    return CloudSystem(config, make_regulator(spec)).run()


def main() -> None:
    print("Public cloud (GCE, ~25 ms ping, 42 Mbps effective) @ 720p")
    print(f"QoS requirement: 60 FPS, MtP < {ACTION_GAME_BUDGET_MS:.0f} ms (action games)")
    print()
    header = (
        f"{'bench':6s} | {'NoReg FPS':>9s} {'NoReg MtP':>10s} {'queue':>7s} | "
        f"{'ODR60 FPS':>9s} {'ODR60 MtP':>10s} {'verdict':>8s}"
    )
    print(header)
    print("-" * len(header))
    feasible = 0
    for bench in BENCHMARKS:
        noreg = simulate(bench, "NoReg")
        odr = simulate(bench, "ODR60")
        # standing send-queue depth is the congestion smoking gun
        queue_kb = 0
        regulator = noreg.system.regulator
        if regulator.send_queue is not None:
            queue_kb = regulator.send_queue.queued_bytes // 1024
        ok = odr.client_fps >= 59.0 and odr.mean_mtp_ms() < ACTION_GAME_BUDGET_MS
        feasible += ok
        print(
            f"{bench:6s} | {noreg.client_fps:9.1f} {noreg.mean_mtp_ms():8.0f}ms "
            f"{queue_kb:5d}KB | {odr.client_fps:9.1f} {odr.mean_mtp_ms():8.1f}ms "
            f"{'PASS' if ok else 'FAIL':>8s}"
        )
    print()
    print(f"{feasible}/{len(BENCHMARKS)} benchmarks meet the action-game QoS under ODR60;")
    print("none do under NoReg — the congested send queue alone adds seconds.")


if __name__ == "__main__":
    main()
