#!/usr/bin/env python
"""Regulator shootout: all seven configurations on one benchmark.

Reproduces the Sec. 4 analysis table for any benchmark/platform from
the command line, including the hardware-efficiency columns.

Run:  python examples/regulator_shootout.py [BENCH] [private|gce]
      python examples/regulator_shootout.py ITP gce
"""

import sys

from repro import CloudSystem, SystemConfig, make_regulator
from repro.experiments.report import format_table
from repro.hardware import evaluate_hardware
from repro.workloads import PLATFORMS, Resolution

SPECS = ["NoReg", "Int60", "IntMax", "RVS60", "RVSMax", "ODR60", "ODRMax", "ODRMax-noPri"]


def main() -> None:
    bench = sys.argv[1].upper() if len(sys.argv) > 1 else "IM"
    platform = PLATFORMS[sys.argv[2].lower() if len(sys.argv) > 2 else "private"]

    rows = []
    for spec in SPECS:
        config = SystemConfig(
            benchmark=bench,
            platform=platform,
            resolution=Resolution.R720P,
            seed=1,
            duration_ms=20000.0,
            warmup_ms=3000.0,
        )
        result = CloudSystem(config, make_regulator(spec)).run()
        hardware = evaluate_hardware(result)
        gap = result.fps_gap()
        qos = result.qos(60.0)
        rows.append(
            [
                spec,
                result.render_fps,
                result.client_fps,
                gap.mean_gap,
                result.mean_mtp_ms(),
                qos.satisfaction,
                hardware.dram.row_miss_rate,
                hardware.ipc,
                hardware.power.total_w,
            ]
        )

    print(
        format_table(
            ["config", "render", "client", "gap", "MtP ms", "QoS@60",
             "miss", "IPC", "power W"],
            rows,
            title=f"Regulator shootout: {bench} @ 720p on {platform.name} "
                  f"({platform.description})",
        )
    )
    print()
    print("Reading guide: ODR is the only configuration that simultaneously")
    print("closes the FPS gap (gap ~ 0), meets the QoS target (QoS@60 ~ 1.0),")
    print("and keeps MtP latency at or below NoReg's.")


if __name__ == "__main__":
    main()
