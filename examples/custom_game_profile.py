#!/usr/bin/env python
"""Bring your own game: define a custom workload profile and regulate it.

A downstream user adopting this library for their own cloud-gaming
stack will not run the Pictor suite — they will characterize their own
title.  This example builds a :class:`BenchmarkProfile` from scratch
(an imaginary open-world RPG with heavy scenes and slow encode), then
checks which FPS target is sustainable under ODR on a public cloud.

Run:  python examples/custom_game_profile.py
"""

from repro import CloudSystem, OnDemandRendering, SystemConfig
from repro.workloads import GCE, Resolution
from repro.workloads.benchmarks import BenchmarkProfile
from repro.workloads.distributions import FrameSizeModel, StageTimeModel

# Characterize the game from profiling data: heavy scenes (slow, highly
# variable rendering with big spikes when streaming new areas), large
# frames (detailed open world compresses poorly).
OPEN_WORLD_RPG = BenchmarkProfile(
    name="RPG",
    full_name="Example Open-World RPG",
    genre="Role-Playing Game",
    render=StageTimeModel(
        mean_ms=9.0, cv=0.45, spike_prob=0.10, spike_scale_ms=9.0,
        spike_alpha=2.2, rho=0.7,
    ),
    copy=StageTimeModel(mean_ms=1.7, cv=0.15, rho=0.3),
    encode=StageTimeModel(
        mean_ms=12.0, cv=0.25, spike_prob=0.10, spike_scale_ms=6.0,
        spike_alpha=2.2, rho=0.6,
    ),
    decode=StageTimeModel(mean_ms=4.8, cv=0.2, rho=0.3),
    frame_size=FrameSizeModel(mean_kb=78.0, gop_length=30, i_frame_ratio=4.0),
    actions_per_second=3.0,
    logic_cpu_weight=1.4,
    ipc_peak=1.2,
)


def try_target(target_fps):
    """Simulate ODR at the given target on GCE; report feasibility."""
    config = SystemConfig(
        benchmark=OPEN_WORLD_RPG,
        platform=GCE,
        resolution=Resolution.R720P,
        seed=1,
        duration_ms=20000.0,
        warmup_ms=3000.0,
    )
    regulator = OnDemandRendering(target_fps=target_fps)
    result = CloudSystem(config, regulator).run()
    qos = result.qos(target_fps)
    return result, qos


def main() -> None:
    print(f"Capacity planning for {OPEN_WORLD_RPG.full_name!r} on GCE @ 720p")
    print()
    for target in (30.0, 45.0, 60.0):
        result, qos = try_target(target)
        ok = result.client_fps >= target - 0.5 and qos.satisfaction > 0.95
        print(
            f"  ODR@{target:4.0f} FPS -> delivered {result.client_fps:5.1f} FPS, "
            f"QoS windows {qos.satisfaction:6.1%}, "
            f"MtP {result.mean_mtp_ms():5.1f} ms, "
            f"bandwidth {result.bandwidth_mbps():4.1f} Mbps"
            f"   {'SUSTAINABLE' if ok else 'NOT SUSTAINABLE'}"
        )
    print()
    print("The encode stage (12 ms/frame uncontended) caps this title around")
    print("75 FPS, but with strict 200 ms QoS windows only the 30 FPS target")
    print("holds on this GCE path; 45/60 FPS would need an edge deployment")
    print("or a lighter encode preset.")


if __name__ == "__main__":
    main()
