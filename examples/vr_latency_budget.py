#!/usr/bin/env python
"""VR latency budgets: where can cloud VR actually run?

The paper (Sec. 3) lists MtP budgets per application class:
action-intensive VR needs < 25 ms, action games < 100 ms, other games
up to 500 ms.  This example sweeps both VR benchmarks (InMind and
IMHOTEP) across deployments and regulators and reports which budget
each combination satisfies — at the mean and at the 99th percentile,
because VR comfort is a tail problem.

Run:  python examples/vr_latency_budget.py
"""

from repro import CloudSystem, SystemConfig, make_regulator
from repro.workloads import GCE, PRIVATE_CLOUD, Resolution

BUDGETS = [
    ("action VR", 25.0),
    ("action game", 100.0),
    ("casual", 500.0),
]


def classify(latency_ms: float) -> str:
    for label, budget in BUDGETS:
        if latency_ms <= budget:
            return label
    return "unusable"


def main() -> None:
    print("VR latency budgets (paper Sec. 3): action VR < 25 ms,")
    print("action games < 100 ms, casual < 500 ms")
    print()
    header = (
        f"{'bench':6s} {'deployment':11s} {'config':7s} "
        f"{'mean ms':>8s} {'p99 ms':>7s}  {'mean class':>11s}  {'p99 class':>11s}"
    )
    print(header)
    print("-" * len(header))
    for bench in ("IM", "ITP"):
        for platform in (PRIVATE_CLOUD, GCE):
            for spec in ("NoReg", "ODRMax"):
                config = SystemConfig(
                    benchmark=bench,
                    platform=platform,
                    resolution=Resolution.R720P,
                    seed=1,
                    duration_ms=20000.0,
                    warmup_ms=3000.0,
                )
                result = CloudSystem(config, make_regulator(spec)).run()
                box = result.mtp_box()
                print(
                    f"{bench:6s} {platform.name:11s} {spec:7s} "
                    f"{box.mean:8.1f} {box.p99:7.1f}  "
                    f"{classify(box.mean):>11s}  {classify(box.p99):>11s}"
                )
    print()
    print("Takeaways: even the edge deployment sits just above the 25 ms")
    print("action-VR budget (the paper reaches the same conclusion — cloud VR")
    print("needs every millisecond ODR saves); on the public cloud, ODR turns")
    print("'unusable' seconds into solid action-game latency, which no amount")
    print("of bandwidth fixes for NoReg.")


if __name__ == "__main__":
    main()
