#!/usr/bin/env python
"""Record a workload trace, then replay it through different regulators.

Deterministic what-if analysis: capture the exact per-frame service
times of one InMind session, then push the *identical* workload through
NoReg, Int60, and ODR60.  Because every replayed run sees the same
frame times, the differences below are purely the regulators' doing —
no workload randomness involved.  The same mechanism lets you drive the
simulator with frame-time traces profiled from a real game.

Run:  python examples/record_replay.py
"""

import io

from repro import CloudSystem, SystemConfig, make_regulator
from repro.analysis import StageTraces, record_stage_traces
from repro.workloads import PRIVATE_CLOUD, Resolution, get_benchmark


def run(benchmark, spec):
    config = SystemConfig(
        benchmark=benchmark,
        platform=PRIVATE_CLOUD,
        resolution=Resolution.R720P,
        seed=1,
        duration_ms=15000.0,
        warmup_ms=2500.0,
        contention_beta=0.0,  # keep recorded times exact across replays
    )
    return CloudSystem(config, make_regulator(spec)).run()


def main() -> None:
    print("1. Recording: InMind under NoReg (contention disabled so the")
    print("   recorded service times are exact)...")
    original = run("IM", "NoReg")
    traces = record_stage_traces(original)
    print(f"   captured {traces.length('render')} render / "
          f"{traces.length('encode')} encode frame times")

    # traces round-trip through CSV — this is the hand-off point for
    # traces profiled from a real game
    buffer = io.StringIO()
    traces.save(buffer)
    buffer.seek(0)
    traces = StageTraces.load(buffer)
    profile = traces.as_profile(get_benchmark("IM"))

    print()
    print("2. Replaying the identical workload through each regulator:")
    print()
    print(f"   {'config':7s} {'render':>7s} {'client':>7s} {'gap':>6s} {'MtP ms':>7s}")
    for spec in ("NoReg", "Int60", "ODR60"):
        result = run(profile, spec)
        gap = result.fps_gap()
        print(
            f"   {spec:7s} {result.render_fps:7.1f} {result.client_fps:7.1f} "
            f"{gap.mean_gap:6.1f} {result.mean_mtp_ms():7.1f}"
        )
    print()
    print("Same frames, three outcomes: the FPS gap and latency differences")
    print("are attributable entirely to the regulation policy.")


if __name__ == "__main__":
    main()
