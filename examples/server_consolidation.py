#!/usr/bin/env python
"""Server consolidation: how many players fit on one cloud GPU?

The datacenter argument for FPS regulation, run end-to-end: co-locate
1-4 game sessions on a single simulated server (shared GPU, encoder
pool, uplink, and DRAM) and find the highest tenant count at which
every session still meets the 60 FPS target.

Run:  python examples/server_consolidation.py
"""

from repro.multitenant import SharedServer
from repro.regulators import make_regulator
from repro.workloads import PRIVATE_CLOUD, Resolution

SESSIONS = ["ITP", "IM", "RE", "STK"]


def host(spec: str, n: int) -> SharedServer:
    server = SharedServer(
        benchmarks=SESSIONS[:n],
        platform=PRIVATE_CLOUD,
        resolution=Resolution.R720P,
        regulator_factory=lambda i: make_regulator(spec),
        seed=1,
        duration_ms=15000.0,
        warmup_ms=2500.0,
    )
    server.results = server.run()
    return server


def main() -> None:
    print("Consolidation study: sessions per server at the 60 FPS target")
    print("(720p, private cloud; shared GPU + encoder pool + uplink + DRAM)")
    print()
    densities = {}
    for spec in ("NoReg", "ODR60"):
        print(f"--- {spec} ---")
        densities[spec] = 0
        for n in (1, 2, 3, 4):
            server = host(spec, n)
            per_session = ", ".join(
                f"{r.benchmark}:{r.client_fps:.0f}fps" for r in server.results
            )
            ok = all(r.client_fps >= 59.0 for r in server.results)
            if ok:
                densities[spec] = n
            print(
                f"  {n} session(s): [{per_session}]  "
                f"GPU {server.gpu_utilization():4.0%}  "
                f"{server.server_power_w():5.1f} W total  "
                f"({server.server_power_w()/n:5.1f} W/session)  "
                f"{'OK' if ok else 'DEGRADED'}"
            )
        print()
    print(
        f"Density at full QoS: NoReg hosts {densities['NoReg']} session(s), "
        f"ODR60 hosts {densities['ODR60']} —"
    )
    print("excessive rendering is the difference between a GPU per player")
    print("and a GPU shared by several, with idle power amortized to match.")


if __name__ == "__main__":
    main()
