"""The job layer: one client request for one sweep, with a lifecycle.

A *job* wraps one :class:`~repro.experiments.plan.Plan` submitted to
the gateway:

* :class:`JobSpec` — the plain-data request (which demand builder,
  with which parameters, plus a human label);
* :class:`JobState` — the lifecycle
  ``queued → running → done | failed`` (``failed`` means the job
  machinery itself broke; individual cell failures leave the job
  ``done`` with failures enumerated on its report, exactly like an
  offline sweep);
* :class:`Job` — the live record the scheduler mutates and the gateway
  reads: state, timestamps, the per-job
  :class:`~repro.obs.sweep.SweepEventBus` clients stream from, and the
  per-job :class:`~repro.experiments.results.ExecutionReport` once the
  sweep completes.

Job identity is time-of-submission identity (two submissions of the
same plan are two jobs); *cell* identity stays content-addressed by
``run_id``, which is what cross-job dedupe keys on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.experiments.plan import Plan
from repro.experiments.results import ExecutionReport
from repro.obs.sweep import SweepEventBus

__all__ = ["Job", "JobSpec", "JobState"]


class JobState(enum.Enum):
    """Lifecycle of one submitted sweep."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED)


@dataclass(frozen=True)
class JobSpec:
    """The plain-data request one ``submit`` carries.

    ``kind`` names a demand builder (``cells``, ``matrix``, ``bench``,
    ``chaos`` — see :func:`repro.service.protocol.build_plan`) and
    ``params`` its JSON-safe arguments.  Figure- and table-shaped
    plans ride the ``cells`` kind: any plan serializes to its cell
    list.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    #: Client-chosen idempotency token.  A resubmit carrying a token the
    #: scheduler has already accepted *joins* the existing job instead
    #: of forking a duplicate — the at-most-once half of the client's
    #: at-least-once retry loop.  Empty means "no dedupe, every submit
    #: is a new job" (the pre-token behavior).
    token: str = ""


@dataclass
class Job:
    """One submitted sweep, from queue to report.

    Mutated only by the scheduler (state transitions, report); read
    concurrently by the gateway.  Field updates are single reference
    assignments, and :meth:`summary` snapshots a consistent wire view.
    """

    job_id: str
    spec: JobSpec
    plan: Plan
    #: Per-job event stream (``sweep_id == job_id``); clients subscribe
    #: through the scheduler, which replays history before going live.
    bus: SweepEventBus
    state: JobState = JobState.QUEUED
    submitted_epoch_s: float = 0.0
    started_epoch_s: Optional[float] = None
    finished_epoch_s: Optional[float] = None
    report: Optional[ExecutionReport] = None
    #: Infrastructure failure diagnosis (``state == FAILED`` only).
    error: Optional[str] = None
    #: True when this job was replayed from the job journal after a
    #: gateway crash rather than submitted by a live client.
    recovered: bool = False

    def summary(self) -> Dict[str, Any]:
        """JSON-safe snapshot for ``status`` responses."""
        report = self.report
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "label": self.spec.label,
            "kind": self.spec.kind,
            "state": self.state.value,
            "cells": len(self.plan),
            "submitted_epoch_s": self.submitted_epoch_s,
            "started_epoch_s": self.started_epoch_s,
            "finished_epoch_s": self.finished_epoch_s,
        }
        if report is not None:
            out["executed"] = report.executed
            out["cached"] = report.cached
            out["deduped"] = report.deduped
            out["failed"] = len(report.failures)
            out["ok"] = report.ok
        if self.error is not None:
            out["error"] = self.error
        if self.recovered:
            out["recovered"] = True
        return out
