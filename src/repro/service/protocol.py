"""The wire protocol: newline-delimited JSON frames over a socket.

One request is one JSON object on one line; one response is one JSON
object on one line — except ``watch``, which answers with an ``ok``
frame followed by one ``{"event": ...}`` line per sweep event and a
final ``{"done": true}`` frame after the job's ``sweep_end``.  NDJSON
keeps the protocol greppable, stdlib-parseable from any language, and
stream-framed for free (the same reason ``events.jsonl`` is NDJSON).

Requests (``op`` selects):

=========  ==========================================================
``ping``      liveness + server identity
``submit``    ``plan`` (see :func:`build_plan`), optional ``label``
``status``    all jobs, or one with ``job_id`` (prefixes accepted)
``result``    a finished job's per-cell outcome table
``fetch``     one cell by ``run_id``, straight from the store/ledger
``watch``     stream one job's sweep events (history replays first)
``shutdown``  ask the server to stop accepting and exit
=========  ==========================================================

Every response carries ``ok``; failures carry ``error``.  The protocol
is versioned (:data:`PROTOCOL_VERSION`) and the version rides every
``ping``/``submit`` response, so a drifted client fails loud, not
weird.

Plans travel as ``{"kind": ..., ...params}``.  ``cells`` is the
universal form — any :class:`~repro.experiments.plan.Plan` serializes
to its cell list via :func:`plan_payload` (figure- and table-shaped
demands ride it unchanged); ``matrix``, ``bench`` and ``chaos`` name
the standard server-side demand builders so common sweeps stay a
one-line request.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.chaos import chaos_demands
from repro.experiments.plan import (
    DEFAULT_DURATION_MS,
    DEFAULT_WARMUP_MS,
    CellSpec,
    Plan,
    bench_demands,
    matrix_demands,
)

__all__ = [
    "PROTOCOL_VERSION",
    "build_plan",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "plan_payload",
]

#: Bumped whenever the frame layout changes incompatibly.
PROTOCOL_VERSION = 1

#: Largest accepted request line (a 10k-cell ``cells`` plan fits).
MAX_FRAME_BYTES = 8 * 1024 * 1024


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """One frame: canonical JSON, one line, UTF-8."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises ``ValueError`` on junk."""
    payload = json.loads(line.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("frame must be a JSON object")
    return payload


def error_frame(
    message: str,
    code: Optional[str] = None,
    retry_after_s: Optional[float] = None,
) -> Dict[str, Any]:
    """One failure response.

    ``code`` is the :mod:`repro.service.errors` taxonomy discriminator
    (``transport`` / ``protocol`` / ``busy`` / ``job_lost``) the client
    maps back to a typed exception; ``retry_after_s`` rides along with
    ``busy`` as the server's backoff hint.  Both are optional so old
    clients (which only read ``error``) keep working.
    """
    frame: Dict[str, Any] = {"ok": False, "error": message}
    if code is not None:
        frame["code"] = code
    if retry_after_s is not None:
        frame["retry_after_s"] = retry_after_s
    return frame


def plan_payload(plan: Plan, kind: str = "cells") -> Dict[str, Any]:
    """Serialize any plan to its universal ``cells`` wire form."""
    return {"kind": kind, "cells": [spec.to_dict() for spec in plan]}


def _seeds(params: Dict[str, Any]) -> Sequence[int]:
    seeds = params.get("seeds", [1])
    return [int(seed) for seed in seeds]


def _horizon(params: Dict[str, Any]) -> Dict[str, float]:
    return {
        "duration_ms": float(params.get("duration_ms", DEFAULT_DURATION_MS)),
        "warmup_ms": float(params.get("warmup_ms", DEFAULT_WARMUP_MS)),
    }


def _str_list(value: Any) -> Optional[List[str]]:
    if value is None:
        return None
    return [str(item) for item in value]


def build_plan(kind: str, params: Dict[str, Any]) -> Plan:
    """Materialize a submitted plan payload into a :class:`Plan`.

    The cell identity math (``run_id``) happens in :class:`CellSpec`
    itself, so a plan built here from a client's payload addresses the
    exact same cells as the same demand built offline — which is what
    makes serving from the shared store, and cross-job dedupe, sound.
    """
    if kind == "cells":
        cells = params.get("cells")
        if not isinstance(cells, list) or not cells:
            raise ValueError("cells plan needs a non-empty 'cells' list")
        return Plan(CellSpec.from_dict(cell) for cell in cells)
    if kind == "matrix":
        if params.get("regulators") is not None:
            # Silently dropping a selector would make the "same
            # command, same cells" contract a lie — fail loudly.
            raise ValueError(
                "matrix plan fixes the regulator slate per "
                "platform-resolution group; filter with 'groups', or "
                "use the bench kind for an explicit regulator list"
            )
        return matrix_demands(
            benchmarks=_str_list(params.get("benchmarks")),
            groups=_str_list(params.get("groups")),
            include_ablation=bool(params.get("include_ablation", False)),
            seeds=_seeds(params),
            **_horizon(params),
        )
    if kind == "bench":
        benchmarks = _str_list(params.get("benchmarks"))
        regulators = _str_list(params.get("regulators"))
        if not benchmarks or not regulators:
            raise ValueError("bench plan needs 'benchmarks' and 'regulators'")
        return bench_demands(
            benchmarks,
            regulators,
            seeds=_seeds(params),
            platform=str(params.get("platform", "private")),
            resolution=str(params.get("resolution", "720p")),
            **_horizon(params),
        )
    if kind == "chaos":
        benchmarks = _str_list(params.get("benchmarks"))
        regulators = _str_list(params.get("regulators"))
        if not benchmarks or not regulators:
            raise ValueError("chaos plan needs 'benchmarks' and 'regulators'")
        return chaos_demands(
            benchmarks,
            regulators,
            fault_classes=_str_list(params.get("fault_classes")),
            seeds=_seeds(params),
            platform=str(params.get("platform", "private")),
            resolution=str(params.get("resolution", "720p")),
            include_baseline=bool(params.get("include_baseline", True)),
            **_horizon(params),
        )
    raise ValueError(f"unknown plan kind {kind!r}")
