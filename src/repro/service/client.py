"""A resilient synchronous client for the sweep gateway.

:class:`ServiceClient` speaks the NDJSON protocol over a plain socket
— one connection per request (the server is cheap to dial), except
:meth:`watch`, which holds its connection open and yields sweep events
as they stream.  Used by the ``odr-sim submit/status/fetch`` verbs,
``odr-sim watch --connect``, and the service tests; being stdlib-only
and synchronous, it is also the reference third-party client: the
whole protocol fits in this file.

The client assumes the network is weather, not fate:

* every failure surfaces as a typed
  :class:`~repro.service.errors.ServiceError` — transport trouble is
  retryable, protocol nonsense is not, and the retry loop consults
  exactly that distinction;
* retries back off exponentially with **seeded** jitter
  (:class:`RetryPolicy`): delays are a pure function of
  ``(policy seed, attempt)``, so a chaos run's retry schedule is
  replayable, not a flake;
* :meth:`submit` is idempotent under retry: each logical submit call
  carries a token (fingerprint of plan + label + a per-call nonce), so
  a resubmit whose first acknowledgement was lost *joins* the job the
  server already accepted instead of forking a duplicate sweep;
* :meth:`watch` reconnects on stream drops and resumes from the last
  event ``seq`` it saw — the event log continues gap-free;
* connecting waits (bounded) for the server to start listening, fixing
  the classic test/CI race where the client dials a gateway that is
  one scheduler-warmup behind it.

Transports are pluggable: the default is a plain TCP connect
(:class:`~repro.faults.service.TcpTransport`); tests hand in a seeded
:class:`~repro.faults.service.ChaosTransport` and the client's
behavior under drops, truncations, and slow reads becomes a
deterministic fixture.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Protocol, Tuple

from repro.experiments.plan import Plan
from repro.faults.service import TcpTransport
from repro.obs.probes import host_epoch, host_wallclock
from repro.obs.runmeta import config_fingerprint
from repro.obs.sweep import SweepEvent
from repro.service.errors import (
    ProtocolError,
    ServerBusy,
    ServiceError,
    TransportError,
    error_for_code,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    plan_payload,
)
from repro.simcore.rng import SeededRng, derive_seed

__all__ = [
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "parse_address",
]


class _SocketLike(Protocol):
    """What a transport's connection must provide (duck-typed so both
    real sockets and :class:`~repro.faults.service.ChaosSocket` fit)."""

    def sendall(self, data: bytes) -> None: ...

    def recv(self, bufsize: int) -> bytes: ...

    def settimeout(self, timeout_s: Optional[float]) -> None: ...

    def close(self) -> None: ...


class _Transport(Protocol):
    """What the client needs from a transport: dial one connection."""

    def open(
        self, host: str, port: int, timeout_s: Optional[float] = None
    ) -> _SocketLike: ...


def parse_address(address: str, default_port: int = 7433) -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"host"``) → ``(host, port)``."""
    host, _, port = address.rpartition(":")
    if not host:
        return address, default_port
    return host, int(port)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    :meth:`delay_for` is a pure function of ``(seed, attempt)`` — two
    clients with the same policy retry on the same schedule, which is
    what makes chaos tests assert *deterministic* retry behavior
    instead of sleeping and hoping.
    """

    #: Total tries per request (first attempt included).
    attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < self.base_delay_s:
            raise ValueError("need 0 <= base_delay_s <= max_delay_s")

    def delay_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based) — pure.

        Exponential growth capped at ``max_delay_s``, scaled by a
        seeded jitter factor in ``[0.5, 1.0)`` so synchronized clients
        desynchronize identically on every replay.
        """
        ceiling = min(self.max_delay_s, self.base_delay_s * (2.0**attempt))
        rng = SeededRng(derive_seed(self.seed, "client-retry", attempt))
        return ceiling * (0.5 + 0.5 * rng.random())


class _FrameStream:
    """Buffered NDJSON framing over one connection.

    Replaces ``socket.makefile`` so the same code path serves real
    sockets and chaos sockets, and so framing violations surface as
    :class:`ProtocolError` instead of leaking stdlib exceptions.
    """

    def __init__(self, sock: _SocketLike) -> None:
        self._sock = sock
        self._buffer = b""

    def send(self, payload: Dict[str, Any]) -> None:
        self._sock.sendall(encode_frame(payload))

    def readline(self) -> bytes:
        """One frame line (with newline), or ``b""`` at clean EOF.

        EOF with a partial line buffered is a *mid-frame* close — the
        torn-frame case — and raises :class:`TransportError` so the
        retry loop treats it as transport weather.
        """
        while b"\n" not in self._buffer:
            if len(self._buffer) > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame exceeds {MAX_FRAME_BYTES} bytes"
                )
            chunk = self._sock.recv(65536)
            if not chunk:
                if self._buffer:
                    raise TransportError("connection closed mid-frame")
                return b""
            self._buffer += chunk
        line, _, self._buffer = self._buffer.partition(b"\n")
        return line + b"\n"


class ServiceClient:
    """Blocking, retrying NDJSON client for one gateway address."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7433,
        timeout_s: float = 60.0,
        transport: Optional[_Transport] = None,
        retry: Optional[RetryPolicy] = None,
        connect_wait_s: float = 5.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.transport: _Transport = (
            transport if transport is not None else TcpTransport()
        )
        self.retry = retry if retry is not None else RetryPolicy()
        #: How long :meth:`_connect` waits for a listener to appear.
        self.connect_wait_s = connect_wait_s
        self._submit_nonce = 0

    # -- plumbing ----------------------------------------------------------

    def _connect(self, timeout_s: Optional[float]) -> _SocketLike:
        """Dial the gateway, waiting (bounded) for it to be listening.

        A refused connection inside the ``connect_wait_s`` window means
        the server is still starting (the classic CI race) — keep
        knocking; past the window it becomes a
        :class:`TransportError` like any other.
        """
        deadline = host_wallclock() + self.connect_wait_s
        while True:
            try:
                return self.transport.open(
                    self.host, self.port, timeout_s=timeout_s
                )
            except ConnectionRefusedError as exc:
                if host_wallclock() >= deadline:
                    raise TransportError(
                        f"{self.host}:{self.port} refused connections for "
                        f"{self.connect_wait_s:g}s: {exc}"
                    ) from exc
                time.sleep(0.05)
            except OSError as exc:
                raise TransportError(f"connect failed: {exc}") from exc

    def _request_once(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one response, one connection — typed failures."""
        sock = self._connect(self.timeout_s)
        try:
            sock.settimeout(self.timeout_s)
            stream = _FrameStream(sock)
            try:
                stream.send(payload)
                line = stream.readline()
            except ServiceError:
                raise
            except OSError as exc:
                raise TransportError(f"request failed: {exc}") from exc
        finally:
            sock.close()
        if not line:
            raise TransportError("server closed the connection without answering")
        try:
            response = decode_frame(line)
        except ValueError as exc:
            raise ProtocolError(f"unparseable response frame: {exc}") from exc
        if not response.get("ok", False):
            raise self._error_from(response)
        return response

    @staticmethod
    def _error_from(response: Dict[str, Any]) -> ServiceError:
        retry_after = response.get("retry_after_s")
        return error_for_code(
            str(response.get("code", "")) or None,
            str(response.get("error", "request failed")),
            retry_after_s=(
                float(retry_after) if retry_after is not None else None
            ),
        )

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Request with bounded retry on retryable failures."""
        last: Optional[ServiceError] = None
        for attempt in range(self.retry.attempts):
            try:
                return self._request_once(payload)
            except ServiceError as exc:
                if not exc.retryable or attempt + 1 >= self.retry.attempts:
                    raise
                last = exc
                delay = self.retry.delay_for(attempt)
                if isinstance(exc, ServerBusy) and exc.retry_after_s:
                    delay = max(delay, exc.retry_after_s)
                time.sleep(delay)
        raise last if last is not None else ServiceError("request failed")

    # -- the verbs ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def _new_token(self, plan: Dict[str, Any], label: str) -> str:
        """Idempotency token for one logical submit call.

        Keyed by the plan payload's digest plus a per-call nonce: the
        retry loop reuses it (a lost acknowledgement joins the accepted
        job), while a *deliberate* second submission of the same plan
        gets a fresh token and a fresh job.
        """
        self._submit_nonce += 1
        return "tok-" + config_fingerprint(
            {
                "plan": plan,
                "label": label,
                "nonce": self._submit_nonce,
                "pid": os.getpid(),
                "epoch": host_epoch(),
            }
        )[:16]

    def submit(
        self,
        plan: Dict[str, Any],
        label: str = "",
        token: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a plan payload (``{"kind": ..., ...}``); returns the job.

        Safe under retry: the whole retry loop shares one idempotency
        ``token``, so the server runs at most one job for this call no
        matter how many resubmits the weather forces.
        """
        token = token if token is not None else self._new_token(plan, label)
        response = self._request(
            {"op": "submit", "plan": plan, "label": label, "token": token}
        )
        job = response["job"]
        assert isinstance(job, dict)
        return job

    def submit_plan(self, plan: Plan, label: str = "") -> Dict[str, Any]:
        """Submit a locally built :class:`Plan` via the ``cells`` form."""
        return self.submit(plan_payload(plan), label=label)

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        request: Dict[str, Any] = {"op": "status"}
        if job_id is not None:
            request["job_id"] = job_id
        return self._request(request)

    def jobs(self) -> List[Dict[str, Any]]:
        jobs = self.status()["jobs"]
        assert isinstance(jobs, list)
        return jobs

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "result", "job_id": job_id})

    def fetch(self, run_id: str) -> Dict[str, Any]:
        return self._request({"op": "fetch", "run_id": run_id})

    def shutdown(self) -> None:
        self._request({"op": "shutdown"})

    def wait(self, job_id: str, poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state."""
        while True:
            job = self.status(job_id)["job"]
            assert isinstance(job, dict)
            if job.get("state") in ("done", "failed"):
                return job
            time.sleep(poll_s)

    # -- streaming ---------------------------------------------------------

    def _watch_once(
        self,
        job_id: str,
        since_seq: int,
        timeout_s: Optional[float],
    ) -> Iterator[SweepEvent]:
        """One watch connection: opening frame, then events until done."""
        sock = self._connect(self.timeout_s)
        try:
            sock.settimeout(timeout_s)
            stream = _FrameStream(sock)
            try:
                stream.send(
                    {"op": "watch", "job_id": job_id, "since_seq": since_seq}
                )
                header = stream.readline()
            except OSError as exc:
                raise TransportError(f"watch failed: {exc}") from exc
            if not header:
                raise TransportError("server closed the watch stream")
            opening = decode_frame(header)
            if not opening.get("ok", False):
                raise self._error_from(opening)
            while True:
                try:
                    line = stream.readline()
                except OSError as exc:
                    raise TransportError(f"watch read failed: {exc}") from exc
                if not line:
                    raise TransportError("watch stream ended mid-sweep")
                try:
                    frame = decode_frame(line)
                except ValueError as exc:
                    raise ProtocolError(
                        f"unparseable watch frame: {exc}"
                    ) from exc
                if frame.get("done"):
                    return
                event = frame.get("event")
                if isinstance(event, dict):
                    yield SweepEvent.from_dict(event)
        finally:
            sock.close()

    def watch(
        self,
        job_id: str,
        timeout_s: Optional[float] = None,
        since_seq: int = -1,
    ) -> Iterator[SweepEvent]:
        """Stream one job's sweep events until its ``sweep_end``.

        History replays first (from ``since_seq`` onward), so watching
        a finished job yields its whole log and returns.  A dropped
        connection mid-stream reconnects (bounded by the retry policy,
        with the attempt budget refreshed by progress) and resumes from
        the last event ``seq`` delivered — the yielded sequence stays
        gap-free and duplicate-free across drops.
        """
        last_seq = since_seq
        attempt = 0
        while True:
            progressed = False
            try:
                for event in self._watch_once(job_id, last_seq, timeout_s):
                    last_seq = max(last_seq, event.seq)
                    progressed = True
                    yield event
                return
            except ServiceError as exc:
                if progressed:
                    attempt = 0  # the stream moved; reset the budget
                if not exc.retryable or attempt + 1 >= self.retry.attempts:
                    raise
                time.sleep(self.retry.delay_for(attempt))
                attempt += 1
