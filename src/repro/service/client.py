"""A synchronous client for the sweep gateway.

:class:`ServiceClient` speaks the NDJSON protocol over a plain socket
— one connection per request (the server is cheap to dial), except
:meth:`watch`, which holds its connection open and yields sweep events
as they stream.  Used by the ``odr-sim submit/status/fetch`` verbs,
``odr-sim watch --connect``, and the service tests; being stdlib-only
and synchronous, it is also the reference third-party client: the
whole protocol fits in this file.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.experiments.plan import Plan
from repro.obs.sweep import SweepEvent
from repro.service.protocol import decode_frame, encode_frame, plan_payload

__all__ = ["ServiceClient", "ServiceError", "parse_address"]


class ServiceError(RuntimeError):
    """The server answered ``ok: false`` (or the stream broke)."""


def parse_address(address: str, default_port: int = 7433) -> Tuple[str, int]:
    """``"host:port"`` (or bare ``"host"``) → ``(host, port)``."""
    host, _, port = address.rpartition(":")
    if not host:
        return address, default_port
    return host, int(port)


class ServiceClient:
    """Blocking NDJSON client for one gateway address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 7433, timeout_s: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- plumbing ----------------------------------------------------------

    def _connect(self, timeout_s: Optional[float]) -> socket.socket:
        return socket.create_connection((self.host, self.port), timeout=timeout_s)

    def _request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one response, one connection."""
        with self._connect(self.timeout_s) as sock:
            with sock.makefile("rwb") as stream:
                stream.write(encode_frame(payload))
                stream.flush()
                line = stream.readline()
        if not line:
            raise ServiceError("server closed the connection without answering")
        response = decode_frame(line)
        if not response.get("ok", False):
            raise ServiceError(str(response.get("error", "request failed")))
        return response

    # -- the verbs ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._request({"op": "ping"})

    def submit(
        self, plan: Dict[str, Any], label: str = ""
    ) -> Dict[str, Any]:
        """Submit a plan payload (``{"kind": ..., ...}``); returns the job."""
        response = self._request({"op": "submit", "plan": plan, "label": label})
        job = response["job"]
        assert isinstance(job, dict)
        return job

    def submit_plan(self, plan: Plan, label: str = "") -> Dict[str, Any]:
        """Submit a locally built :class:`Plan` via the ``cells`` form."""
        return self.submit(plan_payload(plan), label=label)

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        request: Dict[str, Any] = {"op": "status"}
        if job_id is not None:
            request["job_id"] = job_id
        return self._request(request)

    def jobs(self) -> List[Dict[str, Any]]:
        jobs = self.status()["jobs"]
        assert isinstance(jobs, list)
        return jobs

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request({"op": "result", "job_id": job_id})

    def fetch(self, run_id: str) -> Dict[str, Any]:
        return self._request({"op": "fetch", "run_id": run_id})

    def shutdown(self) -> None:
        self._request({"op": "shutdown"})

    def wait(self, job_id: str, poll_s: float = 0.2) -> Dict[str, Any]:
        """Poll ``status`` until the job reaches a terminal state."""
        import time

        while True:
            job = self.status(job_id)["job"]
            assert isinstance(job, dict)
            if job.get("state") in ("done", "failed"):
                return job
            time.sleep(poll_s)

    def watch(
        self, job_id: str, timeout_s: Optional[float] = None
    ) -> Iterator[SweepEvent]:
        """Stream one job's sweep events until its ``sweep_end``.

        History replays first, so watching a finished job yields its
        whole log and returns.  Closing the iterator (or the caller
        going away) drops the connection; the server and job carry on.
        """
        with self._connect(self.timeout_s) as sock:
            sock.settimeout(timeout_s)
            with sock.makefile("rwb") as stream:
                stream.write(encode_frame({"op": "watch", "job_id": job_id}))
                stream.flush()
                header = stream.readline()
                if not header:
                    raise ServiceError("server closed the watch stream")
                opening = decode_frame(header)
                if not opening.get("ok", False):
                    raise ServiceError(
                        str(opening.get("error", "watch rejected"))
                    )
                while True:
                    line = stream.readline()
                    if not line:
                        raise ServiceError("watch stream ended mid-sweep")
                    frame = decode_frame(line)
                    if frame.get("done"):
                        return
                    event = frame.get("event")
                    if isinstance(event, dict):
                        yield SweepEvent.from_dict(event)
