"""The job journal: crash-tolerant job state for the gateway.

The scheduler's in-memory job table dies with the process; the
*results* of finished cells survive in the store and ledger, but a
SIGKILLed gateway used to forget which sweeps it still owed its
clients.  :class:`JobJournal` closes that gap with the cheapest durable
structure that works — an append-only ``<ledger>/jobs.jsonl``, one
canonical-JSON record per line, same idiom as the run ledger and the
sweep event log:

* ``job_submitted`` — appended *before* a job's first cell executes:
  job id, plan kind + params (the exact wire payload, so the plan can
  be rebuilt bit-for-bit), label, idempotency token, cell count and
  plan digest;
* ``job_finished`` — appended when the job reaches a terminal state,
  with its outcome accounting.

Recovery (:meth:`JobJournal.pending` via
:meth:`~repro.service.scheduler.SweepScheduler.recover`) replays the
log: every submitted-but-unfinished job is resubmitted **under its
original job id and token**, so a client that saw ``submitted job-X``
before the crash can keep polling ``job-X`` after the restart, and a
client retrying its submit with the same token joins the recovered job
instead of forking a duplicate.  Re-execution is naturally minimal:
the recovered job's store pass finds every cell the first life
completed, and the content-addressed ledger dedupes re-appends, so a
kill-and-resume sweep produces the same results and the same ledger as
an uninterrupted one.

Torn final lines (the process died mid-append) are skipped on replay —
an interrupted ``job_submitted`` is a job the server never
acknowledged, so dropping it is correct.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.probes import host_epoch

__all__ = ["JOURNAL_FILENAME", "JobJournal", "JournalEntry", "journal_path_for"]

#: Bumped whenever the journal record layout changes incompatibly.
JOURNAL_SCHEMA = 1

#: Conventional journal location inside a ledger directory.
JOURNAL_FILENAME = "jobs.jsonl"


def journal_path_for(ledger_dir: Union[str, Path]) -> str:
    """Where a ledger directory's job journal lives."""
    return os.path.join(str(ledger_dir), JOURNAL_FILENAME)


@dataclass(frozen=True)
class JournalEntry:
    """One submitted job as the journal remembers it."""

    job_id: str
    kind: str
    params: Dict[str, Any]
    label: str
    token: str
    cells: int
    submitted_epoch_s: float


class JobJournal:
    """Append-only NDJSON journal of submitted and finished jobs.

    Thread-safe (concurrent jobs finish on scheduler threads); every
    append is flushed, so the journal is as current as the last
    completed write even under SIGKILL.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    # -- writing -----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        with self._lock:
            os.makedirs(self.path.parent, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
                )
                handle.flush()

    def record_submitted(
        self,
        job_id: str,
        kind: str,
        params: Mapping[str, Any],
        label: str,
        token: str,
        cells: int,
    ) -> None:
        """Journal one accepted submit, before its first cell runs."""
        self._append(
            {
                "schema": JOURNAL_SCHEMA,
                "kind": "job_submitted",
                "job_id": job_id,
                "epoch_s": host_epoch(),
                "plan_kind": kind,
                "params": dict(params),
                "label": label,
                "token": token,
                "cells": cells,
            }
        )

    def record_finished(
        self,
        job_id: str,
        state: str,
        executed: int = 0,
        cached: int = 0,
        failed: int = 0,
        error: Optional[str] = None,
    ) -> None:
        """Journal one job reaching a terminal state."""
        record: Dict[str, Any] = {
            "schema": JOURNAL_SCHEMA,
            "kind": "job_finished",
            "job_id": job_id,
            "epoch_s": host_epoch(),
            "state": state,
            "executed": executed,
            "cached": cached,
            "failed": failed,
        }
        if error is not None:
            record["error"] = error
        self._append(record)

    # -- replay ------------------------------------------------------------

    def _records(self) -> List[Dict[str, Any]]:
        """Every decodable journal record, in append order.

        A torn final line — the process died mid-append — decodes as
        junk and is skipped; so is any record of an unknown schema or
        shape (a newer server's journal read by an older one).
        """
        if not self.path.exists():
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and record.get("schema") == JOURNAL_SCHEMA:
                    out.append(record)
        return out

    def entries(self) -> List[JournalEntry]:
        """Every journaled submission, in submission order."""
        out: List[JournalEntry] = []
        for record in self._records():
            if record.get("kind") != "job_submitted":
                continue
            params = record.get("params")
            out.append(
                JournalEntry(
                    job_id=str(record.get("job_id", "")),
                    kind=str(record.get("plan_kind", "")),
                    params=dict(params) if isinstance(params, dict) else {},
                    label=str(record.get("label", "")),
                    token=str(record.get("token", "")),
                    cells=int(record.get("cells", 0)),
                    submitted_epoch_s=float(record.get("epoch_s", 0.0)),
                )
            )
        return out

    def finished_ids(self) -> Dict[str, str]:
        """``job_id → terminal state`` for every finished job."""
        out: Dict[str, str] = {}
        for record in self._records():
            if record.get("kind") == "job_finished":
                out[str(record.get("job_id", ""))] = str(record.get("state", ""))
        return out

    def pending(self) -> List[JournalEntry]:
        """Submitted-but-unfinished jobs, oldest first — the recovery set."""
        finished = self.finished_ids()
        return [
            entry
            for entry in self.entries()
            if entry.job_id and entry.job_id not in finished
        ]
