"""The sweep scheduler: many jobs, one pool, each unique cell once.

:class:`SweepScheduler` is the server-side engine behind the gateway.
It owns the shared execution state — one warm
:class:`~repro.experiments.pool.WorkerPool`, one
:class:`~repro.experiments.store.ResultStore`, one
:class:`~repro.obs.ledger.RunLedger` — and runs each submitted job on
a thread through the same scheduling core
(:func:`~repro.experiments.scheduling.schedule_cells`) the offline
executors use.  Three small pieces make concurrent jobs safe:

* :class:`InflightRegistry` — cross-job in-flight dedupe by ``run_id``.
  The first job to reach a missing cell *claims* it and executes; any
  concurrent job with the same cell *joins* and waits for the owner's
  result.  Two clients submitting overlapping matrices execute each
  unique cell exactly once, and both see the identical record (the
  cell is content-addressed; whoever runs it computes the same bits).
* :class:`ResultPublisher` — the single write path for finished cells.
  Only the owning job publishes a cell, so the store sees one ``put``
  and the ledger one append per unique ``run_id`` — never one per
  requesting job.
* :class:`EventRouter` — fans worker-side sweep events (which carry a
  ``run_id``, not a job id) out to the bus of the job that owns the
  cell, so each job's event stream narrates exactly its own sweep.

Determinism is inherited, not re-proven: cells execute through the
same :func:`~repro.experiments.executor.execute_cells` body as offline
runs, so records and metrics digests are bit-identical to a serial run
of the union plan — the acceptance invariant the service tests check.

The scheduler is also the gateway's survival layer:

* **admission control** — at most ``max_queued_jobs`` non-terminal jobs
  are admitted; beyond that :meth:`SweepScheduler.submit` raises
  :class:`~repro.service.errors.ServerBusy` (with a retry-after hint)
  and emits a ``load_shed`` event, so overload degrades to explicit
  backpressure instead of unbounded queueing;
* **journaled recovery** — with a :class:`~repro.service.journal.JobJournal`
  attached, every accepted job is journaled before it runs and again
  when it finishes; :meth:`SweepScheduler.recover` replays
  submitted-but-unfinished jobs after a crash under their original ids
  and tokens.  The store pass only trusts cells present in **both** the
  store and the ledger, so a crash torn between ``store.put`` and
  ``ledger.append`` re-executes that cell (bit-identically; the ledger
  append then dedupes) instead of silently dropping its ledger row;
* **degraded serial execution** — when the warm pool cannot provide
  workers at all (:class:`~repro.experiments.pool.PoolUnavailableError`),
  the job falls back to in-process serial execution of its remaining
  cells through the same ``execute_cells`` body, emitting
  ``degraded_serial`` — slower, never wrong.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set

from repro.experiments.executor import execute_cells
from repro.experiments.plan import CellSpec
from repro.experiments.pool import PoolUnavailableError, WorkerPool
from repro.experiments.results import (
    CellFailure,
    CellOutcome,
    ExecutionReport,
    exec_meta,
)
from repro.experiments.scheduling import (
    cell_event_fields,
    resolve_chunk,
    schedule_cells,
)
from repro.experiments.store import ResultStore
from repro.obs import sweep as sweepbus
from repro.obs.ledger import RunLedger
from repro.obs.probes import host_epoch, host_wallclock
from repro.obs.runmeta import config_fingerprint
from repro.obs.sweep import SweepEvent, SweepEventBus
from repro.service.errors import ServerBusy
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.journal import JobJournal

__all__ = [
    "EventRouter",
    "InflightRegistry",
    "ResultPublisher",
    "Subscription",
    "SweepScheduler",
]


class _Inflight:
    """One claimed cell: who owns it, and how it resolved."""

    __slots__ = ("owner", "done", "error")

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self.done = threading.Event()
        self.error: Optional[str] = None


class InflightRegistry:
    """Claim-or-join arbitration for concurrently demanded cells.

    The first claimer of a ``run_id`` owns its execution; later
    claimers join and :meth:`wait` for the owner to resolve.  A cell
    resolved with an error is re-claimable (the next job to demand it
    retries); a cell resolved clean stays joined forever — its record
    is in the store.  Deadlock-free by construction: a job resolves
    every cell it owns (success, failure, or owner-abort) *before* it
    waits on any cell it joined, so cross-job waits only ever point at
    execution phases, never at other waits.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, _Inflight] = {}

    def claim(self, run_id: str, owner: str) -> bool:
        """True → ``owner`` executes this cell; False → join and wait."""
        with self._lock:
            entry = self._entries.get(run_id)
            if entry is None or (entry.done.is_set() and entry.error is not None):
                self._entries[run_id] = _Inflight(owner)
                return True
            return False

    def resolve(self, run_id: str, error: Optional[str] = None) -> None:
        """Owner's completion signal: clean, or with a failure cause."""
        with self._lock:
            entry = self._entries.get(run_id)
        if entry is not None and not entry.done.is_set():
            entry.error = error
            entry.done.set()

    def wait(self, run_id: str, timeout_s: Optional[float] = None) -> Optional[str]:
        """Block until the owner resolves; returns its error (None = clean)."""
        with self._lock:
            entry = self._entries.get(run_id)
        if entry is None:
            return "in-flight entry vanished before resolution"
        if not entry.done.wait(timeout_s):
            return f"timed out waiting for in-flight owner ({entry.owner})"
        return entry.error

    def abort_owned(self, owner: str, error: str) -> None:
        """Resolve every unresolved cell ``owner`` claimed, as failed.

        Called from the owning job's ``finally`` so joiners never wait
        on a job that died before reaching a cell.
        """
        with self._lock:
            entries = [
                e for e in self._entries.values() if e.owner == owner
            ]
        for entry in entries:
            if not entry.done.is_set():
                entry.error = error
                entry.done.set()


class ResultPublisher:
    """The single write path for finished cells: store + ledger, once.

    Ownership (one publisher call per unique ``run_id``) is the
    :class:`InflightRegistry`'s guarantee; the lock here additionally
    keeps the store write and the ledger append of one cell adjacent,
    so a concurrent reader never sees a ledger row whose cell file is
    still being written.
    """

    def __init__(self, store: ResultStore, ledger: Optional[RunLedger]) -> None:
        self._store = store
        self._ledger = ledger
        self._lock = threading.Lock()

    def publish(self, outcome: CellOutcome) -> None:
        with self._lock:
            self._store.put(
                outcome.spec.run_id, outcome.record, exec_meta=exec_meta(outcome)
            )
            if self._ledger is not None and outcome.ledger_record is not None:
                self._ledger.append(outcome.ledger_record)


class EventRouter:
    """Fan worker-side events out to the owning job's bus.

    Worker events identify cells (``run_id``), not jobs; the router
    holds the run→bus mapping for every cell currently owned by a
    running job.  Events without a ``run_id`` (``worker_spawned``) are
    pool-level and broadcast to every active job.  ``deactivate``
    removes a job under the dispatch lock, so once it returns no
    further event can reach that job's bus — the job then emits its
    ``sweep_end`` knowing its stream is sealed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_run: Dict[str, SweepEventBus] = {}
        self._active: Dict[str, SweepEventBus] = {}

    def activate(self, job_id: str, bus: SweepEventBus, run_ids: List[str]) -> None:
        with self._lock:
            self._active[job_id] = bus
            for run_id in run_ids:
                self._by_run[run_id] = bus

    def deactivate(self, job_id: str) -> None:
        with self._lock:
            bus = self._active.pop(job_id, None)
            if bus is not None:
                self._by_run = {
                    run_id: b for run_id, b in self._by_run.items() if b is not bus
                }

    def dispatch(self, kind: str, fields: Dict[str, Any]) -> None:
        """The pool's event sink (called on the pool's drain thread)."""
        with self._lock:
            run_id = fields.get("run_id")
            if run_id is None:
                for bus in self._active.values():
                    bus.emit(kind, **fields)
                return
            bus = self._by_run.get(str(run_id))
            if bus is not None:
                bus.emit(kind, **fields)


class Subscription:
    """One client's ordered, gap-free view of a job's event stream.

    Subscribing races the live bus: events emitted between the
    subscribe call and the history replay could arrive twice or out of
    order.  The subscription buffers live events until the replay
    finishes, then merges by ``seq`` (each bus numbers its events
    densely), delivering every event exactly once, in order.

    ``since_seq`` makes the stream *resumable*: a reconnecting watcher
    passes the last ``seq`` it saw, and the replay skips everything at
    or below it — the client's event log continues gap-free across a
    dropped connection instead of starting over.
    """

    def __init__(
        self,
        deliver: Callable[[SweepEvent], None],
        since_seq: int = -1,
    ) -> None:
        self._deliver = deliver
        self._lock = threading.Lock()
        self._live = False
        self._closed = False
        self._pending: List[SweepEvent] = []
        self._last_seq = since_seq

    def _on_event(self, event: SweepEvent) -> None:
        with self._lock:
            if self._closed:
                return
            if not self._live:
                self._pending.append(event)
                return
            if event.seq <= self._last_seq:
                return
            self._last_seq = event.seq
            deliver = self._deliver
        deliver(event)

    def start(self, bus: SweepEventBus) -> "Subscription":
        bus.subscribe(self._on_event)
        history = list(bus.events)
        with self._lock:
            merged = {event.seq: event for event in history}
            for event in self._pending:
                merged.setdefault(event.seq, event)
            self._pending = []
            backlog = [
                merged[seq] for seq in sorted(merged) if seq > self._last_seq
            ]
            if backlog:
                self._last_seq = backlog[-1].seq
            self._live = True
        for event in backlog:
            if not self._closed:
                self._deliver(event)
        return self

    def close(self) -> None:
        """Stop delivery (the bus keeps the dead callback; it no-ops)."""
        with self._lock:
            self._closed = True


class SweepScheduler:
    """Run submitted jobs concurrently over one shared pool and store."""

    def __init__(
        self,
        store: ResultStore,
        ledger: Optional[RunLedger] = None,
        pool: Optional[WorkerPool] = None,
        workers: int = 2,
        max_parallel_jobs: int = 4,
        chunk: Optional[int] = None,
        cell_timeout_s: Optional[float] = None,
        max_attempts: int = 2,
        git_rev: Optional[str] = None,
        events_path: Optional[str] = None,
        max_queued_jobs: int = 64,
        journal: Optional[JobJournal] = None,
    ) -> None:
        if max_parallel_jobs < 1:
            raise ValueError("max_parallel_jobs must be >= 1")
        if max_queued_jobs < 1:
            raise ValueError("max_queued_jobs must be >= 1")
        self.store = store
        self.ledger = ledger
        self.pool = pool if pool is not None else WorkerPool(workers, events=True)
        self.chunk = chunk
        self.cell_timeout_s = cell_timeout_s
        self.max_attempts = max_attempts
        self.git_rev = git_rev
        #: Where job buses persist their events (None → in-memory only).
        self.events_path = events_path
        #: Admission bound: most non-terminal jobs held at once.
        self.max_queued_jobs = max_queued_jobs
        #: Crash-recovery journal (None → job state is memory-only).
        self.journal = journal
        self.inflight = InflightRegistry()
        self.publisher = ResultPublisher(store, ledger)
        self.router = EventRouter()
        self.pool.attach_sink(self.router.dispatch)
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._job_counter = 0
        #: Idempotency-token → job id (the resubmit-joins-job table).
        self._tokens: Dict[str, str] = {}
        self._threads = ThreadPoolExecutor(
            max_workers=max_parallel_jobs, thread_name_prefix="odr-job"
        )
        self._closed = False
        #: Server-level control-plane stream: admission decisions and
        #: detected client retries, which belong to no single job.  It
        #: is a sweep bus like any other (``sweep_id`` = this server's
        #: identity), so the same validators and dashboards apply.
        self.server_bus = SweepEventBus(
            path=events_path,
            sweep_id="server-"
            + config_fingerprint({"epoch": host_epoch(), "pid": os.getpid()})[:12],
        )
        self.server_bus.emit(
            sweepbus.SWEEP_BEGIN,
            cells=0,
            executor="service-control",
            workers=self.pool.workers,
        )

    # -- job intake --------------------------------------------------------

    def _new_job_id(self) -> str:
        with self._jobs_lock:
            self._job_counter += 1
            nonce = self._job_counter
        return "job-" + config_fingerprint(
            {"epoch": host_epoch(), "pid": os.getpid(), "job": nonce}
        )[:12]

    def _active_jobs(self) -> int:
        with self._jobs_lock:
            return sum(1 for job in self._jobs.values() if not job.state.terminal)

    def submit(
        self,
        spec: JobSpec,
        job_id: Optional[str] = None,
        recovered: bool = False,
    ) -> Job:
        """Queue one sweep; returns the live job record immediately.

        Three admission outcomes precede queueing:

        * a ``spec.token`` the scheduler already accepted **joins** the
          existing job (idempotent resubmit — the client retried a
          submit whose reply it lost) and emits ``client_retry``;
        * more than :attr:`max_queued_jobs` non-terminal jobs raises
          :class:`~repro.service.errors.ServerBusy` and emits
          ``load_shed`` — explicit backpressure, never silent queueing;
        * otherwise the job is journaled (so a crash cannot lose it)
          and queued.

        ``job_id``/``recovered`` are the recovery path's levers: replay
        resubmits under the original identity without re-journaling.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        from repro.service.protocol import build_plan

        if spec.token:
            with self._jobs_lock:
                known = self._tokens.get(spec.token)
                existing = self._jobs.get(known) if known is not None else None
            if existing is not None:
                self.server_bus.emit(
                    sweepbus.CLIENT_RETRY,
                    op="submit",
                    token=spec.token,
                    job_id=existing.job_id,
                )
                return existing
        active = self._active_jobs()
        if not recovered and active >= self.max_queued_jobs:
            self.server_bus.emit(
                sweepbus.LOAD_SHED,
                reason=f"{active} active jobs >= max_queued_jobs "
                f"({self.max_queued_jobs})",
                active_jobs=active,
            )
            raise ServerBusy(
                f"submit queue full ({active} active jobs)",
                retry_after_s=1.0,
            )
        plan = build_plan(spec.kind, dict(spec.params))
        job_id = job_id if job_id is not None else self._new_job_id()
        bus = SweepEventBus(path=self.events_path, sweep_id=job_id)
        job = Job(
            job_id=job_id,
            spec=spec,
            plan=plan,
            bus=bus,
            submitted_epoch_s=host_epoch(),
            recovered=recovered,
        )
        with self._jobs_lock:
            self._jobs[job_id] = job
            if spec.token:
                self._tokens[spec.token] = job_id
        if self.journal is not None and not recovered:
            self.journal.record_submitted(
                job_id=job_id,
                kind=spec.kind,
                params=spec.params,
                label=spec.label,
                token=spec.token,
                cells=len(plan),
            )
        self._threads.submit(self._run_job, job)
        return job

    def recover(self) -> List[Job]:
        """Replay submitted-but-unfinished journaled jobs after a crash.

        Each pending journal entry is resubmitted under its **original**
        job id and idempotency token, so clients that saw the submit
        acknowledged before the crash keep polling the same id, and
        client-side submit retries join the recovered job.  The store
        pass then recalls every cell the previous life completed — only
        the missing cells execute, and the content-addressed ledger
        dedupes their re-appends, so the resumed sweep's results and
        ledger are bit-identical to an uninterrupted run's.
        """
        if self.journal is None:
            return []
        recovered: List[Job] = []
        for entry in self.journal.pending():
            spec = JobSpec(
                kind=entry.kind,
                params=entry.params,
                label=entry.label,
                token=entry.token,
            )
            recovered.append(
                self.submit(spec, job_id=entry.job_id, recovered=True)
            )
        return recovered

    def get(self, job_id: str) -> Optional[Job]:
        """Job by id (unique prefixes accepted, newest match wins)."""
        with self._jobs_lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job
            match: Optional[Job] = None
            for candidate_id, candidate in self._jobs.items():
                if candidate_id.startswith(job_id):
                    match = candidate
            return match

    def jobs(self) -> List[Job]:
        """Every job, oldest first."""
        with self._jobs_lock:
            return list(self._jobs.values())

    def subscribe(
        self,
        job_id: str,
        deliver: Callable[[SweepEvent], None],
        since_seq: int = -1,
    ) -> Subscription:
        """Stream a job's events (history replayed first) into ``deliver``.

        ``since_seq`` skips replay at or below that sequence number —
        how a reconnecting watcher resumes instead of starting over.
        """
        job = self.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return Subscription(deliver, since_seq=since_seq).start(job.bus)

    # -- the job body ------------------------------------------------------

    def _ledger_run_ids(self) -> Optional[Set[str]]:
        """All ``run_id``s the ledger holds (None when no ledger)."""
        if self.ledger is None:
            return None
        return {
            str(record.get("run_id", "")) for record in self.ledger.records()
        }

    def _run_job(self, job: Job) -> None:
        job.state = JobState.RUNNING
        job.started_epoch_s = host_epoch()
        sweep_started = host_wallclock()
        bus = job.bus
        outcomes: Dict[str, CellOutcome] = {}
        failures: Dict[str, CellFailure] = {}
        try:
            bus.emit(
                sweepbus.SWEEP_BEGIN,
                cells=len(job.plan),
                executor="service",
                workers=self.pool.workers,
            )
            if job.recovered:
                bus.emit(
                    sweepbus.JOB_RECOVERED,
                    job_id=job.job_id,
                    cells=len(job.plan),
                    label=job.spec.label,
                )
            # The store pass only trusts cells the *ledger* also has: a
            # crash torn between store.put and ledger.append would
            # otherwise leave a resumed sweep's ledger permanently one
            # row short.  Re-executing such a cell is bit-identical and
            # its ledger append dedupes, so the repair is free of drift.
            ledgered = self._ledger_run_ids()
            missing: List[CellSpec] = []
            for spec in job.plan:
                record = self.store.get(spec.run_id)
                if record is not None and (
                    ledgered is None or spec.run_id in ledgered
                ):
                    outcomes[spec.run_id] = CellOutcome(
                        spec=spec,
                        record=record,
                        ledger_record=None,
                        wall_clock_s=0.0,
                        cached=True,
                    )
                    bus.emit(sweepbus.CELL_CACHED, **cell_event_fields(spec))
                else:
                    missing.append(spec)
            owned: List[CellSpec] = []
            joined: List[CellSpec] = []
            for spec in missing:
                if self.inflight.claim(spec.run_id, job.job_id):
                    owned.append(spec)
                    bus.emit(sweepbus.CELL_SCHEDULED, **cell_event_fields(spec))
                else:
                    joined.append(spec)
            self._execute_owned(job, owned, outcomes, failures)
            self._await_joined(job, joined, outcomes, failures)
            job.report = ExecutionReport(
                outcomes=tuple(
                    outcomes[run_id]
                    for run_id in job.plan.run_ids
                    if run_id in outcomes
                ),
                failures=tuple(
                    failures[run_id]
                    for run_id in job.plan.run_ids
                    if run_id in failures
                ),
            )
            job.state = JobState.DONE
        except Exception as exc:  # infrastructure failure, not a cell failure
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = JobState.FAILED
        finally:
            job.finished_epoch_s = host_epoch()
            if self.journal is not None:
                try:
                    self.journal.record_finished(
                        job.job_id,
                        state=job.state.value,
                        executed=sum(
                            1 for o in outcomes.values() if not o.cached
                        ),
                        cached=sum(1 for o in outcomes.values() if o.cached),
                        failed=len(failures),
                        error=job.error,
                    )
                except OSError:
                    # A full disk must not unwind past the sweep_end
                    # emit below; the job simply replays on resume.
                    pass
            try:
                # The stream's terminal frame: watchers key end-of-job
                # off it, so it is emitted on every exit path.
                bus.emit(
                    sweepbus.SWEEP_END,
                    executed=sum(1 for o in outcomes.values() if not o.cached),
                    cached=sum(1 for o in outcomes.values() if o.cached),
                    failed=len(failures),
                    wall_s=host_wallclock() - sweep_started,
                )
            finally:
                bus.close()

    def _execute_owned(
        self,
        job: Job,
        owned: List[CellSpec],
        outcomes: Dict[str, CellOutcome],
        failures: Dict[str, CellFailure],
    ) -> None:
        """Run this job's claimed cells; publish and resolve each once."""
        if not owned:
            return
        bus = job.bus
        self.router.activate(job.job_id, bus, [spec.run_id for spec in owned])
        run_chunk = partial(
            execute_cells,
            collect_ledger=self.ledger is not None,
            git_rev=self.git_rev,
        )
        chunk = resolve_chunk(
            len(owned), self.pool.workers, self.chunk, self.cell_timeout_s
        )
        try:
            try:
                for item in schedule_cells(
                    self.pool,
                    owned,
                    run_chunk,
                    chunk=chunk,
                    cell_timeout_s=self.cell_timeout_s,
                    max_attempts=self.max_attempts,
                    bus=bus,
                ):
                    self._absorb_result(job, item, outcomes, failures)
            except PoolUnavailableError as exc:
                # The pool cannot provide workers at all (closed, or the
                # host refuses to spawn processes) — respawning cannot
                # help.  Degrade to serial in-process execution of the
                # remaining cells through the exact same execute_cells
                # body: slower, bit-identical, never silently dropped.
                remaining = [
                    spec
                    for spec in owned
                    if spec.run_id not in outcomes
                    and spec.run_id not in failures
                ]
                bus.emit(
                    sweepbus.DEGRADED_SERIAL,
                    reason=f"{type(exc).__name__}: {exc}",
                    cells=len(remaining),
                )
                for item in execute_cells(
                    remaining,
                    collect_ledger=self.ledger is not None,
                    git_rev=self.git_rev,
                ):
                    self._absorb_result(job, item, outcomes, failures)
        finally:
            # Whatever happened above, joiners must never wait forever:
            # any cell this job claimed but did not resolve is failed.
            self.inflight.abort_owned(job.job_id, "owning job aborted")
            self.router.deactivate(job.job_id)

    def _absorb_result(
        self,
        job: Job,
        item: Any,
        outcomes: Dict[str, CellOutcome],
        failures: Dict[str, CellFailure],
    ) -> None:
        """Record one owned cell's result: publish, narrate, resolve."""
        bus = job.bus
        run_id = item.spec.run_id
        if isinstance(item, CellFailure):
            failures[run_id] = item
            bus.emit(
                sweepbus.CELL_FAILED,
                error=item.error,
                attempts=item.attempts,
                **cell_event_fields(item.spec),
            )
            self.inflight.resolve(run_id, error=item.error)
            return
        self.publisher.publish(item)
        outcomes[run_id] = item
        resources = (
            item.resources.to_dict() if item.resources is not None else None
        )
        bus.emit(
            sweepbus.CELL_FINISHED,
            wall_s=item.wall_clock_s,
            resources=resources,
            **cell_event_fields(item.spec),
        )
        self.inflight.resolve(run_id)

    def _await_joined(
        self,
        job: Job,
        joined: List[CellSpec],
        outcomes: Dict[str, CellOutcome],
        failures: Dict[str, CellFailure],
    ) -> None:
        """Collect cells another concurrent job owns (cross-job dedupe)."""
        bus = job.bus
        for spec in joined:
            error = self.inflight.wait(spec.run_id)
            record = self.store.get(spec.run_id) if error is None else None
            if error is None and record is None:
                error = "owner resolved but result missing from store"
            if error is not None:
                failure = CellFailure(spec, f"deduped execution failed: {error}")
                failures[spec.run_id] = failure
                bus.emit(
                    sweepbus.CELL_FAILED,
                    error=failure.error,
                    attempts=1,
                    **cell_event_fields(spec),
                )
                continue
            assert record is not None
            outcomes[spec.run_id] = CellOutcome(
                spec=spec,
                record=record,
                ledger_record=None,
                wall_clock_s=0.0,
                cached=True,
                deduped=True,
            )
            bus.emit(sweepbus.CELL_DEDUPED, **cell_event_fields(spec))

    # -- lifecycle ---------------------------------------------------------

    def warm(self) -> None:
        """Pre-spawn the pool's workers (paid once per server)."""
        self.pool.warm()

    def close(self, close_pool: bool = True) -> None:
        """Drain running jobs, then shut the thread pool (and pool) down."""
        if self._closed:
            return
        self._closed = True
        self._threads.shutdown(wait=True)
        try:
            # Seal the control-plane stream so its event log validates.
            self.server_bus.emit(
                sweepbus.SWEEP_END,
                executed=0,
                cached=0,
                failed=0,
                wall_s=0.0,
            )
        finally:
            self.server_bus.close()
        if close_pool:
            self.pool.close()
