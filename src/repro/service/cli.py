"""The service verbs: ``odr-sim serve / submit / status / fetch``.

``serve`` hosts the gateway in the foreground: one warm worker pool,
one result store (``--resume`` persists it under the ledger's
``cells/`` so a restarted server warm-starts from disk), one run
ledger, one asyncio accept loop.  The client verbs are thin wrappers
over :class:`~repro.service.client.ServiceClient`: ``submit`` sends a
named plan (``matrix`` / ``bench`` / ``chaos``) and can stay attached
(``--watch`` streams the job's events into the live dashboard,
``--wait`` polls to completion), ``status`` lists jobs or shows one,
and ``fetch`` pulls a single cell's record by ``run_id``.

The parsers plug into the main ``odr-sim`` parser via
:func:`add_service_parsers`; dispatch routes back through
:func:`run_service_command`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict

from repro.obs.ledger import DEFAULT_LEDGER_DIR
from repro.workloads import BENCHMARKS, PLATFORMS, Resolution

__all__ = ["add_service_parsers", "run_service_command"]

DEFAULT_PORT = 7433

#: Commands :func:`run_service_command` handles.
SERVICE_COMMANDS = ("serve", "submit", "status", "fetch")


def _add_connect_arg(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--connect", default=f"127.0.0.1:{DEFAULT_PORT}", metavar="HOST:PORT",
        help="gateway address (default: %(default)s)",
    )
    sub.add_argument(
        "--connect-wait", type=float, default=5.0, metavar="S",
        help="keep dialing a not-yet-listening gateway for S seconds "
             "(default: %(default)s)",
    )
    sub.add_argument(
        "--retries", type=int, default=5, metavar="N",
        help="attempts per request on retryable failures (default: %(default)s)",
    )


def add_service_parsers(sub: "argparse._SubParsersAction[Any]") -> None:
    """Register the four service subcommands on the main parser."""
    serve = sub.add_parser(
        "serve",
        help="host the sweep gateway: accept submit/status/fetch/watch "
             "from many clients over one warm worker pool",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help="bind port (0 picks an ephemeral one; default: %(default)s)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the shared pool (default: %(default)s)",
    )
    serve.add_argument(
        "--ledger", default=DEFAULT_LEDGER_DIR, help="run-ledger directory"
    )
    serve.add_argument(
        "--resume", action="store_true",
        help="persist completed cells under the ledger directory's cells/ "
             "store and warm-start from whatever is already there",
    )
    serve.add_argument(
        "--events", action="store_true",
        help="also persist every job's sweep events to the ledger "
             "directory's events.jsonl",
    )
    serve.add_argument(
        "--chunk", type=int, default=None, metavar="N",
        help="cells per pool submission (default: auto-sized per plan)",
    )
    serve.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="fail any cell whose result takes longer than S seconds",
    )
    serve.add_argument(
        "--max-jobs", type=int, default=4,
        help="jobs allowed to make progress concurrently (default: %(default)s)",
    )
    serve.add_argument(
        "--no-warm", action="store_true",
        help="skip the startup pool warmup (first job pays it instead)",
    )
    serve.add_argument(
        "--max-queued", type=int, default=64, metavar="N",
        help="admission bound: reject submits (BUSY, retry-after) beyond "
             "N non-terminal jobs (default: %(default)s)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=30.0, metavar="S",
        help="per-connection request-read deadline in seconds "
             "(default: %(default)s)",
    )

    submit = sub.add_parser(
        "submit",
        help="submit a sweep plan to a running gateway",
    )
    _add_connect_arg(submit)
    submit.add_argument(
        "kind", choices=("matrix", "bench", "chaos"),
        help="which server-side demand builder shapes the plan",
    )
    submit.add_argument(
        "--benchmarks", nargs="+", choices=sorted(BENCHMARKS), default=None
    )
    submit.add_argument(
        "--regulators", nargs="+", default=None,
        help="bench/chaos plans: regulator specs per cell",
    )
    submit.add_argument(
        "--groups", nargs="+", default=None,
        help="matrix plans: restrict to these configuration groups",
    )
    submit.add_argument(
        "--ablation", action="store_true",
        help="matrix plans: include the ablation configurations",
    )
    submit.add_argument(
        "--fault-classes", nargs="+", default=None,
        help="chaos plans: restrict to these fault classes",
    )
    submit.add_argument("--seeds", type=int, nargs="+", default=None)
    submit.add_argument("--platform", choices=sorted(PLATFORMS), default=None)
    submit.add_argument(
        "--resolution", choices=[r.value for r in Resolution], default=None
    )
    submit.add_argument("--label", default="", help="free-form job label")
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job finishes; exit non-zero if it failed",
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="stay attached and stream the job's events into the live "
             "dashboard until its sweep ends (implies --wait)",
    )

    status = sub.add_parser(
        "status", help="list a gateway's jobs, or show one by id/prefix"
    )
    _add_connect_arg(status)
    status.add_argument(
        "job_id", nargs="?", default=None,
        help="job id or unique prefix (default: list all jobs)",
    )

    fetch = sub.add_parser(
        "fetch", help="fetch one cell's record from a gateway by run_id"
    )
    _add_connect_arg(fetch)
    fetch.add_argument("run_id", help="content-addressed cell run_id")
    fetch.add_argument(
        "-o", "--output", default=None,
        help="write the fetched JSON here (default: stdout)",
    )


def run_service_command(args: argparse.Namespace) -> int:
    """Dispatch one of :data:`SERVICE_COMMANDS`."""
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    assert args.command == "fetch"
    return _cmd_fetch(args)


# -- serve -----------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    import contextlib
    import os
    import signal

    from repro.experiments.store import ResultStore
    from repro.obs.ledger import RunLedger
    from repro.obs.runmeta import git_revision
    from repro.obs.sweep import events_path_for
    from repro.service.gateway import ServiceGateway
    from repro.service.journal import JobJournal, journal_path_for
    from repro.service.scheduler import SweepScheduler

    ledger = RunLedger(args.ledger)
    persist_dir = None
    if args.resume:
        persist_dir = os.path.join(args.ledger, "cells")
    store = ResultStore(persist_dir)
    warm_cells = 0
    if persist_dir is not None and os.path.isdir(persist_dir):
        warm_cells = sum(
            1 for name in os.listdir(persist_dir) if name.endswith(".json")
        )
    scheduler = SweepScheduler(
        store,
        ledger=ledger,
        workers=args.workers,
        max_parallel_jobs=args.max_jobs,
        chunk=args.chunk,
        cell_timeout_s=args.cell_timeout,
        git_rev=git_revision(),
        events_path=events_path_for(args.ledger) if args.events else None,
        max_queued_jobs=args.max_queued,
        journal=JobJournal(journal_path_for(args.ledger)),
    )
    gateway = ServiceGateway(
        scheduler,
        host=args.host,
        port=args.port,
        read_timeout_s=args.read_timeout,
    )

    async def _serve() -> None:
        await gateway.start()
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError, RuntimeError):
            # Graceful drain on SIGTERM: stop accepting, let running
            # jobs finish and journal their terminal states.
            loop.add_signal_handler(signal.SIGTERM, gateway.begin_shutdown)
        print(
            f"serve: listening on {gateway.host}:{gateway.port} "
            f"({args.workers} worker(s), {warm_cells} warm cell(s), "
            f"ledger at {ledger.path})",
            flush=True,
        )
        if args.resume:
            recovered = await loop.run_in_executor(None, scheduler.recover)
            if recovered:
                print(
                    "serve: recovered "
                    + ", ".join(job.job_id for job in recovered)
                    + " from the job journal",
                    flush=True,
                )
        if not args.no_warm:
            # Warm off the event loop so the listener is live immediately.
            await loop.run_in_executor(None, scheduler.warm)
            print("serve: worker pool warm", flush=True)
        await gateway.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("serve: interrupted", flush=True)
    finally:
        scheduler.close()
    print("serve: shut down", flush=True)
    return 0


# -- client verbs ----------------------------------------------------------


def _client(args: argparse.Namespace) -> "Any":
    from repro.service.client import RetryPolicy, ServiceClient, parse_address

    host, port = parse_address(args.connect, default_port=DEFAULT_PORT)
    return ServiceClient(
        host=host,
        port=port,
        retry=RetryPolicy(attempts=max(1, int(getattr(args, "retries", 5)))),
        connect_wait_s=float(getattr(args, "connect_wait", 5.0)),
    )


def _plan_params(args: argparse.Namespace) -> Dict[str, Any]:
    """The submitted plan payload, omitting unset knobs.

    Server-side defaults (seeds, platform, horizon) apply to whatever
    the client leaves out, so two clients submitting the same bare
    command address the same cells.
    """
    params: Dict[str, Any] = {"kind": args.kind}
    if args.benchmarks is not None:
        params["benchmarks"] = args.benchmarks
    if args.regulators is not None:
        params["regulators"] = args.regulators
    if args.kind == "matrix" and args.groups is not None:
        params["groups"] = args.groups
    if args.kind == "matrix" and args.ablation:
        params["include_ablation"] = True
    if args.kind == "chaos" and args.fault_classes is not None:
        params["fault_classes"] = args.fault_classes
    if args.seeds is not None:
        params["seeds"] = args.seeds
    if args.platform is not None:
        params["platform"] = args.platform
    if args.resolution is not None:
        params["resolution"] = args.resolution
    params["duration_ms"] = args.duration
    params["warmup_ms"] = args.warmup
    return params


def _describe_job(job: Dict[str, Any]) -> str:
    line = (
        f"{job.get('job_id', '?'):16s} {job.get('state', '?'):8s} "
        f"{job.get('kind', '?'):7s} cells={job.get('cells', '?')}"
    )
    if "executed" in job:
        line += (
            f" executed={job['executed']} cached={job['cached']}"
            f" deduped={job.get('deduped', 0)} failed={job.get('failed', 0)}"
        )
    if job.get("label"):
        line += f"  [{job['label']}]"
    if job.get("error"):
        line += f"  error: {job['error']}"
    return line


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _client(args)
    try:
        job = client.submit(_plan_params(args), label=args.label)
    except (OSError, ServiceError) as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    job_id = str(job["job_id"])
    print(f"submitted {job_id}: {job.get('cells', '?')} cell(s) at {args.connect}")
    if args.watch:
        code = _stream_job(client, job_id)
        if code != 0:
            return code
    if args.watch or args.wait:
        job = client.wait(job_id)
        print(_describe_job(job))
        return 0 if job.get("state") == "done" else 1
    return 0


def _stream_job(client: "Any", job_id: str) -> int:
    """Stream one job's events into the live dashboard (used by
    ``submit --watch`` and ``watch --connect``)."""
    from repro.obs.dashboard import SweepDashboard
    from repro.service.client import ServiceError

    dashboard = SweepDashboard()
    try:
        for event in client.watch(job_id):
            dashboard.handle(event)
    except KeyboardInterrupt:
        print()
        return 0
    except (OSError, ServiceError) as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 2
    return 0


def watch_remote(args: argparse.Namespace) -> int:
    """``odr-sim watch --connect``: follow a server-side job's stream."""
    from repro.service.client import ServiceError

    client = _client(args)
    job_id = args.job
    try:
        if job_id is None:
            jobs = client.jobs()
            if not jobs:
                print(f"watch: no jobs at {args.connect}", file=sys.stderr)
                return 1
            job_id = str(jobs[-1]["job_id"])  # newest submission
    except (OSError, ServiceError) as exc:
        print(f"watch: {exc}", file=sys.stderr)
        return 2
    print(f"watch: streaming job {job_id} from {args.connect}")
    return _stream_job(client, job_id)


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _client(args)
    try:
        if args.job_id is not None:
            job = client.status(args.job_id)["job"]
            print(_describe_job(job))
            return 0
        jobs = client.jobs()
    except (OSError, ServiceError) as exc:
        print(f"status: {exc}", file=sys.stderr)
        return 2
    if not jobs:
        print(f"status: no jobs at {args.connect}")
        return 0
    for job in jobs:
        print(_describe_job(job))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceError

    client = _client(args)
    try:
        payload = client.fetch(args.run_id)
    except (OSError, ServiceError) as exc:
        print(f"fetch: {exc}", file=sys.stderr)
        return 2
    body = json.dumps(payload, sort_keys=True, indent=2) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(body)
        print(
            f"fetch: wrote {args.run_id} "
            f"(digest {payload.get('metrics_digest')}) to {args.output}"
        )
    else:
        sys.stdout.write(body)
    return 0
