"""Simulation-as-a-service: the async sweep gateway.

The repo's plan → execute → store core, served: a long-lived process
(``odr-sim serve``) owns one warm worker pool, one result store, and
one run ledger, and accepts sweep requests from many concurrent
clients over a newline-delimited-JSON TCP protocol.  Overlapping
submissions are deduplicated *in flight* by content-addressed
``run_id`` — each unique cell executes exactly once, every requester
sees the identical bits — and each job's sweep events stream to any
number of watchers (``odr-sim watch --connect``).

Layering (network-facing down to the shared experiment core):

* :mod:`repro.service.gateway` — asyncio TCP server, NDJSON frames;
* :mod:`repro.service.client` — the synchronous reference client;
* :mod:`repro.service.protocol` — frames, plan payloads, versioning;
* :mod:`repro.service.scheduler` — jobs → the shared scheduling core,
  with cross-job dedupe (:class:`InflightRegistry`), exactly-once
  publication (:class:`ResultPublisher`), and per-job event routing;
* :mod:`repro.service.jobs` — the job layer over
  :class:`~repro.experiments.plan.Plan`.

See ``docs/SERVICE.md`` for the protocol and lifecycle reference.
"""

from repro.service.client import ServiceClient, ServiceError, parse_address
from repro.service.gateway import ServiceGateway
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.protocol import PROTOCOL_VERSION, build_plan, plan_payload
from repro.service.scheduler import (
    EventRouter,
    InflightRegistry,
    ResultPublisher,
    Subscription,
    SweepScheduler,
)

__all__ = [
    "EventRouter",
    "InflightRegistry",
    "Job",
    "JobSpec",
    "JobState",
    "PROTOCOL_VERSION",
    "ResultPublisher",
    "ServiceClient",
    "ServiceError",
    "ServiceGateway",
    "Subscription",
    "SweepScheduler",
    "build_plan",
    "parse_address",
    "plan_payload",
]
