"""Simulation-as-a-service: the async sweep gateway.

The repo's plan → execute → store core, served: a long-lived process
(``odr-sim serve``) owns one warm worker pool, one result store, and
one run ledger, and accepts sweep requests from many concurrent
clients over a newline-delimited-JSON TCP protocol.  Overlapping
submissions are deduplicated *in flight* by content-addressed
``run_id`` — each unique cell executes exactly once, every requester
sees the identical bits — and each job's sweep events stream to any
number of watchers (``odr-sim watch --connect``).

Layering (network-facing down to the shared experiment core):

* :mod:`repro.service.gateway` — asyncio TCP server, NDJSON frames,
  read deadlines, structured error frames, graceful SIGTERM drain;
* :mod:`repro.service.client` — the synchronous reference client:
  seeded retry with backoff, idempotent resubmit, reconnecting watch;
* :mod:`repro.service.protocol` — frames, plan payloads, versioning;
* :mod:`repro.service.errors` — the typed failure taxonomy
  (:class:`TransportError` / :class:`ProtocolError` /
  :class:`ServerBusy` / :class:`JobLost`) shared by both ends;
* :mod:`repro.service.scheduler` — jobs → the shared scheduling core,
  with cross-job dedupe (:class:`InflightRegistry`), exactly-once
  publication (:class:`ResultPublisher`), per-job event routing,
  admission control, and degraded serial execution;
* :mod:`repro.service.journal` — the append-only job journal behind
  ``serve --resume`` crash recovery;
* :mod:`repro.service.jobs` — the job layer over
  :class:`~repro.experiments.plan.Plan`.

Service-plane chaos (the seeded transport that makes this layer's own
wire misbehave deterministically) lives in :mod:`repro.faults.service`.

See ``docs/SERVICE.md`` for the protocol and lifecycle reference and
``docs/ROBUSTNESS.md`` for the failure-mode matrix.
"""

from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    parse_address,
)
from repro.service.errors import (
    JobLost,
    ProtocolError,
    ServerBusy,
    TransportError,
    error_for_code,
)
from repro.service.gateway import ServiceGateway
from repro.service.jobs import Job, JobSpec, JobState
from repro.service.journal import JobJournal, journal_path_for
from repro.service.protocol import PROTOCOL_VERSION, build_plan, plan_payload
from repro.service.scheduler import (
    EventRouter,
    InflightRegistry,
    ResultPublisher,
    Subscription,
    SweepScheduler,
)

__all__ = [
    "EventRouter",
    "InflightRegistry",
    "Job",
    "JobJournal",
    "JobLost",
    "JobSpec",
    "JobState",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResultPublisher",
    "RetryPolicy",
    "ServerBusy",
    "ServiceClient",
    "ServiceError",
    "ServiceGateway",
    "Subscription",
    "SweepScheduler",
    "TransportError",
    "build_plan",
    "error_for_code",
    "journal_path_for",
    "parse_address",
    "plan_payload",
]
