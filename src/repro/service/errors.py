"""The service error taxonomy: what broke, and whether to retry.

Every failure the service layer surfaces is a :class:`ServiceError`.
The hierarchy exists so callers — the retrying
:class:`~repro.service.client.ServiceClient`, the CLI verbs, tests —
can *distinguish retryable infrastructure weather from fatal contract
violations* without parsing message strings:

==========================  =============================================
:class:`TransportError`     the bytes stopped flowing: connection
                            refused/reset, a read timed out, the stream
                            ended mid-frame.  **Retryable** — nothing
                            about the request itself was wrong.
:class:`ProtocolError`      the bytes flowed but made no sense: junk
                            JSON, an oversized frame, a half-closed
                            socket mid-line, version drift.  **Fatal**
                            — retrying resends the same nonsense.
:class:`ServerBusy`         admission control shed the request; carries
                            the server's ``retry_after_s`` hint.
                            **Retryable**, after backing off.
:class:`JobLost`            the addressed job is unknown to the server
                            (wrong id, or a restart without a journal
                            dropped it).  **Fatal** for this job id.
==========================  =============================================

On the wire, failures ride error frames as
``{"ok": false, "error": msg, "code": <code>}`` (plus
``retry_after_s`` for ``busy``); :data:`ERROR_CODES` maps each code
back to its exception class so the client re-raises the same type the
server classified.

:class:`ServiceError` subclasses :class:`RuntimeError`, preserving the
pre-taxonomy contract (``except ServiceError`` and
``except RuntimeError`` both still catch everything).
"""

from __future__ import annotations

from typing import Dict, Optional, Type

__all__ = [
    "ERROR_CODES",
    "JobLost",
    "ProtocolError",
    "ServerBusy",
    "ServiceError",
    "TransportError",
    "error_for_code",
]


class ServiceError(RuntimeError):
    """Base of everything the service layer raises.

    ``retryable`` is the class-level policy the client's retry loop
    consults; ``code`` is the wire discriminator an error frame carries.
    """

    #: Whether a fresh attempt of the same request can succeed.
    retryable: bool = False
    #: Wire error code (``error_frame(code=...)``) this class maps to.
    code: str = "error"


class TransportError(ServiceError):
    """The connection failed: refused, reset, timed out, or closed
    mid-frame.  The request may or may not have reached the server —
    which is why mutating requests carry idempotency tokens."""

    retryable = True
    code = "transport"


class ProtocolError(ServiceError):
    """The peer spoke bytes that do not parse as protocol frames
    (junk JSON, invalid UTF-8, an oversized line, version drift).
    Retrying would resend the same nonsense, so this is fatal."""

    retryable = False
    code = "protocol"


class ServerBusy(ServiceError):
    """Admission control rejected the request (the submit queue is at
    its bound).  ``retry_after_s`` is the server's backoff hint."""

    retryable = True
    code = "busy"

    def __init__(self, message: str, retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JobLost(ServiceError):
    """The addressed job id is unknown to the server — a typo, or a
    gateway restart that had no journal to recover the job from."""

    retryable = False
    code = "job_lost"


#: Wire code → exception class (the client's re-raise table).
ERROR_CODES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (TransportError, ProtocolError, ServerBusy, JobLost)
}


def error_for_code(
    code: Optional[str], message: str, retry_after_s: Optional[float] = None
) -> ServiceError:
    """Build the typed exception an error frame's ``code`` names.

    Unknown and absent codes degrade to the :class:`ServiceError` base
    — a server newer than this client still fails loud, just untyped.
    """
    cls = ERROR_CODES.get(code or "")
    if cls is ServerBusy:
        return ServerBusy(message, retry_after_s=retry_after_s)
    if cls is None:
        return ServiceError(message)
    return cls(message)
