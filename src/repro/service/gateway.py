"""The async gateway: many clients, one scheduler, NDJSON over TCP.

:class:`ServiceGateway` is the network face of
:class:`~repro.service.scheduler.SweepScheduler`: a stdlib-asyncio TCP
server speaking the frame protocol of :mod:`repro.service.protocol`.
Every connection is one lightweight coroutine reading request lines
and answering response lines; nothing about simulation runs on the
event loop — jobs execute on the scheduler's threads and cells in the
shared worker pool, so a thousand idle ``watch`` connections cost a
thousand coroutines, not a thousand threads.

The one stateful op is ``watch``: the handler subscribes to the job's
event bus, and the subscription's delivery callback — invoked on
whatever thread emits the event — hops the thread/loop boundary with
``loop.call_soon_threadsafe`` into a per-watcher ``asyncio.Queue`` the
coroutine drains into the socket.  History replays first (the bus
keeps its events in memory; a reconnecting watcher passes
``since_seq`` to skip what it already saw), so a client attaching
mid-sweep sees the full story; the stream ends at the job's
``sweep_end`` frame.  A client that disconnects mid-stream just
cancels its own coroutine — the subscription closes, the job never
notices.

The gateway protects itself from hostile or broken peers:

* every read carries a deadline (``read_timeout_s``) — a slow-loris
  connection is answered with a structured error and closed, never
  parked forever;
* framing violations (oversized line, invalid UTF-8, junk JSON, a
  half-closed socket mid-frame, unknown ops) are answered with typed
  error frames (:mod:`repro.service.errors` codes) where the
  connection is still coherent, and the connection alone is dropped —
  other clients never notice;
* scheduler admission rejections
  (:class:`~repro.service.errors.ServerBusy`) ride back as ``busy``
  frames with a ``retry_after_s`` hint;
* :meth:`ServiceGateway.begin_shutdown` (wired to SIGTERM by
  ``odr-sim serve``) drains gracefully: stop accepting, finish the
  scheduler's running jobs, journal everything — the kill -9 story is
  the journal's job instead.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.experiments.record import record_as_dict
from repro.obs import sweep as sweepbus
from repro.obs.runmeta import metrics_digest
from repro.service.errors import JobLost, ProtocolError, ServerBusy, ServiceError
from repro.service.jobs import JobSpec
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    error_frame,
)
from repro.service.scheduler import SweepScheduler

__all__ = ["ServiceGateway"]


class ServiceGateway:
    """NDJSON-over-TCP front end for a :class:`SweepScheduler`."""

    def __init__(
        self,
        scheduler: SweepScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        read_timeout_s: Optional[float] = 30.0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        #: Requested port (0 → ephemeral); :meth:`start` sets the bound one.
        self.port = port
        #: Per-read deadline for request lines (None → wait forever).
        #: ``watch`` writers are exempt — a watch holds its connection
        #: open by design; it is *reads* a slow loris can starve.
        self.read_timeout_s = read_timeout_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` becomes the real port."""
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_FRAME_BYTES
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or task cancellation)."""
        if self._server is None:
            await self.start()
        assert self._shutdown is not None
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Stop accepting and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def begin_shutdown(self) -> None:
        """Request a graceful drain (idempotent; signal-handler safe).

        Wakes :meth:`serve_until_shutdown`, which stops accepting new
        connections; the caller then closes the scheduler, which waits
        for running jobs and journals their terminal states — so a
        SIGTERM loses nothing, and anything harder than SIGTERM is the
        journal's recovery problem.
        """
        if self._shutdown is not None:
            self._shutdown.set()

    # -- connection handling ----------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=self.read_timeout_s
                    )
                except asyncio.TimeoutError:
                    # Slow-loris defence: a peer that cannot produce a
                    # request line within the deadline is told why and
                    # disconnected; everyone else keeps being served.
                    await self._send(
                        writer,
                        error_frame(
                            f"read timed out after {self.read_timeout_s:g}s",
                            code="transport",
                        ),
                    )
                    break
                except ValueError:
                    # Over-long line: the stream can no longer be
                    # re-framed — answer structurally, then drop it.
                    await self._send(
                        writer,
                        error_frame(
                            f"frame exceeds {MAX_FRAME_BYTES} bytes",
                            code="protocol",
                        ),
                    )
                    break
                except ConnectionResetError:
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    # EOF mid-line: the peer half-closed inside a frame.
                    await self._send(
                        writer,
                        error_frame(
                            "connection half-closed mid-frame",
                            code="protocol",
                        ),
                    )
                    break
                if not line.strip():
                    continue
                try:
                    request = decode_frame(line)
                except ValueError as exc:
                    # Junk JSON / invalid UTF-8 on an intact framing
                    # boundary: answer and keep the connection.
                    await self._send(
                        writer,
                        error_frame(f"bad frame: {exc}", code="protocol"),
                    )
                    continue
                op = str(request.get("op", ""))
                if op == "watch":
                    await self._watch(request, writer)
                else:
                    await self._send(writer, self._dispatch(op, request))
                    if op == "shutdown":
                        break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, payload: Dict[str, Any]) -> None:
        writer.write(encode_frame(payload))
        await writer.drain()

    # -- request dispatch --------------------------------------------------

    def _dispatch(self, op: str, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            if op == "ping":
                return self._ping()
            if op == "submit":
                return self._submit(request)
            if op == "status":
                return self._status(request)
            if op == "result":
                return self._result(request)
            if op == "fetch":
                return self._fetch(request)
            if op == "shutdown":
                assert self._shutdown is not None
                self._shutdown.set()
                return {"ok": True, "op": "shutdown"}
            return error_frame(f"unknown op {op!r}", code="protocol")
        except ServerBusy as exc:
            return error_frame(
                str(exc), code=exc.code, retry_after_s=exc.retry_after_s
            )
        except ServiceError as exc:
            return error_frame(str(exc), code=exc.code)
        except (KeyError, ValueError, TypeError) as exc:
            # A structurally broken request (bad params, missing keys)
            # is the client's bug, not infrastructure weather.
            return error_frame(
                f"{type(exc).__name__}: {exc}", code=ProtocolError.code
            )
        except Exception as exc:
            return error_frame(f"{type(exc).__name__}: {exc}")

    def _ping(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "op": "ping",
            "protocol": PROTOCOL_VERSION,
            "workers": self.scheduler.pool.workers,
            "jobs": len(self.scheduler.jobs()),
        }

    def _submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        plan = request.get("plan")
        if not isinstance(plan, dict):
            return error_frame("submit needs a 'plan' object", code="protocol")
        kind = str(plan.get("kind", ""))
        params = {key: value for key, value in plan.items() if key != "kind"}
        spec = JobSpec(
            kind=kind,
            params=params,
            label=str(request.get("label", "")),
            token=str(request.get("token", "")),
        )
        job = self.scheduler.submit(spec)
        return {
            "ok": True,
            "op": "submit",
            "protocol": PROTOCOL_VERSION,
            "job": job.summary(),
        }

    def _status(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job_id = request.get("job_id")
        if job_id is not None:
            job = self.scheduler.get(str(job_id))
            if job is None:
                return error_frame(
                    f"no such job {job_id!r}", code=JobLost.code
                )
            return {"ok": True, "op": "status", "job": job.summary()}
        return {
            "ok": True,
            "op": "status",
            "jobs": [job.summary() for job in self.scheduler.jobs()],
        }

    def _result(self, request: Dict[str, Any]) -> Dict[str, Any]:
        job = self.scheduler.get(str(request.get("job_id", "")))
        if job is None:
            return error_frame(
                f"no such job {request.get('job_id')!r}", code=JobLost.code
            )
        if job.report is None:
            return {
                "ok": True,
                "op": "result",
                "job": job.summary(),
                "cells": None,
            }
        ledger = self.scheduler.ledger
        digests: Dict[str, str] = {}
        if ledger is not None:
            for row in ledger.records():
                digests[str(row.get("run_id", ""))] = metrics_digest(row)
        cells = []
        for outcome in job.report.outcomes:
            run_id = outcome.spec.run_id
            cells.append(
                {
                    "run_id": run_id,
                    "label": outcome.spec.label,
                    "ok": True,
                    "cached": outcome.cached,
                    "deduped": outcome.deduped,
                    "wall_clock_s": outcome.wall_clock_s,
                    "metrics_digest": digests.get(run_id),
                }
            )
        for failure in job.report.failures:
            cells.append(
                {
                    "run_id": failure.spec.run_id,
                    "label": failure.spec.label,
                    "ok": False,
                    "error": failure.error,
                    "attempts": failure.attempts,
                }
            )
        return {"ok": True, "op": "result", "job": job.summary(), "cells": cells}

    def _fetch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        run_id = str(request.get("run_id", ""))
        if not run_id:
            return error_frame("fetch needs a 'run_id'", code="protocol")
        record = self.scheduler.store.get(run_id)
        ledger = self.scheduler.ledger
        ledger_record = ledger.get(run_id) if ledger is not None else None
        if record is None and ledger_record is None:
            return error_frame(f"run {run_id!r} not in store or ledger")
        return {
            "ok": True,
            "op": "fetch",
            "run_id": run_id,
            "record": record_as_dict(record) if record is not None else None,
            "ledger_record": ledger_record,
            "metrics_digest": (
                metrics_digest(ledger_record) if ledger_record is not None else None
            ),
        }

    # -- streaming ---------------------------------------------------------

    async def _watch(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        job = self.scheduler.get(str(request.get("job_id", "")))
        if job is None:
            await self._send(
                writer,
                error_frame(
                    f"no such job {request.get('job_id')!r}",
                    code=JobLost.code,
                ),
            )
            return
        try:
            since_seq = int(request.get("since_seq", -1))
        except (TypeError, ValueError):
            await self._send(
                writer,
                error_frame("since_seq must be an integer", code="protocol"),
            )
            return
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[sweepbus.SweepEvent]" = asyncio.Queue()

        def deliver(event: sweepbus.SweepEvent) -> None:
            # Runs on the emitting thread (job thread / pool drain);
            # after loop shutdown the hop fails — the watcher is gone.
            try:
                loop.call_soon_threadsafe(queue.put_nowait, event)
            except RuntimeError:
                pass

        subscription = self.scheduler.subscribe(
            job.job_id, deliver, since_seq=since_seq
        )
        try:
            await self._send(
                writer, {"ok": True, "op": "watch", "job": job.summary()}
            )
            if job.state.terminal:
                # A reconnecting watcher may already hold the whole
                # stream (it lost only the final done frame): nothing
                # left to replay means answer done now, not never.
                events = job.bus.events
                if not events or events[-1].seq <= since_seq:
                    await self._send(
                        writer,
                        {"ok": True, "done": True, "job": job.summary()},
                    )
                    return
            while True:
                event = await queue.get()
                await self._send(writer, {"event": event.to_dict()})
                if event.kind == sweepbus.SWEEP_END:
                    break
            await self._send(writer, {"ok": True, "done": True, "job": job.summary()})
        finally:
            subscription.close()
