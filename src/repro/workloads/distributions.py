"""Stochastic models for frame processing times and frame sizes.

:class:`StageTimeModel` generates per-frame service times for one
pipeline stage as::

    time = body + spike

* ``body`` is log-normal with an AR(1)-correlated latent Gaussian, so
  successive frames drift smoothly (scene complexity changes slowly);
* ``spike`` is an occasional Pareto excursion (sudden scene changes,
  cloud performance variation — the "suddenly-increased processing
  time" of Sec. 4.1).

The constructor takes the *total* target mean; the body mean is derived
by subtracting the analytic spike contribution, so the long-run average
service time equals ``mean_ms`` regardless of spike settings.  That lets
benchmark profiles be calibrated directly against the paper's FPS
numbers (stage FPS ≈ 1000 / mean_ms when the stage is the bottleneck).

:class:`FrameSizeModel` generates encoded frame sizes with a video
group-of-pictures (GoP) structure: every ``gop_length``-th frame is an
I-frame several times larger than the P-frames around it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.simcore.rng import SeededRng

__all__ = ["FrameSizeModel", "FrameSizeSampler", "StageTimeModel", "StageTimeSampler"]


@dataclass(frozen=True)
class StageTimeModel:
    """Distribution of one stage's per-frame processing time.

    Parameters
    ----------
    mean_ms:
        Long-run mean of the generated times (body + spikes).
    cv:
        Coefficient of variation of the log-normal body.
    spike_prob:
        Per-frame probability of a Pareto spike.
    spike_scale_ms, spike_alpha:
        Pareto minimum and shape of the spike magnitude.  ``alpha`` must
        exceed 1 so the spike mean is finite.
    rho:
        AR(1) coefficient of the latent body process in [0, 1).
    floor_ms:
        Hard lower bound on generated times (no stage is free).
    """

    mean_ms: float
    cv: float = 0.3
    spike_prob: float = 0.0
    spike_scale_ms: float = 0.0
    spike_alpha: float = 2.0
    rho: float = 0.5
    floor_ms: float = 0.05

    def __post_init__(self) -> None:
        if self.mean_ms <= 0:
            raise ValueError("mean_ms must be positive")
        if not 0 <= self.spike_prob < 1:
            raise ValueError("spike_prob must be in [0, 1)")
        if self.spike_prob > 0 and self.spike_alpha <= 1:
            raise ValueError("spike_alpha must exceed 1 for a finite spike mean")
        if not 0 <= self.rho < 1:
            raise ValueError("rho must be in [0, 1)")
        if self.body_mean_ms <= 0:
            raise ValueError(
                "spike contribution exceeds total mean; reduce spike_prob/scale"
            )

    @property
    def spike_mean_ms(self) -> float:
        """Analytic mean of one spike (0 when spikes are disabled)."""
        # Sentinel check on a configured parameter (exact literal 0.0 set
        # by the user), not arithmetic on a simulation timestamp.
        if self.spike_prob == 0 or self.spike_scale_ms == 0:  # simlint: disable=R6
            return 0.0
        return self.spike_scale_ms * self.spike_alpha / (self.spike_alpha - 1.0)

    @property
    def body_mean_ms(self) -> float:
        """Mean of the log-normal body after budgeting for spikes."""
        return self.mean_ms - self.spike_prob * self.spike_mean_ms

    def scaled(self, factor: float) -> "StageTimeModel":
        """A copy with all time parameters multiplied by ``factor``.

        Used for resolution scaling (1080p frames take proportionally
        longer) and platform scaling (GCE hardware differs from the
        private cloud's).
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return StageTimeModel(
            mean_ms=self.mean_ms * factor,
            cv=self.cv,
            spike_prob=self.spike_prob,
            spike_scale_ms=self.spike_scale_ms * factor,
            spike_alpha=self.spike_alpha,
            rho=self.rho,
            floor_ms=self.floor_ms,
        )

    def sampler(self, rng: SeededRng) -> "StageTimeSampler":
        """Create a stateful per-run sampler drawing from ``rng``."""
        return StageTimeSampler(self, rng)


class StageTimeSampler:
    """Stateful AR(1) log-normal + Pareto-spike time generator."""

    def __init__(self, model: StageTimeModel, rng: SeededRng):
        self.model = model
        self._rng = rng
        # Log-normal parameters for the body with the requested mean/cv.
        cv = max(model.cv, 1e-9)
        self._sigma2 = math.log(1.0 + cv * cv)
        self._mu = math.log(model.body_mean_ms) - self._sigma2 / 2.0
        self._sigma = math.sqrt(self._sigma2)
        # Latent standard-normal AR(1) state, initialized stationary.
        self._z = rng.normal()

    def next(self) -> float:
        """Draw the next frame's processing time (ms)."""
        model = self.model
        rho = model.rho
        self._z = rho * self._z + math.sqrt(1.0 - rho * rho) * self._rng.normal()
        body = math.exp(self._mu + self._sigma * self._z)
        time = body
        if model.spike_prob > 0 and self._rng.bernoulli(model.spike_prob):
            time += self._rng.pareto(model.spike_scale_ms, model.spike_alpha)
        return max(time, model.floor_ms)

    def draw_many(self, n: int) -> list:
        """Convenience: a list of ``n`` consecutive draws."""
        return [self.next() for _ in range(n)]


@dataclass(frozen=True)
class FrameSizeModel:
    """Encoded frame sizes with a GoP (I/P-frame) structure.

    Parameters
    ----------
    mean_kb:
        Long-run mean encoded size in kilobytes.
    cv:
        Coefficient of variation of individual frame sizes.
    gop_length:
        An I-frame every ``gop_length`` frames.
    i_frame_ratio:
        I-frame mean size relative to P-frame mean size.
    """

    mean_kb: float
    cv: float = 0.25
    gop_length: int = 30
    i_frame_ratio: float = 4.0

    def __post_init__(self) -> None:
        if self.mean_kb <= 0:
            raise ValueError("mean_kb must be positive")
        if self.gop_length < 1:
            raise ValueError("gop_length must be >= 1")
        if self.i_frame_ratio < 1:
            raise ValueError("i_frame_ratio must be >= 1")

    @property
    def p_frame_mean_kb(self) -> float:
        """Mean P-frame size so the GoP average equals ``mean_kb``."""
        # One I-frame of ratio*p plus (gop-1) P-frames of p per GoP.
        weight = (self.i_frame_ratio + (self.gop_length - 1)) / self.gop_length
        return self.mean_kb / weight

    def scaled(self, factor: float) -> "FrameSizeModel":
        """A copy with the mean size multiplied by ``factor`` (resolution)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return FrameSizeModel(
            mean_kb=self.mean_kb * factor,
            cv=self.cv,
            gop_length=self.gop_length,
            i_frame_ratio=self.i_frame_ratio,
        )

    def sampler(self, rng: SeededRng) -> "FrameSizeSampler":
        return FrameSizeSampler(self, rng)


class FrameSizeSampler:
    """Stateful GoP-position-aware frame size generator."""

    def __init__(self, model: FrameSizeModel, rng: SeededRng):
        self.model = model
        self._rng = rng
        self._position = 0

    def next(self) -> int:
        """Size in bytes of the next encoded frame."""
        model = self.model
        is_i_frame = self._position % model.gop_length == 0
        self._position += 1
        mean = model.p_frame_mean_kb * (model.i_frame_ratio if is_i_frame else 1.0)
        kb = self._rng.lognormal_mean_cv(mean, model.cv)
        return max(1, int(kb * 1024))
