"""Deployment platform and resolution profiles.

The paper evaluates two deployments (Sec. 6.1):

* a **private cloud** — i7-7820X + GTX 1080Ti server, 1 Gbps LAN to the
  client, ~2 ms ping: the "edge" deployment;
* **Google Compute Engine** — n1-highcpu-16 + Tesla P4 in us-central1,
  commodity Internet path, ~25 ms ping: the "public cloud" deployment.

A :class:`PlatformProfile` captures everything the simulation needs:
network latency/bandwidth, the TCP send-buffer budget that bounds
congestion queueing, and hardware speed factors relative to the private
cloud baseline on which the benchmark profiles are calibrated.

Effective bandwidth is application-level streaming throughput, not link
rate — a 1 Gbps LAN sustains far less through a VNC-style software
stack, and the GCE Internet path is modelled at tens of Mbps, matching
the paper's observed 15-60 Mbps usage and its finding that NoReg's
excessive frames congest the GCE path into seconds of latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["GCE", "PLATFORMS", "PRIVATE_CLOUD", "PlatformProfile", "Resolution"]


class Resolution(enum.Enum):
    """Output resolutions used in the evaluation."""

    R720P = "720p"
    R1080P = "1080p"

    @property
    def width(self) -> int:
        return {"720p": 1280, "1080p": 1920}[self.value]

    @property
    def height(self) -> int:
        return {"720p": 720, "1080p": 1080}[self.value]

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def render_scale(self) -> float:
        """Render-time multiplier relative to 720p."""
        return {"720p": 1.0, "1080p": 1.75}[self.value]

    @property
    def encode_scale(self) -> float:
        """Encode-time multiplier relative to 720p."""
        return {"720p": 1.0, "1080p": 1.85}[self.value]

    @property
    def copy_scale(self) -> float:
        """Framebuffer copy-time multiplier (scales with pixel count)."""
        return {"720p": 1.0, "1080p": 2.25}[self.value]

    @property
    def decode_scale(self) -> float:
        return {"720p": 1.0, "1080p": 1.9}[self.value]

    @property
    def size_scale(self) -> float:
        """Encoded frame-size multiplier relative to 720p."""
        return {"720p": 1.0, "1080p": 2.1}[self.value]

    @property
    def default_fps_target(self) -> int:
        """The paper's fixed QoS target at this resolution (Sec. 6.1)."""
        return {"720p": 60, "1080p": 30}[self.value]


@dataclass(frozen=True)
class PlatformProfile:
    """One deployment platform (hardware + network path)."""

    name: str
    description: str
    #: One-way client→cloud input latency (ms); ~ping/2 plus stack overhead.
    uplink_ms: float
    #: One-way cloud→client propagation latency (ms), before serialization.
    downlink_ms: float
    #: Effective application-level streaming bandwidth (Mbps).
    bandwidth_mbps: float
    #: Coefficient of variation of per-frame transmission time (path jitter).
    transmit_jitter_cv: float
    #: TCP-style send-buffer budget (bytes).  When the encoder outruns the
    #: network, queued bytes accumulate up to this bound and the encoder
    #: blocks — the congestion mechanism behind NoReg's seconds-scale MtP
    #: latency on GCE (Sec. 6.4).
    send_buffer_bytes: int
    #: Server GPU render-time factor vs the private-cloud 1080Ti baseline.
    render_time_factor: float
    #: Server CPU encode/copy-time factor vs the private-cloud baseline.
    encode_time_factor: float
    #: Client decode-time factor (the same client is used everywhere; kept
    #: for completeness/extension).
    decode_time_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.send_buffer_bytes <= 0:
            raise ValueError("send buffer must be positive")
        if min(self.render_time_factor, self.encode_time_factor, self.decode_time_factor) <= 0:
            raise ValueError("time factors must be positive")

    @property
    def rtt_ms(self) -> float:
        """Round-trip time of the control path."""
        return self.uplink_ms + self.downlink_ms

    def transmit_ms(self, size_bytes: int) -> float:
        """Mean serialization time for ``size_bytes`` at this bandwidth."""
        bits = size_bytes * 8.0
        return bits / (self.bandwidth_mbps * 1000.0)


#: The paper's private cloud: i7-7820X + GTX 1080Ti, 1 Gbps LAN, ~2 ms ping.
PRIVATE_CLOUD = PlatformProfile(
    name="private",
    description="Private cloud / edge: i7-7820X + GTX 1080Ti, 1 Gbps LAN (~2 ms ping)",
    uplink_ms=1.0,
    downlink_ms=1.0,
    bandwidth_mbps=150.0,
    transmit_jitter_cv=0.15,
    send_buffer_bytes=4 * 1024 * 1024,
    render_time_factor=1.0,
    encode_time_factor=1.0,
)

#: Google Compute Engine: n1-highcpu-16 + Tesla P4, us-central1 (~25 ms ping).
#: Rendering is modestly faster than the private cloud (headless driver, no
#: display scan-out, more CPU headroom for the app's simulation threads);
#: the Internet path is the bottleneck instead.
GCE = PlatformProfile(
    name="gce",
    description="Google Compute Engine: n1-highcpu-16 + Tesla P4, us-central1 (~25 ms ping)",
    uplink_ms=12.5,
    downlink_ms=12.5,
    bandwidth_mbps=42.0,
    transmit_jitter_cv=0.30,
    send_buffer_bytes=6 * 1024 * 1024,
    render_time_factor=0.55,
    encode_time_factor=0.90,
)

#: Local (non-cloud) execution, used only as the user study's NonCloud
#: baseline (Sec. 6.7): no real network, and the "encode/transmit/decode"
#: stages degenerate to the compositor's negligible per-frame costs.
LOCAL_MACHINE = PlatformProfile(
    name="local",
    description="Local execution (the user study's NonCloud baseline)",
    uplink_ms=0.1,
    downlink_ms=0.1,
    bandwidth_mbps=20000.0,
    transmit_jitter_cv=0.05,
    send_buffer_bytes=32 * 1024 * 1024,
    render_time_factor=1.0,
    encode_time_factor=0.08,
    decode_time_factor=0.08,
)

#: Registry of platforms by name.
PLATFORMS = {p.name: p for p in (PRIVATE_CLOUD, GCE, LOCAL_MACHINE)}
