"""Synthetic Pictor-equivalent workloads.

The paper evaluates six interactive 3D benchmarks from the Pictor suite
on two platforms and two resolutions.  We cannot run the real games, so
this package models the *timing processes* that drive every result in
the paper: per-stage frame processing times (render, copy, encode,
decode), encoded frame sizes, and their frame-to-frame variation.

The models reproduce the three properties the paper's analysis hinges
on (Sec. 4.1, Fig. 4):

1. right-skewed bodies — most frames process well below 16.6 ms;
2. heavy spike tails — 10-20 % of frames suddenly take far longer
   (scene complexity changes, cloud performance variation);
3. frame-to-frame correlation — processing time drifts rather than
   being i.i.d. (visible in the Fig. 4b trace).
"""

from repro.workloads.benchmarks import (
    BENCHMARKS,
    BenchmarkProfile,
    get_benchmark,
)
from repro.workloads.distributions import FrameSizeModel, StageTimeModel
from repro.workloads.validation import (
    ProfilePrediction,
    predict_noreg,
    validate_profile,
)
from repro.workloads.platforms import (
    PLATFORMS,
    GCE,
    PRIVATE_CLOUD,
    PlatformProfile,
    Resolution,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkProfile",
    "FrameSizeModel",
    "GCE",
    "PLATFORMS",
    "PRIVATE_CLOUD",
    "PlatformProfile",
    "ProfilePrediction",
    "Resolution",
    "StageTimeModel",
    "get_benchmark",
    "predict_noreg",
    "validate_profile",
]
