"""The six Pictor-equivalent benchmark profiles.

Each :class:`BenchmarkProfile` is calibrated at **720p on the private
cloud** (the configuration the paper analyzes in Sec. 4) and scaled to
other resolutions/platforms via the multipliers in
:mod:`repro.workloads.platforms`.

Calibration anchors from the paper:

* Fig. 1 — Red Eclipse and InMind have large cloud-vs-client FPS gaps;
* Fig. 3 — InMind 720p private under NoReg: render ≈ 189 FPS, encode ≈
  decode ≈ 93 FPS (gap ≈ 96);
* Fig. 4 — InMind render/encode/transmit time CDFs: bulk below 16.6 ms,
  10-20 % spikes far above;
* Table 2 — NoReg average gap 60.7 (720p private) with IMHOTEP by far
  the worst offender (a lightweight VR scene that renders extremely
  fast but encodes slowly);
* Sec. 5.3 — 2-5 (average 3.6) discrete user actions per second.

All means below are **uncontended** service times.  Under NoReg both the
app (render+copy) and the encoder run essentially back-to-back, so DRAM
contention (:mod:`repro.pipeline.contention`, beta = 0.25) inflates each
by ~1.25×; the *observed* NoReg rates are therefore::

    NoReg render FPS ≈ 1000 / (1.25 × (render_mean + copy_mean))
    NoReg encode FPS ≈ 1000 / (1.25 × encode_mean)

e.g. InMind: 1000/(1.25×4.24) ≈ 189 render FPS and 1000/(1.25×8.6) ≈ 93
encode FPS, matching Fig. 3.  Under regulation the overlap — and the
penalty — shrinks, which is how ODRMax's client FPS exceeds NoReg's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workloads.distributions import FrameSizeModel, StageTimeModel
from repro.workloads.platforms import PlatformProfile, Resolution

__all__ = ["BENCHMARKS", "BenchmarkProfile", "get_benchmark"]


@dataclass(frozen=True)
class BenchmarkProfile:
    """One cloud-3D benchmark's workload model (720p private baseline)."""

    name: str
    full_name: str
    genre: str
    render: StageTimeModel
    copy: StageTimeModel
    encode: StageTimeModel
    decode: StageTimeModel
    frame_size: FrameSizeModel
    #: Mean discrete user actions per second (APM/60).  The paper observed
    #: 2-5 priority frames per second across benchmarks (Sec. 5.3).
    actions_per_second: float
    #: Relative CPU intensity of game logic per frame (drives the power
    #: and DRAM models; RTS games burn more CPU per frame than shooters).
    logic_cpu_weight: float = 1.0
    #: Zero-memory-latency IPC of the benchmark's server-side code; the
    #: IPC model degrades it with the run's DRAM read access time.
    #: Calibrated so the 720p-private NoReg IPC average lands near the
    #: paper's 0.66 (Fig. 12a).
    ipc_peak: float = 1.4

    def stage_models(
        self, platform: PlatformProfile, resolution: Resolution
    ) -> Dict[str, StageTimeModel]:
        """Per-stage time models scaled to a platform and resolution."""
        return {
            "render": self.render.scaled(resolution.render_scale * platform.render_time_factor),
            "copy": self.copy.scaled(resolution.copy_scale * platform.encode_time_factor),
            "encode": self.encode.scaled(resolution.encode_scale * platform.encode_time_factor),
            "decode": self.decode.scaled(resolution.decode_scale * platform.decode_time_factor),
        }

    def frame_size_model(self, resolution: Resolution) -> FrameSizeModel:
        """Frame-size model scaled to a resolution."""
        return self.frame_size.scaled(resolution.size_scale)


def _profile(
    name: str,
    full_name: str,
    genre: str,
    render_mean: float,
    encode_mean: float,
    decode_mean: float,
    mean_kb: float,
    actions_per_second: float,
    render_cv: float = 0.35,
    render_spike_prob: float = 0.08,
    render_spike_scale: float = 6.0,
    render_spike_alpha: float = 2.6,
    encode_cv: float = 0.22,
    encode_spike_prob: float = 0.10,
    encode_spike_scale: float = 4.5,
    encode_spike_alpha: float = 2.2,
    copy_mean: float = 1.8,
    logic_cpu_weight: float = 1.0,
    ipc_peak: float = 1.4,
    rho: float = 0.55,
) -> BenchmarkProfile:
    """Build a profile from headline means plus shared shape defaults."""
    return BenchmarkProfile(
        name=name,
        full_name=full_name,
        genre=genre,
        render=StageTimeModel(
            mean_ms=render_mean,
            cv=render_cv,
            spike_prob=render_spike_prob,
            spike_scale_ms=render_spike_scale,
            spike_alpha=render_spike_alpha,
            rho=rho,
        ),
        copy=StageTimeModel(mean_ms=copy_mean, cv=0.15, rho=0.3),
        encode=StageTimeModel(
            mean_ms=encode_mean,
            cv=encode_cv,
            spike_prob=encode_spike_prob,
            spike_scale_ms=encode_spike_scale,
            spike_alpha=encode_spike_alpha,
            rho=rho,
        ),
        decode=StageTimeModel(mean_ms=decode_mean, cv=0.20, rho=0.3),
        frame_size=FrameSizeModel(mean_kb=mean_kb),
        actions_per_second=actions_per_second,
        logic_cpu_weight=logic_cpu_weight,
        ipc_peak=ipc_peak,
    )


#: SuperTuxKart — open-source kart racer; light scenes, fast rendering.
STK = _profile(
    "STK",
    "SuperTuxKart",
    "Racing Game",
    render_mean=4.37,
    copy_mean=1.55,
    encode_mean=8.40,
    decode_mean=4.0,
    mean_kb=58.0,
    actions_per_second=4.5,
    logic_cpu_weight=0.9,
    ipc_peak=1.83,
)

#: 0 A.D. — real-time strategy; CPU-heavy game logic, slower frames.
ZERO_AD = _profile(
    "0AD",
    "0 A.D.",
    "Real-time Strategy Game",
    render_mean=7.10,
    copy_mean=1.70,
    encode_mean=10.56,
    decode_mean=4.5,
    mean_kb=62.0,
    actions_per_second=4.8,
    render_cv=0.40,
    logic_cpu_weight=1.6,
    ipc_peak=1.14,
)

#: Red Eclipse — fast first-person shooter; one of the two Fig. 1 examples.
RED_ECLIPSE = _profile(
    "RE",
    "Red Eclipse",
    "First-person Shooter Game",
    render_mean=3.38,
    copy_mean=1.50,
    encode_mean=7.68,
    decode_mean=3.8,
    mean_kb=56.0,
    actions_per_second=5.0,
    render_cv=0.38,
    logic_cpu_weight=1.0,
    ipc_peak=2.05,
)

#: DoTA 2 — battle arena; heavier scenes, render and encode both slow.
DOTA2 = _profile(
    "D2",
    "DoTA2",
    "Battle Arena Game",
    render_mean=7.69,
    copy_mean=1.75,
    encode_mean=10.40,
    decode_mean=4.6,
    mean_kb=64.0,
    actions_per_second=4.2,
    render_cv=0.36,
    logic_cpu_weight=1.3,
    ipc_peak=1.26,
)

#: InMind — VR game; the paper's running analysis example (Fig. 3/4/6/7).
INMIND = _profile(
    "IM",
    "InMind",
    "VR Game",
    render_mean=2.69,
    copy_mean=1.55,
    encode_mean=8.60,
    decode_mean=3.6,
    mean_kb=60.0,
    actions_per_second=2.4,
    render_cv=0.42,
    render_spike_prob=0.10,
    render_spike_scale=6.0,
    render_spike_alpha=2.4,
    encode_spike_prob=0.12,
    logic_cpu_weight=0.9,
    ipc_peak=1.37,
)

#: IMHOTEP — health-training VR; a lightweight scene that renders
#: extremely fast but produces frames that are slow to encode — the
#: worst excessive-rendering offender in Table 2.
IMHOTEP = _profile(
    "ITP",
    "IMHOTEP",
    "Health Training VR",
    render_mean=1.76,
    copy_mean=1.60,
    encode_mean=10.64,
    decode_mean=4.2,
    mean_kb=66.0,
    actions_per_second=2.0,
    render_cv=0.55,
    render_spike_prob=0.06,
    render_spike_scale=4.0,
    render_spike_alpha=2.6,
    logic_cpu_weight=0.7,
    ipc_peak=1.37,
    rho=0.7,
)

#: The six benchmarks, in the paper's Table 1 order.
BENCHMARKS: Dict[str, BenchmarkProfile] = {
    b.name: b for b in (STK, ZERO_AD, RED_ECLIPSE, DOTA2, INMIND, IMHOTEP)
}


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up a benchmark by its short name (case-insensitive)."""
    key = name.upper()
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARKS)}"
        )
    return BENCHMARKS[key]
