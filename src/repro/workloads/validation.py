"""Analytic self-checks for workload profiles.

A :class:`BenchmarkProfile` encodes calibration intent (NoReg FPS
anchors, spike mass, feasible targets); these helpers compute the
closed-form predictions the simulation should land near, so a profile
can be validated *before* burning simulation time — used by the test
suite and by :func:`validate_profile` for user-authored profiles
(``examples/custom_game_profile.py``-style workflows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workloads.benchmarks import BenchmarkProfile
from repro.workloads.platforms import PlatformProfile, Resolution

__all__ = ["ProfilePrediction", "predict_noreg", "validate_profile"]

#: DRAM-contention inflation of a fully-overlapped (NoReg) pipeline.
NOREG_CONTENTION = 1.25


@dataclass(frozen=True)
class ProfilePrediction:
    """Closed-form NoReg predictions for one (profile, platform, res)."""

    render_fps: float
    encode_fps: float
    fps_gap: float
    offered_mbps: float
    #: True when the encoder outruns the path — the congestion regime
    #: behind NoReg's seconds-scale MtP latency.
    congested: bool

    @property
    def has_excessive_rendering(self) -> bool:
        return self.fps_gap > 1.0


def predict_noreg(
    profile: BenchmarkProfile,
    platform: PlatformProfile,
    resolution: Resolution,
) -> ProfilePrediction:
    """Predict the NoReg steady state analytically.

    Under NoReg both the app loop (render+copy) and the encoder run
    back-to-back, each inflated ~``NOREG_CONTENTION``× by the other;
    client FPS equals encode FPS unless the network path is the
    bottleneck.
    """
    models = profile.stage_models(platform, resolution)
    app_period = NOREG_CONTENTION * (models["render"].mean_ms + models["copy"].mean_ms)
    encode_period = NOREG_CONTENTION * models["encode"].mean_ms
    render_fps = 1000.0 / app_period
    encode_fps = 1000.0 / encode_period
    mean_bytes = profile.frame_size_model(resolution).mean_kb * 1024
    offered_mbps = encode_fps * mean_bytes * 8.0 / 1e6
    return ProfilePrediction(
        render_fps=render_fps,
        encode_fps=encode_fps,
        fps_gap=max(0.0, render_fps - encode_fps),
        offered_mbps=offered_mbps,
        congested=offered_mbps > platform.bandwidth_mbps,
    )


def validate_profile(
    profile: BenchmarkProfile,
    platform: PlatformProfile,
    resolution: Resolution,
) -> List[str]:
    """Sanity-check a (possibly user-authored) profile.

    Returns a list of human-readable problems (empty = valid):

    * the render loop must outpace the encoder (otherwise there is no
      excessive rendering and nothing for a regulator to regulate);
    * the decode stage must not be the bottleneck (the paper's client
      assumption: "decoding time is relatively lower");
    * input rate must be in the paper's observed 2-5 actions/s band for
      PriorityFrame's sparsity argument to hold.
    """
    problems: List[str] = []
    models = profile.stage_models(platform, resolution)
    prediction = predict_noreg(profile, platform, resolution)

    app_period = models["render"].mean_ms + models["copy"].mean_ms
    if app_period >= models["encode"].mean_ms:
        problems.append(
            f"render+copy ({app_period:.2f} ms) is not faster than encode "
            f"({models['encode'].mean_ms:.2f} ms): no excessive rendering"
        )
    if models["decode"].mean_ms >= models["encode"].mean_ms:
        problems.append(
            f"decode ({models['decode'].mean_ms:.2f} ms) is slower than encode "
            f"({models['encode'].mean_ms:.2f} ms): the client becomes the bottleneck"
        )
    if not 1.0 <= profile.actions_per_second <= 8.0:
        problems.append(
            f"actions_per_second={profile.actions_per_second} outside the "
            "1-8/s range PriorityFrame's sparsity argument assumes"
        )
    if prediction.encode_fps < 25.0:
        problems.append(
            f"encode capacity {prediction.encode_fps:.1f} FPS cannot satisfy "
            "even a 30 FPS target on this platform/resolution"
        )
    return problems
