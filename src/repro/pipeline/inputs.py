"""User-input generation and the client→cloud input path.

The paper's PriorityFrame rests on an input-sparsity observation: a
normal user produces fewer than 250 actions per minute, so there are at
most ~5 *discrete* input-triggered frames per second (Sec. 5.3).  Mice
and VR headsets additionally *poll* position/posture at very high rates,
but all the paper's benchmarks combine pending polling events so only
the latest pose is rendered — so polling events are neither prioritized
nor part of MtP measurement.

:class:`InputGenerator` produces a Poisson stream of discrete actions
(and, optionally, a deterministic polling stream for realism tests),
registers actions with the MtP tracker, and delivers each event to the
server after the platform's uplink latency.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.metrics import MtpLatencyTracker
from repro.simcore import Environment, SeededRng

__all__ = ["InputEvent", "InputGenerator", "InputKind"]


class InputKind(enum.Enum):
    """Discrete actions vs high-frequency position polling."""

    ACTION = "action"
    POLL = "poll"


@dataclass(frozen=True)
class InputEvent:
    """One user input as issued at the client."""

    input_id: int
    kind: InputKind
    t_issued: float

    @property
    def is_action(self) -> bool:
        return self.kind is InputKind.ACTION


class InputGenerator:
    """Client-side input source feeding the cloud over the uplink.

    Parameters
    ----------
    env, rng:
        Simulation environment and a dedicated random stream.
    actions_per_second:
        Mean rate of the Poisson action process.
    uplink_ms:
        One-way client→cloud latency applied to every event.
    deliver:
        Called at the *server* side when an event arrives (the server
        proxy forwarding the input to the 3D app — paper step 2).
    tracker:
        MtP tracker; discrete actions are registered at issue time.
    poll_hz:
        Optional high-frequency polling stream (0 disables it; the
        benchmarks' input combining makes polling irrelevant to both
        FPS and MtP, so the default keeps the event count down).
    """

    def __init__(
        self,
        env: Environment,
        rng: SeededRng,
        actions_per_second: float,
        uplink_ms: float,
        deliver: Callable[[InputEvent], None],
        tracker: Optional[MtpLatencyTracker] = None,
        poll_hz: float = 0.0,
    ):
        if actions_per_second < 0 or poll_hz < 0:
            raise ValueError("rates must be non-negative")
        if uplink_ms < 0:
            raise ValueError("uplink latency must be non-negative")
        self.env = env
        self._rng = rng
        self.actions_per_second = actions_per_second
        self.uplink_ms = uplink_ms
        self._deliver = deliver
        self._tracker = tracker
        self.poll_hz = poll_hz
        self._ids = itertools.count(1)
        self.issued_actions = 0
        if actions_per_second > 0:
            env.process(self._action_loop(), name="input-actions")
        if poll_hz > 0:
            env.process(self._poll_loop(), name="input-polling")

    def _issue(self, kind: InputKind) -> None:
        event = InputEvent(next(self._ids), kind, self.env.now)
        if event.is_action:
            self.issued_actions += 1
            if self._tracker is not None:
                self._tracker.input_issued(event.input_id, event.t_issued)
        # Arrives at the server proxy one uplink later (paper steps 1-2).
        self.env.call_at(self.env.now + self.uplink_ms, lambda e=event: self._deliver(e))

    def _action_loop(self):
        gaps = self._rng.poisson_interarrivals(self.actions_per_second / 1000.0)
        for gap in gaps:
            yield self.env.timeout(gap)
            self._issue(InputKind.ACTION)

    def _poll_loop(self):
        period = 1000.0 / self.poll_hz
        while True:
            yield self.env.timeout(period)
            self._issue(InputKind.POLL)
