"""Failure injection for robustness testing.

Real cloud-3D deployments hit transient stalls the steady-state
distributions never produce: a driver recompiles shaders, the encoder
hits a scene cut, the VM gets descheduled, a GC pause freezes the proxy.
The paper's whole argument for ODR's *acceleration* path is recovering
from exactly such events (Sec. 4.1's "suddenly-increased processing
time"), so the test suite injects them deliberately.

:class:`StallInjector` wraps any stage sampler and adds scheduled
stalls: at each programmed simulation time, the next draw after that
point is inflated by the stall duration (the stage appears to take that
much longer — a service-time stall, exactly how a descheduled thread
manifests to the pipeline).

Usage::

    system = CloudSystem(config, regulator)
    inject_stall(system, "encode", at_ms=5000.0, duration_ms=300.0)
    result = system.run()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import CloudSystem

__all__ = ["StallInjector", "inject_stall"]


class StallInjector:
    """Sampler wrapper adding scheduled service-time stalls."""

    def __init__(self, base_sampler, env, stalls: List[Tuple[float, float]]):
        """``stalls`` is a list of ``(at_ms, duration_ms)`` pairs."""
        for at_ms, duration_ms in stalls:
            if duration_ms <= 0:
                raise ValueError("stall duration must be positive")
            if at_ms < 0:
                raise ValueError("stall time must be non-negative")
        self._base = base_sampler
        self._env = env
        #: Pending stalls, earliest first.
        self._pending = sorted(stalls)
        #: (time, duration) of stalls already delivered.
        self.fired: List[Tuple[float, float]] = []

    def next(self) -> float:
        value = self._base.next()
        while self._pending and self._env.now >= self._pending[0][0]:
            at_ms, duration_ms = self._pending.pop(0)
            self.fired.append((self._env.now, duration_ms))
            value += duration_ms
        return value


def inject_stall(
    system: "CloudSystem",
    stage: str,
    at_ms: float,
    duration_ms: float,
) -> StallInjector:
    """Schedule one stall of ``stage`` and return the injector.

    Must be called before ``system.run()``.  ``stage`` is one of the
    sampled pipeline stages (``render``, ``copy``, ``encode``,
    ``decode``).  Multiple calls on the same stage chain injectors.
    """
    if stage not in system.samplers:
        raise KeyError(f"unknown stage {stage!r}; have {sorted(system.samplers)}")
    injector = StallInjector(system.samplers[stage], system.env, [(at_ms, duration_ms)])
    system.samplers[stage] = injector
    # stage components cache their sampler at construction; rebind
    if stage == "render":
        system.app._render_sampler = injector
    elif stage == "copy":
        system.app._copy_sampler = injector
    elif stage == "encode":
        system.proxy._encode_sampler = injector
    elif stage == "decode":
        system.client._decode_sampler = injector
    return injector
