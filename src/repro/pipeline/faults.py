"""Deprecated shim: fault injection moved to :mod:`repro.faults`.

This module used to hold the single-stall injector the test suite was
written against.  The fault model is now a first-class subsystem —
declarative :class:`~repro.faults.FaultPlan` specs applied at
:class:`~repro.pipeline.system.CloudSystem` construction — and the
injector (deque-backed, no O(n²) list pops) lives in
:mod:`repro.faults.injectors`.

``StallInjector`` re-exports directly; :func:`inject_stall` still works
but warns — build a plan instead::

    from repro.faults import FaultPlan, StageStall
    system = CloudSystem(
        config, regulator,
        fault_plan=FaultPlan([StageStall("encode", 5000.0, 300.0)]),
    )
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.faults.injectors import StallInjector
from repro.faults.injectors import inject_stall as _inject_stall

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import CloudSystem

__all__ = ["StallInjector", "inject_stall"]


def inject_stall(
    system: "CloudSystem",
    stage: str,
    at_ms: float,
    duration_ms: float,
) -> StallInjector:
    """Deprecated alias of :func:`repro.faults.inject_stall`."""
    warnings.warn(
        "repro.pipeline.faults.inject_stall is deprecated; pass a "
        "repro.faults.FaultPlan to CloudSystem (or call "
        "repro.faults.inject_stall) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _inject_stall(system, stage, at_ms, duration_ms)
