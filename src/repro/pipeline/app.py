"""The 3D application's render loop (paper Fig. 2, steps 3-4).

The loop mirrors a real game's main loop as seen through ODR's API
hooks (Sec. 5.4):

1. **gate** — the regulator's rendering delay.  In the real system this
   is the code ODR injects directly after ``glXSwapBuffers``; here it is
   ``regulator.app_wait``.  NoReg returns immediately (free-running),
   Int sleeps to the interval grid, RVS waits for the vblank schedule,
   ODR blocks until Mul-Buf1's back buffer is free.
2. **input drain** — all inputs that arrived since the previous frame
   are combined into this frame (the "input combining" all the paper's
   benchmarks perform); the ``XNextEvent`` hook analogue.
3. **render** — one GPU render of stochastic duration.
4. **copy** — the framebuffer readback into the server proxy (VirtualGL
   performs this inside the ``glXSwapBuffers`` call, i.e. in the app's
   frame loop, pipelined with the proxy's encoding of earlier frames).
5. **submit** — ``regulator.app_submit`` hands the frame downstream
   (mailbox offer, or Mul-Buf1 back-buffer deposit for ODR).

Render and copy times are inflated by the live DRAM-contention
multiplier (:mod:`repro.pipeline.contention`): when the encoder is
hammering memory at the same time, the app's own frame takes longer —
the feedback loop behind the paper's Sec. 4.3 analysis.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, List, Optional, Set

from repro.pipeline.frames import Frame
from repro.pipeline.inputs import InputEvent
from repro.simcore import Event, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import CloudSystem
    from repro.workloads.distributions import StageTimeSampler

__all__ = ["Application3D"]


class Application3D:
    """The (closed-source) interactive 3D application, as hooked by ODR."""

    def __init__(self, system: "CloudSystem") -> None:
        self.system = system
        self.env = system.env
        self._render_sampler = system.samplers["render"]
        self._copy_sampler = system.samplers["copy"]
        #: Inputs forwarded by the server proxy, awaiting the next frame.
        self.pending_inputs: List[InputEvent] = []
        #: Inputs that arrived while the loop slept in an injected
        #: regulation delay (see Regulator.sleep_masks_inputs); they are
        #: promoted to pending one frame late.
        self.masked_inputs: List[InputEvent] = []
        #: True while the loop is blocked in the regulator's gate.
        self.in_gate = False
        #: Input ids inherited from frames flushed as obsolete; absorbed
        #: into the next frame created.
        self.inherited_ids: Set[int] = set()
        #: Set by ODR's PriorityFrame when a discrete input arrives; the
        #: next frame is flagged as a priority frame.
        self.priority_armed = False
        self._frame_ids = itertools.count(1)
        self.frames: List[Frame] = []
        self.process = self.env.process(self.run(), name="app")

    # -- input path ------------------------------------------------------

    def deliver_input(self, event: InputEvent) -> None:
        """Server proxy forwards an input to the app (paper step 2)."""
        if self.system.regulator.sleep_masks_inputs and self.in_gate:
            # The loop is asleep inside the injected regulation delay;
            # the X event is read only after one more sleep+render cycle.
            self.masked_inputs.append(event)
        else:
            self.pending_inputs.append(event)
        self.system.regulator.on_server_input(self, event)

    def _begin_frame(self) -> Frame:
        """Drain pending inputs (input combining) and create the frame."""
        inputs, self.pending_inputs = self.pending_inputs, []
        # Inputs masked by a regulation sleep become visible to the *next*
        # frame's drain.
        self.pending_inputs, self.masked_inputs = self.masked_inputs, []
        new_action_ids = {e.input_id for e in inputs if e.is_action}
        frame = Frame(
            frame_id=next(self._frame_ids),
            triggered_by_input=bool(new_action_ids),
            priority=self.priority_armed and bool(new_action_ids),
            input_ids=new_action_ids | self.inherited_ids,
            t_created=self.env.now,
        )
        self.inherited_ids = set()
        self.priority_armed = False
        self.frames.append(frame)
        return frame

    def _busy_stage(
        self, stage: str, sampler: "StageTimeSampler", frame: Frame
    ) -> ProcessGenerator:
        """Generator: run one contention-inflated stage and trace it.

        Rendering additionally acquires the (possibly shared) GPU when
        the system defines one — sessions consolidated onto one server
        serialize their renders on it (see :mod:`repro.multitenant`).
        """
        system = self.system
        resource = system.gpu_resource if stage == "render" else None
        request: Optional[Event] = None
        if resource is not None:
            request = resource.request()
            yield request
        try:
            start = self.env.now
            duration = sampler.next() * system.contention.multiplier(stage)
            system.contention.enter(stage)
            try:
                yield self.env.timeout(duration)
            finally:
                system.contention.exit(stage)
            system.trace.record(stage, start, self.env.now)
            if system.telemetry is not None:
                system.telemetry.stage_complete(frame, stage, start, self.env.now)
        finally:
            if request is not None:
                resource.release(request)

    # -- the main loop -----------------------------------------------------

    def run(self) -> ProcessGenerator:
        env = self.env
        system = self.system
        while True:
            gate_entered = env.now
            self.in_gate = True
            try:
                yield from system.regulator.app_wait(self)
            finally:
                self.in_gate = False
            frame = self._begin_frame()
            if system.telemetry is not None:
                system.telemetry.frame_opened(
                    frame, env.now, gate_delay_ms=env.now - gate_entered
                )
            frame.t_render_start = env.now
            yield from self._busy_stage("render", self._render_sampler, frame)
            frame.t_render_end = env.now
            system.counter.record("render", env.now)
            yield from self._busy_stage("copy", self._copy_sampler, frame)
            frame.t_copy_end = env.now
            yield from system.regulator.app_submit(self, frame)
