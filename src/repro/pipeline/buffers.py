"""Inter-stage frame buffers.

Three disciplines, matching the three system designs in the paper:

:class:`Mailbox`
    The conventional stack's app→proxy hand-off: a single slot holding
    the *latest* rendered frame.  The producer never blocks; writing
    over an unconsumed frame discards it.  Those discarded frames are
    the paper's "excessive rendering".

:class:`MultiBuffer`
    ODR's front/back buffer pair (Mul-Buf1 and Mul-Buf2, Sec. 5.1).
    The producer blocks until the back buffer is free; the consumer
    processes the front buffer and *swaps* only when it has finished
    **and** the back buffer holds a new frame.  The blocking on both
    sides is what synchronizes stage rates without timing feedback.

:class:`ByteBudgetQueue`
    The proxy→network send queue of the conventional stack: a
    TCP-send-buffer-like FIFO bounded in *bytes*.  When the encoder
    outruns the network the queue fills and the encoder blocks;
    standing queueing delay here is the congestion mechanism behind
    NoReg's seconds-scale MtP latency on GCE (Sec. 6.4).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.pipeline.frames import DropReason, Frame
from repro.simcore import Environment, Event, Gate, ProcessGenerator

__all__ = ["ByteBudgetQueue", "Mailbox", "MultiBuffer"]


class Mailbox:
    """Single-slot latest-frame-wins hand-off (never blocks the producer)."""

    def __init__(
        self, env: Environment, on_drop: Optional[Callable[[Frame], None]] = None
    ) -> None:
        self.env = env
        self._slot: Optional[Frame] = None
        self._getters: List[Event] = []
        self._on_drop = on_drop
        self.drop_count = 0

    @property
    def occupied(self) -> bool:
        return self._slot is not None

    def offer(self, frame: Frame) -> Optional[Frame]:
        """Deposit ``frame``; returns the overwritten frame, if any.

        An overwritten frame is marked dropped and its input ids are
        inherited by the new frame.
        """
        dropped: Optional[Frame] = None
        if self._getters:
            # A consumer is already waiting: hand over directly.
            self._getters.pop(0).succeed(frame)
            return None
        if self._slot is not None:
            dropped = self._slot
            dropped.dropped = DropReason.MAILBOX_OVERWRITE
            frame.inherit_inputs(dropped)
            self.drop_count += 1
            if self._on_drop is not None:
                self._on_drop(dropped)
        self._slot = frame
        return dropped

    def get(self) -> Event:
        """Event yielding the current (or next) frame; FIFO among getters."""
        event = Event(self.env)
        if self._slot is not None and not self._getters:
            frame, self._slot = self._slot, None
            event.succeed(frame)
        else:
            self._getters.append(event)
        return event


class MultiBuffer:
    """ODR's front/back buffer pair with swap synchronization.

    Producer protocol::

        yield buf.back_free()     # blocks while the back buffer is full
        buf.put_back(frame)

    Consumer protocol::

        yield buf.swap_ready()    # blocks until the back buffer is full
        buf.swap()                # back -> front; back becomes free
        frame = buf.take_front()
        ...process frame...

    :meth:`flush_back` implements PriorityFrame's obsolete-frame drop:
    an unsent frame sitting in the back buffer is discarded (its input
    ids are returned for inheritance) and the producer side is
    unblocked immediately.
    """

    def __init__(self, env: Environment, name: str = "mulbuf") -> None:
        self.env = env
        self.name = name
        self._front: Optional[Frame] = None
        self._back: Optional[Frame] = None
        self._back_free_gate = Gate(env, is_open=True)
        self._back_full_gate = Gate(env, is_open=False)
        self.swap_count = 0
        self.flush_count = 0

    # -- producer side ---------------------------------------------------

    @property
    def back_occupied(self) -> bool:
        return self._back is not None

    def back_free(self) -> Event:
        """Event that fires when the back buffer is (or becomes) free."""
        return self._back_free_gate.wait()

    def put_back(self, frame: Frame) -> None:
        """Deposit into the back buffer; caller must hold a fired back_free."""
        if self._back is not None:
            raise RuntimeError(f"{self.name}: back buffer already occupied")
        self._back = frame
        self._back_free_gate.close()
        self._back_full_gate.open()

    # -- consumer side ---------------------------------------------------

    @property
    def front(self) -> Optional[Frame]:
        return self._front

    def swap_ready(self) -> Event:
        """Event that fires when the back buffer holds a new frame."""
        return self._back_full_gate.wait()

    def swap(self) -> None:
        """Move back → front (back must be full, front must be consumed)."""
        if self._back is None:
            raise RuntimeError(f"{self.name}: swap with empty back buffer")
        if self._front is not None:
            raise RuntimeError(f"{self.name}: swap over unconsumed front buffer")
        self._front, self._back = self._back, None
        self._back_full_gate.close()
        self._back_free_gate.open()
        self.swap_count += 1

    def take_front(self) -> Frame:
        """Remove and return the front frame."""
        if self._front is None:
            raise RuntimeError(f"{self.name}: take_front with empty front buffer")
        frame, self._front = self._front, None
        return frame

    # -- guarded protocol helpers ------------------------------------------

    def put_when_free(self, frame: Frame) -> ProcessGenerator:
        """Generator: block until the back buffer is free, then deposit.

        Re-checks occupancy after every wake-up, so it stays correct when
        a PriorityFrame flush and a wake-up land on the same timestamp.
        """
        while self._back is not None:
            yield self.back_free()
        self.put_back(frame)

    def swap_when_ready(self) -> ProcessGenerator:
        """Generator: block until the back buffer is full, then swap.

        Re-checks fullness after every wake-up (a flush may have emptied
        the back buffer between the gate firing and this process running).
        """
        while self._back is None:
            yield self.swap_ready()
        self.swap()

    # -- PriorityFrame support --------------------------------------------

    def flush_back(self) -> Optional[Frame]:
        """Drop an unsent back-buffer frame (obsolete-frame flush).

        Returns the dropped frame (already marked) or None.  The
        producer side unblocks immediately.
        """
        if self._back is None:
            return None
        dropped, self._back = self._back, None
        dropped.dropped = DropReason.OBSOLETE_FLUSH
        self.flush_count += 1
        self._back_full_gate.close()
        self._back_free_gate.open()
        return dropped


class _PutEvent(Event):
    """A pending :meth:`ByteBudgetQueue.put`, carrying its frame."""

    def __init__(self, env: Environment, frame: Frame) -> None:
        super().__init__(env)
        self.frame = frame


class ByteBudgetQueue:
    """FIFO frame queue bounded by total bytes (a model TCP send buffer)."""

    def __init__(self, env: Environment, budget_bytes: int) -> None:
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        self.env = env
        self.budget_bytes = budget_bytes
        self._frames: List[Frame] = []
        self._bytes = 0
        self._putters: List[_PutEvent] = []
        self._getters: List[Event] = []

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def queued_bytes(self) -> int:
        return self._bytes

    def put(self, frame: Frame) -> Event:
        """Enqueue; blocks (pending event) while the byte budget is exceeded.

        A frame larger than the whole budget is admitted alone (otherwise
        it could never be sent).
        """
        if frame.size_bytes <= 0:
            raise ValueError("frame must have its encoded size set before put")
        event = _PutEvent(self.env, frame)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> Event:
        """Dequeue the oldest frame (pending event until one is available)."""
        event = Event(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def clear(self) -> List[Frame]:
        """Drop all queued frames (not the blocked putters)."""
        dropped, self._frames = self._frames, []
        self._bytes = 0
        self._dispatch()
        return dropped

    def _fits(self, frame: Frame) -> bool:
        if not self._frames and frame.size_bytes >= self.budget_bytes:
            return True
        return self._bytes + frame.size_bytes <= self.budget_bytes

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and self._fits(self._putters[0].frame):
                put = self._putters.pop(0)
                self._frames.append(put.frame)
                self._bytes += put.frame.size_bytes
                put.succeed()
                progressed = True
            while self._getters and self._frames:
                get = self._getters.pop(0)
                frame = self._frames.pop(0)
                self._bytes -= frame.size_bytes
                get.succeed(frame)
                progressed = True
