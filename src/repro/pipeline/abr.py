"""Adaptive bitrate (ABR) — content-aware encoding on top of ODR.

The paper treats bitrate/FPS-target selection as orthogonal prior work
(it cites content-aware encoding [31] and QoE-driven adaptation [75]);
this extension supplies the missing piece so the two compose: a
quality-ladder controller that scales encoded frame sizes to fit the
network path.

Why it matters for ODR: ODR's multi-buffering converts a too-slow
network into *backpressure* on the encoder (Mul-Buf2 blocks), which the
FPS regulator then sees as elapsed time — the FPS target becomes
infeasible when ``target_fps × frame_size`` exceeds the path bandwidth
(e.g. 60 FPS × 126 KB ≈ 60 Mbps > GCE's ~42 Mbps at 1080p).  The ABR
controller watches the transmitter's utilization and walks the encoder
down the quality ladder until the target *is* feasible — classic
AIMD-style adaptation (multiplicative decrease on congestion, small
multiplicative increase when the path has headroom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import CloudSystem

__all__ = ["AdaptiveBitrate", "AbrController", "AbrSizeSampler"]


@dataclass(frozen=True)
class AdaptiveBitrate:
    """Configuration of the ABR controller (attach via CloudSystem)."""

    #: Quality-scale bounds: 1.0 = full quality, lower = smaller frames.
    min_scale: float = 0.30
    max_scale: float = 1.00
    #: Controller decision period.
    period_ms: float = 500.0
    #: Transmit-utilization thresholds for decrease/increase decisions.
    high_utilization: float = 0.85
    low_utilization: float = 0.60
    #: Multiplicative decrease on congestion / increase with headroom.
    decrease: float = 0.85
    increase: float = 1.05

    def __post_init__(self) -> None:
        if not 0 < self.min_scale <= self.max_scale <= 1.0:
            raise ValueError("need 0 < min_scale <= max_scale <= 1")
        if not 0 < self.low_utilization < self.high_utilization <= 1.0:
            raise ValueError("need 0 < low < high <= 1 utilization thresholds")
        if not 0 < self.decrease < 1 < self.increase:
            raise ValueError("need decrease < 1 < increase")
        if self.period_ms <= 0:
            raise ValueError("period must be positive")

    def attach(self, system: "CloudSystem") -> "AbrController":
        """Create the controller and splice it into the encoder path."""
        controller = AbrController(self, system)
        system.size_sampler = AbrSizeSampler(system.size_sampler, controller)
        return controller


class AbrController:
    """Utilization-driven quality-scale controller."""

    def __init__(self, config: AdaptiveBitrate, system: "CloudSystem"):
        self.config = config
        self.system = system
        self.scale = config.max_scale
        #: (time, scale) decision history for analysis.
        self.history: List[Tuple[float, float]] = [(0.0, self.scale)]
        system.env.process(self._control_loop(), name="abr")

    def transmit_utilization(self, start: float, end: float) -> float:
        """Fraction of the window the transmitter spent serializing."""
        return self.system.trace.utilization("transmit", start, end)

    def _control_loop(self):
        env = self.system.env
        config = self.config
        while True:
            window_start = env.now
            yield env.timeout(config.period_ms)
            utilization = self.transmit_utilization(window_start, env.now)
            if utilization > config.high_utilization:
                self.scale *= config.decrease
            elif utilization < config.low_utilization:
                self.scale *= config.increase
            self.scale = min(max(self.scale, config.min_scale), config.max_scale)
            self.history.append((env.now, self.scale))

    @property
    def final_scale(self) -> float:
        return self.history[-1][1]

    def mean_scale(self, start: float, end: float) -> float:
        """Time-weighted mean quality scale over a window."""
        if end <= start:
            raise ValueError("empty window")
        total = 0.0
        points = self.history + [(end, self.history[-1][1])]
        for (t0, scale), (t1, _) in zip(points, points[1:]):
            lo, hi = max(t0, start), min(t1, end)
            if hi > lo:
                total += scale * (hi - lo)
        return total / (end - start)


class AbrSizeSampler:
    """Wraps the frame-size sampler with the controller's live scale."""

    def __init__(self, base_sampler, controller: AbrController):
        self._base = base_sampler
        self._controller = controller

    def next(self) -> int:
        return max(1, int(self._base.next() * self._controller.scale))
