"""The server proxy's encode stage (paper Fig. 2, step 5).

The proxy encodes copied frames into video frames.  *Who drives* the
encode loop is regulator policy (mailbox pull for the conventional
stack, Algorithm 1 for ODR); this module provides the mechanism:
:meth:`ServerProxy.encode` performs one stochastic-service-time encode,
inflated by the live DRAM-contention multiplier, records the busy
interval for the hardware models, stamps timestamps, and assigns the
encoded frame size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.pipeline.frames import Frame
from repro.simcore import Event, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import CloudSystem

__all__ = ["ServerProxy"]


class ServerProxy:
    """Frame encode stage on the cloud server."""

    def __init__(self, system: "CloudSystem") -> None:
        self.system = system
        self.env = system.env
        self._encode_sampler = system.samplers["encode"]
        self.encoded_count = 0

    def encode(self, frame: Frame) -> ProcessGenerator:
        """Generator: encode ``frame`` into a video frame (step 5).

        Acquires a slot of the (possibly shared) encoder pool when the
        system defines one (see :mod:`repro.multitenant`).
        """
        env = self.env
        system = self.system
        request: Optional[Event] = None
        if system.encode_resource is not None:
            request = system.encode_resource.request()
            yield request
        start = env.now
        duration = self._encode_sampler.next() * system.contention.multiplier("encode")
        system.contention.enter("encode")
        try:
            yield env.timeout(duration)
        finally:
            system.contention.exit("encode")
        system.trace.record("encode", start, env.now)
        if system.telemetry is not None:
            system.telemetry.stage_complete(frame, "encode", start, env.now)
        frame.t_encode_end = env.now
        # Read the sampler through the system so quality-ladder wrappers
        # (repro.pipeline.abr) spliced in after construction take effect.
        frame.size_bytes = system.size_sampler.next()
        self.encoded_count += 1
        system.counter.record("encode", env.now)
        if request is not None:
            system.encode_resource.release(request)
