"""The thin client: decode and display (paper Fig. 2, step 7).

Frames arriving from the network enter the receive queue; the client
decodes them in order (stochastic decode time) and displays each frame
when its decode completes — which is when Pictor's client-side FPS and
MtP measurements fire.

The client also owns the display's **vblank clock**.  The display
refreshes at ``refresh_hz``; Remote VSync uses the time from a frame's
decode completion to the next vblank as its feedback signal (Sec. 2).
The regulator's :meth:`on_client_display` hook is invoked for every
displayed frame, which is where RVS computes and ships that feedback
and where IntMax's client-FPS reports originate.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Set

from repro.pipeline.display import DisplayModel
from repro.pipeline.frames import Frame
from repro.simcore import ProcessGenerator, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import CloudSystem

__all__ = ["Client"]


class Client:
    """Client-side decode/display loop with a vblank clock.

    By default frames are displayed the instant their decode completes
    (the paper's Pictor client).  Passing a ``display_model``
    (:mod:`repro.pipeline.display`) enables the client-side presentation
    exploration the paper leaves as future work: VSync, FreeSync/G-Sync,
    with tearing/judder/drop accounting.  Inputs answered by a frame the
    display model drops are carried to the next presented frame, so MtP
    accounting stays photon-exact.
    """

    def __init__(
        self,
        system: "CloudSystem",
        refresh_hz: float = 60.0,
        display_model: Optional[DisplayModel] = None,
    ) -> None:
        if refresh_hz <= 0:
            raise ValueError("refresh rate must be positive")
        self.system = system
        self.env = system.env
        self.refresh_hz = refresh_hz
        self.display_model = display_model
        self._decode_sampler = system.samplers["decode"]
        self.receive_queue = Store(system.env)
        self.displayed: List[Frame] = []
        #: Input ids from display-dropped frames awaiting the next photon.
        self._carry_ids: Set[int] = set()
        self.process = self.env.process(self.run(), name="client")

    @property
    def refresh_period_ms(self) -> float:
        return 1000.0 / self.refresh_hz

    def next_vblank(self, time_ms: float) -> float:
        """The first vblank strictly after ``time_ms``."""
        period = self.refresh_period_ms
        return (math.floor(time_ms / period) + 1) * period

    def receive(self, frame: Frame) -> None:
        """A frame arrives from the network (called by NetworkPath)."""
        frame.t_received = self.env.now
        self.receive_queue.put(frame)

    def run(self) -> ProcessGenerator:
        env = self.env
        system = self.system
        while True:
            frame = yield self.receive_queue.get()
            decode_start = env.now
            yield env.timeout(self._decode_sampler.next())
            system.trace.record("decode", decode_start, env.now)
            if system.telemetry is not None:
                system.telemetry.stage_complete(frame, "decode", decode_start, env.now)
            system.counter.record("decode", env.now)
            if self.display_model is None:
                # The paper's client: a frame becomes photons when its
                # decode completes.
                frame.t_displayed = env.now
                self.displayed.append(frame)
                system.tracker.frame_displayed(frame.input_ids, env.now)
                if system.telemetry is not None:
                    system.telemetry.frame_displayed(frame, env.now)
            else:
                self._present(frame)
            system.regulator.on_client_display(self, frame)

    def _present(self, frame: Frame) -> None:
        """Route the decoded frame through the display model."""
        env = self.env
        system = self.system
        assert self.display_model is not None
        presentation = self.display_model.present(env.now)
        answer_ids = frame.input_ids | self._carry_ids
        self._carry_ids = set()
        if presentation.dropped:
            # The frame never reaches the screen; its inputs are
            # answered by the next presented frame.
            self._carry_ids = answer_ids
            if system.telemetry is not None:
                system.telemetry.frame_dropped(frame, env.now, "display_drop")
            return
        when = presentation.display_time
        frame.t_displayed = when
        self.displayed.append(frame)
        if when <= env.now:
            system.counter.record("display", when)
            system.tracker.frame_displayed(answer_ids, when)
            if system.telemetry is not None:
                system.telemetry.frame_displayed(frame, when)
        else:
            env.call_at(
                when,
                lambda ids=answer_ids, t=when, f=frame: (
                    system.counter.record("display", t),
                    system.tracker.frame_displayed(ids, t),
                    system.telemetry.frame_displayed(f, t)
                    if system.telemetry is not None
                    else None,
                ),
            )
