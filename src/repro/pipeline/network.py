"""The cloud→client frame transmission path (paper Fig. 2, step 6).

Transmission time for a frame has two components:

* **serialization** — ``size / effective_bandwidth``, with log-normal
  multiplicative jitter modelling path variability (larger on the GCE
  Internet path than on the private LAN), plus a small fixed per-frame
  protocol overhead;
* **propagation** — the platform's one-way downlink latency, applied
  after serialization completes (the frame then appears in the client's
  receive queue).

The sender transmits one frame at a time (the link is serial); who
feeds it — a byte-bounded send queue or ODR's Mul-Buf2 — is regulator
policy and lives in the regulator's network loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.pipeline.frames import Frame
from repro.simcore import Event, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import CloudSystem

__all__ = ["NetworkPath"]


class NetworkPath:
    """Serial transmitter over the platform's network path."""

    #: Fixed per-frame protocol/framing overhead (ms).
    PER_FRAME_OVERHEAD_MS = 0.25

    def __init__(
        self,
        system: "CloudSystem",
        bandwidth_schedule: Optional[Callable[[float], float]] = None,
    ) -> None:
        self.system = system
        self.env = system.env
        self.platform = system.platform
        #: Optional time-varying capacity factor (repro.pipeline.netdyn).
        self.bandwidth_schedule = bandwidth_schedule
        self._jitter_rng = system.rng.child("network", "jitter")
        self.sent_count = 0
        self.sent_bytes = 0

    def capacity_factor(self, time_ms: float) -> float:
        """Current bandwidth multiplier (1.0 when no schedule is set)."""
        if self.bandwidth_schedule is None:
            return 1.0
        factor = self.bandwidth_schedule(time_ms)
        if factor <= 0:
            raise ValueError(f"bandwidth schedule returned {factor} at t={time_ms}")
        return factor

    def serialize_ms(self, size_bytes: int) -> float:
        """Draw the serialization time for a frame of ``size_bytes``."""
        base = self.platform.transmit_ms(size_bytes) / self.capacity_factor(self.env.now)
        jitter = self._jitter_rng.lognormal_mean_cv(1.0, self.platform.transmit_jitter_cv)
        return base * jitter + self.PER_FRAME_OVERHEAD_MS

    def transmit(self, frame: Frame) -> ProcessGenerator:
        """Generator: serialize ``frame`` and deliver it to the client.

        Acquires the (possibly shared) uplink when the system defines
        one — consolidated sessions serialize their sends on it.  With
        faults injected (:mod:`repro.faults`), an outage window parks
        the sender until it lifts, and a packet-loss burst may drop the
        serialized frame (its inputs then ride the next delivery).
        """
        env = self.env
        faults = self.system.faults
        if faults is not None:
            release_at = faults.outage_release_at(env.now)
            if release_at is not None:
                yield env.timeout(release_at - env.now)
        request: Optional[Event] = None
        if self.system.link_resource is not None:
            request = self.system.link_resource.request()
            yield request
        frame.t_send_start = env.now
        yield env.timeout(self.serialize_ms(frame.size_bytes))
        frame.t_send_end = env.now
        self.system.trace.record("transmit", frame.t_send_start, frame.t_send_end)
        if self.system.telemetry is not None:
            self.system.telemetry.stage_complete(
                frame, "transmit", frame.t_send_start, frame.t_send_end
            )
        self.system.counter.record("transmit", env.now)
        self.sent_count += 1
        self.sent_bytes += frame.size_bytes
        if request is not None:
            self.system.link_resource.release(request)
        if faults is not None:
            if faults.frame_lost(env.now):
                faults.absorb_lost_frame(frame)
                return
            carried = faults.claim_carried_inputs()
            if carried:
                frame.input_ids |= carried
        client = self.system.client
        env.call_at(env.now + self.platform.downlink_ms, lambda f=frame: client.receive(f))

    def mean_bandwidth_usage_mbps(self, start_ms: float, end_ms: float) -> float:
        """Average offered bits/sec over the run (for Sec. 6.6's 15-60 Mbps check)."""
        if end_ms <= start_ms:
            raise ValueError("empty window")
        return self.sent_bytes * 8.0 / ((end_ms - start_ms) / 1000.0) / 1e6
