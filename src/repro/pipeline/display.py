"""Client display presentation models (the paper's future work, Sec. 5.2).

The paper's evaluation displays each frame when its decode completes
(an unsynchronized blit — the Pictor client).  Its discussion of
regulation goals, however, points at client-side presentation as the
next lever: "high frequency (90-240hz) displays with FreeSync/GSync are
designed to reduce lag by allowing frames to arrive at high but varying
rates... We will explore client optimizations in the future."

This module implements that exploration:

:class:`ImmediateDisplay`
    Unsynchronized presentation (the paper's client).  Zero added
    latency; tearing whenever a frame is presented mid-refresh while
    the previous one is still being scanned out.

:class:`VsyncDisplay`
    Classic fixed-refresh VSync: a decoded frame is presented at the
    next vblank.  No tearing; adds up to one refresh period of latency;
    when two frames decode within one refresh, the older is dropped
    (it never becomes a photon).

:class:`VrrDisplay`
    Variable refresh rate (FreeSync/G-Sync): the display refreshes on
    frame arrival, as long as the panel's minimum frame-to-frame
    distance (1/max_hz) is respected; if no frame arrives within the
    panel's maximum holding time (1/min_hz), the previous frame is
    re-scanned (a judder repeat).

Every model consumes decode-completion times in order and returns
:class:`Presentation` decisions; :class:`PresentationStats` aggregates
the QoE-relevant outcomes (added latency, tears, drops, repeats, and
frame-pacing jitter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

__all__ = [
    "DisplayModel",
    "ImmediateDisplay",
    "Presentation",
    "PresentationStats",
    "VrrDisplay",
    "VsyncDisplay",
]


@dataclass(frozen=True)
class Presentation:
    """The display's decision for one decoded frame."""

    #: When the frame's photons appear; None if the frame was dropped.
    display_time: Optional[float]
    #: Presented mid-scan-out of the previous frame (visible tear line).
    torn: bool = False

    @property
    def dropped(self) -> bool:
        return self.display_time is None


@dataclass
class PresentationStats:
    """Aggregated presentation quality over a run."""

    presented: int = 0
    dropped: int = 0
    torn: int = 0
    #: Panel-initiated re-scans of an old frame (VRR below min rate).
    repeats: int = 0
    added_latency_total_ms: float = 0.0
    _display_times: List[float] = field(default_factory=list)

    @property
    def mean_added_latency_ms(self) -> float:
        if self.presented == 0:
            raise ValueError("no frames presented")
        return self.added_latency_total_ms / self.presented

    @property
    def tear_fraction(self) -> float:
        if self.presented == 0:
            raise ValueError("no frames presented")
        return self.torn / self.presented

    def pacing_jitter_ms(self) -> float:
        """Standard deviation of photon-to-photon intervals.

        The frame-pacing metric behind perceived smoothness: a VRR panel
        fed at a varying-but-bounded rate paces better than a fixed
        vsync display fed the same stream.
        """
        times = self._display_times
        if len(times) < 3:
            raise ValueError("not enough presented frames")
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        return math.sqrt(sum((g - mean) ** 2 for g in gaps) / len(gaps))

    def _record(self, decode_time: float, presentation: Presentation) -> None:
        if presentation.dropped:
            self.dropped += 1
            return
        self.presented += 1
        self.added_latency_total_ms += presentation.display_time - decode_time
        if presentation.torn:
            self.torn += 1
        self._display_times.append(presentation.display_time)


class DisplayModel:
    """Base class: consumes decode times in order, emits presentations."""

    def __init__(self) -> None:
        self.stats = PresentationStats()

    def present(self, decode_time: float) -> Presentation:
        """Decide when (whether) the frame decoded at ``decode_time``
        reaches the screen.  Calls must be in nondecreasing time order."""
        presentation = self._present(decode_time)
        self.stats._record(decode_time, presentation)
        return presentation

    def _present(self, decode_time: float) -> Presentation:
        raise NotImplementedError


class ImmediateDisplay(DisplayModel):
    """Unsynchronized blit (the paper's client): instant, may tear."""

    def __init__(self, refresh_hz: float = 60.0):
        super().__init__()
        if refresh_hz <= 0:
            raise ValueError("refresh rate must be positive")
        self.refresh_hz = refresh_hz
        self._scanout_until = -math.inf

    def _present(self, decode_time: float) -> Presentation:
        period = 1000.0 / self.refresh_hz
        # The previous frame's scan-out is still in progress: the new
        # frame replaces it mid-scan — a visible tear.
        torn = decode_time < self._scanout_until
        self._scanout_until = decode_time + period
        return Presentation(display_time=decode_time, torn=torn)


class VsyncDisplay(DisplayModel):
    """Fixed-refresh VSync: present at the next vblank, never tear."""

    def __init__(self, refresh_hz: float = 60.0):
        super().__init__()
        if refresh_hz <= 0:
            raise ValueError("refresh rate must be positive")
        self.refresh_hz = refresh_hz
        self._pending: Optional[float] = None
        self._last_vblank_used = -math.inf

    @property
    def period_ms(self) -> float:
        return 1000.0 / self.refresh_hz

    def _next_vblank(self, time_ms: float) -> float:
        period = self.period_ms
        return (math.floor(time_ms / period) + 1) * period

    def _present(self, decode_time: float) -> Presentation:
        vblank = self._next_vblank(decode_time)
        if vblank <= self._last_vblank_used:
            # An earlier frame already claimed this refresh interval;
            # only one frame per refresh can become photons — drop.
            return Presentation(display_time=None)
        self._last_vblank_used = vblank
        return Presentation(display_time=vblank)


class VrrDisplay(DisplayModel):
    """Variable refresh rate (FreeSync / G-Sync) panel.

    Parameters
    ----------
    min_hz, max_hz:
        The panel's VRR window (e.g. 48-144 Hz for a common FreeSync
        monitor).  Frames arriving faster than ``max_hz`` wait for the
        minimum frame distance; gaps longer than ``1/min_hz`` trigger
        panel-initiated repeats of the previous frame (counted as
        judder, not as presented frames).
    """

    def __init__(self, min_hz: float = 48.0, max_hz: float = 144.0):
        super().__init__()
        if not 0 < min_hz <= max_hz:
            raise ValueError("need 0 < min_hz <= max_hz")
        self.min_hz = min_hz
        self.max_hz = max_hz
        self._last_display = -math.inf

    @property
    def min_frame_distance_ms(self) -> float:
        return 1000.0 / self.max_hz

    @property
    def max_hold_ms(self) -> float:
        return 1000.0 / self.min_hz

    def _present(self, decode_time: float) -> Presentation:
        if self._last_display > -math.inf:
            gap = decode_time - self._last_display
            if gap > self.max_hold_ms:
                # Panel self-refreshed while waiting (low-framerate
                # compensation); count the repeats as judder events.
                self.stats.repeats += int(gap // self.max_hold_ms)
        earliest = self._last_display + self.min_frame_distance_ms
        display_time = max(decode_time, earliest)
        self._last_display = display_time
        return Presentation(display_time=display_time)
