"""Time-varying network conditions.

The paper fixed its network ("We did not alter or control network
connections"); a production deployment cannot.  This extension adds
bandwidth *schedules* — functions of simulation time returning a
multiplicative factor on the platform's effective bandwidth — so
robustness under congestion events, diurnal swings, and outages can be
studied.

Builders:

:func:`constant`      — factor 1.0 (the paper's setting);
:func:`sinusoidal`    — smooth periodic capacity swings (cross traffic);
:func:`dips`          — periodic sharp congestion events (a fractional
                        capacity floor for a fixed duration);
:func:`compose`       — multiply schedules together.

The schedule is sampled at each frame's serialization start; a dip that
begins mid-frame affects the next frame (first-order model).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

__all__ = ["BandwidthSchedule", "compose", "constant", "dips", "sinusoidal"]

#: A bandwidth schedule maps simulation time (ms) to a capacity factor.
BandwidthSchedule = Callable[[float], float]


def constant(factor: float = 1.0) -> BandwidthSchedule:
    """A fixed capacity factor (1.0 reproduces the paper's setting)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return lambda t: factor


def sinusoidal(period_ms: float, amplitude: float) -> BandwidthSchedule:
    """Capacity oscillating in ``[1-amplitude, 1+amplitude]``.

    Models slow cross-traffic swings; ``amplitude`` must leave capacity
    positive.
    """
    if period_ms <= 0:
        raise ValueError("period must be positive")
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")

    def schedule(t: float) -> float:
        return 1.0 + amplitude * math.sin(2.0 * math.pi * t / period_ms)

    return schedule


def dips(
    period_ms: float,
    dip_duration_ms: float,
    dip_factor: float,
    first_dip_at_ms: float = 0.0,
) -> BandwidthSchedule:
    """Sharp periodic congestion events.

    Every ``period_ms``, capacity drops to ``dip_factor`` of nominal for
    ``dip_duration_ms`` (e.g. a neighbour's backup job saturating the
    uplink for two seconds every thirty).
    """
    if period_ms <= 0 or dip_duration_ms <= 0:
        raise ValueError("period and duration must be positive")
    if dip_duration_ms > period_ms:
        raise ValueError("dip cannot exceed its period")
    if not 0 < dip_factor <= 1:
        raise ValueError("dip factor must be in (0, 1]")

    def schedule(t: float) -> float:
        phase = (t - first_dip_at_ms) % period_ms
        if 0 <= t - first_dip_at_ms and phase < dip_duration_ms:
            return dip_factor
        return 1.0

    return schedule


def compose(schedules: Sequence[BandwidthSchedule]) -> BandwidthSchedule:
    """Multiply several schedules (e.g. diurnal swing × outage events)."""
    if not schedules:
        raise ValueError("need at least one schedule")

    def schedule(t: float) -> float:
        factor = 1.0
        for s in schedules:
            factor *= s(t)
        return factor

    return schedule
