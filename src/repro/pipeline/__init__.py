"""The simulated cloud-3D system (paper Fig. 2).

A frame's life: the 3D **app** renders it (step 3), the **server proxy**
copies and encodes it (steps 4-5), the **network** transmits it (step
6), and the **client** decodes and displays it (step 7).  User inputs
travel the reverse path (steps 1-2).  All stages run as concurrent
simcore processes, pipelined exactly like the real software stack.

What sits *between* the stages is the crux of the paper:

* :class:`~repro.pipeline.buffers.Mailbox` — the latest-frame-wins slot
  used by NoReg/Int/RVS stacks; overwritten frames are the "excessive
  rendering" the paper attacks;
* :class:`~repro.pipeline.buffers.MultiBuffer` — ODR's front/back
  swap-synchronized buffer (Mul-Buf1 / Mul-Buf2);
* :class:`~repro.pipeline.buffers.ByteBudgetQueue` — the TCP-send-
  buffer-like queue whose congestion produces NoReg's seconds-scale MtP
  latency on GCE.

:class:`~repro.pipeline.system.CloudSystem` wires everything together
for a given benchmark, platform, resolution, and regulator.
"""

from repro.pipeline.buffers import ByteBudgetQueue, Mailbox, MultiBuffer
from repro.pipeline.frames import DropReason, Frame
from repro.pipeline.inputs import InputEvent, InputKind
from repro.pipeline.system import CloudSystem, RunResult, SystemConfig

__all__ = [
    "ByteBudgetQueue",
    "CloudSystem",
    "DropReason",
    "Frame",
    "InputEvent",
    "InputKind",
    "Mailbox",
    "MultiBuffer",
    "RunResult",
    "SystemConfig",
]
