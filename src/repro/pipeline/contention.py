"""Memory-contention feedback on server-side stage times.

The paper's Sec. 4.3/6.5 finding is that excessive rendering does not
just waste cycles — it actively *slows the pipeline down*: rendering,
copying, and encoding are memory-intensive (megabytes per frame), and
when they execute simultaneously they contend for DRAM row buffers,
inflating every stage's processing time.  That feedback is why ODRMax's
client FPS *exceeds* NoReg's (InMind: 93 → 107 FPS) even though ODR
renders far fewer frames.

:class:`ContentionTracker` models this first-order effect: each
memory-intensive stage registers while busy, and a stage's drawn
service time is multiplied by ``1 + beta × (other busy stages)`` at the
moment it starts.  Under NoReg the renderer and encoder are both ~100 %
busy, so each runs ~``(1+beta)×`` slower than its uncontended time;
under regulation the overlap—and the penalty—shrinks.

The same busy intervals drive the offline DRAM/IPC/power models in
:mod:`repro.hardware`; this tracker is only the *online* feedback loop.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

__all__ = ["ContentionTracker"]


class ContentionTracker:
    """Tracks concurrently-busy memory-intensive stages.

    Parameters
    ----------
    beta:
        Fractional slowdown per concurrently-busy other stage.  The
        default is calibrated so NoReg's fully-overlapped pipeline runs
        ~25 % slower than an uncontended one, which reproduces the
        paper's InMind NoReg(93) vs ODRMax(107) client-FPS split.
    stages:
        The memory-intensive stage names participating in contention.
    max_multiplier:
        Saturation bound: row-buffer interference does not grow without
        limit — once the memory system is fully thrashed, more
        contenders mostly queue rather than slow each other further.
        Relevant when many sessions share a server
        (:mod:`repro.multitenant`); a single session never reaches it.
    """

    DEFAULT_STAGES: FrozenSet[str] = frozenset({"render", "copy", "encode"})

    def __init__(
        self,
        beta: float = 0.25,
        stages: FrozenSet[str] = DEFAULT_STAGES,
        max_multiplier: float = 2.0,
    ):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        if max_multiplier < 1.0:
            raise ValueError("max_multiplier must be >= 1")
        self.beta = beta
        self.stages = frozenset(stages)
        self.max_multiplier = max_multiplier
        self._busy: Dict[str, int] = {}

    def enter(self, stage: str) -> None:
        """Mark ``stage`` busy (nested entries are counted)."""
        if stage in self.stages:
            self._busy[stage] = self._busy.get(stage, 0) + 1

    def exit(self, stage: str) -> None:
        """Mark one busy entry of ``stage`` finished."""
        if stage not in self.stages:
            return
        count = self._busy.get(stage, 0)
        if count <= 0:
            raise RuntimeError(f"exit of idle stage {stage!r}")
        if count == 1:
            del self._busy[stage]
        else:
            self._busy[stage] = count - 1

    def busy_others(self, stage: str) -> int:
        """Busy memory-intensive activity competing with a new ``stage``.

        Counts every currently-busy entry — including other *instances*
        of the same stage (possible when several sessions share the
        server, see :mod:`repro.multitenant`).  The caller itself has
        not entered yet, so in a single-session system this equals the
        number of other busy stages.
        """
        return sum(self._busy.values())

    def multiplier(self, stage: str) -> float:
        """Service-time multiplier for ``stage`` starting right now."""
        if stage not in self.stages:
            return 1.0
        return min(1.0 + self.beta * self.busy_others(stage), self.max_multiplier)
