"""Frame objects flowing through the pipeline.

A :class:`Frame` carries per-stage timestamps (for latency analysis),
the ids of the user inputs whose effect it reflects (for MtP
measurement), and drop bookkeeping.

Input inheritance
-----------------
When a frame is dropped — overwritten in a mailbox, or flushed as
obsolete by PriorityFrame — the world state it showed is still shown by
the *next* frame (the game state moved on, it did not roll back).  Any
inputs the dropped frame was the first to reflect are therefore
inherited by the successor frame via :meth:`Frame.inherit_inputs`, so
MtP latency is measured to the first frame that actually reaches the
screen, exactly as a photon-level measurement on the real system would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

__all__ = ["DropReason", "Frame"]


class DropReason(enum.Enum):
    """Where/why a frame was discarded before reaching the screen."""

    #: Overwritten in the latest-frame-wins mailbox (excessive rendering).
    MAILBOX_OVERWRITE = "mailbox_overwrite"
    #: Flushed by PriorityFrame as obsolete when an input frame overtook it.
    OBSOLETE_FLUSH = "obsolete_flush"
    #: Lost in transit during an injected packet-loss burst
    #: (:mod:`repro.faults`); its inputs carry to the next delivery.
    NETWORK_LOSS = "network_loss"


@dataclass
class Frame:
    """One rendered frame and its journey through the pipeline."""

    frame_id: int
    #: True if at least one discrete (non-polling) user input is first
    #: reflected by this frame.
    triggered_by_input: bool = False
    #: PriorityFrame fast path engaged for this frame (ODR only).
    priority: bool = False
    #: Ids of discrete inputs first reflected by this frame (grows via
    #: inheritance when predecessor frames are dropped).
    input_ids: Set[int] = field(default_factory=set)

    # -- per-stage timestamps (ms); None until the stage completes -------
    t_created: Optional[float] = None
    t_render_start: Optional[float] = None
    t_render_end: Optional[float] = None
    t_copy_end: Optional[float] = None
    t_encode_end: Optional[float] = None
    t_send_start: Optional[float] = None
    t_send_end: Optional[float] = None
    t_received: Optional[float] = None
    t_displayed: Optional[float] = None

    #: Encoded size (bytes); set at encode time.
    size_bytes: int = 0
    #: Set when the frame is discarded.
    dropped: Optional[DropReason] = None

    def inherit_inputs(self, predecessor: "Frame") -> None:
        """Absorb a dropped predecessor's input ids (see module docs)."""
        if predecessor.input_ids:
            self.input_ids |= predecessor.input_ids

    @property
    def was_displayed(self) -> bool:
        return self.t_displayed is not None

    @property
    def render_ms(self) -> Optional[float]:
        if self.t_render_start is None or self.t_render_end is None:
            return None
        return self.t_render_end - self.t_render_start

    @property
    def pipeline_ms(self) -> Optional[float]:
        """Render start to client display, if the frame made it."""
        if self.t_render_start is None or self.t_displayed is None:
            return None
        return self.t_displayed - self.t_render_start

    def __repr__(self) -> str:
        tags = []
        if self.priority:
            tags.append("priority")
        if self.dropped:
            tags.append(f"dropped:{self.dropped.value}")
        suffix = f" [{' '.join(tags)}]" if tags else ""
        return f"<Frame #{self.frame_id}{suffix}>"
