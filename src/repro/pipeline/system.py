"""Top-level wiring of the simulated cloud-3D system.

:class:`CloudSystem` assembles one complete deployment — benchmark
workload, platform, resolution, regulator — into a running simulation,
and :meth:`CloudSystem.run` executes it and returns a
:class:`RunResult` with everything the paper measures: per-stage FPS,
FPS gaps, MtP latency, QoS-window satisfaction, busy-interval traces
(for the hardware models), drop statistics, and bandwidth usage.

The measurement window excludes a warm-up period, mirroring the usual
benchmarking practice of discarding start-up transients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Union

from repro.metrics import (
    BoxStats,
    FpsCounter,
    FpsGapReport,
    MtpLatencyTracker,
    QosReport,
    qos_satisfaction,
)
from repro.pipeline.app import Application3D
from repro.pipeline.client import Client
from repro.pipeline.contention import ContentionTracker
from repro.pipeline.frames import DropReason, Frame
from repro.pipeline.inputs import InputGenerator
from repro.pipeline.network import NetworkPath
from repro.pipeline.proxy import ServerProxy
from repro.simcore import (
    Environment,
    IntervalTrace,
    ProcessGenerator,
    Resource,
    SeededRng,
)
from repro.workloads import (
    BenchmarkProfile,
    PlatformProfile,
    Resolution,
    get_benchmark,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injectors import FaultController
    from repro.faults.spec import FaultPlan
    from repro.obs import Telemetry
    from repro.pipeline.abr import AbrController, AdaptiveBitrate
    from repro.pipeline.display import DisplayModel
    from repro.regulators.base import Regulator

__all__ = ["CloudSystem", "RunResult", "SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Everything that defines one simulated run except the regulator."""

    benchmark: Union[str, BenchmarkProfile]
    platform: PlatformProfile
    resolution: Resolution
    seed: int = 1
    #: Measured portion of the run (ms of simulated time).
    duration_ms: float = 30000.0
    #: Start-up transient excluded from all measurements (ms).
    warmup_ms: float = 3000.0
    #: Optional high-frequency polling input stream (0 = combined upstream).
    poll_hz: float = 0.0
    #: DRAM-contention slowdown per concurrently-busy memory-intensive
    #: stage (see :mod:`repro.pipeline.contention`).
    contention_beta: float = 0.25

    def resolve_benchmark(self) -> BenchmarkProfile:
        if isinstance(self.benchmark, BenchmarkProfile):
            return self.benchmark
        return get_benchmark(self.benchmark)


class CloudSystem:
    """One assembled cloud-3D deployment under a given regulator.

    ``display_model`` optionally replaces the default display-on-decode
    client with a presentation model from :mod:`repro.pipeline.display`
    (VSync / FreeSync — the paper's client-side future work).
    ``abr`` optionally attaches an adaptive-bitrate controller
    (:mod:`repro.pipeline.abr`), and ``bandwidth_schedule`` makes the
    network path's capacity time-varying (:mod:`repro.pipeline.netdyn`).
    ``telemetry`` opts into run observability (:mod:`repro.obs`):
    per-frame spans, labeled metrics, and — when the telemetry object
    carries a probe — engine introspection.  Left as ``None``, every
    telemetry hook in the pipeline is a single ``is None`` branch.
    ``fault_plan`` injects declarative adverse events
    (:mod:`repro.faults`) — stalls, outages, loss bursts, preemption —
    deterministically seeded from the run's RNG tree.
    """

    def __init__(
        self,
        config: SystemConfig,
        regulator: "Regulator",
        display_model: Optional["DisplayModel"] = None,
        abr: Optional["AdaptiveBitrate"] = None,
        bandwidth_schedule: Optional[Callable[[float], float]] = None,
        telemetry: Optional["Telemetry"] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        self.config = config
        self.benchmark = config.resolve_benchmark()
        self.platform = config.platform
        self.resolution = config.resolution
        self.regulator = regulator
        self.telemetry = telemetry

        self.env = Environment(probe=telemetry.probe if telemetry is not None else None)
        self.rng = SeededRng(config.seed, name="system")
        # Shared-device hooks; single-session systems own their devices
        # outright (no queueing), multi-tenant sessions share Resources
        # (see repro.multitenant).
        self.gpu_resource: Optional[Resource] = None
        self.encode_resource: Optional[Resource] = None
        self.link_resource: Optional[Resource] = None
        #: Fault-injection state; set below when a fault plan is given.
        self.faults: Optional["FaultController"] = None
        self.counter = FpsCounter()
        self.tracker = MtpLatencyTracker()
        self.trace = IntervalTrace()
        self.contention = ContentionTracker(beta=config.contention_beta)

        # Per-stage service-time samplers, scaled for platform/resolution.
        models = self.benchmark.stage_models(self.platform, self.resolution)
        self.samplers = {
            stage: model.sampler(self.rng.child("stage", stage))
            for stage, model in models.items()
        }
        self.size_sampler = self.benchmark.frame_size_model(self.resolution).sampler(
            self.rng.child("frame_size")
        )

        # Stage components.  The regulator may override the client refresh
        # rate (RVS uses 60 Hz or 240 Hz displays).
        self.proxy = ServerProxy(self)
        self.network = NetworkPath(self, bandwidth_schedule=bandwidth_schedule)
        self.client = Client(
            self,
            refresh_hz=regulator.client_refresh_hz,
            display_model=display_model,
        )
        self.app = Application3D(self)
        self.inputs = InputGenerator(
            env=self.env,
            rng=self.rng.child("inputs"),
            actions_per_second=self.benchmark.actions_per_second,
            uplink_ms=self.platform.uplink_ms,
            deliver=self.app.deliver_input,
            tracker=self.tracker,
            poll_hz=config.poll_hz,
        )

        # Regulator-owned plumbing (buffers + proxy/network processes).
        regulator.attach(self)

        # Optional adaptive-bitrate controller (wraps the size sampler).
        self.abr: Optional["AbrController"] = (
            abr.attach(self) if abr is not None else None
        )

        # Client-FPS feedback reports (used by adaptive regulators such as
        # IntMax; a no-op hook for the others).
        self.env.process(self._client_fps_reporter(), name="fps-reporter")

        # Declarative fault injection (imported lazily: repro.faults
        # pulls pipeline modules, like the abr import above).
        if fault_plan is not None and len(fault_plan):
            from repro.faults.injectors import apply_fault_plan

            self.faults = apply_fault_plan(self, fault_plan)

    def _client_fps_reporter(self) -> ProcessGenerator:
        """Report the client's decode FPS to the cloud once per second."""
        env = self.env
        report_period = 1000.0
        last_count = 0
        while True:
            yield env.timeout(report_period)
            count = self.counter.count("decode")
            fps = (count - last_count) * 1000.0 / report_period
            last_count = count
            env.call_at(
                env.now + self.platform.uplink_ms,
                lambda f=fps: self.regulator.on_client_fps_report(f),
            )

    def run(self) -> "RunResult":
        """Execute the simulation and collect results."""
        config = self.config
        end = config.warmup_ms + config.duration_ms
        self.env.run(until=end)
        return RunResult(system=self)


@dataclass
class RunResult:
    """Measurements of one completed run (analysis-side accessors)."""

    system: CloudSystem
    _cache: Dict[str, object] = field(default_factory=dict, repr=False)

    @property
    def config(self) -> SystemConfig:
        return self.system.config

    @property
    def regulator_name(self) -> str:
        return self.system.regulator.name

    @property
    def t_start(self) -> float:
        return self.config.warmup_ms

    @property
    def t_end(self) -> float:
        return self.config.warmup_ms + self.config.duration_ms

    @property
    def counter(self) -> FpsCounter:
        return self.system.counter

    @property
    def tracker(self) -> MtpLatencyTracker:
        return self.system.tracker

    @property
    def trace(self) -> IntervalTrace:
        return self.system.trace

    def telemetry(self) -> Optional["Telemetry"]:
        """The run's telemetry (spans, metrics, probe), if it was enabled.

        Returns the :class:`repro.obs.Telemetry` object passed to the
        system at construction time — per-frame spans via
        ``result.telemetry().spans``, a metrics snapshot via
        ``result.telemetry().snapshot()`` — or ``None`` for a run
        executed without observability.
        """
        return self.system.telemetry

    # -- FPS metrics -------------------------------------------------------

    def stage_mean_fps(self, stage: str) -> float:
        return self.counter.mean_fps(stage, self.t_start, self.t_end)

    @property
    def render_fps(self) -> float:
        return self.stage_mean_fps("render")

    @property
    def encode_fps(self) -> float:
        return self.stage_mean_fps("encode")

    @property
    def client_fps(self) -> float:
        """Client decode FPS — the paper's "client FPS"."""
        return self.stage_mean_fps("decode")

    def client_fps_box(self, window_ms: float = 1000.0) -> BoxStats:
        from repro.metrics.stats import summarize

        series = self.counter.fps_series("decode", self.t_start, self.t_end, window_ms)
        return summarize(series)

    def fps_gap(self) -> FpsGapReport:
        """Cloud render FPS minus client decode FPS (Table 2)."""
        return self.counter.fps_gap(self.t_start, self.t_end)

    # -- latency metrics -----------------------------------------------------

    def mtp_samples(self) -> List[float]:
        """Closed MtP latencies for inputs issued inside the window."""
        return [
            s.latency_ms
            for s in self.tracker.samples
            if self.t_start <= s.issued_at < self.t_end
        ]

    def mean_mtp_ms(self) -> float:
        samples = self.mtp_samples()
        if not samples:
            raise ValueError("no MtP samples in the measurement window")
        return sum(samples) / len(samples)

    def mtp_box(self) -> BoxStats:
        from repro.metrics.stats import summarize

        return summarize(self.mtp_samples())

    # -- QoS ------------------------------------------------------------------

    def qos(self, target_fps: float, window_ms: float = 200.0) -> QosReport:
        """The paper's windowed QoS criterion over client display times."""
        times = self.counter.times("decode")
        return qos_satisfaction(times, target_fps, self.t_start, self.t_end, window_ms)

    # -- efficiency inputs ------------------------------------------------------

    def dropped_frames(self, reason: Optional[DropReason] = None) -> List[Frame]:
        frames = [f for f in self.system.app.frames if f.dropped is not None]
        if reason is not None:
            frames = [f for f in frames if f.dropped is reason]
        return frames

    def frames_rendered(self) -> int:
        return self.counter.count("render")

    def bandwidth_mbps(self) -> float:
        """Mean network usage over the whole simulated time."""
        total_ms = self.t_end
        return self.system.network.sent_bytes * 8.0 / (total_ms / 1000.0) / 1e6

    def stage_utilization(self, stage: str) -> float:
        return self.trace.utilization(stage, self.t_start, self.t_end)

    def summary(self) -> Dict[str, float]:
        """Headline numbers as a flat dict (handy for tables/CSV)."""
        gap = self.fps_gap()
        result = {
            "render_fps": self.render_fps,
            "encode_fps": self.encode_fps,
            "client_fps": self.client_fps,
            "fps_gap_mean": gap.mean_gap,
            "fps_gap_max": gap.max_gap,
            "bandwidth_mbps": self.bandwidth_mbps(),
        }
        samples = self.mtp_samples()
        if samples:
            result["mtp_mean_ms"] = sum(samples) / len(samples)
        return result
