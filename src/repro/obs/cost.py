"""Sweep cost attribution: where a parallel sweep's wall clock went.

``BENCH_pr.json`` says the parallel executor's speedup is below 1× on
small sweeps; this module turns the sweep event log
(:mod:`repro.obs.sweep`) into the numbers that make that regression
*attributable* instead of mysterious.  :func:`sweep_cost` aggregates
per-cell resource telemetry into a budget for the sweep's wall clock:

``pool_warmup_s``
    Host seconds between each pool opening and the first cell actually
    starting in it — interpreter spawn + import cost, paid per pool
    (and again after every pool breakage).  On a sweep of short cells
    this alone can eat the parallel win.
``cell_skew_s``
    Busy-time imbalance across workers (max minus min per-worker busy
    seconds).  The sweep ends when the *slowest* lane does, so skew is
    wall time the other lanes spent idle at the tail.
``serialization_s``
    What remains of the sweep wall after warmup and the busiest lane:
    the parent's plan scan, result pickling/harvest, store writes, and
    ledger appends — the serial section of Amdahl's law.
``parallel_efficiency``
    Summed busy seconds over ``workers × sweep wall`` — 1.0 means every
    lane was saturated the whole sweep.

Per-cell rows (wall, CPU user/sys, peak RSS, events/sec, worker pid)
ride along so the skew term can be chased to the specific slow cells,
and the cached/executed split shows what resume actually saved.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.obs import sweep as sweepbus
from repro.obs.sweep import SweepEvent

__all__ = ["render_cost", "sweep_cost"]


def _cell_rows(events: Sequence[SweepEvent]) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for event in events:
        if event.kind != sweepbus.CELL_FINISHED:
            continue
        row: Dict[str, Any] = {
            "run_id": event.run_id,
            "label": event.get("label", ""),
            "faults": bool(event.get("faults")),
            "wall_s": float(event.get("wall_s", 0.0)),
            "pid": None,
            "cpu_user_s": None,
            "cpu_sys_s": None,
            "max_rss_kb": None,
            "events_per_sec": None,
        }
        resources = event.get("resources")
        if isinstance(resources, dict):
            row["pid"] = resources.get("pid")
            row["cpu_user_s"] = resources.get("cpu_user_s")
            row["cpu_sys_s"] = resources.get("cpu_sys_s")
            row["max_rss_kb"] = resources.get("max_rss_kb")
            row["events_per_sec"] = resources.get("events_per_sec")
        rows.append(row)
    return rows


def _pool_warmup_s(events: Sequence[SweepEvent]) -> float:
    """Seconds from each pool opening to its first started cell."""
    total = 0.0
    pending_open: Optional[float] = None
    for event in events:
        if event.kind == sweepbus.POOL_OPENED:
            pending_open = event.epoch_s
        elif event.kind == sweepbus.CELL_STARTED and pending_open is not None:
            total += max(0.0, event.epoch_s - pending_open)
            pending_open = None
    return total


def sweep_cost(events: Sequence[SweepEvent]) -> Dict[str, Any]:
    """Aggregate one sweep's events into a cost-attribution report."""
    report: Dict[str, Any] = {
        "sweep_id": events[0].sweep_id if events else "",
        "cells": 0,
        "executor": None,
        "workers": 1,
        "executed": 0,
        "cached": 0,
        "failed": 0,
        "retries": 0,
        "quarantined": 0,
        "pools_opened": 0,
        "pools_broken": 0,
        "sweep_wall_s": None,
        "cache_hit_ratio": None,
        "cell_rows": [],
        "busy_s_by_pid": {},
        "busy_s_total": 0.0,
        "pool_warmup_s": 0.0,
        "cell_skew_s": 0.0,
        "serialization_s": None,
        "parallel_efficiency": None,
    }
    for event in events:
        if event.kind == sweepbus.SWEEP_BEGIN:
            report["cells"] = int(event.get("cells", 0))
            report["executor"] = event.get("executor")
            report["workers"] = int(event.get("workers", 1))
        elif event.kind == sweepbus.SWEEP_END:
            report["executed"] = int(event.get("executed", 0))
            report["cached"] = int(event.get("cached", 0))
            report["failed"] = int(event.get("failed", 0))
            report["sweep_wall_s"] = float(event.get("wall_s", 0.0))
        elif event.kind == sweepbus.CELL_RETRIED:
            report["retries"] = int(report["retries"]) + 1
        elif event.kind == sweepbus.CELL_QUARANTINED:
            report["quarantined"] = int(report["quarantined"]) + 1
        elif event.kind == sweepbus.POOL_OPENED:
            report["pools_opened"] = int(report["pools_opened"]) + 1
        elif event.kind == sweepbus.POOL_BROKEN:
            report["pools_broken"] = int(report["pools_broken"]) + 1

    rows = _cell_rows(events)
    rows.sort(key=lambda row: row["wall_s"], reverse=True)
    report["cell_rows"] = rows

    done = int(report["executed"]) + int(report["cached"])
    if done:
        report["cache_hit_ratio"] = int(report["cached"]) / done

    busy_by_pid: Dict[str, float] = {}
    for row in rows:
        lane = str(row["pid"]) if row["pid"] is not None else "parent"
        busy_by_pid[lane] = busy_by_pid.get(lane, 0.0) + float(row["wall_s"])
    report["busy_s_by_pid"] = dict(sorted(busy_by_pid.items()))
    report["busy_s_total"] = sum(busy_by_pid.values())
    if busy_by_pid:
        report["cell_skew_s"] = max(busy_by_pid.values()) - min(busy_by_pid.values())
    report["pool_warmup_s"] = _pool_warmup_s(events)

    wall = report["sweep_wall_s"]
    if wall is not None and busy_by_pid:
        busiest = max(busy_by_pid.values())
        report["serialization_s"] = max(
            0.0, float(wall) - float(report["pool_warmup_s"]) - busiest
        )
        workers = max(1, int(report["workers"]))
        if wall > 0.0:
            report["parallel_efficiency"] = float(report["busy_s_total"]) / (
                workers * float(wall)
            )
    return report


def _fmt_s(value: Optional[float]) -> str:
    return f"{value:.3f}s" if value is not None else "-"


def render_cost(report: Dict[str, Any], top: int = 10) -> str:
    """Human-readable cost report for ``odr-sim cost``."""
    lines: List[str] = []
    lines.append(
        f"sweep {report['sweep_id']}: {report['cells']} cell(s) via "
        f"{report['executor'] or '?'} x{report['workers']}"
    )
    ratio = report["cache_hit_ratio"]
    cache = f" cache_hit={ratio:.0%}" if ratio is not None else ""
    lines.append(
        f"  executed={report['executed']} cached={report['cached']} "
        f"failed={report['failed']} retries={report['retries']}{cache}"
    )
    lines.append(
        f"  wall={_fmt_s(report['sweep_wall_s'])} "
        f"busy={_fmt_s(report['busy_s_total'])} over "
        f"{len(report['busy_s_by_pid'])} lane(s)"
    )
    lines.append("  where the wall clock went:")
    lines.append(
        f"    pool_warmup   {_fmt_s(report['pool_warmup_s'])}"
        f"  ({report['pools_opened']} pool(s), {report['pools_broken']} broken)"
    )
    lines.append(f"    cell_skew     {_fmt_s(report['cell_skew_s'])}")
    lines.append(f"    serialization {_fmt_s(report['serialization_s'])}")
    if report["parallel_efficiency"] is not None:
        lines.append(f"    parallel_efficiency {report['parallel_efficiency']:.2f}")
    rows = report["cell_rows"]
    if rows:
        lines.append(f"  slowest cells (top {min(top, len(rows))} of {len(rows)}):")
        for row in rows[:top]:
            cpu = (
                f" cpu={row['cpu_user_s']:.3f}+{row['cpu_sys_s']:.3f}s"
                if row["cpu_user_s"] is not None and row["cpu_sys_s"] is not None
                else ""
            )
            rss = (
                f" rss={row['max_rss_kb']}KiB" if row["max_rss_kb"] is not None else ""
            )
            eps = (
                f" {row['events_per_sec']:.0f}ev/s"
                if row["events_per_sec"] is not None
                else ""
            )
            pid = f" pid={row['pid']}" if row["pid"] is not None else ""
            lines.append(
                f"    {row['wall_s']:8.3f}s  {row['label']}"
                f" [{row['run_id']}]{pid}{cpu}{rss}{eps}"
            )
    return "\n".join(lines)
