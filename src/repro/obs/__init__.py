"""End-to-end run observability.

``repro.obs`` threads telemetry through every layer of the simulator:

:class:`Telemetry`
    The facade a run publishes into — pass one to
    :class:`~repro.pipeline.system.CloudSystem` (or
    :class:`~repro.multitenant.server.SharedServer`) to enable
    collection.  Without one, every hook site is a single ``is None``
    branch: observability is zero-overhead by default.
:class:`FrameSpan` / :class:`SpanStore`
    Per-frame causal traces: enter/exit times of every pipeline stage
    plus regulator gate delays and drop events, queryable by frame id.
:class:`MetricsRegistry`
    Labeled counters/gauges/histograms with snapshot/delta semantics
    (``frames_dropped_total{reason=...}``, ``gate_delay_ms``,
    ``queue_depth{stage=...}``, ...).
:class:`EngineProbe`
    Opt-in introspection of the discrete-event engine: events
    scheduled/fired, heap depth, process counts, wall-clock per
    simulated second.
:func:`chrome_trace` / :func:`write_chrome_trace` / :func:`write_jsonl`
    Exporters: Chrome Trace Format (``chrome://tracing`` / Perfetto)
    and JSONL.

See ``docs/OBSERVABILITY.md`` for a worked example.
"""

from repro.obs.exporters import (
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.probes import EngineProbe
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramStats,
    MetricsRegistry,
    MetricsSnapshot,
    SeriesKey,
)
from repro.obs.spans import PIPELINE_STAGES, FrameSpan, SpanStore, StageInterval
from repro.obs.telemetry import Telemetry

__all__ = [
    "PIPELINE_STAGES",
    "Counter",
    "EngineProbe",
    "FrameSpan",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SeriesKey",
    "SpanStore",
    "StageInterval",
    "Telemetry",
    "chrome_trace",
    "jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
]
