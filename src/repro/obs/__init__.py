"""End-to-end run observability.

``repro.obs`` threads telemetry through every layer of the simulator:

:class:`Telemetry`
    The facade a run publishes into — pass one to
    :class:`~repro.pipeline.system.CloudSystem` (or
    :class:`~repro.multitenant.server.SharedServer`) to enable
    collection.  Without one, every hook site is a single ``is None``
    branch: observability is zero-overhead by default.
:class:`FrameSpan` / :class:`SpanStore`
    Per-frame causal traces: enter/exit times of every pipeline stage
    plus regulator gate delays and drop events, queryable by frame id.
:class:`MetricsRegistry`
    Labeled counters/gauges/histograms with snapshot/delta semantics
    (``frames_dropped_total{reason=...}``, ``gate_delay_ms``,
    ``queue_depth{stage=...}``, ...).
:class:`EngineProbe`
    Opt-in introspection of the discrete-event engine: events
    scheduled/fired, heap depth, process counts, wall-clock per
    simulated second.
:func:`chrome_trace` / :func:`write_chrome_trace` / :func:`write_jsonl`
    Exporters: Chrome Trace Format (``chrome://tracing`` / Perfetto)
    and JSONL.
:class:`RunLedger` / :mod:`repro.obs.runmeta`
    Cross-run persistence: every instrumented run appends a
    self-describing, content-addressed record (config hash, git rev,
    seed, summary metrics, per-frame distributions) to an append-only
    JSONL ledger under ``.odr-runs/``.
:func:`compare_records` / :class:`SentinelReport`
    The regression sentinel: statistically-tested diffs between any
    two run records (Mann-Whitney U + bootstrap CIs), with
    ``ok`` / ``regressed`` / ``improved`` verdicts for CI gating.
:class:`SimProfiler`
    The sim-engine self-profiler: host wall time per simulated process,
    pipeline stage, and generator callsite, plus event-queue depth over
    time and events/sec throughput.

See ``docs/OBSERVABILITY.md`` for worked examples.
"""

from repro.obs.exporters import (
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.ledger import DEFAULT_LEDGER_DIR, RunLedger, load_record, resolve_record
from repro.obs.probes import EngineProbe, host_epoch, host_wallclock
from repro.obs.profiler import SimProfiler, stage_for_process
from repro.obs.runmeta import (
    build_record,
    config_fingerprint,
    git_revision,
    metrics_digest,
    run_id_for,
)
from repro.obs.sentinel import MetricComparison, SentinelReport, compare_records
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    HistogramStats,
    MetricsRegistry,
    MetricsSnapshot,
    SeriesKey,
)
from repro.obs.spans import PIPELINE_STAGES, FrameSpan, SpanStore, StageInterval
from repro.obs.sweep import (
    EVENT_SCHEMA,
    CellResources,
    ResourceMeter,
    SweepEvent,
    SweepEventBus,
    disabled_overhead_report,
    events_path_for,
    read_events,
    sweep_ids,
    validate_events,
    validate_events_file,
)
from repro.obs.telemetry import Telemetry

__all__ = [
    "DEFAULT_LEDGER_DIR",
    "EVENT_SCHEMA",
    "PIPELINE_STAGES",
    "CellResources",
    "Counter",
    "EngineProbe",
    "FrameSpan",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricComparison",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ResourceMeter",
    "RunLedger",
    "SentinelReport",
    "SeriesKey",
    "SimProfiler",
    "SpanStore",
    "StageInterval",
    "SweepEvent",
    "SweepEventBus",
    "Telemetry",
    "build_record",
    "chrome_trace",
    "compare_records",
    "config_fingerprint",
    "disabled_overhead_report",
    "events_path_for",
    "git_revision",
    "host_epoch",
    "host_wallclock",
    "jsonl_lines",
    "load_record",
    "metrics_digest",
    "read_events",
    "resolve_record",
    "run_id_for",
    "stage_for_process",
    "sweep_ids",
    "validate_events",
    "validate_events_file",
    "write_chrome_trace",
    "write_jsonl",
]
