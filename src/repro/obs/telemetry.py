"""The telemetry facade the pipeline publishes into.

One :class:`Telemetry` object bundles the three observability stores —
per-frame spans (:mod:`repro.obs.spans`), the labeled metrics registry
(:mod:`repro.obs.registry`), and the optional engine probe
(:mod:`repro.obs.probes`) — behind the small set of hook methods the
pipeline calls.

**Zero overhead by default.**  Telemetry is opt-in: a
:class:`~repro.pipeline.system.CloudSystem` (or multi-tenant
:class:`~repro.multitenant.server.SharedServer`) constructed without a
telemetry object keeps ``system.telemetry is None`` and every call
site guards with a single ``is not None`` check, so disabled runs pay
no method calls, no allocations, and no dictionary lookups.

**Multi-tenant labeling.**  :meth:`Telemetry.for_session` returns a
lightweight view that shares the same stores but stamps every span and
metric series with a ``session`` label, so per-session time series of
a consolidated server stay separable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.obs.probes import EngineProbe
from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.obs.spans import SpanStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.frames import Frame

__all__ = ["Telemetry"]


class Telemetry:
    """Spans + metrics registry + engine probe behind one handle.

    Parameters
    ----------
    engine_probe:
        Attach an :class:`EngineProbe` so environments built with this
        telemetry also report engine-level statistics (events, heap
        depth, wall-clock per simulated second).
    """

    def __init__(self, engine_probe: bool = False):
        self.spans = SpanStore()
        self.registry = MetricsRegistry()
        self.probe: Optional[EngineProbe] = EngineProbe() if engine_probe else None
        #: Injected-fault windows (:mod:`repro.faults`), as plain dicts
        #: ``{kind, label, start_ms, end_ms, session}`` — exporters turn
        #: them into labeled trace regions.
        self.fault_windows: List[Dict[str, object]] = []
        #: Session namespace for spans and metric labels ("" = single run).
        self.session = ""

    def for_session(self, session: str) -> "Telemetry":
        """A view on the same stores labeled for one tenant session."""
        view = Telemetry.__new__(Telemetry)
        view.spans = self.spans
        view.registry = self.registry
        view.probe = self.probe
        view.fault_windows = self.fault_windows
        view.session = str(session)
        return view

    def _labels(self, **labels: object) -> dict:
        if self.session:
            labels["session"] = self.session
        return labels

    # -- span hooks (called by pipeline stages) --------------------------

    def frame_opened(self, frame: "Frame", at: float, gate_delay_ms: float = 0.0) -> None:
        """A frame was created after the regulator's gate released."""
        self.spans.open(
            frame.frame_id,
            at,
            session=self.session,
            gate_delay_ms=gate_delay_ms,
            priority=frame.priority,
            input_triggered=frame.triggered_by_input,
        )
        self.registry.counter("frames_created_total", **self._labels()).inc()
        self.registry.histogram("gate_delay_ms", **self._labels()).observe(gate_delay_ms)

    def stage_complete(self, frame: "Frame", stage: str, start: float, end: float) -> None:
        """One pipeline stage finished processing ``frame``."""
        self.spans.stage(frame.frame_id, stage, start, end, session=self.session)
        labels = self._labels(stage=stage)
        self.registry.counter("stage_frames_total", **labels).inc()
        self.registry.histogram("stage_ms", **labels).observe(end - start)

    def frame_dropped(self, frame: "Frame", at: float, reason: str) -> None:
        """``frame`` was discarded before reaching the screen."""
        self.spans.drop(frame.frame_id, at, reason, session=self.session)
        self.registry.counter(
            "frames_dropped_total", **self._labels(reason=reason)
        ).inc()

    def frame_displayed(self, frame: "Frame", at: float) -> None:
        """``frame`` became photons at the client; its span closes."""
        self.spans.close(frame.frame_id, at, session=self.session)
        self.registry.counter("frames_displayed_total", **self._labels()).inc()
        span = self.spans.get(frame.frame_id, session=self.session)
        if span is not None:
            self.registry.histogram("frame_pipeline_ms", **self._labels()).observe(
                at - span.opened_at
            )

    def fault_window(
        self, kind: str, label: str, start_ms: float, end_ms: float
    ) -> None:
        """An injected fault is active over ``[start_ms, end_ms)``.

        Recorded when the fault plan is applied (windows are known up
        front), so traces show the fault region even if the run is cut
        short.
        """
        self.fault_windows.append(
            {
                "kind": kind,
                "label": label,
                "start_ms": float(start_ms),
                "end_ms": float(end_ms),
                "session": self.session,
            }
        )
        self.registry.counter("fault_windows_total", **self._labels(kind=kind)).inc()

    # -- metric hooks ----------------------------------------------------

    def queue_depth(self, stage: str, depth: int) -> None:
        """Publish the current depth of an inter-stage queue."""
        self.registry.gauge("queue_depth", **self._labels(stage=stage)).set(depth)

    def queue_bytes(self, stage: str, nbytes: int) -> None:
        """Publish the current byte occupancy of an inter-stage queue."""
        self.registry.gauge("queue_bytes", **self._labels(stage=stage)).set(nbytes)

    def count(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment an arbitrary counter (session label auto-applied)."""
        self.registry.counter(name, **self._labels(**labels)).inc(amount)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record an arbitrary histogram observation."""
        self.registry.histogram(name, **self._labels(**labels)).observe(value)

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Point-in-time copy of every metric series."""
        return self.registry.snapshot()
