"""The regression sentinel: statistically-tested run-to-run comparison.

Given two run records (:mod:`repro.obs.runmeta`), the sentinel diffs
the metrics the paper's argument rests on — client FPS, FPS gap, MtP
latency — using their *per-frame distributions*, not just their means:

* a **Mann-Whitney U test** (:func:`repro.metrics.stats.mann_whitney_u`)
  decides whether the two distributions plausibly differ at all;
* a **bootstrap confidence interval** on the difference of means
  (:func:`repro.metrics.stats.bootstrap_diff_ci`) sizes the shift;
* a **relative tolerance** keeps statistically-detectable-but-tiny
  shifts from failing CI.

A metric regresses only when all three agree: significant, CI excluding
zero, and worse by more than the tolerance in the metric's bad
direction.  Deterministic same-seed re-runs compare as identical
distributions (p = 1) and come out ``ok`` by construction.

Engine-side numbers (events/sec, wall-clock) are *informational*: they
vary with the host machine, so they are reported but never gate.

The overall verdict is ``regressed`` if any gating metric regressed,
else ``improved`` if any improved, else ``ok`` — mapped by the CLI
(``odr-sim compare-runs``) onto exit codes for CI gating.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.stats import (
    BootstrapCI,
    bootstrap_diff_ci,
    mann_whitney_u,
)

__all__ = [
    "GATED_SERIES",
    "MetricComparison",
    "SentinelReport",
    "compare_records",
]

#: The distribution-backed metrics the sentinel gates on:
#: (series key, display name, higher_is_better).
GATED_SERIES: Tuple[Tuple[str, str, bool], ...] = (
    ("client_fps", "client FPS", True),
    ("fps_gap", "FPS gap", False),
    ("mtp_ms", "MtP latency (ms)", False),
)

#: Informational scalar metrics: (record path, display name).
INFO_SCALARS: Tuple[Tuple[Tuple[str, ...], str], ...] = (
    (("engine", "events_per_sec"), "events/sec"),
    (("wall_clock_s",), "wall clock (s)"),
)


@dataclass(frozen=True)
class MetricComparison:
    """Verdict on one metric between run A (reference) and run B."""

    name: str
    higher_is_better: Optional[bool]
    mean_a: Optional[float]
    mean_b: Optional[float]
    #: ``mean_b - mean_a``; positive means B is larger.
    delta: Optional[float]
    #: ``delta`` relative to ``|mean_a|`` (None when undefined).
    rel_delta: Optional[float]
    p_value: Optional[float]
    ci: Optional[BootstrapCI]
    #: ``ok`` / ``regressed`` / ``improved`` / ``info`` / ``missing``.
    verdict: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "higher_is_better": self.higher_is_better,
            "mean_a": self.mean_a,
            "mean_b": self.mean_b,
            "delta": self.delta,
            "rel_delta": self.rel_delta,
            "p_value": self.p_value,
            "ci": self.ci.as_dict() if self.ci is not None else None,
            "verdict": self.verdict,
        }


@dataclass(frozen=True)
class SentinelReport:
    """Full outcome of one run-to-run comparison."""

    run_a: str
    run_b: str
    label_a: str
    label_b: str
    alpha: float
    tolerance: float
    comparisons: Tuple[MetricComparison, ...]

    @property
    def verdict(self) -> str:
        verdicts = {c.verdict for c in self.comparisons}
        if "regressed" in verdicts:
            return "regressed"
        if "improved" in verdicts:
            return "improved"
        return "ok"

    @property
    def ok(self) -> bool:
        return self.verdict != "regressed"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict,
            "run_a": self.run_a,
            "run_b": self.run_b,
            "label_a": self.label_a,
            "label_b": self.label_b,
            "alpha": self.alpha,
            "tolerance": self.tolerance,
            "metrics": [c.to_dict() for c in self.comparisons],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def describe(self) -> str:
        """Human-readable comparison table."""
        a = self.label_a or self.run_a
        b = self.label_b or self.run_b
        lines = [
            f"sentinel: {b} vs {a}  ->  {self.verdict.upper()}",
            f"  alpha={self.alpha:g}  tolerance={self.tolerance:.1%}",
        ]
        for comp in self.comparisons:
            if comp.mean_a is None or comp.mean_b is None:
                lines.append(f"  {comp.name:18s} (missing)")
                continue
            delta = comp.delta if comp.delta is not None else 0.0
            parts = [
                f"  {comp.name:18s} {comp.mean_a:10.3f} -> {comp.mean_b:10.3f}",
                f"  d={delta:+9.3f}",
            ]
            if comp.rel_delta is not None:
                parts.append(f" ({comp.rel_delta:+7.2%})")
            if comp.p_value is not None:
                parts.append(f"  p={comp.p_value:.4f}")
            if comp.ci is not None:
                parts.append(f"  CI95 [{comp.ci.low:+.3f}, {comp.ci.high:+.3f}]")
            parts.append(f"  [{comp.verdict}]")
            lines.append("".join(parts))
        return "\n".join(lines)


def _series(record: Mapping[str, Any], key: str) -> List[float]:
    series = record.get("series", {})
    values = series.get(key, []) if isinstance(series, Mapping) else []
    return [float(v) for v in values]


def _scalar(record: Mapping[str, Any], path: Sequence[str]) -> Optional[float]:
    node: Any = record
    for part in path:
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    try:
        return float(node)
    except (TypeError, ValueError):
        return None


def _compare_series(
    name: str,
    a: Sequence[float],
    b: Sequence[float],
    higher_is_better: bool,
    alpha: float,
    tolerance: float,
    resamples: int,
    seed: int,
) -> MetricComparison:
    if not a or not b:
        return MetricComparison(
            name=name,
            higher_is_better=higher_is_better,
            mean_a=(sum(a) / len(a)) if a else None,
            mean_b=(sum(b) / len(b)) if b else None,
            delta=None,
            rel_delta=None,
            p_value=None,
            ci=None,
            verdict="missing",
        )
    mean_a = sum(a) / len(a)
    mean_b = sum(b) / len(b)
    delta = mean_b - mean_a
    rel = delta / abs(mean_a) if mean_a != 0 else None
    test = mann_whitney_u(a, b)
    ci = bootstrap_diff_ci(a, b, resamples=resamples, seed=seed)

    verdict = "ok"
    shifted = test.p_value < alpha and not ci.contains(0.0)
    beyond = rel is None or abs(rel) > tolerance
    if shifted and beyond:
        got_worse = delta < 0 if higher_is_better else delta > 0
        verdict = "regressed" if got_worse else "improved"
    return MetricComparison(
        name=name,
        higher_is_better=higher_is_better,
        mean_a=mean_a,
        mean_b=mean_b,
        delta=delta,
        rel_delta=rel,
        p_value=test.p_value,
        ci=ci,
        verdict=verdict,
    )


def _compare_scalar(
    name: str, a: Optional[float], b: Optional[float]
) -> MetricComparison:
    delta = (b - a) if a is not None and b is not None else None
    rel: Optional[float] = None
    if delta is not None and a is not None and a != 0.0:
        rel = delta / abs(a)
    return MetricComparison(
        name=name,
        higher_is_better=None,
        mean_a=a,
        mean_b=b,
        delta=delta,
        rel_delta=rel,
        p_value=None,
        ci=None,
        verdict="info" if a is not None and b is not None else "missing",
    )


def compare_records(
    record_a: Mapping[str, Any],
    record_b: Mapping[str, Any],
    alpha: float = 0.01,
    tolerance: float = 0.02,
    resamples: int = 2000,
    seed: int = 0,
) -> SentinelReport:
    """Diff run B against reference run A.

    ``alpha`` is the Mann-Whitney significance level, ``tolerance`` the
    minimum relative mean shift that may gate, ``resamples``/``seed``
    the bootstrap configuration (deterministic for a given seed).
    """
    comparisons: List[MetricComparison] = []
    for index, (key, name, higher_is_better) in enumerate(GATED_SERIES):
        comparisons.append(
            _compare_series(
                name,
                _series(record_a, key),
                _series(record_b, key),
                higher_is_better,
                alpha=alpha,
                tolerance=tolerance,
                resamples=resamples,
                seed=seed + index,
            )
        )
    for path, name in INFO_SCALARS:
        comparisons.append(
            _compare_scalar(name, _scalar(record_a, path), _scalar(record_b, path))
        )
    return SentinelReport(
        run_a=str(record_a.get("run_id", "?")),
        run_b=str(record_b.get("run_id", "?")),
        label_a=str(record_a.get("label", "")),
        label_b=str(record_b.get("label", "")),
        alpha=alpha,
        tolerance=tolerance,
        comparisons=tuple(comparisons),
    )
