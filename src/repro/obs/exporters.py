"""Trace exporters: Chrome Trace Format and JSONL.

``chrome_trace`` converts a run's telemetry into the Chrome Trace
Format (the JSON object form with a ``traceEvents`` array), loadable
in ``chrome://tracing`` and Perfetto.  The mapping:

* each tenant session becomes one *process* (pid), named via metadata
  events;
* each pipeline stage (render, copy, encode, transmit, decode) becomes
  one *thread* (tid) inside its session's process, plus a ``gate``
  thread for regulator-injected rendering delays and a ``lifecycle``
  thread for drop events;
* each stage interval becomes a complete ("X") event carrying the
  frame id in ``args``, so Perfetto's search box finds every slice of
  one frame's journey;
* each drop becomes an instant ("i") event named after its reason.

Simulation time is milliseconds; Chrome traces use microseconds, so
timestamps are scaled by 1000 on export.

Passing a :class:`repro.obs.profiler.SimProfiler` adds a self-profiler
overlay: an ``event_queue_depth`` counter track (calendar depth over
simulated time) and a ``wall_ms_per_stage`` counter summary, so the
engine's own behaviour is visible alongside the frames it simulated.

``write_jsonl`` emits the machine-readable form: one JSON object per
line — every frame span, then the final metrics snapshot, then the
engine-probe summary when a probe was attached.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.obs.spans import PIPELINE_STAGES
from repro.obs.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profiler import SimProfiler

__all__ = ["chrome_trace", "jsonl_lines", "write_chrome_trace", "write_jsonl"]

#: Thread layout inside each session's trace process.
_THREADS: Dict[str, int] = {"gate": 1}
_THREADS.update({stage: i + 2 for i, stage in enumerate(PIPELINE_STAGES)})
_THREADS["lifecycle"] = len(_THREADS) + 1
_THREADS["faults"] = len(_THREADS) + 1

_MS_TO_US = 1000.0


def _pid_map(telemetry: Telemetry) -> Dict[str, int]:
    sessions = telemetry.spans.sessions() or [""]
    return {session: pid for pid, session in enumerate(sessions, start=1)}


#: Trace process id reserved for the engine self-profiler overlay.
_PROFILER_PID = 0


def _profiler_events(profiler: "SimProfiler") -> List[dict]:
    """Counter tracks for the self-profiler overlay."""
    events: List[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PROFILER_PID,
            "tid": 0,
            "args": {"name": "sim engine (self-profile)"},
        }
    ]
    for t_ms, depth in profiler.depth_timeline():
        events.append(
            {
                "ph": "C",
                "name": "event_queue_depth",
                "cat": "engine",
                "ts": t_ms * _MS_TO_US,
                "pid": _PROFILER_PID,
                "tid": 0,
                "args": {"depth": depth},
            }
        )
    stages = {
        stage: wall * 1000.0 for stage, wall in profiler.wall_by_stage().items()
    }
    if stages:
        events.append(
            {
                "ph": "C",
                "name": "wall_ms_per_stage",
                "cat": "engine",
                "ts": 0.0,
                "pid": _PROFILER_PID,
                "tid": 0,
                "args": stages,
            }
        )
    return events


def chrome_trace(telemetry: Telemetry, profiler: Optional["SimProfiler"] = None) -> dict:
    """Build the Chrome Trace Format object for one run's telemetry."""
    pids = _pid_map(telemetry)
    events: List[dict] = []
    if profiler is not None:
        events.extend(_profiler_events(profiler))

    for session, pid in pids.items():
        label = f"session {session}" if session else "cloud-3d run"
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "args": {"name": label}}
        )
        for thread, tid in _THREADS.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": thread},
                }
            )
            events.append(
                {
                    "ph": "M",
                    "name": "thread_sort_index",
                    "pid": pid,
                    "tid": tid,
                    "args": {"sort_index": tid},
                }
            )

    for span in telemetry.spans:
        pid = pids.get(span.session, 1)
        args = {"frame_id": span.frame_id}
        if span.priority:
            args["priority"] = True
        if span.gate_delay_ms > 0:
            events.append(
                {
                    "ph": "X",
                    "name": "gate",
                    "cat": "regulator",
                    "ts": (span.opened_at - span.gate_delay_ms) * _MS_TO_US,
                    "dur": span.gate_delay_ms * _MS_TO_US,
                    "pid": pid,
                    "tid": _THREADS["gate"],
                    "args": args,
                }
            )
        for interval in span.intervals:
            if interval.end is None:
                continue
            events.append(
                {
                    "ph": "X",
                    "name": interval.stage,
                    "cat": "pipeline",
                    "ts": interval.start * _MS_TO_US,
                    "dur": interval.duration_ms * _MS_TO_US,
                    "pid": pid,
                    "tid": _THREADS.get(interval.stage, _THREADS["lifecycle"]),
                    "args": args,
                }
            )
        if span.dropped and span.closed_at is not None:
            events.append(
                {
                    "ph": "i",
                    "name": f"drop:{span.drop_reason}",
                    "cat": "lifecycle",
                    "s": "t",
                    "ts": span.closed_at * _MS_TO_US,
                    "pid": pid,
                    "tid": _THREADS["lifecycle"],
                    "args": args,
                }
            )

    for window in telemetry.fault_windows:
        start_ms = float(window["start_ms"])  # type: ignore[arg-type]
        end_ms = float(window["end_ms"])  # type: ignore[arg-type]
        events.append(
            {
                "ph": "X",
                "name": f"fault:{window['label']}",
                "cat": "fault",
                "ts": start_ms * _MS_TO_US,
                "dur": (end_ms - start_ms) * _MS_TO_US,
                "pid": pids.get(str(window["session"]), 1),
                "tid": _THREADS["faults"],
                "args": {"kind": window["kind"]},
            }
        )

    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    telemetry: Telemetry, path: str, profiler: Optional["SimProfiler"] = None
) -> int:
    """Write the Chrome trace to ``path``; returns the event count."""
    trace = chrome_trace(telemetry, profiler=profiler)
    with open(path, "w") as handle:
        json.dump(trace, handle)
    return len(trace["traceEvents"])


def jsonl_lines(telemetry: Telemetry) -> Iterator[str]:
    """One JSON object per line: spans, metrics snapshot, probe summary."""
    for span in telemetry.spans:
        record = {"type": "frame_span"}
        record.update(span.to_dict())
        yield json.dumps(record)
    for window in telemetry.fault_windows:
        fault_record = {"type": "fault_window"}
        fault_record.update(window)
        yield json.dumps(fault_record)
    snapshot = {"type": "metrics_snapshot"}
    snapshot.update(telemetry.snapshot().to_dict())
    yield json.dumps(snapshot)
    if telemetry.probe is not None:
        probe = {"type": "engine_probe"}
        probe.update(telemetry.probe.summary())
        yield json.dumps(probe)


def write_jsonl(telemetry: Telemetry, path: str) -> int:
    """Write the JSONL telemetry dump to ``path``; returns the line count."""
    count = 0
    with open(path, "w") as handle:
        for line in jsonl_lines(telemetry):
            handle.write(line + "\n")
            count += 1
    return count
