"""Sweep-level telemetry: the executor event bus and per-cell resources.

The per-run observability stack (spans, ledger, sentinel, profiler)
sees *inside one simulation*; this module watches the layer above — the
plan/execute/store sweep machinery — where parallel speedups, cache
hits, retries, and worker crashes live.  A
:class:`SweepEventBus` is a typed, append-only log of **execution
events** the executors (:mod:`repro.experiments.executor`) emit into:

* cell lifecycle — ``cell_scheduled`` / ``cell_started`` /
  ``cell_cached`` / ``cell_finished`` / ``cell_failed`` /
  ``cell_retried`` / ``cell_timed_out`` / ``cell_quarantined``;
* pool lifecycle — ``pool_opened`` / ``pool_broken`` /
  ``worker_spawned``;
* sweep boundaries — ``sweep_begin`` / ``sweep_end``;
* service plane (:mod:`repro.service`) — ``job_recovered`` (a journaled
  job resumed after a gateway crash), ``client_retry`` (an idempotent
  resubmit or a ``watch`` stream resumption arrived), ``load_shed``
  (admission control rejected a submit), ``degraded_serial`` (the
  worker pool died and the job fell back to in-process execution).

Worker processes attach per-cell **resource telemetry**
(:class:`CellResources`: wall time, CPU user/sys via
``resource.getrusage``, peak RSS, engine events/sec) and ship their
live events back over a multiprocessing queue
(:func:`attach_worker_sink` / :func:`emit_cell_event`); the parent
drains the queue into the bus.  With a ``path`` the bus appends each
event to ``<ledger>/events.jsonl`` as one JSON object per line, keyed
by ``run_id`` and grouped by ``sweep_id`` — the artifact
``odr-sim watch``, ``odr-sim sweep-trace``, and ``odr-sim cost`` read.

The plane is **strictly out-of-band**: executors consult it only
behind ``if bus is not None`` branches, events never feed back into
scheduling, and nothing here touches the simulation.  Schedule hashes
are bit-identical with the bus on and off
(``tests/test_obs_sweep.py``), and the disabled path is budgeted at
<2% of a cell's wall clock (:func:`disabled_overhead_report`).
"""

from __future__ import annotations

import json
import os
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import (
    IO,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.obs.probes import host_epoch, host_wallclock
from repro.obs.runmeta import config_fingerprint

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "EVENTS_FILENAME",
    "CellResources",
    "ResourceMeter",
    "SweepEvent",
    "SweepEventBus",
    "attach_worker_sink",
    "detach_worker_sink",
    "disabled_overhead_report",
    "emit_cell_event",
    "events_path_for",
    "read_events",
    "sweep_ids",
    "validate_events",
    "validate_events_file",
]

#: Bumped whenever the persisted event layout changes incompatibly.
EVENT_SCHEMA = 1

#: Conventional event-log location inside a ledger directory.
EVENTS_FILENAME = "events.jsonl"


def events_path_for(ledger_dir: Union[str, Path]) -> str:
    """Where a ledger directory's sweep event log lives."""
    return os.path.join(str(ledger_dir), EVENTS_FILENAME)


# -- event vocabulary ------------------------------------------------------

SWEEP_BEGIN = "sweep_begin"
SWEEP_END = "sweep_end"
CELL_SCHEDULED = "cell_scheduled"
CELL_CACHED = "cell_cached"
CELL_DEDUPED = "cell_deduped"
CELL_STARTED = "cell_started"
CELL_FINISHED = "cell_finished"
CELL_FAILED = "cell_failed"
CELL_RETRIED = "cell_retried"
CELL_TIMED_OUT = "cell_timed_out"
CELL_QUARANTINED = "cell_quarantined"
WORKER_SPAWNED = "worker_spawned"
POOL_OPENED = "pool_opened"
POOL_BROKEN = "pool_broken"
JOB_RECOVERED = "job_recovered"
CLIENT_RETRY = "client_retry"
LOAD_SHED = "load_shed"
DEGRADED_SERIAL = "degraded_serial"

#: Fields an event of each kind must carry (beyond the envelope).
_REQUIRED_BY_KIND: Dict[str, frozenset] = {
    SWEEP_BEGIN: frozenset({"cells", "executor", "workers"}),
    SWEEP_END: frozenset({"executed", "cached", "failed", "wall_s"}),
    CELL_SCHEDULED: frozenset({"run_id", "label"}),
    CELL_CACHED: frozenset({"run_id", "label"}),
    CELL_DEDUPED: frozenset({"run_id", "label"}),
    CELL_STARTED: frozenset({"run_id", "label", "pid"}),
    CELL_FINISHED: frozenset({"run_id", "label", "wall_s"}),
    CELL_FAILED: frozenset({"run_id", "label", "error", "attempts"}),
    CELL_RETRIED: frozenset({"run_id", "label", "attempt"}),
    CELL_TIMED_OUT: frozenset({"run_id", "label", "timeout_s"}),
    CELL_QUARANTINED: frozenset({"run_id", "path"}),
    WORKER_SPAWNED: frozenset({"pid"}),
    POOL_OPENED: frozenset({"workers", "batch"}),
    POOL_BROKEN: frozenset(),
    JOB_RECOVERED: frozenset({"job_id", "cells"}),
    CLIENT_RETRY: frozenset({"op"}),
    LOAD_SHED: frozenset({"reason"}),
    DEGRADED_SERIAL: frozenset({"reason"}),
}

#: Every event kind the schema knows.
EVENT_KINDS = frozenset(_REQUIRED_BY_KIND)

#: Envelope keys every persisted event carries.
_ENVELOPE_KEYS = frozenset({"schema", "sweep_id", "seq", "kind", "t_s", "epoch_s"})


@dataclass(frozen=True)
class SweepEvent:
    """One typed, append-only execution event.

    ``t_s`` is seconds since the bus (sweep) started, on the emitting
    parent's clock; ``epoch_s`` is host epoch seconds, comparable
    across processes (worker-side timestamps inside ``fields`` use the
    same epoch clock).  Everything kind-specific lives in ``fields``.
    """

    sweep_id: str
    seq: int
    kind: str
    t_s: float
    epoch_s: float
    fields: Mapping[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to the persisted JSONL form (envelope + fields)."""
        record: Dict[str, Any] = {
            "schema": EVENT_SCHEMA,
            "sweep_id": self.sweep_id,
            "seq": self.seq,
            "kind": self.kind,
            "t_s": self.t_s,
            "epoch_s": self.epoch_s,
        }
        for key, value in self.fields.items():
            if key not in record:
                record[key] = value
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SweepEvent":
        """Rebuild an event from its persisted JSONL form."""
        fields = {
            key: value for key, value in record.items() if key not in _ENVELOPE_KEYS
        }
        return cls(
            sweep_id=str(record.get("sweep_id", "")),
            seq=int(record.get("seq", 0)),
            kind=str(record.get("kind", "")),
            t_s=float(record.get("t_s", 0.0)),
            epoch_s=float(record.get("epoch_s", 0.0)),
            fields=fields,
        )

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)

    @property
    def run_id(self) -> str:
        """The cell this event concerns ('' for sweep/pool events)."""
        return str(self.fields.get("run_id", ""))


# -- per-cell resource telemetry -------------------------------------------


def _rusage_self() -> Tuple[float, float, int]:
    """(user s, sys s, peak RSS KiB) of this process, or zeros off-POSIX."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX hosts
        return (0.0, 0.0, 0)
    usage = resource.getrusage(resource.RUSAGE_SELF)
    rss = int(usage.ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes there
        rss //= 1024
    return (float(usage.ru_utime), float(usage.ru_stime), rss)


@dataclass(frozen=True)
class CellResources:
    """Host resources one executed cell consumed, measured in its worker.

    ``max_rss_kb`` is the worker process's lifetime peak (the kernel
    reports no per-interval peak), so in a reused pool worker it is an
    upper bound for any single cell.  CPU seconds are deltas around the
    cell body and attribute precisely.
    """

    pid: int
    started_epoch_s: float
    wall_s: float
    cpu_user_s: float
    cpu_sys_s: float
    max_rss_kb: int
    #: Engine events the cell fired (``None`` without a probe).
    events_fired: Optional[int] = None
    events_per_sec: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "started_epoch_s": self.started_epoch_s,
            "wall_s": self.wall_s,
            "cpu_user_s": self.cpu_user_s,
            "cpu_sys_s": self.cpu_sys_s,
            "max_rss_kb": self.max_rss_kb,
            "events_fired": self.events_fired,
            "events_per_sec": self.events_per_sec,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CellResources":
        events = payload.get("events_fired")
        eps = payload.get("events_per_sec")
        return cls(
            pid=int(payload.get("pid", 0)),
            started_epoch_s=float(payload.get("started_epoch_s", 0.0)),
            wall_s=float(payload.get("wall_s", 0.0)),
            cpu_user_s=float(payload.get("cpu_user_s", 0.0)),
            cpu_sys_s=float(payload.get("cpu_sys_s", 0.0)),
            max_rss_kb=int(payload.get("max_rss_kb", 0)),
            events_fired=int(events) if events is not None else None,
            events_per_sec=float(eps) if eps is not None else None,
        )


class ResourceMeter:
    """Measures one cell body: wall clock, CPU deltas, peak RSS.

    Construct at cell start, call :meth:`finish` at cell end.  All
    reads go through :mod:`repro.obs.probes` (the sanctioned clock
    site) and ``getrusage``; nothing here is visible to the simulation.
    """

    def __init__(self) -> None:
        self.started_epoch_s = host_epoch()
        self._wall_start = host_wallclock()
        self._user0, self._sys0, _ = _rusage_self()

    def finish(self, events_fired: Optional[int] = None) -> CellResources:
        wall_s = host_wallclock() - self._wall_start
        user1, sys1, rss = _rusage_self()
        events_per_sec: Optional[float] = None
        if events_fired is not None and wall_s > 0.0:
            events_per_sec = events_fired / wall_s
        return CellResources(
            pid=os.getpid(),
            started_epoch_s=self.started_epoch_s,
            wall_s=wall_s,
            cpu_user_s=max(0.0, user1 - self._user0),
            cpu_sys_s=max(0.0, sys1 - self._sys0),
            max_rss_kb=rss,
            events_fired=events_fired,
            events_per_sec=events_per_sec,
        )


# -- the bus ---------------------------------------------------------------

_SWEEP_COUNTER = 0
_SWEEP_COUNTER_LOCK = threading.Lock()


def _new_sweep_id() -> str:
    """A short id unique enough to group one sweep's events."""
    global _SWEEP_COUNTER
    with _SWEEP_COUNTER_LOCK:
        _SWEEP_COUNTER += 1
        nonce = _SWEEP_COUNTER
    return config_fingerprint(
        {"epoch": host_epoch(), "pid": os.getpid(), "nonce": nonce}
    )[:12]


class SweepEventBus:
    """Typed, append-only execution event log for one sweep.

    Events are held in memory (:attr:`events`) and — with a ``path`` —
    appended line-by-line to an ``events.jsonl`` file as they are
    emitted, flushed per event so a concurrent ``odr-sim watch
    --follow`` sees them live.  Subscribers (the live dashboard) are
    invoked synchronously after each append.

    The bus is written to by one parent process; worker-side events
    arrive through the executor's queue drain, not directly.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        sweep_id: Optional[str] = None,
    ) -> None:
        self.sweep_id = sweep_id if sweep_id is not None else _new_sweep_id()
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._events: List[SweepEvent] = []
        self._subscribers: List[Callable[[SweepEvent], None]] = []
        self._lock = threading.Lock()
        self._t0 = host_wallclock()
        self._handle: Optional[IO[str]] = None

    @property
    def events(self) -> Tuple[SweepEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def subscribe(self, callback: Callable[[SweepEvent], None]) -> None:
        """Invoke ``callback(event)`` after every emitted event."""
        self._subscribers.append(callback)

    def emit(self, kind: str, **fields: Any) -> SweepEvent:
        """Append one event (and persist/notify); returns it."""
        with self._lock:
            event = SweepEvent(
                sweep_id=self.sweep_id,
                seq=len(self._events),
                kind=kind,
                t_s=host_wallclock() - self._t0,
                epoch_s=host_epoch(),
                fields=dict(fields),
            )
            self._events.append(event)
            if self.path is not None:
                if self._handle is None:
                    os.makedirs(self.path.parent, exist_ok=True)
                    self._handle = open(self.path, "a", encoding="utf-8")
                self._handle.write(
                    json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
                self._handle.flush()
        for callback in list(self._subscribers):
            callback(event)
        return event

    def close(self) -> None:
        """Close the persistence handle (events stay readable in memory)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "SweepEventBus":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


# -- the worker-side sink --------------------------------------------------
#
# ``execute_cell`` runs in whatever process the executor chose.  It
# emits through a process-global sink: the serial executor points the
# sink straight at the bus; the parallel executor's worker initializer
# points it at a multiprocessing queue whose other end the parent
# drains into the bus.  With no sink attached (the default), emitting
# is a single ``is None`` branch — the disabled path.

_WORKER_SINK: Optional[Callable[[str, Dict[str, Any]], None]] = None


def attach_worker_sink(sink: Callable[[str, Dict[str, Any]], None]) -> None:
    """Route this process's cell events into ``sink(kind, fields)``."""
    global _WORKER_SINK
    _WORKER_SINK = sink


def detach_worker_sink() -> None:
    """Disable cell-event emission in this process."""
    global _WORKER_SINK
    _WORKER_SINK = None


def emit_cell_event(kind: str, **fields: Any) -> None:
    """Emit one event from cell-execution context (no-op when detached)."""
    sink = _WORKER_SINK
    if sink is None:
        return
    try:
        sink(kind, fields)
    except Exception:
        # Telemetry must never fail the cell it observes: a full or
        # broken queue degrades to a gap in the event log, nothing more.
        pass


# -- reading and validating ------------------------------------------------


def _iter_event_dicts(path: Union[str, Path]) -> Iterable[Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if isinstance(record, dict):
                yield record


def sweep_ids(path: Union[str, Path]) -> List[str]:
    """Every sweep recorded in an event log, in first-appearance order."""
    seen: Dict[str, None] = {}
    for record in _iter_event_dicts(path):
        seen.setdefault(str(record.get("sweep_id", "")), None)
    return list(seen)


def read_events(
    path: Union[str, Path], sweep_id: Optional[str] = None
) -> List[SweepEvent]:
    """Load one sweep's events from an ``events.jsonl`` file.

    The log is append-only across sweeps; by default the **latest**
    sweep (the one the final line belongs to) is returned.  Pass a
    ``sweep_id`` (or a unique prefix) to select an earlier sweep.
    """
    by_sweep: Dict[str, List[SweepEvent]] = {}
    order: List[str] = []
    for record in _iter_event_dicts(path):
        event = SweepEvent.from_dict(record)
        if event.sweep_id not in by_sweep:
            by_sweep[event.sweep_id] = []
            order.append(event.sweep_id)
        by_sweep[event.sweep_id].append(event)
    if not order:
        return []
    if sweep_id is None:
        return by_sweep[order[-1]]
    matches = [s for s in order if s.startswith(sweep_id)]
    if not matches:
        raise ValueError(f"{path}: no sweep matching {sweep_id!r}")
    if len(matches) > 1:
        raise ValueError(
            f"{path}: sweep id {sweep_id!r} is ambiguous ({', '.join(matches)})"
        )
    return by_sweep[matches[0]]


def validate_events(records: Iterable[Mapping[str, Any]]) -> List[str]:
    """Schema-check persisted event dicts; returns human-readable errors.

    Checks the envelope (schema version, monotonic per-sweep ``seq``,
    numeric timestamps), the kind vocabulary, each kind's required
    fields, and sweep framing (``sweep_begin`` first, nothing after
    ``sweep_end``).  An empty list means the log is valid.
    """
    errors: List[str] = []
    last_seq: Dict[str, int] = {}
    begun: Dict[str, bool] = {}
    ended: Dict[str, bool] = {}
    for index, record in enumerate(records):
        where = f"event {index}"
        schema = record.get("schema")
        if schema != EVENT_SCHEMA:
            errors.append(f"{where}: schema {schema!r} != {EVENT_SCHEMA}")
            continue
        sweep = str(record.get("sweep_id", ""))
        if not sweep:
            errors.append(f"{where}: missing sweep_id")
            continue
        kind = record.get("kind")
        if kind not in EVENT_KINDS:
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        for key in ("t_s", "epoch_s"):
            if not isinstance(record.get(key), (int, float)):
                errors.append(f"{where}: {key} is not numeric")
        seq = record.get("seq")
        if not isinstance(seq, int):
            errors.append(f"{where}: seq is not an integer")
        else:
            previous = last_seq.get(sweep)
            if previous is not None and seq <= previous:
                errors.append(
                    f"{where}: seq {seq} not increasing within sweep {sweep}"
                )
            last_seq[sweep] = seq
        missing = _REQUIRED_BY_KIND[kind] - set(record)
        if missing:
            errors.append(
                f"{where}: {kind} missing field(s) {', '.join(sorted(missing))}"
            )
        if kind == SWEEP_BEGIN:
            begun[sweep] = True
        elif not begun.get(sweep):
            errors.append(f"{where}: {kind} before sweep_begin in sweep {sweep}")
            begun[sweep] = True  # report once per sweep
        if ended.get(sweep):
            errors.append(f"{where}: {kind} after sweep_end in sweep {sweep}")
        if kind == SWEEP_END:
            ended[sweep] = True
    return errors


def validate_events_file(path: Union[str, Path]) -> List[str]:
    """Schema-check an ``events.jsonl`` file (see :func:`validate_events`)."""
    try:
        records = list(_iter_event_dicts(path))
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    except ValueError as exc:
        return [f"{path}: not JSONL ({exc})"]
    return validate_events(records)


# -- the disabled-overhead budget ------------------------------------------

#: Cell events the executors emit per executed cell (scheduled,
#: started, finished, plus one for luck — retries and failures add
#: more, but those cells already paid a simulation).
EMITS_PER_CELL = 4

#: The event plane's budget on the *disabled* path, as a fraction of a
#: cell's wall clock — mirrors PR 1's <5% engine-probe budget, tighter
#: because the sweep plane fires per cell, not per event.
DISABLED_OVERHEAD_BUDGET = 0.02


def disabled_overhead_report(
    reference_cell_wall_s: float,
    emits_per_cell: int = EMITS_PER_CELL,
    samples: int = 20000,
) -> Dict[str, Any]:
    """Measure the no-sink emit path against the <2% budget.

    With the bus disabled each would-be emission is one function call
    and one ``is None`` branch.  This times ``samples`` such calls and
    scales by ``emits_per_cell`` against a reference cell wall clock
    (e.g. the mean executed-cell time of the current bench), yielding
    the fraction the plane costs a sweep that never asked for it.
    """
    previous = _WORKER_SINK
    detach_worker_sink()
    try:
        started = host_wallclock()
        for _ in range(samples):
            emit_cell_event(CELL_STARTED)
        elapsed = host_wallclock() - started
    finally:
        if previous is not None:
            attach_worker_sink(previous)
    per_emit_s = elapsed / samples if samples else 0.0
    reference = max(reference_cell_wall_s, 1e-9)
    fraction = (per_emit_s * emits_per_cell) / reference
    return {
        "per_emit_ns": per_emit_s * 1e9,
        "emits_per_cell": emits_per_cell,
        "reference_cell_wall_s": reference_cell_wall_s,
        "disabled_overhead_frac": fraction,
        "budget_frac": DISABLED_OVERHEAD_BUDGET,
        "ok": fraction < DISABLED_OVERHEAD_BUDGET,
    }
