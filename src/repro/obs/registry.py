"""Labeled metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` holds named, labeled time series in the
style of Prometheus client libraries: a *series* is identified by a
metric name plus a frozen set of ``label=value`` pairs, e.g.
``frames_dropped_total{reason="mailbox_overwrite", session="s1"}``.

Pipeline stages, regulators, and the multi-tenant server publish into
the registry through their :class:`~repro.obs.telemetry.Telemetry`
handle; analysis code reads back via :meth:`MetricsRegistry.snapshot`,
and :meth:`MetricsSnapshot.delta` gives the counter increments between
two snapshots (per-interval rates without resetting anything).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramStats",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SeriesKey",
]

LabelItems = Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class SeriesKey:
    """Identity of one time series: metric name + sorted labels."""

    name: str
    labels: LabelItems = ()

    @staticmethod
    def make(name: str, labels: Mapping[str, object]) -> "SeriesKey":
        items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        return SeriesKey(name, items)

    def label(self, key: str) -> Optional[str]:
        for k, v in self.labels:
            if k == key:
                return v
        return None

    def __str__(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{self.name}{{{inner}}}"


class Counter:
    """Monotonically increasing value (events, frames, bytes, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """Point-in-time value that can go up and down (queue depth, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Distribution of observed values (latencies, sizes, ...).

    Observations are retained in full — simulation runs produce at most
    a few thousand per series, and exact percentiles beat bucket
    approximations for paper-style analysis.
    """

    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    def stats(self) -> "HistogramStats":
        return HistogramStats.from_values(self.values)


@dataclass(frozen=True)
class HistogramStats:
    """Summary of a histogram at snapshot time."""

    count: int
    sum: float
    min: float
    max: float
    p50: float
    p99: float

    @staticmethod
    def from_values(values: Iterable[float]) -> "HistogramStats":
        data = sorted(values)
        if not data:
            return HistogramStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)

        def pct(q: float) -> float:
            idx = min(len(data) - 1, max(0, round(q * (len(data) - 1))))
            return data[idx]

        return HistogramStats(
            count=len(data),
            sum=float(sum(data)),
            min=data[0],
            max=data[-1],
            p50=pct(0.50),
            p99=pct(0.99),
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Registry of labeled counters, gauges, and histograms.

    Instrument handles are cached per series, so hot paths can either
    hold a handle or call ``registry.counter(name, **labels)`` each
    time; both hit the same underlying series.  A name registered as
    one instrument kind cannot be reused as another.
    """

    def __init__(self) -> None:
        self._counters: Dict[SeriesKey, Counter] = {}
        self._gauges: Dict[SeriesKey, Gauge] = {}
        self._histograms: Dict[SeriesKey, Histogram] = {}
        self._kinds: Dict[str, str] = {}

    def _claim(self, name: str, kind: str) -> None:
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise ValueError(f"metric {name!r} already registered as a {seen}")

    # -- instruments -----------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        self._claim(name, "counter")
        key = SeriesKey.make(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        self._claim(name, "gauge")
        key = SeriesKey.make(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        self._claim(name, "histogram")
        key = SeriesKey.make(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # -- reading ---------------------------------------------------------

    def series(self) -> List[SeriesKey]:
        """Every series currently registered, sorted by name then labels."""
        keys = list(self._counters) + list(self._gauges) + list(self._histograms)
        return sorted(keys, key=lambda k: (k.name, k.labels))

    def snapshot(self) -> "MetricsSnapshot":
        """Immutable point-in-time copy of every series."""
        return MetricsSnapshot(
            counters={k: c.value for k, c in self._counters.items()},
            gauges={k: g.value for k, g in self._gauges.items()},
            histograms={k: h.stats() for k, h in self._histograms.items()},
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """Frozen registry state; supports counter deltas between snapshots."""

    counters: Dict[SeriesKey, float]
    gauges: Dict[SeriesKey, float]
    histograms: Dict[SeriesKey, HistogramStats]

    def counter_value(self, name: str, **labels: object) -> float:
        return self.counters.get(SeriesKey.make(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: object) -> float:
        return self.gauges.get(SeriesKey.make(name, labels), 0.0)

    def histogram_stats(self, name: str, **labels: object) -> HistogramStats:
        key = SeriesKey.make(name, labels)
        return self.histograms.get(key, HistogramStats.from_values(()))

    def delta(self, earlier: "MetricsSnapshot") -> Dict[SeriesKey, float]:
        """Counter increments since ``earlier`` (new series count in full)."""
        return {
            key: value - earlier.counters.get(key, 0.0)
            for key, value in self.counters.items()
        }

    def to_dict(self) -> dict:
        """Flatten for JSONL export (series keys become label strings)."""
        return {
            "counters": {str(k): v for k, v in sorted(self.counters.items(), key=lambda i: str(i[0]))},
            "gauges": {str(k): v for k, v in sorted(self.gauges.items(), key=lambda i: str(i[0]))},
            "histograms": {
                str(k): v.to_dict()
                for k, v in sorted(self.histograms.items(), key=lambda i: str(i[0]))
            },
        }
