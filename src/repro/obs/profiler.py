"""The sim-engine self-profiler: where does the *host's* time go?

:class:`SimProfiler` is an :class:`~repro.obs.probes.EngineProbe`
extended with the engine's optional resume hooks
(``on_resume_begin`` / ``on_resume_end`` — see
:meth:`repro.simcore.engine.Environment.set_probe`): every time the
engine resumes a simulated process, the profiler reads its injectable
clock before and after, attributing host wall time to

* the **simulated process** that ran (``app``, ``client``, ``proxy``,
  ``network``, ...),
* its **pipeline stage** (a prefix mapping from process names —
  ``render``, ``encode``, ``transmit``, ``client``, ``inputs``,
  ``control``), with the un-attributed remainder reported as
  ``engine`` (heap operations, callback dispatch), so the per-stage
  table always sums to the profiled total,
* its **generator callsite** (function name, file, line), giving a
  top-K "hottest generators" view.

It also samples the event-calendar depth over simulated time and
derives events/sec throughput.  Like every probe, it is opt-in: a run
without one pays only the engine's ``is None`` branches, covered by the
<5 % disabled-overhead guard in ``tests/test_obs_benchmark.py``.  All
clock reads go through the probe clock inherited from
:class:`EngineProbe` — injectable for deterministic tests, and the only
wall-clock path simlint rule R2 sanctions.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.probes import EngineProbe

__all__ = ["SimProfiler", "stage_for_process"]

#: Longest-prefix mapping from engine process names to pipeline stages.
_STAGE_PREFIXES: Tuple[Tuple[str, str], ...] = (
    ("app", "render"),
    ("odr-proxy", "encode"),
    ("proxy", "encode"),
    ("odr-network", "transmit"),
    ("network", "transmit"),
    ("client", "client"),
    ("input", "inputs"),
    ("fps-reporter", "control"),
    ("abr", "control"),
)


def stage_for_process(name: str) -> str:
    """Pipeline stage a process name belongs to (``other`` if unknown)."""
    for prefix, stage in _STAGE_PREFIXES:
        if name.startswith(prefix):
            return stage
    return "other"


class SimProfiler(EngineProbe):
    """Wall-time self-profiling of the discrete-event engine.

    Parameters
    ----------
    wallclock:
        Injectable clock (seconds); defaults to the probe clock.
    depth_sample_ms:
        Simulated-time bucket width for the event-queue-depth timeline.
    """

    def __init__(
        self,
        wallclock: Optional[Callable[[], float]] = None,
        depth_sample_ms: float = 250.0,
    ) -> None:
        super().__init__(wallclock=wallclock)
        if depth_sample_ms <= 0:
            raise ValueError("depth_sample_ms must be positive")
        self.depth_sample_ms = float(depth_sample_ms)
        #: Host seconds spent resuming each simulated process, by name.
        self.wall_by_process: Dict[str, float] = {}
        #: Resume counts by process name.
        self.resumes_by_process: Dict[str, int] = {}
        #: Host seconds by generator callsite ("name (file:line)").
        self.wall_by_callsite: Dict[str, float] = {}
        #: Peak calendar depth per simulated-time bucket.
        self._depth_buckets: Dict[int, int] = {}
        #: id(process) -> (name, callsite) cache.
        self._identities: Dict[int, Tuple[str, str]] = {}
        self._resume_started: float = 0.0
        self._resume_key: Optional[Tuple[str, str]] = None
        self._run_started: Optional[float] = None
        self._run_finished: Optional[float] = None

    # -- run framing -----------------------------------------------------

    def start(self) -> None:
        """Mark the start of the profiled region (before ``env.run``)."""
        self._run_started = self._perf_counter()

    def finish(self) -> None:
        """Mark the end of the profiled region (after ``env.run``)."""
        self._run_finished = self._perf_counter()

    # -- engine-facing hooks ---------------------------------------------

    def on_event_fired(self, now_ms: float, heap_depth: int) -> None:
        super().on_event_fired(now_ms, heap_depth)
        bucket = int(now_ms // self.depth_sample_ms)
        previous = self._depth_buckets.get(bucket)
        if previous is None or heap_depth > previous:
            self._depth_buckets[bucket] = heap_depth

    def _identity(self, process: Any) -> Tuple[str, str]:
        key = id(process)
        cached = self._identities.get(key)
        if cached is not None:
            return cached
        name = str(getattr(process, "name", "process"))
        callsite = name
        generator = getattr(process, "_generator", None)
        code = getattr(generator, "gi_code", None)
        if code is not None:
            filename = os.path.basename(str(code.co_filename))
            callsite = f"{code.co_name} ({filename}:{code.co_firstlineno})"
        identity = (name, callsite)
        self._identities[key] = identity
        return identity

    def on_resume_begin(self, process: Any) -> None:
        """The engine is about to run one process's generator."""
        self._resume_key = self._identity(process)
        self._resume_started = self._perf_counter()

    def on_resume_end(self, process: Any) -> None:
        """The generator returned control to the engine."""
        key = self._resume_key
        if key is None:
            return
        elapsed = self._perf_counter() - self._resume_started
        self._resume_key = None
        name, callsite = key
        self.wall_by_process[name] = self.wall_by_process.get(name, 0.0) + elapsed
        self.resumes_by_process[name] = self.resumes_by_process.get(name, 0) + 1
        self.wall_by_callsite[callsite] = (
            self.wall_by_callsite.get(callsite, 0.0) + elapsed
        )

    # -- reading ---------------------------------------------------------

    @property
    def total_wall_s(self) -> Optional[float]:
        """Wall seconds between :meth:`start` and :meth:`finish`."""
        if self._run_started is None or self._run_finished is None:
            return None
        return self._run_finished - self._run_started

    @property
    def attributed_wall_s(self) -> float:
        """Wall seconds attributed to process resumes."""
        return sum(self.wall_by_process.values())

    def events_per_sec(self) -> Optional[float]:
        """Fired-event throughput over the profiled region."""
        total = self.total_wall_s
        if total is None or total <= 0.0:
            return None
        return self.events_fired / total

    def wall_by_stage(self) -> Dict[str, float]:
        """Attributed wall seconds per pipeline stage, plus ``engine``.

        The ``engine`` row is the profiled total minus everything
        attributed to resumes (heap churn, callback dispatch, condition
        bookkeeping), so the rows sum to :attr:`total_wall_s` whenever
        the run was framed with :meth:`start`/:meth:`finish`.
        """
        stages: Dict[str, float] = {}
        for name, wall in self.wall_by_process.items():
            stage = stage_for_process(name)
            stages[stage] = stages.get(stage, 0.0) + wall
        total = self.total_wall_s
        if total is not None:
            stages["engine"] = max(0.0, total - self.attributed_wall_s)
        return dict(sorted(stages.items(), key=lambda item: -item[1]))

    def top_callsites(self, k: int = 10) -> List[Tuple[str, float]]:
        """The ``k`` generator callsites with the most attributed wall time."""
        ranked = sorted(self.wall_by_callsite.items(), key=lambda item: -item[1])
        return ranked[: max(0, k)]

    def depth_timeline(self) -> List[Tuple[float, int]]:
        """(simulated ms, peak calendar depth) per sample bucket."""
        return [
            (bucket * self.depth_sample_ms, depth)
            for bucket, depth in sorted(self._depth_buckets.items())
        ]

    def summary(self) -> Dict[str, object]:
        """Flat dict for JSONL export / ledger records / CLI display."""
        base = super().summary()
        base.update(
            {
                "total_wall_s": self.total_wall_s,
                "attributed_wall_s": self.attributed_wall_s,
                "events_per_sec": self.events_per_sec(),
                "wall_by_stage": self.wall_by_stage(),
                "wall_by_process": dict(sorted(self.wall_by_process.items())),
                "resumes_by_process": dict(sorted(self.resumes_by_process.items())),
                "top_callsites": [
                    {"callsite": callsite, "wall_s": wall}
                    for callsite, wall in self.top_callsites()
                ],
                "queue_depth_timeline": [
                    {"t_ms": t, "depth": depth} for t, depth in self.depth_timeline()
                ],
            }
        )
        return base

    def report(self, top_k: int = 10) -> str:
        """Human-readable profile table."""
        lines: List[str] = []
        total = self.total_wall_s
        throughput = self.events_per_sec()
        header = f"engine profile: {self.events_fired} events fired"
        if throughput is not None:
            header += f", {throughput:,.0f} events/s"
        if total is not None:
            header += f", {total * 1000.0:.1f} ms wall"
        lines.append(header)
        lines.append(
            f"  calendar   : peak depth {self.max_heap_depth}, "
            f"{self.processes_started} processes started"
        )
        stages = self.wall_by_stage()
        stage_total = sum(stages.values())
        if stage_total > 0:
            lines.append("  stage wall time:")
            for stage, wall in stages.items():
                bar = "#" * max(1, int(round(30 * wall / stage_total)))
                lines.append(
                    f"    {stage:10s} {wall * 1000.0:9.2f} ms "
                    f"{wall / stage_total:6.1%}  {bar}"
                )
        top = self.top_callsites(top_k)
        if top:
            lines.append(f"  top {len(top)} generator callsites:")
            for callsite, wall in top:
                lines.append(f"    {wall * 1000.0:9.2f} ms  {callsite}")
        timeline = self.depth_timeline()
        if timeline:
            peak_t, peak_depth = max(timeline, key=lambda item: item[1])
            lines.append(
                f"  queue depth: peak {peak_depth} at t={peak_t:.0f} ms "
                f"({len(timeline)} samples every {self.depth_sample_ms:.0f} ms)"
            )
        return "\n".join(lines)
