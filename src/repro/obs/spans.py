"""Per-frame causal spans.

A :class:`FrameSpan` is the observability-side record of one frame's
journey through the pipeline (paper Fig. 2, steps 3-7): the busy
interval of each stage it passed through (render → copy → encode →
transmit → decode), the regulator gate delay that preceded its render,
and — if the frame never reached the screen — the drop event that
ended it.  Spans are assembled live by the pipeline's telemetry hooks
(:mod:`repro.obs.telemetry`) and collected in a :class:`SpanStore`
queryable by frame id, so a regulator regression can be debugged from
one run's trace instead of re-running with print statements.

Spans are causal, not just statistical: the gap between one stage
interval's ``end`` and the next interval's ``start`` is exactly the
time the frame spent waiting in the buffer between those stages, which
is what the paper's Fig. 5 pipeline schedules visualize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["FrameSpan", "SpanStore", "StageInterval", "PIPELINE_STAGES"]

#: Canonical stage order of the cloud-3D pipeline (Fig. 2 steps 3-7).
PIPELINE_STAGES: Tuple[str, ...] = ("render", "copy", "encode", "transmit", "decode")


@dataclass
class StageInterval:
    """One stage's busy interval within a frame span (times in sim ms)."""

    stage: str
    start: float
    end: Optional[float] = None

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration_ms(self) -> float:
        if self.end is None:
            raise ValueError(f"stage {self.stage!r} interval still open")
        return self.end - self.start


@dataclass
class FrameSpan:
    """The full causal trace of one frame.

    A span opens when the frame is created (right after the regulator's
    gate releases the render loop) and closes either when the frame is
    displayed at the client or when it is dropped along the way.
    """

    frame_id: int
    session: str = ""
    opened_at: float = 0.0
    #: Regulator-injected rendering delay immediately before this frame.
    gate_delay_ms: float = 0.0
    #: PriorityFrame fast path engaged (ODR only).
    priority: bool = False
    #: True if a discrete user input is first reflected by this frame.
    input_triggered: bool = False
    intervals: List[StageInterval] = field(default_factory=list)
    #: Set when the frame was discarded before reaching the screen.
    drop_reason: Optional[str] = None
    #: Display (or drop) time; None while the frame is still in flight.
    closed_at: Optional[float] = None

    # -- queries ---------------------------------------------------------

    @property
    def displayed(self) -> bool:
        return self.closed_at is not None and self.drop_reason is None

    @property
    def dropped(self) -> bool:
        return self.drop_reason is not None

    @property
    def open(self) -> bool:
        return self.closed_at is None

    def stages(self) -> List[str]:
        return [iv.stage for iv in self.intervals]

    def interval(self, stage: str) -> Optional[StageInterval]:
        """The (first) interval recorded for ``stage``, if any."""
        for iv in self.intervals:
            if iv.stage == stage:
                return iv
        return None

    def stage_ms(self, stage: str) -> Optional[float]:
        iv = self.interval(stage)
        if iv is None or iv.end is None:
            return None
        return iv.duration_ms

    def queue_wait_ms(self) -> float:
        """Total time spent between stages (inter-stage buffer waits)."""
        waits = 0.0
        for prev, cur in zip(self.intervals, self.intervals[1:]):
            if prev.end is not None and cur.start > prev.end:
                waits += cur.start - prev.end
        return waits

    def total_ms(self) -> Optional[float]:
        """Open-to-close wall time in simulated ms, if the span closed."""
        if self.closed_at is None:
            return None
        return self.closed_at - self.opened_at

    def to_dict(self) -> dict:
        """Flatten for JSONL export."""
        return {
            "frame_id": self.frame_id,
            "session": self.session,
            "opened_at": self.opened_at,
            "gate_delay_ms": self.gate_delay_ms,
            "priority": self.priority,
            "input_triggered": self.input_triggered,
            "stages": [
                {"stage": iv.stage, "start": iv.start, "end": iv.end}
                for iv in self.intervals
            ],
            "drop_reason": self.drop_reason,
            "closed_at": self.closed_at,
        }


class SpanStore:
    """All frame spans of one run, queryable by (session, frame id).

    The store is shared by every session of a multi-tenant server;
    single-session systems use the default ``session=""`` namespace.
    """

    def __init__(self) -> None:
        self._spans: Dict[Tuple[str, int], FrameSpan] = {}
        self._order: List[FrameSpan] = []

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[FrameSpan]:
        return iter(self._order)

    # -- recording -------------------------------------------------------

    def open(
        self,
        frame_id: int,
        at: float,
        session: str = "",
        gate_delay_ms: float = 0.0,
        priority: bool = False,
        input_triggered: bool = False,
    ) -> FrameSpan:
        """Open the span for a newly created frame."""
        key = (session, frame_id)
        if key in self._spans:
            raise ValueError(f"span for frame {frame_id} (session {session!r}) already open")
        span = FrameSpan(
            frame_id=frame_id,
            session=session,
            opened_at=at,
            gate_delay_ms=gate_delay_ms,
            priority=priority,
            input_triggered=input_triggered,
        )
        self._spans[key] = span
        self._order.append(span)
        return span

    def stage(self, frame_id: int, stage: str, start: float, end: float, session: str = "") -> None:
        """Record one completed stage interval on an open span.

        Unknown frame ids are ignored (a stage may complete for a frame
        created before telemetry was attached mid-run).
        """
        span = self._spans.get((session, frame_id))
        if span is not None:
            span.intervals.append(StageInterval(stage, start, end))

    def drop(self, frame_id: int, at: float, reason: str, session: str = "") -> None:
        """Close a span with a drop reason (frame never reached the screen)."""
        span = self._spans.get((session, frame_id))
        if span is not None and span.closed_at is None:
            span.drop_reason = reason
            span.closed_at = at

    def close(self, frame_id: int, at: float, session: str = "") -> None:
        """Close a span normally (frame displayed at the client)."""
        span = self._spans.get((session, frame_id))
        if span is not None and span.closed_at is None:
            span.closed_at = at

    # -- queries ---------------------------------------------------------

    def get(self, frame_id: int, session: str = "") -> Optional[FrameSpan]:
        return self._spans.get((session, frame_id))

    def spans(
        self,
        session: Optional[str] = None,
        dropped: Optional[bool] = None,
    ) -> List[FrameSpan]:
        """Spans in creation order, optionally filtered."""
        out = []
        for span in self._order:
            if session is not None and span.session != session:
                continue
            if dropped is not None and span.dropped != dropped:
                continue
            out.append(span)
        return out

    def sessions(self) -> List[str]:
        return sorted({s.session for s in self._order})
