"""Engine probes: introspection of the discrete-event core.

The simulation engine (:mod:`repro.simcore.engine`) is the hot path of
every experiment, so its observability hooks are *opt-in*: an
:class:`~repro.simcore.engine.Environment` constructed without a probe
pays only one ``is None`` branch per scheduled/fired event, and a
benchmark guard (``tests/test_obs_benchmark.py``) holds that under 5 %
of pre-instrumentation runtime.

With a probe attached, the engine reports every scheduled event, every
fired event, and every started process.  :class:`EngineProbe`
aggregates those into the numbers that make engine-level hot spots and
runaway schedules visible:

* events scheduled / fired, and the calendar's peak heap depth;
* processes started (with per-name counts — a process name that keeps
  growing is a spawn leak);
* wall-clock seconds per simulated second, sampled at every simulated
  second boundary, which is the engine's own "how fast is the hardware
  letting us run" metric.

This module is the **only** sim-path module allowed to read the wall
clock (``simlint`` rule R2's allowlist): wall time here is a read-only
*measurement* of the host, never an input to simulation behaviour, and
even that read is injectable — tests pass a fake ``wallclock`` so probe
arithmetic is itself deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

__all__ = ["EngineProbe", "host_epoch", "host_wallclock"]


def host_epoch() -> float:
    """Host epoch seconds (``time.time``), comparable across processes.

    :func:`host_wallclock` is the right clock for intervals, but its
    epoch is unspecified per process; sweep-level telemetry
    (:mod:`repro.obs.sweep`) needs timestamps a parent and its pool
    workers can put on one timeline, which only the system clock
    provides.  Like every clock read, it lives here — the single
    R2-allowlisted site — and is a measurement *about* execution, never
    an input to simulation behaviour.
    """
    return time.time()


def host_wallclock() -> float:
    """Monotonic host wall-clock read, in seconds.

    Every wall-clock measurement outside this module (the experiment
    runner's run-cost accounting, the sim-engine self-profiler) must go
    through this function — or through an injected replacement — rather
    than importing :mod:`time` itself, keeping ``repro.obs.probes`` the
    single R2-allowlisted clock site.
    """
    return time.perf_counter()


class EngineProbe:
    """Collects engine-level statistics from an attached Environment.

    The three ``on_*`` methods are the engine-facing hook interface;
    anything with the same methods can be passed as the environment's
    ``probe``.
    """

    def __init__(self, wallclock: Optional[Callable[[], float]] = None) -> None:
        #: Clock used for wall-time sampling (injectable for tests).
        self._perf_counter: Callable[[], float] = (
            wallclock if wallclock is not None else time.perf_counter
        )
        self.events_scheduled = 0
        self.events_fired = 0
        self.max_heap_depth = 0
        self.processes_started = 0
        self.process_names: Dict[str, int] = {}
        #: (simulated second, wall seconds spent inside it) samples.
        self.wall_per_sim_second: List[float] = []
        self._current_sim_second: Optional[int] = None
        self._second_wall_start: float = 0.0

    # -- engine-facing hooks ---------------------------------------------

    def on_event_scheduled(self, time_ms: float, priority: int, heap_depth: int) -> None:
        """An event was pushed on the calendar (depth counts it)."""
        self.events_scheduled += 1
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth

    def on_event_fired(self, now_ms: float, heap_depth: int) -> None:
        """An event was popped and its callbacks are about to run."""
        self.events_fired += 1
        second = int(now_ms // 1000.0)
        if second != self._current_sim_second:
            wall = self._perf_counter()
            if self._current_sim_second is not None:
                # Attribute the elapsed wall time to each simulated second
                # crossed (usually exactly one).
                gap = max(1, second - self._current_sim_second)
                per_second = (wall - self._second_wall_start) / gap
                for _ in range(gap):
                    self.wall_per_sim_second.append(per_second)
            self._current_sim_second = second
            self._second_wall_start = wall

    def on_process_started(self, name: str) -> None:
        """A new Process was created on the environment."""
        self.processes_started += 1
        self.process_names[name] = self.process_names.get(name, 0) + 1

    # -- reading ---------------------------------------------------------

    @property
    def pending_events(self) -> int:
        """Events scheduled but not yet fired."""
        return self.events_scheduled - self.events_fired

    def mean_wall_per_sim_second(self) -> Optional[float]:
        """Average wall-clock seconds per simulated second, if sampled."""
        if not self.wall_per_sim_second:
            return None
        return sum(self.wall_per_sim_second) / len(self.wall_per_sim_second)

    def summary(self) -> Dict[str, object]:
        """Flat dict for JSONL export / CLI display."""
        return {
            "events_scheduled": self.events_scheduled,
            "events_fired": self.events_fired,
            "pending_events": self.pending_events,
            "max_heap_depth": self.max_heap_depth,
            "processes_started": self.processes_started,
            "process_names": dict(sorted(self.process_names.items())),
            "wall_per_sim_second_mean": self.mean_wall_per_sim_second(),
            "sim_seconds_sampled": len(self.wall_per_sim_second),
        }
