"""Whole-sweep Chrome traces: one span per cell, one lane per worker.

:func:`sweep_chrome_trace` converts a sweep's event log
(:mod:`repro.obs.sweep`) into the Chrome Trace Format, complementing
the existing *per-run* traces (:mod:`repro.obs.exporters`) one level
up: instead of pipeline stages inside one simulation, the slices here
are whole cells laid out on the worker processes that executed them.
The mapping:

* each worker process becomes one trace *thread* inside a single
  ``sweep`` process — workers sort by pid, the parent's serial lane
  first;
* each executed cell becomes a complete ("X") event spanning the
  cell's measured wall time (from its worker-side
  :class:`~repro.obs.sweep.CellResources`), carrying run_id, label,
  CPU seconds, peak RSS, and events/sec in ``args``;
* fault-plan cells keep their span but take the ``fault`` category and
  a distinct colour, so chaos cells stand out from the plain matrix;
* cached cells become instant ("i") events on a dedicated ``cached``
  lane — they consumed no worker time, but their positions show where
  the resume scan spent the sweep's opening moments;
* failures, timeouts, retries, quarantines, and pool breakages become
  instant events on a ``sweep`` control lane;
* a ``cells_done`` counter track accumulates completions over time —
  its slope *is* the sweep's throughput.

Sweep events carry host-epoch timestamps (comparable across
processes); the trace re-bases them so t=0 is the sweep's first event.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs import sweep as sweepbus
from repro.obs.sweep import SweepEvent

__all__ = ["sweep_chrome_trace", "write_sweep_trace"]

_S_TO_US = 1e6

#: Reserved tids inside the single sweep trace process.
_CONTROL_TID = 0
_CACHED_TID = 1
#: Worker lanes start here, one tid per worker pid.
_FIRST_WORKER_TID = 2

#: Chrome trace reserved colour names.
_CNAME_FAULT = "terrible"
_CNAME_CACHED = "grey"


def _meta(name: str, tid: int, value: str) -> Dict[str, Any]:
    return {"ph": "M", "name": name, "pid": 0, "tid": tid, "args": {"name": value}}


def _sort_index(tid: int) -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": "thread_sort_index",
        "pid": 0,
        "tid": tid,
        "args": {"sort_index": tid},
    }


def _instant(name: str, cat: str, ts_us: float, tid: int, args: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "ph": "i",
        "name": name,
        "cat": cat,
        "s": "t",
        "ts": ts_us,
        "pid": 0,
        "tid": tid,
        "args": args,
    }


def sweep_chrome_trace(events: Sequence[SweepEvent]) -> Dict[str, Any]:
    """Build the Chrome Trace Format object for one sweep's events."""
    trace_events: List[Dict[str, Any]] = [
        _meta("process_name", 0, "sweep"),
        _meta("thread_name", _CONTROL_TID, "sweep control"),
        _sort_index(_CONTROL_TID),
        _meta("thread_name", _CACHED_TID, "cached cells"),
        _sort_index(_CACHED_TID),
    ]
    if not events:
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    base_epoch = min(event.epoch_s for event in events)

    def rebase(epoch_s: float) -> float:
        return max(0.0, epoch_s - base_epoch) * _S_TO_US

    worker_tids: Dict[int, int] = {}

    def lane_for(pid: int) -> int:
        tid = worker_tids.get(pid)
        if tid is None:
            tid = _FIRST_WORKER_TID + len(worker_tids)
            worker_tids[pid] = tid
            trace_events.append(_meta("thread_name", tid, f"worker pid {pid}"))
            trace_events.append(_sort_index(tid))
        return tid

    #: run_id -> the pending cell_started event, for cells that never finish.
    started: Dict[str, SweepEvent] = {}
    cells_done = 0

    for event in events:
        ts_us = rebase(event.epoch_s)
        args: Dict[str, Any] = {"run_id": event.run_id}
        label = event.get("label")
        if label:
            args["label"] = label

        if event.kind == sweepbus.CELL_STARTED:
            started[event.run_id] = event
        elif event.kind == sweepbus.CELL_FINISHED:
            started.pop(event.run_id, None)
            resources = event.get("resources")
            if isinstance(resources, dict):
                span_start = float(resources.get("started_epoch_s", event.epoch_s))
                duration_s = float(resources.get("wall_s", event.get("wall_s", 0.0)))
                args.update(
                    {
                        "cpu_user_s": resources.get("cpu_user_s"),
                        "cpu_sys_s": resources.get("cpu_sys_s"),
                        "max_rss_kb": resources.get("max_rss_kb"),
                        "events_per_sec": resources.get("events_per_sec"),
                    }
                )
                pid = int(resources.get("pid", 0))
            else:
                duration_s = float(event.get("wall_s", 0.0))
                span_start = event.epoch_s - duration_s
                pid = 0
            span: Dict[str, Any] = {
                "ph": "X",
                "name": str(label or event.run_id),
                "cat": "fault" if event.get("faults") else "cell",
                "ts": rebase(span_start),
                "dur": max(duration_s, 0.0) * _S_TO_US,
                "pid": 0,
                "tid": lane_for(pid),
                "args": args,
            }
            if event.get("faults"):
                span["cname"] = _CNAME_FAULT
                args["fault_class"] = event.get("fault_class")
            trace_events.append(span)
            cells_done += 1
            trace_events.append(
                {
                    "ph": "C",
                    "name": "cells_done",
                    "cat": "sweep",
                    "ts": ts_us,
                    "pid": 0,
                    "tid": _CONTROL_TID,
                    "args": {"done": cells_done},
                }
            )
        elif event.kind == sweepbus.CELL_CACHED:
            cached = _instant(f"cached:{label or event.run_id}", "cached", ts_us, _CACHED_TID, args)
            cached["cname"] = _CNAME_CACHED
            trace_events.append(cached)
        elif event.kind in (sweepbus.CELL_FAILED, sweepbus.CELL_TIMED_OUT):
            begin = started.pop(event.run_id, None)
            if begin is not None:
                # A cell that started but never finished: render the
                # doomed attempt as a span up to the failure verdict.
                trace_events.append(
                    {
                        "ph": "X",
                        "name": f"{event.kind}:{label or event.run_id}",
                        "cat": "failure",
                        "cname": _CNAME_FAULT,
                        "ts": rebase(begin.epoch_s),
                        "dur": max(0.0, event.epoch_s - begin.epoch_s) * _S_TO_US,
                        "pid": 0,
                        "tid": lane_for(int(begin.get("pid", 0))),
                        "args": args,
                    }
                )
            if event.kind == sweepbus.CELL_FAILED:
                args["error"] = event.get("error")
            trace_events.append(_instant(event.kind, "failure", ts_us, _CONTROL_TID, args))
        elif event.kind in (
            sweepbus.CELL_RETRIED,
            sweepbus.CELL_QUARANTINED,
            sweepbus.POOL_BROKEN,
            sweepbus.POOL_OPENED,
            sweepbus.WORKER_SPAWNED,
            sweepbus.SWEEP_BEGIN,
            sweepbus.SWEEP_END,
        ):
            extra = {
                key: value
                for key, value in event.fields.items()
                if isinstance(value, (str, int, float, bool))
            }
            args.update(extra)
            trace_events.append(_instant(event.kind, "sweep", ts_us, _CONTROL_TID, args))

    trace_events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0)))
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_sweep_trace(
    events: Sequence[SweepEvent], path: Union[str, Path], indent: Optional[int] = None
) -> int:
    """Write the whole-sweep Chrome trace to ``path``; returns event count."""
    trace = sweep_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=indent)
    return len(trace["traceEvents"])
