"""Self-describing run records: what ran, under what identity, what came out.

A *run record* is the unit the run ledger (:mod:`repro.obs.ledger`)
stores and the regression sentinel (:mod:`repro.obs.sentinel`)
compares: one flat JSON document per executed simulation carrying

* **identity** — a content hash over the canonical ``(config, seed)``
  payload (:func:`config_fingerprint`), so the same cell always maps to
  the same ``run_id`` and re-runs dedupe;
* **provenance** — git revision, schema version, RNG stream names, and
  the wall-clock cost of producing the record;
* **summary metrics** — FPS gap, client FPS, MtP, QoS, per-stage
  utilization, gate-delay statistics, drop counts;
* **per-frame distributions** — windowed client-FPS and FPS-gap series
  plus raw MtP samples, which the sentinel's Mann-Whitney test and
  bootstrap intervals need (a summary mean alone cannot support a
  significance test);
* **engine statistics** — events fired, events/sec, peak heap depth,
  taken from the run's :class:`~repro.obs.probes.EngineProbe` when one
  was attached.

Everything is plain ``dict``/``list``/scalar so records survive JSONL
round-trips bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from typing import Any, Dict, List, Mapping, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.telemetry import Telemetry
    from repro.pipeline.system import RunResult

__all__ = [
    "RECORD_SCHEMA",
    "build_record",
    "config_fingerprint",
    "git_revision",
    "metrics_digest",
    "run_id_for",
]

#: Bumped whenever the record layout changes incompatibly.
RECORD_SCHEMA = 1


def _canonical_json(payload: Mapping[str, Any]) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def config_fingerprint(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical form of ``payload``."""
    return hashlib.sha256(_canonical_json(payload).encode("utf-8")).hexdigest()


def run_id_for(config_payload: Mapping[str, Any], seed: int) -> str:
    """Content address of one (configuration, seed) cell.

    Sixteen hex characters (64 bits) of the SHA-256 over the canonical
    config payload plus the seed — short enough to type, long enough
    that collisions across a ledger are negligible.
    """
    identity = {"config": dict(config_payload), "seed": int(seed)}
    return config_fingerprint(identity)[:16]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Short git revision of the working tree, or ``None`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def _rng_stream_names(result: "RunResult") -> List[str]:
    """The named RNG streams this run drew from, for provenance."""
    system = result.system
    names = [system.rng.name]
    names.extend(f"stage/{stage}" for stage in sorted(system.samplers))
    names.append("frame_size")
    names.append("inputs")
    return names


def _gate_delay_stats(telemetry: Optional["Telemetry"]) -> Optional[Dict[str, float]]:
    if telemetry is None:
        return None
    stats = telemetry.snapshot().histogram_stats("gate_delay_ms")
    if not stats.count:
        return None
    return {
        "count": float(stats.count),
        "mean_ms": stats.mean,
        "p99_ms": stats.p99,
    }


def _drop_counts(result: "RunResult") -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for frame in result.dropped_frames():
        reason = frame.dropped.value if frame.dropped is not None else "unknown"
        counts[reason] = counts.get(reason, 0) + 1
    return dict(sorted(counts.items()))


def _engine_stats(
    telemetry: Optional["Telemetry"], wall_clock_s: Optional[float]
) -> Optional[Dict[str, Any]]:
    if telemetry is None or telemetry.probe is None:
        return None
    probe = telemetry.probe.summary()
    events_fired = int(probe["events_fired"])  # type: ignore[arg-type]
    stats: Dict[str, Any] = {
        "events_scheduled": probe["events_scheduled"],
        "events_fired": events_fired,
        "max_heap_depth": probe["max_heap_depth"],
        "processes_started": probe["processes_started"],
        "wall_per_sim_second_mean": probe["wall_per_sim_second_mean"],
    }
    if wall_clock_s is not None and wall_clock_s > 0.0:
        stats["events_per_sec"] = events_fired / wall_clock_s
    return stats


def build_record(
    result: "RunResult",
    config_payload: Mapping[str, Any],
    label: str = "",
    wall_clock_s: Optional[float] = None,
    git_rev: Optional[str] = None,
    fps_window_ms: float = 1000.0,
) -> Dict[str, Any]:
    """Assemble the full run record for one completed simulation.

    ``config_payload`` must contain every knob that defines the cell
    (benchmark, platform, resolution, regulator spec, duration, warmup,
    ...) *except* the seed, which is read from the run itself — the
    pair is the record's content address.
    """
    system = result.system
    config = result.config
    seed = int(config.seed)
    payload = dict(config_payload)
    telemetry = result.telemetry()

    gap = result.fps_gap()
    mtp_samples = [float(s) for s in result.mtp_samples()]
    qos_target = float(system.resolution.default_fps_target)
    qos = result.qos(qos_target)

    counter = result.counter
    client_series = [
        float(v)
        for v in counter.fps_series("decode", result.t_start, result.t_end, fps_window_ms)
    ]
    render_series = [
        float(v)
        for v in counter.fps_series("render", result.t_start, result.t_end, fps_window_ms)
    ]
    gap_series = [r - c for r, c in zip(render_series, client_series)]

    stage_utilization = {
        stage: result.stage_utilization(stage) for stage in sorted(system.samplers)
    }

    metrics: Dict[str, Any] = {
        "render_fps": result.render_fps,
        "encode_fps": result.encode_fps,
        "client_fps": result.client_fps,
        "fps_gap_mean": gap.mean_gap,
        "fps_gap_max": gap.max_gap,
        "mtp_mean_ms": (sum(mtp_samples) / len(mtp_samples)) if mtp_samples else None,
        "qos_target": qos_target,
        "qos_satisfaction": qos.satisfaction if qos.n_windows else 0.0,
        "bandwidth_mbps": result.bandwidth_mbps(),
        "frames_rendered": result.frames_rendered(),
        "frames_dropped": len(result.dropped_frames()),
        "stage_utilization": stage_utilization,
        "drop_counts": _drop_counts(result),
    }
    gate = _gate_delay_stats(telemetry)
    if gate is not None:
        metrics["gate_delay"] = gate

    record: Dict[str, Any] = {
        "schema": RECORD_SCHEMA,
        "run_id": run_id_for(payload, seed),
        "label": label,
        "seed": seed,
        "config": payload,
        "config_fingerprint": config_fingerprint(payload),
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "rng_streams": _rng_stream_names(result),
        "wall_clock_s": wall_clock_s,
        "metrics": metrics,
        "series": {
            "client_fps": client_series,
            "fps_gap": gap_series,
            "mtp_ms": mtp_samples,
        },
    }
    engine = _engine_stats(telemetry, wall_clock_s)
    if engine is not None:
        record["engine"] = engine
    return record


def metrics_digest(record: Mapping[str, Any]) -> str:
    """Digest over a record's measured content (metrics + series).

    Two records of the same cell with equal digests are byte-equivalent
    evidence; the ledger uses this to dedupe identical re-runs.
    """
    payload = {
        "metrics": record.get("metrics"),
        "series": record.get("series"),
    }
    return config_fingerprint(payload)
