"""Live sweep dashboard: a stdlib terminal view of the event bus.

:class:`SweepDashboard` subscribes to a :class:`~repro.obs.sweep.SweepEventBus`
(or is fed persisted events) and keeps one screenful of sweep state
current as cells execute:

* a progress line — done/total cells, executed vs cached split,
  throughput (cells/min) and a naive ETA (remaining cells at the mean
  executed-cell wall time, divided across workers);
* one lane per worker pid showing the cell it is executing right now
  and for how long — a lane stuck on one label is a hung or
  crash-looping cell;
* a failure tail (most recent failures/timeouts/retries/quarantines),
  because a sweep that is "96% done" with three dead cells is not done.

On a TTY the dashboard repaints in place with ANSI cursor movement; on
anything else (CI logs, pipes) it degrades to one plain line per
significant event, so ``--live`` is always safe to leave on.  Input
handling is the terminal's own (Ctrl-C interrupts; ``odr-sim watch``
additionally treats ``q`` as quit) — no curses, no threads, no
dependencies.

:func:`follow_events` tails a persisted ``events.jsonl`` and feeds a
dashboard, which is how ``odr-sim watch`` observes a sweep running in
a *different* process (the bus flushes per event precisely so this
works).
"""

from __future__ import annotations

import os
import sys
import time
from typing import IO, Any, Callable, Dict, List, Optional, Tuple

from repro.obs import sweep as sweepbus
from repro.obs.probes import host_epoch
from repro.obs.sweep import SweepEvent

__all__ = ["SweepDashboard", "follow_events"]

#: Lanes shown even when more workers exist (the rest are summarized).
_MAX_LANES = 16
#: Failures kept in the tail.
_MAX_FAILURES = 5


class SweepDashboard:
    """Terminal rendering of one sweep's live state.

    Feed it events via :meth:`handle` (subscribe it to a live bus, or
    replay a persisted log).  ``ansi=None`` auto-detects from the
    stream; tests pass ``ansi=False`` and a ``StringIO``.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        ansi: Optional[bool] = None,
        now: Callable[[], float] = host_epoch,
    ) -> None:
        self.stream: IO[str] = stream if stream is not None else sys.stdout
        if ansi is None:
            ansi = bool(getattr(self.stream, "isatty", lambda: False)())
        self.ansi = ansi
        self._now = now
        self._painted_lines = 0
        # -- sweep state --
        self.total_cells = 0
        self.workers = 1
        self.executor: Optional[str] = None
        self.cached = 0
        self.deduped = 0
        self.scheduled = 0
        self.finished = 0
        self.failed = 0
        self.retries = 0
        self.quarantined = 0
        self.begun_epoch: Optional[float] = None
        self.ended = False
        self.end_summary: Optional[str] = None
        #: pid -> (run_id, label, started epoch) for in-flight cells.
        self.active: Dict[int, Tuple[str, str, float]] = {}
        #: Wall seconds of executed cells, for the ETA estimate.
        self.cell_walls: List[float] = []
        #: Recent failure descriptions, newest last.
        self.failures: List[str] = []

    # -- event intake ------------------------------------------------------

    def attach(self, bus: "sweepbus.SweepEventBus") -> None:
        """Subscribe to a live bus (convenience for ``--live``)."""
        bus.subscribe(self.handle)

    def handle(self, event: SweepEvent) -> None:
        """Consume one event and refresh the display."""
        self._apply(event)
        if self.ansi:
            self._repaint()
        else:
            line = self._plain_line(event)
            if line is not None:
                self.stream.write(line + "\n")
                self.stream.flush()

    def _apply(self, event: SweepEvent) -> None:
        kind = event.kind
        if kind == sweepbus.SWEEP_BEGIN:
            # A fresh sweep (watch mode may see several): reset counters.
            self.total_cells = int(event.get("cells", 0))
            self.workers = int(event.get("workers", 1))
            self.executor = event.get("executor")
            self.begun_epoch = event.epoch_s
            self.cached = 0
            self.deduped = 0
            self.scheduled = 0
            self.finished = 0
            self.failed = 0
            self.retries = 0
            self.quarantined = 0
            self.ended = False
            self.end_summary = None
            self.active.clear()
            self.cell_walls.clear()
            self.failures.clear()
        elif kind == sweepbus.SWEEP_END:
            self.ended = True
            self.active.clear()
            self.end_summary = (
                f"executed={event.get('executed')} cached={event.get('cached')} "
                f"failed={event.get('failed')} wall={float(event.get('wall_s', 0.0)):.2f}s"
            )
        elif kind == sweepbus.CELL_CACHED:
            self.cached += 1
        elif kind == sweepbus.CELL_DEDUPED:
            # Another job owned this cell's execution; this one joined
            # the in-flight result.  Counts toward done as a cache hit.
            self.cached += 1
            self.deduped += 1
        elif kind == sweepbus.CELL_SCHEDULED:
            self.scheduled += 1
        elif kind == sweepbus.CELL_STARTED:
            pid = int(event.get("pid", 0))
            self.active[pid] = (
                event.run_id,
                str(event.get("label", event.run_id)),
                event.epoch_s,
            )
        elif kind == sweepbus.CELL_FINISHED:
            self.finished += 1
            wall = float(event.get("wall_s", 0.0))
            if wall > 0.0:
                self.cell_walls.append(wall)
            self._clear_lane(event.run_id)
        elif kind in (sweepbus.CELL_FAILED, sweepbus.CELL_TIMED_OUT):
            self.failed += 1
            cause = (
                event.get("error", "")
                if kind == sweepbus.CELL_FAILED
                else f"timed out after {event.get('timeout_s')}s"
            )
            self._push_failure(f"{event.get('label', event.run_id)}: {cause}")
            self._clear_lane(event.run_id)
        elif kind == sweepbus.CELL_RETRIED:
            self.retries += 1
            self._push_failure(
                f"{event.get('label', event.run_id)}: retrying "
                f"(attempt {event.get('attempt')})"
            )
        elif kind == sweepbus.CELL_QUARANTINED:
            self.quarantined += 1
            self._push_failure(f"{event.run_id}: corrupt cell quarantined")
        elif kind == sweepbus.POOL_BROKEN:
            self._push_failure("worker pool broke; reopening")
            self.active.clear()
        elif kind == sweepbus.JOB_RECOVERED:
            self._push_failure(
                f"recovered {event.get('job_id')} from the job journal "
                f"({event.get('cells')} cell(s))"
            )
        elif kind == sweepbus.DEGRADED_SERIAL:
            self._push_failure(
                f"pool unavailable ({event.get('reason')}); finishing "
                f"{event.get('cells')} cell(s) serially in-process"
            )
            self.active.clear()
        elif kind == sweepbus.LOAD_SHED:
            self._push_failure(f"submit shed: {event.get('reason')}")

    def _clear_lane(self, run_id: str) -> None:
        for pid, (lane_run_id, _, _) in list(self.active.items()):
            if lane_run_id == run_id:
                del self.active[pid]
                return

    def _push_failure(self, text: str) -> None:
        self.failures.append(text)
        del self.failures[:-_MAX_FAILURES]

    # -- rendering ---------------------------------------------------------

    def eta_s(self) -> Optional[float]:
        """Naive remaining-time estimate, or ``None`` before any cell ran."""
        if not self.cell_walls or self.total_cells <= 0 or self.ended:
            return None
        done = self.finished + self.cached + self.failed
        remaining = max(0, self.total_cells - done)
        mean_wall = sum(self.cell_walls) / len(self.cell_walls)
        return remaining * mean_wall / max(1, self.workers)

    def throughput_cells_per_min(self) -> Optional[float]:
        if self.begun_epoch is None or self.finished == 0:
            return None
        elapsed = max(1e-9, self._now() - self.begun_epoch)
        return self.finished / elapsed * 60.0

    def render(self) -> str:
        """The full dashboard as text (what ANSI mode repaints)."""
        done = self.finished + self.cached + self.failed
        lines: List[str] = []
        title = f"sweep: {done}/{self.total_cells} cells"
        if self.executor:
            title += f"  [{self.executor} x{self.workers}]"
        lines.append(title)
        detail = (
            f"  executed={self.finished} cached={self.cached} failed={self.failed}"
        )
        if self.deduped:
            detail += f" deduped={self.deduped}"
        if self.retries:
            detail += f" retries={self.retries}"
        if self.quarantined:
            detail += f" quarantined={self.quarantined}"
        rate = self.throughput_cells_per_min()
        if rate is not None:
            detail += f"  {rate:.1f} cells/min"
        eta = self.eta_s()
        if eta is not None:
            detail += f"  eta {eta:.0f}s"
        lines.append(detail)
        if self.ended:
            lines.append(f"  done: {self.end_summary}")
        else:
            now = self._now()
            for pid in sorted(self.active)[:_MAX_LANES]:
                _, label, since = self.active[pid]
                lines.append(f"  pid {pid:>7}: {label}  ({now - since:.1f}s)")
            hidden = len(self.active) - _MAX_LANES
            if hidden > 0:
                lines.append(f"  ... and {hidden} more worker(s)")
        for failure in self.failures:
            lines.append(f"  ! {failure}")
        return "\n".join(lines)

    def _repaint(self) -> None:
        text = self.render()
        if self._painted_lines:
            # Cursor to the first painted line, then clear to screen end.
            self.stream.write(f"\x1b[{self._painted_lines}F\x1b[0J")
        self.stream.write(text + "\n")
        self.stream.flush()
        self._painted_lines = text.count("\n") + 1

    def _plain_line(self, event: SweepEvent) -> Optional[str]:
        """Non-TTY fallback: one line per significant event."""
        done = self.finished + self.cached + self.failed
        progress = f"[{done}/{self.total_cells}]"
        if event.kind == sweepbus.SWEEP_BEGIN:
            return (
                f"sweep begin: {self.total_cells} cell(s) via "
                f"{self.executor} x{self.workers}"
            )
        if event.kind == sweepbus.CELL_FINISHED:
            return (
                f"{progress} done {event.get('label', event.run_id)} "
                f"({float(event.get('wall_s', 0.0)):.2f}s)"
            )
        if event.kind in (sweepbus.CELL_FAILED, sweepbus.CELL_TIMED_OUT):
            return f"{progress} FAILED {event.get('label', event.run_id)}"
        if event.kind == sweepbus.CELL_RETRIED:
            return f"{progress} retry {event.get('label', event.run_id)}"
        if event.kind == sweepbus.CELL_DEDUPED:
            return f"{progress} deduped {event.get('label', event.run_id)}"
        if event.kind == sweepbus.CELL_QUARANTINED:
            return f"{progress} quarantined {event.run_id}"
        if event.kind == sweepbus.JOB_RECOVERED:
            return (
                f"recovered {event.get('job_id')} from the job journal "
                f"({event.get('cells')} cell(s))"
            )
        if event.kind == sweepbus.DEGRADED_SERIAL:
            return (
                f"pool unavailable; {event.get('cells')} cell(s) "
                f"falling back to serial in-process execution"
            )
        if event.kind == sweepbus.SWEEP_END:
            return f"sweep end: {self.end_summary}"
        return None


def _stdin_quit() -> bool:
    """True when an interactive user pressed ``q`` (POSIX TTY only)."""
    try:
        import select

        if not sys.stdin.isatty():
            return False
        ready, _, _ = select.select([sys.stdin], [], [], 0)
        if not ready:
            return False
        return sys.stdin.read(1).lower().startswith("q")
    except (OSError, ValueError, ImportError):
        return False


def follow_events(
    path: str,
    dashboard: SweepDashboard,
    poll_s: float = 0.25,
    until_end: bool = True,
    timeout_s: Optional[float] = None,
) -> int:
    """Tail ``events.jsonl`` into ``dashboard``; returns events consumed.

    Follows the newest sweep in the file: earlier sweeps' events are
    skipped, and the loop ends at that sweep's ``sweep_end`` (or on
    ``q``/EOF/timeout).  The file may not exist yet — the executor
    creates it lazily on the first event — so the loop waits for it.
    """
    import json

    consumed = 0
    waited = 0.0
    position = 0
    current_sweep: Optional[str] = None
    buffer = ""
    while True:
        if not os.path.exists(path):
            if timeout_s is not None and waited >= timeout_s:
                return consumed
            time.sleep(poll_s)
            waited += poll_s
            continue
        with open(path, "r", encoding="utf-8") as handle:
            handle.seek(position)
            chunk = handle.read()
            position = handle.tell()
        buffer += chunk
        progressed = False
        while "\n" in buffer:
            line, buffer = buffer.split("\n", 1)
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict):
                continue
            event = SweepEvent.from_dict(record)
            if current_sweep is None:
                current_sweep = event.sweep_id
            elif event.sweep_id != current_sweep:
                # A newer sweep started writing: switch to it.
                current_sweep = event.sweep_id
            dashboard.handle(event)
            consumed += 1
            progressed = True
            if until_end and event.kind == sweepbus.SWEEP_END:
                return consumed
        if _stdin_quit():
            return consumed
        if not progressed:
            if timeout_s is not None and waited >= timeout_s:
                return consumed
            time.sleep(poll_s)
            waited += poll_s
