"""The run ledger: an append-only, content-addressed store of run records.

Every instrumented :class:`~repro.experiments.runner.Runner` invocation
(and every ``odr-sim bench`` cell) persists its run record — built by
:func:`repro.obs.runmeta.build_record` — into ``.odr-runs/ledger.jsonl``,
one canonical-JSON object per line.  The store is

* **append-only** — records are never rewritten; history is the point;
* **content-addressed** — a record's ``run_id`` hashes its
  ``(config, seed)`` identity, so re-running the same cell maps to the
  same id, and a re-run whose measured content is byte-identical
  (same :func:`~repro.obs.runmeta.metrics_digest`) is deduped rather
  than appended again;
* **versioned by position** — when code changes alter a cell's results,
  the new record appends under the same ``run_id`` and lookups return
  the *latest* record for an id, with the full history still on disk.

A *baseline* is one pinned record (``.odr-runs/baseline.json``) the
regression sentinel (:mod:`repro.obs.sentinel`) can diff any later run
against; CI keeps its own checked-in baselines under
``benchmarks/baselines/``.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.runmeta import metrics_digest

__all__ = ["DEFAULT_LEDGER_DIR", "RunLedger", "load_record", "resolve_record"]

#: Conventional ledger location at a repository / experiment root.
DEFAULT_LEDGER_DIR = ".odr-runs"


def _dump(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def load_record(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one run record from a standalone JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if not isinstance(record, dict):
        raise ValueError(f"{path}: run record must be a JSON object")
    return record


class RunLedger:
    """Append-only JSONL store of run records under one directory."""

    def __init__(self, root: Union[str, Path] = DEFAULT_LEDGER_DIR) -> None:
        self.root = Path(root)
        # append() is read-check-append; concurrent service jobs that
        # finish cells simultaneously must not interleave those steps,
        # or the same record lands twice before either read sees it.
        self._append_lock = threading.Lock()

    @property
    def path(self) -> Path:
        """The JSONL store itself."""
        return self.root / "ledger.jsonl"

    @property
    def baseline_path(self) -> Path:
        """Location of the pinned baseline record."""
        return self.root / "baseline.json"

    # -- writing ---------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> str:
        """Persist ``record``; returns its ``run_id``.

        Identical re-runs — same ``run_id`` *and* same measured content
        — are deduped: the ledger is left untouched.  A record with the
        same id but different content (the code changed) appends a new
        version.  Thread-safe: the dedupe check and the append are one
        atomic step, so concurrent jobs sharing a ledger write one row
        per unique record, not one per requesting job.
        """
        run_id = str(record.get("run_id", ""))
        if not run_id:
            raise ValueError("run record has no run_id")
        digest = metrics_digest(record)
        with self._append_lock:
            existing = self.get(run_id)
            if existing is not None and metrics_digest(existing) == digest:
                return run_id
            os.makedirs(self.root, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(_dump(record) + "\n")
        return run_id

    def set_baseline(self, record: Dict[str, Any]) -> Path:
        """Pin ``record`` as the ledger's baseline."""
        os.makedirs(self.root, exist_ok=True)
        with open(self.baseline_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, indent=2) + "\n")
        return self.baseline_path

    # -- reading ---------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Every record in append order (oldest first)."""
        if not self.path.exists():
            return []
        out: List[Dict[str, Any]] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    out.append(json.loads(line))
        return out

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        """Latest record whose ``run_id`` starts with ``run_id``."""
        match: Optional[Dict[str, Any]] = None
        for record in self.records():
            if str(record.get("run_id", "")).startswith(run_id):
                match = record
        return match

    def latest(self, offset: int = 0) -> Optional[Dict[str, Any]]:
        """The most recently appended record (``offset`` steps back)."""
        records = self.records()
        if offset < 0 or offset >= len(records):
            return None
        return records[-1 - offset]

    def baseline(self) -> Optional[Dict[str, Any]]:
        """The pinned baseline record, if one was set."""
        if not self.baseline_path.exists():
            return None
        return load_record(self.baseline_path)

    def __len__(self) -> int:
        return len(self.records())


def resolve_record(ref: str, ledger: RunLedger) -> Dict[str, Any]:
    """Resolve a CLI run reference to a record.

    Accepted forms, tried in order:

    * ``latest`` / ``latest~N`` — ledger position from the end;
    * ``baseline`` — the ledger's pinned baseline;
    * a path to a standalone record JSON file (e.g. a checked-in CI
      baseline);
    * a ``run_id`` prefix looked up in the ledger.
    """
    if ref == "latest":
        record = ledger.latest()
        if record is None:
            raise ValueError(f"ledger {ledger.path} is empty")
        return record
    if ref.startswith("latest~"):
        try:
            offset = int(ref.split("~", 1)[1])
        except ValueError:
            raise ValueError(f"bad run reference {ref!r}")
        record = ledger.latest(offset)
        if record is None:
            raise ValueError(f"ledger {ledger.path} has no entry {ref}")
        return record
    if ref == "baseline":
        record = ledger.baseline()
        if record is None:
            raise ValueError(f"no baseline pinned at {ledger.baseline_path}")
        return record
    if os.path.exists(ref):
        return load_record(ref)
    record = ledger.get(ref)
    if record is None:
        raise ValueError(
            f"run {ref!r} not found in {ledger.path} (and is not a file)"
        )
    return record
