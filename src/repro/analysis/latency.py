"""MtP latency decomposition.

The paper reasons about *where* motion-to-photon time goes (input
queuing under NoReg, injected delays under Int/RVS, the priority path
under ODR); this module measures it.  For every closed MtP sample the
answering frame's timestamps decompose the latency into:

* ``input_wait`` — input issue (client) until the answering frame's
  render start: uplink plus however long the input waited for the app
  loop (this is where regulation delays and NoReg's loop cadence show);
* ``render`` / ``copy`` — the frame's own GPU work;
* ``encode_wait`` — copy end until encode end: mailbox/Mul-Buf queueing
  plus the encode itself (NoReg's encoder backlog lives here);
* ``transmit_wait`` — encode end until fully serialized: send-queue
  congestion plus serialization (the GCE blow-up lives here);
* ``deliver`` — propagation plus client receive-queue plus decode.

Sums of components equal the measured MtP latency exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

from repro.metrics.stats import mean

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult

__all__ = ["LatencyBreakdown", "latency_breakdown"]

#: Component names in pipeline order.
COMPONENTS = ("input_wait", "render", "copy", "encode_wait", "transmit_wait", "deliver")


@dataclass(frozen=True)
class LatencyBreakdown:
    """Mean per-component MtP latency over a run (milliseconds)."""

    samples: int
    components: Dict[str, float]

    @property
    def total_ms(self) -> float:
        return sum(self.components.values())

    def fraction(self, component: str) -> float:
        return self.components[component] / self.total_ms

    def dominant(self) -> str:
        """The component contributing the most latency."""
        return max(self.components, key=self.components.get)

    def __str__(self) -> str:
        parts = " + ".join(
            f"{name} {value:.1f}" for name, value in self.components.items()
        )
        return f"MtP {self.total_ms:.1f} ms = {parts} (n={self.samples})"


def latency_breakdown(result: "RunResult") -> LatencyBreakdown:
    """Decompose the run's MtP latency by pipeline component.

    Uses every displayed frame that answered at least one tracked input
    inside the measurement window.
    """
    t_start, t_end = result.t_start, result.t_end
    issued_at = {s.input_id: s.issued_at for s in result.tracker.samples}
    per_component: Dict[str, List[float]] = {name: [] for name in COMPONENTS}
    samples = 0
    for frame in result.system.client.displayed:
        if not frame.input_ids or frame.t_displayed is None:
            continue
        answered = [
            issued_at[i]
            for i in frame.input_ids
            if i in issued_at and t_start <= issued_at[i] < t_end
        ]
        if not answered:
            continue
        # one decomposition per answered input (as MtP sampling does)
        for issue_time in answered:
            samples += 1
            per_component["input_wait"].append(frame.t_render_start - issue_time)
            per_component["render"].append(frame.t_render_end - frame.t_render_start)
            per_component["copy"].append(frame.t_copy_end - frame.t_render_end)
            per_component["encode_wait"].append(frame.t_encode_end - frame.t_copy_end)
            per_component["transmit_wait"].append(frame.t_send_end - frame.t_encode_end)
            per_component["deliver"].append(frame.t_displayed - frame.t_send_end)
    if samples == 0:
        raise ValueError("no answered inputs in the measurement window")
    return LatencyBreakdown(
        samples=samples,
        components={name: mean(values) for name, values in per_component.items()},
    )
