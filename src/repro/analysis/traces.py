"""Stage-trace recording and replay.

:func:`record_stage_traces` extracts the per-frame service-time
sequences (render, copy, encode, decode) from a finished run;
:class:`StageTraces` saves/loads them as CSV.  A
:class:`RecordedStageModel` wraps one recorded sequence behind the same
duck interface as :class:`~repro.workloads.distributions.StageTimeModel`
(``sampler(rng)`` / ``scaled(factor)`` / ``mean_ms``), so a
:class:`~repro.workloads.benchmarks.BenchmarkProfile` built from
recorded traces drops into :class:`~repro.pipeline.system.CloudSystem`
unchanged.

Two use cases:

* **deterministic what-ifs** — replay the exact same workload through a
  different regulator or platform (stronger than common random numbers:
  identical per-frame service times);
* **real-game traces** — a user profiles their own title's frame times
  (e.g. with an in-engine timer) and drives the simulator with them
  instead of fitted distributions.

Note: recorded durations include the run's DRAM-contention inflation.
For like-for-like replays either disable contention in the replay
(``contention_beta=0``) or record from a contention-free run.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Union

from repro.workloads.benchmarks import BenchmarkProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult
    from repro.simcore.rng import SeededRng

__all__ = [
    "RecordedStageModel",
    "ReplaySampler",
    "StageTraces",
    "record_stage_traces",
]

#: Stages recorded/replayed (decode is client-side but replayable too).
TRACE_STAGES = ("render", "copy", "encode", "decode")


class ReplaySampler:
    """Replays a fixed duration sequence, wrapping around at the end."""

    def __init__(self, durations: List[float], scale: float = 1.0):
        if not durations:
            raise ValueError("empty trace")
        if any(d <= 0 for d in durations):
            raise ValueError("trace durations must be positive")
        self._durations = list(durations)
        self._scale = scale
        self._index = 0
        self.wraps = 0

    def next(self) -> float:
        value = self._durations[self._index] * self._scale
        self._index += 1
        if self._index == len(self._durations):
            self._index = 0
            self.wraps += 1
        return value


@dataclass(frozen=True)
class RecordedStageModel:
    """StageTimeModel-compatible wrapper over a recorded duration list."""

    durations: tuple
    scale: float = 1.0

    @property
    def mean_ms(self) -> float:
        return self.scale * sum(self.durations) / len(self.durations)

    def scaled(self, factor: float) -> "RecordedStageModel":
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return RecordedStageModel(self.durations, self.scale * factor)

    def sampler(self, rng: "SeededRng") -> ReplaySampler:  # rng accepted for interface parity
        return ReplaySampler(list(self.durations), self.scale)


@dataclass
class StageTraces:
    """The recorded per-stage service-time sequences of one run."""

    stages: Dict[str, List[float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for stage, values in self.stages.items():
            if not values:
                raise ValueError(f"empty trace for stage {stage!r}")

    def length(self, stage: str) -> int:
        return len(self.stages[stage])

    # -- replay ----------------------------------------------------------

    def as_profile(self, base: BenchmarkProfile) -> BenchmarkProfile:
        """A BenchmarkProfile that replays these traces.

        Non-timing attributes (frame sizes, input rate, power/IPC
        parameters) are inherited from ``base``.
        """
        return BenchmarkProfile(
            name=f"{base.name}-replay",
            full_name=f"{base.full_name} (recorded trace)",
            genre=base.genre,
            render=RecordedStageModel(tuple(self.stages["render"])),
            copy=RecordedStageModel(tuple(self.stages["copy"])),
            encode=RecordedStageModel(tuple(self.stages["encode"])),
            decode=RecordedStageModel(tuple(self.stages["decode"])),
            frame_size=base.frame_size,
            actions_per_second=base.actions_per_second,
            logic_cpu_weight=base.logic_cpu_weight,
            ipc_peak=base.ipc_peak,
        )

    # -- persistence ----------------------------------------------------------

    def save(self, destination: Union[str, io.TextIOBase]) -> None:
        """Write as long-format CSV (stage, index, duration_ms)."""
        own = isinstance(destination, (str, bytes))
        handle = open(destination, "w", newline="") if own else destination
        try:
            writer = csv.writer(handle)
            writer.writerow(["stage", "index", "duration_ms"])
            for stage, values in sorted(self.stages.items()):
                for index, value in enumerate(values):
                    writer.writerow([stage, index, f"{value:.6f}"])
        finally:
            if own:
                handle.close()

    @classmethod
    def load(cls, source: Union[str, io.TextIOBase]) -> "StageTraces":
        own = isinstance(source, (str, bytes))
        handle = open(source, newline="") if own else source
        try:
            reader = csv.DictReader(handle)
            stages: Dict[str, List[float]] = {}
            for row in reader:
                stages.setdefault(row["stage"], []).append(float(row["duration_ms"]))
            if not stages:
                raise ValueError("empty trace file")
            return cls(stages=stages)
        finally:
            if own:
                handle.close()


def record_stage_traces(result: "RunResult", include_warmup: bool = True) -> StageTraces:
    """Extract per-stage duration sequences from a finished run.

    ``include_warmup`` keeps the warm-up frames (recommended when the
    trace will be replayed through a fresh run that has its own
    warm-up window).
    """
    start = 0.0 if include_warmup else result.t_start
    stages: Dict[str, List[float]] = {}
    for stage in TRACE_STAGES:
        records = [r for r in result.trace.records(stage) if r.start >= start]
        records.sort(key=lambda r: r.start)
        durations = [r.duration for r in records]
        if durations:
            stages[stage] = durations
    missing = [s for s in TRACE_STAGES if s not in stages]
    if missing:
        raise ValueError(f"run produced no trace for stages: {missing}")
    return StageTraces(stages=stages)
