"""Multi-seed replication and paired regulator comparisons.

A single seeded run is one draw from the workload distribution; claims
like "ODR increases client FPS by 5.5 %" deserve replication.  This
module provides:

:func:`replicate`
    Run a result factory across seeds and summarize any numeric metrics
    with mean, standard deviation, and a normal-approximation 95 %
    confidence interval.

:func:`paired_compare`
    Compare two regulators **seed by seed** (common random numbers: the
    same seed produces the same workload randomness for both), then
    summarize the per-seed deltas.  Pairing removes workload variance
    from the comparison, exactly like measuring two systems on the same
    recorded game session.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping

__all__ = ["MetricSummary", "Replication", "paired_compare", "replicate"]

#: z-value for a 95% normal confidence interval.
_Z95 = 1.96


@dataclass(frozen=True)
class MetricSummary:
    """Replicated summary of one numeric metric."""

    name: str
    n: int
    mean: float
    std: float
    values: tuple

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of the normal-approximation 95 % CI of the mean."""
        if self.n < 2:
            return float("inf")
        return _Z95 * self.std / math.sqrt(self.n)

    @property
    def ci95(self) -> tuple:
        hw = self.ci95_halfwidth
        return (self.mean - hw, self.mean + hw)

    def significantly_positive(self) -> bool:
        """True if the 95 % CI excludes zero from below."""
        return self.mean - self.ci95_halfwidth > 0

    def significantly_negative(self) -> bool:
        return self.mean + self.ci95_halfwidth < 0

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.3f} ± {self.ci95_halfwidth:.3f} (n={self.n})"


@dataclass(frozen=True)
class Replication:
    """Summaries of every metric across the replicated runs."""

    metrics: Mapping[str, MetricSummary]

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self.metrics

    def names(self) -> List[str]:
        return sorted(self.metrics)


def _summarize(name: str, values: List[float]) -> MetricSummary:
    n = len(values)
    mean = sum(values) / n
    std = math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1)) if n > 1 else 0.0
    return MetricSummary(name=name, n=n, mean=mean, std=std, values=tuple(values))


def replicate(
    factory: Callable[[int], Mapping[str, float]],
    seeds: Iterable[int],
) -> Replication:
    """Run ``factory(seed)`` per seed; summarize each returned metric.

    ``factory`` returns a flat ``{metric_name: value}`` mapping (e.g.
    ``RunResult.summary()``).  Every seed must return the same metric
    set.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    expected_keys = None
    for seed in seeds:
        metrics = dict(factory(seed))
        if expected_keys is None:
            expected_keys = set(metrics)
        elif set(metrics) != expected_keys:
            raise ValueError(
                f"seed {seed} returned metrics {sorted(metrics)} != {sorted(expected_keys)}"
            )
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    return Replication(
        metrics={name: _summarize(name, values) for name, values in collected.items()}
    )


def paired_compare(
    factory_a: Callable[[int], Mapping[str, float]],
    factory_b: Callable[[int], Mapping[str, float]],
    seeds: Iterable[int],
) -> Replication:
    """Summarize per-seed metric deltas ``b - a`` under common seeds."""
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    deltas: Dict[str, List[float]] = {}
    for seed in seeds:
        a = dict(factory_a(seed))
        b = dict(factory_b(seed))
        shared = set(a) & set(b)
        if not shared:
            raise ValueError("factories share no metrics")
        for name in shared:
            deltas.setdefault(name, []).append(float(b[name]) - float(a[name]))
    return Replication(
        metrics={name: _summarize(f"delta:{name}", values) for name, values in deltas.items()}
    )
