"""Post-run analysis utilities.

Tools a downstream user needs to work with simulation output beyond the
paper's tables:

* :mod:`repro.analysis.frame_log` — export a run's complete per-frame
  journey (every timestamp, size, drop reason) to CSV and load it back;
* :mod:`repro.analysis.traces` — record a run's per-stage service-time
  traces and **replay** them through the pipeline (deterministic
  what-if studies on identical workloads, or driving the simulator with
  frame-time traces profiled from a real game);
* :mod:`repro.analysis.replication` — multi-seed replication with
  mean/std/confidence intervals, and paired regulator comparisons using
  common random numbers.
"""

from repro.analysis.frame_log import export_frame_log, load_frame_log
from repro.analysis.latency import LatencyBreakdown, latency_breakdown
from repro.analysis.replication import (
    MetricSummary,
    Replication,
    paired_compare,
    replicate,
)
from repro.analysis.traces import (
    RecordedStageModel,
    StageTraces,
    record_stage_traces,
)

__all__ = [
    "LatencyBreakdown",
    "MetricSummary",
    "RecordedStageModel",
    "Replication",
    "StageTraces",
    "export_frame_log",
    "latency_breakdown",
    "load_frame_log",
    "paired_compare",
    "record_stage_traces",
    "replicate",
]
