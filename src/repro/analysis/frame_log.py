"""Per-frame CSV export/import of a simulation run.

One row per frame created by the 3D app, with every pipeline timestamp,
the encoded size, priority/drop flags, and the input ids the frame
answered.  The CSV round-trips losslessly through
:func:`load_frame_log`, so external tooling (pandas, spreadsheets) can
analyze runs without importing this library.
"""

from __future__ import annotations

import csv
import io
from typing import TYPE_CHECKING, Dict, List, Union

from repro.pipeline.frames import DropReason, Frame

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult

__all__ = ["FRAME_LOG_FIELDS", "export_frame_log", "load_frame_log"]

#: CSV schema, in column order.
FRAME_LOG_FIELDS = [
    "frame_id",
    "triggered_by_input",
    "priority",
    "input_ids",
    "t_created",
    "t_render_start",
    "t_render_end",
    "t_copy_end",
    "t_encode_end",
    "t_send_start",
    "t_send_end",
    "t_received",
    "t_displayed",
    "size_bytes",
    "dropped",
]

_TIME_FIELDS = [f for f in FRAME_LOG_FIELDS if f.startswith("t_")]


def _frame_row(frame: Frame) -> Dict[str, str]:
    row: Dict[str, str] = {
        "frame_id": str(frame.frame_id),
        "triggered_by_input": "1" if frame.triggered_by_input else "0",
        "priority": "1" if frame.priority else "0",
        "input_ids": ";".join(str(i) for i in sorted(frame.input_ids)),
        "size_bytes": str(frame.size_bytes),
        "dropped": frame.dropped.value if frame.dropped else "",
    }
    for field in _TIME_FIELDS:
        value = getattr(frame, field)
        row[field] = "" if value is None else f"{value:.6f}"
    return row


def export_frame_log(result: "RunResult", destination: Union[str, io.TextIOBase]) -> int:
    """Write every frame of ``result`` to CSV; returns the row count.

    ``destination`` may be a path or an open text file object.
    """
    frames = result.system.app.frames
    own_handle = isinstance(destination, (str, bytes))
    handle = open(destination, "w", newline="") if own_handle else destination
    try:
        writer = csv.DictWriter(handle, fieldnames=FRAME_LOG_FIELDS)
        writer.writeheader()
        for frame in frames:
            writer.writerow(_frame_row(frame))
    finally:
        if own_handle:
            handle.close()
    return len(frames)


def _parse_frame(row: Dict[str, str]) -> Frame:
    frame = Frame(
        frame_id=int(row["frame_id"]),
        triggered_by_input=row["triggered_by_input"] == "1",
        priority=row["priority"] == "1",
        input_ids={int(x) for x in row["input_ids"].split(";") if x},
    )
    for field in _TIME_FIELDS:
        text = row.get(field, "")
        setattr(frame, field, float(text) if text else None)
    frame.size_bytes = int(row["size_bytes"] or 0)
    if row.get("dropped"):
        frame.dropped = DropReason(row["dropped"])
    return frame


def load_frame_log(source: Union[str, io.TextIOBase]) -> List[Frame]:
    """Load a frame log written by :func:`export_frame_log`."""
    own_handle = isinstance(source, (str, bytes))
    handle = open(source, newline="") if own_handle else source
    try:
        reader = csv.DictReader(handle)
        missing = set(FRAME_LOG_FIELDS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"frame log missing columns: {sorted(missing)}")
        return [_parse_frame(row) for row in reader]
    finally:
        if own_handle:
            handle.close()
