"""IPC model: memory access time → instructions per cycle.

A classic first-order stall model: the server's frame-processing code
alternates compute with demand misses, so IPC degrades hyperbolically
with the mean DRAM read access time::

    IPC = ipc_peak × C / (C + t_read_ns)

``C`` is the workload's compute-per-miss constant; ``ipc_peak`` is the
benchmark's IPC with free memory.  The constant is calibrated so the
paper's InMind split holds: read time 68 ns → 47 ns must yield ≈ +21 %
IPC (Fig. 7c / Sec. 6.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.dram import DramReport

__all__ = ["IpcModel"]


@dataclass(frozen=True)
class IpcModel:
    """Read-time → IPC mapping."""

    #: Compute-per-miss constant (ns of useful work per memory access).
    compute_constant_ns: float = 53.0

    def evaluate(self, dram: DramReport, ipc_peak: float) -> float:
        """IPC for a benchmark with the given zero-latency peak IPC."""
        if ipc_peak <= 0:
            raise ValueError("ipc_peak must be positive")
        c = self.compute_constant_ns
        return ipc_peak * c / (c + dram.read_access_ns)
