"""Simulated Skylake-style uncore PMU counters.

The paper derives DRAM read access time from two integrated-memory-
controller events (footnote 2, citing the Intel Skylake-X event list):

* ``UNC_M_RPQ_INSERTS`` — read requests entering the read pending queue;
* ``UNC_M_RPQ_OCCUPANCY`` — queue occupancy accumulated per DCLK cycle,

with ``read_time = occupancy / inserts`` (in memory-clock cycles).

This module inverts our DRAM model into those raw counters so that the
harness can report measurements in the same vocabulary the paper uses —
and so the derived read time provably round-trips through the same
formula the authors applied.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.dram import DramReport

__all__ = ["PmuCounters", "simulate_pmu_counters"]

#: DDR4-2666 memory clock (DCLK) in GHz — 0.75 ns per cycle.
DCLK_GHZ = 1.333

#: Modelled DRAM read-request rate of the frame-processing pipeline at
#: full overlap (requests per microsecond); scales with overlap level.
READS_PER_US_FULL = 220.0


@dataclass(frozen=True)
class PmuCounters:
    """Raw uncore counter values over a measurement window."""

    unc_m_rpq_inserts: int
    unc_m_rpq_occupancy: int
    window_ms: float

    @property
    def derived_read_time_ns(self) -> float:
        """The paper's formula: occupancy / inserts, converted to ns."""
        if self.unc_m_rpq_inserts == 0:
            raise ValueError("no read requests recorded")
        cycles = self.unc_m_rpq_occupancy / self.unc_m_rpq_inserts
        return cycles / DCLK_GHZ


def simulate_pmu_counters(dram: DramReport, window_ms: float) -> PmuCounters:
    """Produce raw counters consistent with a DRAM report.

    The request rate scales with how much of the window had memory-
    intensive work in flight; the occupancy integral is chosen so the
    paper's ``occupancy / inserts`` formula recovers the model's read
    access time exactly.
    """
    if window_ms <= 0:
        raise ValueError("window must be positive")
    busy_frac = min(1.0, 0.35 + 0.65 * dram.overlap2_frac)
    inserts = int(READS_PER_US_FULL * busy_frac * window_ms * 1000.0)
    read_cycles = dram.read_access_ns * DCLK_GHZ
    occupancy = int(round(inserts * read_cycles))
    return PmuCounters(
        unc_m_rpq_inserts=inserts,
        unc_m_rpq_occupancy=occupancy,
        window_ms=window_ms,
    )
