"""Server hardware efficiency models (paper Sec. 4.3 and 6.5).

The paper measures three efficiency effects of FPS regulation on the
cloud server, none of which a simulator gets for free:

* **DRAM row-buffer behaviour** — rendering, copying, and encoding each
  move megabytes per frame; when they overlap in time they conflict in
  the row buffers, raising miss rates and read access times
  (:mod:`repro.hardware.dram`, driven by the busy-interval trace);
* **IPC** — slower memory means more stall cycles and lower
  instructions-per-cycle (:mod:`repro.hardware.cpu`);
* **wall power** — excessive rendering burns GPU/CPU energy per frame
  and keeps both devices hot (:mod:`repro.hardware.power`).

:func:`evaluate_hardware` runs all models against a finished
:class:`~repro.pipeline.system.RunResult` and returns one
:class:`HardwareReport` — the simulated equivalent of the paper's PMU +
power-meter measurements.  :mod:`repro.hardware.pmu` additionally
exposes the raw Skylake-style uncore counters
(``UNC_M_RPQ_OCCUPANCY``/``UNC_M_RPQ_INSERTS``) the paper derives its
DRAM read time from.
"""

from repro.hardware.cpu import IpcModel
from repro.hardware.energy import EnergyReport, energy_report
from repro.hardware.dram import DramModel, DramReport
from repro.hardware.pmu import PmuCounters, simulate_pmu_counters
from repro.hardware.power import PowerModel, PowerReport
from repro.hardware.report import HardwareReport, evaluate_hardware

__all__ = [
    "DramModel",
    "DramReport",
    "EnergyReport",
    "energy_report",
    "HardwareReport",
    "IpcModel",
    "PmuCounters",
    "PowerModel",
    "PowerReport",
    "evaluate_hardware",
    "simulate_pmu_counters",
]
