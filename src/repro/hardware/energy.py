"""Energy accounting: joules per delivered frame.

The paper reports wall power; for capacity planning the more actionable
number is energy **per frame the client actually displays** — the
quantity excessive rendering inflates (energy spent on frames that are
rendered and thrown away is charged to the frames that survive).

Two views:

* **average** J/frame = total energy / delivered frames.  Dominated by
  idle power at low frame rates, so a 60 FPS-regulated server can look
  *worse* per frame than a free-running one — a real effect worth
  surfacing (consolidation, not regulation, amortizes idle power; see
  :mod:`repro.multitenant`).
* **marginal** J/frame = (total − idle) energy / delivered frames: the
  energy each additional delivered frame actually costs.  This is the
  number excessive rendering corrupts: under NoReg every delivered
  frame drags the cost of the discarded ones with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hardware.power import PowerModel, PowerReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult

__all__ = ["EnergyReport", "energy_report"]


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one run."""

    power: PowerReport
    window_s: float
    delivered_frames: int
    rendered_frames: int

    @property
    def total_j(self) -> float:
        return self.power.total_w * self.window_s

    @property
    def dynamic_j(self) -> float:
        """Energy above idle over the window."""
        return (self.power.total_w - self.power.idle_w) * self.window_s

    @property
    def avg_j_per_delivered_frame(self) -> float:
        if self.delivered_frames == 0:
            raise ValueError("no frames delivered")
        return self.total_j / self.delivered_frames

    @property
    def marginal_j_per_delivered_frame(self) -> float:
        """Dynamic energy per frame the client displayed."""
        if self.delivered_frames == 0:
            raise ValueError("no frames delivered")
        return self.dynamic_j / self.delivered_frames

    @property
    def waste_fraction(self) -> float:
        """Fraction of rendered frames that never reached the client."""
        if self.rendered_frames == 0:
            raise ValueError("no frames rendered")
        return 1.0 - self.delivered_frames / self.rendered_frames


def energy_report(result: "RunResult", model: PowerModel = PowerModel()) -> EnergyReport:
    """Compute the energy accounting of a finished run."""
    window_s = (result.t_end - result.t_start) / 1000.0
    delivered = len(
        [t for t in result.counter.times("decode") if result.t_start <= t < result.t_end]
    )
    rendered = len(
        [t for t in result.counter.times("render") if result.t_start <= t < result.t_end]
    )
    return EnergyReport(
        power=model.evaluate(result),
        window_s=window_s,
        delivered_frames=delivered,
        rendered_frames=rendered,
    )
