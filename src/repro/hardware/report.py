"""One-call hardware evaluation of a finished run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.hardware.cpu import IpcModel
from repro.hardware.dram import DramModel, DramReport
from repro.hardware.pmu import PmuCounters, simulate_pmu_counters
from repro.hardware.power import PowerModel, PowerReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult

__all__ = ["HardwareReport", "evaluate_hardware"]


@dataclass(frozen=True)
class HardwareReport:
    """All hardware efficiency metrics of one run (the Fig. 7/12/13 set)."""

    dram: DramReport
    ipc: float
    power: PowerReport
    pmu: PmuCounters

    def as_dict(self) -> dict:
        return {
            "row_miss_rate": self.dram.row_miss_rate,
            "read_access_ns": self.dram.read_access_ns,
            "ipc": self.ipc,
            "power_w": self.power.total_w,
        }


def evaluate_hardware(
    result: "RunResult",
    dram_model: DramModel = DramModel(),
    ipc_model: IpcModel = IpcModel(),
    power_model: PowerModel = PowerModel(),
) -> HardwareReport:
    """Run the DRAM, IPC, PMU, and power models over a finished run."""
    dram = dram_model.evaluate(result.trace, result.t_start, result.t_end)
    ipc = ipc_model.evaluate(dram, result.system.benchmark.ipc_peak)
    power = power_model.evaluate(result)
    pmu = simulate_pmu_counters(dram, result.t_end - result.t_start)
    return HardwareReport(dram=dram, ipc=ipc, power=power, pmu=pmu)
