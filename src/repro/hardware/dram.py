"""DRAM row-buffer contention model.

The paper's mechanism (Sec. 6.5): "frame rendering, copying, and
encoding operations are all pipelined ... and executed in their own
threads/processes.  Hence, frequent rendering will increase the
probability that these tasks execute simultaneously.  Simultaneous
execution leads to simultaneous DRAM access and thus DRAM row buffer
contention, and in turn ... slower memory operations and lower IPC."

The model computes, from the run's busy-interval trace, the fraction of
time exactly *k* memory-intensive stages overlapped, and maps that to:

* **row-buffer miss rate** — a base rate (the workload's intrinsic
  locality) plus a contention term per overlap level;
* **DRAM read access time** — a row-hit floor, plus the miss-rate
  weighted conflict penalty, plus a read-queue occupancy term that also
  grows with overlap.

Parameters are calibrated against the paper's InMind measurements
(Fig. 7): NoReg ≈ 70 % miss / 68 ns read with the pipeline fully
overlapped, Int60 ≈ 61 % / 47 ns with overlap mostly eliminated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.simcore import IntervalTrace
from repro.simcore.tracing import overlap_profile

__all__ = ["DramModel", "DramReport"]

#: The memory-intensive pipeline stages on the server.
MEMORY_STAGES = ("render", "copy", "encode")


@dataclass(frozen=True)
class DramReport:
    """DRAM behaviour of one run."""

    #: Row-buffer miss rate in [0, 1] (empty + conflict misses).
    row_miss_rate: float
    #: Mean DRAM read access time (ns), controller-issue to data-return.
    read_access_ns: float
    #: Fraction of time >= 2 memory-intensive stages overlapped.
    overlap2_frac: float
    #: Fraction of time all 3 overlapped.
    overlap3_frac: float


@dataclass(frozen=True)
class DramModel:
    """Overlap → row-miss/read-time mapping (calibrated to Fig. 7)."""

    #: Intrinsic (uncontended) row-buffer miss rate of frame processing.
    base_miss_rate: float = 0.594
    #: Extra miss rate while >= 2 stages overlap.
    miss_per_overlap2: float = 0.106
    #: Additional extra miss rate while all 3 overlap.
    miss_per_overlap3: float = 0.04
    #: Row-hit access time (ns).
    t_row_hit_ns: float = 19.5
    #: Extra access time for a row miss (precharge + activate), ns.
    t_miss_penalty_ns: float = 40.0
    #: Read-queue occupancy penalty at full overlap, ns.
    t_queue_ns: float = 20.5

    def evaluate(
        self,
        trace: IntervalTrace,
        start_ms: float,
        end_ms: float,
        stages: Sequence[str] = MEMORY_STAGES,
    ) -> DramReport:
        """Evaluate DRAM behaviour over ``[start_ms, end_ms)``."""
        profile: Dict[int, float] = overlap_profile(trace, stages, start_ms, end_ms)
        overlap2 = sum(frac for level, frac in profile.items() if level >= 2)
        overlap3 = sum(frac for level, frac in profile.items() if level >= 3)
        miss = (
            self.base_miss_rate
            + self.miss_per_overlap2 * overlap2
            + self.miss_per_overlap3 * overlap3
        )
        miss = min(miss, 1.0)
        read_ns = (
            self.t_row_hit_ns
            + miss * self.t_miss_penalty_ns
            + self.t_queue_ns * overlap2
        )
        return DramReport(
            row_miss_rate=miss,
            read_access_ns=read_ns,
            overlap2_frac=overlap2,
            overlap3_frac=overlap3,
        )
