"""Server wall-power model (the paper's Klein CL110 meter, Sec. 6.5).

Power is decomposed into:

* a **static** term — idle platform power (fans, DRAM refresh, PSU
  losses, device idle states);
* **per-frame dynamic energy** — every rendered frame costs GPU
  shading + memory traffic, every encoded frame costs CPU/codec work;
  these scale with the respective frame *rates* (the term excessive
  rendering wastes);
* **utilization residency** — a device that stays busy cannot enter
  low-power states, modelled as terms proportional to GPU (render) and
  CPU (encode) busy fractions.

Game logic intensity modulates the per-rendered-frame CPU cost via the
benchmark's ``logic_cpu_weight`` (an RTS burns more CPU per frame than
a lightweight VR scene).

Coefficients are fitted to the paper's 720p private-cloud averages:
NoReg ≈ 198.7 W, ODRMax ≈ −7.9 %, ODR60 ≈ −22 %, with IMHOTEP (the
fastest renderer) the highest NoReg consumer and the biggest saver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult

__all__ = ["PowerModel", "PowerReport"]


@dataclass(frozen=True)
class PowerReport:
    """Wall power of one run, with its additive breakdown (watts)."""

    total_w: float
    idle_w: float
    render_dynamic_w: float
    encode_dynamic_w: float
    gpu_residency_w: float
    cpu_residency_w: float


@dataclass(frozen=True)
class PowerModel:
    """Frame-rate + utilization → wall power mapping."""

    #: Idle platform power (W).
    idle_w: float = 109.0
    #: Dynamic energy per rendered frame, expressed as W per render-FPS.
    render_w_per_fps: float = 0.25
    #: Dynamic energy per encoded frame, W per encode-FPS.
    encode_w_per_fps: float = 0.20
    #: GPU active-residency power at 100 % render utilization (W).
    gpu_residency_w: float = 13.8
    #: CPU active-residency power at 100 % encode utilization (W).
    cpu_residency_w: float = 25.0

    def evaluate(self, result: "RunResult") -> PowerReport:
        """Average wall power over the run's measurement window."""
        bench = result.system.benchmark
        # Game-logic CPU intensity modulates per-rendered-frame cost.
        logic_factor = 0.75 + 0.25 * bench.logic_cpu_weight
        render_fps = result.render_fps
        encode_fps = result.encode_fps
        gpu_util = result.stage_utilization("render")
        cpu_util = result.stage_utilization("encode")

        render_dyn = self.render_w_per_fps * logic_factor * render_fps
        encode_dyn = self.encode_w_per_fps * encode_fps
        gpu_res = self.gpu_residency_w * gpu_util
        cpu_res = self.cpu_residency_w * cpu_util
        total = self.idle_w + render_dyn + encode_dyn + gpu_res + cpu_res
        return PowerReport(
            total_w=total,
            idle_w=self.idle_w,
            render_dynamic_w=render_dyn,
            encode_dynamic_w=encode_dyn,
            gpu_residency_w=gpu_res,
            cpu_residency_w=cpu_res,
        )
