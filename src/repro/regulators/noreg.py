"""No FPS regulation (the paper's ``NoReg`` configuration).

The app renders free-running, as fast as the GPU completes frames.  The
proxy encodes the latest rendered frame; everything the encoder cannot
keep up with is overwritten in the mailbox — that discarded work is the
excessive rendering quantified in Fig. 1 and Table 2.  On
bandwidth-constrained paths the send queue additionally fills up and
every frame (including input responses) queues behind megabytes of
stale frames, producing the seconds-scale MtP latency the paper
observed on GCE.
"""

from __future__ import annotations

from repro.regulators.base import Regulator

__all__ = ["NoRegulation"]


class NoRegulation(Regulator):
    """Free-running rendering; the conventional stack with no gating."""

    name = "NoReg"
    fps_target = None
