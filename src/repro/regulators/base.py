"""The regulator interface and the conventional-stack plumbing.

A regulator is the *policy* layer of the pipeline.  It decides:

* when the app may start rendering the next frame (:meth:`Regulator.app_wait`
  — the ``glXSwapBuffers`` hook point);
* what happens to a frame after rendering (:meth:`Regulator.app_submit`);
* how the server proxy and network sender loops are driven
  (:meth:`Regulator.build` spawns them);
* how feedback from the client and user inputs are handled
  (:meth:`Regulator.on_client_display`, :meth:`Regulator.on_client_fps_report`,
  :meth:`Regulator.on_server_input`).

The base class implements the **conventional stack** shared by NoReg,
Int, and RVS: a latest-frame-wins mailbox between app and proxy (whose
overwrites are the excessive rendering), and a byte-bounded send queue
between proxy and network (whose congestion produces the NoReg latency
blow-up on slow paths).  Subclasses override only the policy hooks.
ODR replaces the buffers and loops wholesale (see :mod:`repro.core`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.pipeline.buffers import ByteBudgetQueue, Mailbox
from repro.simcore import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.app import Application3D
    from repro.pipeline.client import Client
    from repro.pipeline.frames import Frame
    from repro.pipeline.inputs import InputEvent
    from repro.pipeline.system import CloudSystem

__all__ = ["Regulator"]


class Regulator:
    """Base FPS-regulation policy: the conventional (non-ODR) stack."""

    #: Display name used in results/tables.
    name = "base"
    #: FPS QoS target; None means "maximize FPS".
    fps_target: Optional[float] = None
    #: Client display refresh rate this regulator assumes (RVS varies it).
    client_refresh_hz: float = 60.0
    #: Whether this policy's injected rendering sleeps mask input
    #: delivery.  The interval/RVS delay sleeps inside the GL call path
    #: after ``glXSwapBuffers``; X events arriving during that sleep are
    #: not seen until the loop has slept *and* rendered once more, so
    #: they take effect one frame cycle late — the mechanism behind the
    #: paper's Sec. 4.2 finding that existing FPS regulations increase
    #: MtP latency.  NoReg never sleeps; ODR's PriorityFrame cancels the
    #: sleep on input, so neither is affected.
    sleep_masks_inputs: bool = False

    def __init__(self) -> None:
        self.system: Optional["CloudSystem"] = None
        self.mailbox: Optional[Mailbox] = None
        self.send_queue: Optional[ByteBudgetQueue] = None

    # -- wiring ------------------------------------------------------------

    def attach(self, system: "CloudSystem") -> None:
        """Bind to a system and spawn this policy's proxy/network loops."""
        self.system = system
        self.build(system)

    def build(self, system: "CloudSystem") -> None:
        """Construct buffers and spawn the conventional proxy/network loops."""
        env = system.env
        self.mailbox = Mailbox(env, on_drop=self._record_drop)
        self.send_queue = ByteBudgetQueue(env, system.platform.send_buffer_bytes)
        env.process(self.proxy_loop(system), name="proxy")
        env.process(self.network_loop(system), name="network")

    def _record_drop(self, frame: "Frame") -> None:
        """Annotate a buffer drop on the run's telemetry, if enabled."""
        if self.system is None:
            return
        telemetry = self.system.telemetry
        if telemetry is not None and frame.dropped is not None:
            telemetry.frame_dropped(frame, self.system.env.now, frame.dropped.value)

    # -- app-side hooks -------------------------------------------------------

    def app_wait(self, app: "Application3D") -> ProcessGenerator:
        """Rendering delay before the next frame; default: none (free-run)."""
        return
        yield  # pragma: no cover -- generator marker

    def app_submit(self, app: "Application3D", frame: "Frame") -> ProcessGenerator:
        """Deliver a rendered frame downstream; default: mailbox offer.

        The mailbox never blocks the renderer: an unconsumed older frame
        is simply overwritten (and thereby becomes excessive rendering).
        """
        assert self.mailbox is not None, "build() must run before app_submit()"
        self.mailbox.offer(frame)
        return
        yield  # pragma: no cover -- generator marker

    # -- proxy / network loops -------------------------------------------------

    def proxy_loop(self, system: "CloudSystem") -> ProcessGenerator:
        """Pull the latest rendered frame, copy+encode, push to send queue.

        The ``put`` blocks while the send queue's byte budget is full —
        TCP backpressure on the encoder.
        """
        assert self.mailbox is not None and self.send_queue is not None
        while True:
            frame = yield self.mailbox.get()
            yield from system.proxy.encode(frame)
            yield self.send_queue.put(frame)
            if system.telemetry is not None:
                self._publish_queue_depth(system)

    def network_loop(self, system: "CloudSystem") -> ProcessGenerator:
        """Serially transmit frames from the send queue."""
        assert self.send_queue is not None, "build() must run before network_loop()"
        while True:
            frame = yield self.send_queue.get()
            if system.telemetry is not None:
                self._publish_queue_depth(system)
            yield from system.network.transmit(frame)

    def _publish_queue_depth(self, system: "CloudSystem") -> None:
        """Publish send-queue occupancy gauges (telemetry already checked)."""
        assert system.telemetry is not None and self.send_queue is not None
        system.telemetry.queue_depth("send_queue", len(self.send_queue))
        system.telemetry.queue_bytes("send_queue", self.send_queue.queued_bytes)

    # -- feedback hooks -----------------------------------------------------------

    def on_server_input(self, app: "Application3D", event: "InputEvent") -> None:
        """A user input reached the server proxy (default: no reaction;
        the input waits in the app's pending queue for the next frame)."""

    def on_client_display(self, client: "Client", frame: "Frame") -> None:
        """A frame was displayed at the client (RVS feedback hook)."""

    def on_client_fps_report(self, client_fps: float) -> None:
        """Per-second client FPS report arrived at the cloud (IntMax hook)."""

    def on_fault_begin(self, kind: str, at_ms: float) -> None:
        """An injected fault window opened (:mod:`repro.faults`).

        Called *in simulation time* at the window's start.  The base
        policies ignore faults — they experience them only through the
        pipeline — but fault-aware policies may pre-position (e.g. drain
        buffers before a known maintenance window).
        """

    def on_fault_end(self, kind: str, at_ms: float) -> None:
        """An injected fault window closed (:mod:`repro.faults`)."""

    # -- reporting ----------------------------------------------------------------

    def describe(self) -> str:
        target = "max" if self.fps_target is None else f"{self.fps_target:g}"
        return f"{self.name} (target={target})"
