"""FPS regulation policies.

This package holds the *baseline* regulators the paper compares ODR
against (Sec. 4):

* :class:`NoRegulation` — free-running rendering (``NoReg``);
* :class:`IntervalRegulator` — software interval-based regulation with a
  fixed FPS target (``Int30``/``Int60``);
* :class:`IntervalMaxRegulator` — the adaptive match-the-client variant
  (``IntMax``), including its documented inability to re-accelerate;
* :class:`RemoteVsync` — Remote VSync (``RVS30/60/Max``), which extends
  display VSync across the network using decode-to-vblank feedback.

ODR itself lives in :mod:`repro.core`.  :func:`make_regulator` builds
any of them (including ODR) from a spec string like ``"NoReg"``,
``"Int60"``, ``"RVSMax"``, ``"ODR30"``, or ``"ODRMax-noPri"``.
"""

from repro.regulators.base import Regulator
from repro.regulators.factory import make_regulator, regulator_label
from repro.regulators.interval import IntervalMaxRegulator, IntervalRegulator
from repro.regulators.noreg import NoRegulation
from repro.regulators.rvs import RemoteVsync

__all__ = [
    "IntervalMaxRegulator",
    "IntervalRegulator",
    "NoRegulation",
    "Regulator",
    "RemoteVsync",
    "make_regulator",
    "regulator_label",
]
