"""Remote VSync (the paper's ``RVS`` baselines, after Liu et al. [49]).

RVS extends display VSync across the network: rendering in the cloud is
synchronized to the *client display's* vblank schedule.  On every
displayed frame the client computes the slack between the frame's
decode completion and the next vblank and ships it to the cloud (one
uplink later); the cloud delays the next frame's rendering by the slack
scaled with an empirically tuned low-pass constant ``cc``.

Two properties of the design — both demonstrated in Sec. 4.1 — emerge
from this model:

* the rendering rate is bounded by the vblank schedule *minus* feedback
  overhead, so client FPS always lands below the refresh rate (RVS60 ≈
  54 FPS on InMind);
* the feedback is one network round trip stale, and ``cc`` is a fixed
  constant, so RVS cannot track frame-to-frame processing-time
  variation (RVSMax reaches only ~76 FPS where NoReg reached 93).

``RVS30``/``RVS60`` use an ordinary 60 Hz display; ``RVSMax`` uses a
240 Hz display so the vblank schedule itself stops being the limit.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.regulators.base import Regulator
from repro.simcore import Event, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.app import Application3D
    from repro.pipeline.client import Client
    from repro.pipeline.frames import Frame

__all__ = ["RemoteVsync"]


class RemoteVsync(Regulator):
    """Remote VSync: vblank-schedule rendering with cc-scaled feedback.

    Three gates before each frame's rendering:

    1. **feedback window** — at most :attr:`WINDOW` frames may be
       rendered without an acknowledged display (Fig. 5c shows the next
       frame's rendering waiting for the previous frame's feedback);
       the in-flight bound is what makes RVS's rate suffer from the
       round trip on top of the vblank schedule;
    2. **vblank grid** — rendering is synchronized to the display's
       (remotely estimated) vblank schedule;
    3. **cc delay** — the last received decode-to-vblank slack, scaled
       by the low-pass constant ``cc``.
    """

    sleep_masks_inputs = True

    #: Maximum frames rendered but not yet acknowledged by the client —
    #: the classic double-buffered VSync swapchain depth.
    WINDOW = 2
    #: Safety valve: never stall on feedback longer than this many
    #: vblank periods (lost acks from dropped frames must not wedge
    #: rendering forever).
    MAX_FEEDBACK_STALL_PERIODS = 4.0

    def __init__(
        self,
        refresh_hz: float = 60.0,
        cc: float = 0.25,
        fps_target: Optional[float] = None,
    ) -> None:
        super().__init__()
        if refresh_hz <= 0:
            raise ValueError("refresh rate must be positive")
        if cc < 0:
            raise ValueError("cc must be non-negative")
        self.client_refresh_hz = float(refresh_hz)
        self.cc = cc
        self.fps_target = fps_target
        self.name = f"RVS{fps_target:g}" if fps_target else "RVSMax"
        #: Most recent decode-to-vblank slack received from the client (ms).
        self.latest_slack_ms = 0.0
        self.feedback_count = 0
        self._last_rendered_id = 0
        self._last_acked_id = 0
        self._ack_events: List[Event] = []

    @property
    def vblank_period_ms(self) -> float:
        return 1000.0 / self.client_refresh_hz

    @property
    def frames_in_flight(self) -> int:
        return self._last_rendered_id - self._last_acked_id

    def app_wait(self, app: "Application3D") -> ProcessGenerator:
        env = app.env
        period = self.vblank_period_ms
        # 1. feedback window: wait for acknowledgements (bounded stall).
        stall_deadline = env.now + self.MAX_FEEDBACK_STALL_PERIODS * period
        while self.frames_in_flight >= self.WINDOW and env.now < stall_deadline:
            ack = env.event()
            self._ack_events.append(ack)
            yield env.any_of([ack, env.timeout(stall_deadline - env.now)])
        # 2. vblank grid.
        now = env.now
        slot = math.floor(now / period + 1e-9)
        boundary = slot * period
        wait = 0.0
        if now > boundary + 1e-9:
            wait = (slot + 1) * period - now
        # 3. cc-scaled feedback delay.
        wait += self.cc * self.latest_slack_ms
        if wait > 0:
            yield env.timeout(wait)

    def app_submit(self, app: "Application3D", frame: "Frame") -> ProcessGenerator:
        self._last_rendered_id = frame.frame_id
        yield from super().app_submit(app, frame)

    def on_client_display(self, client: "Client", frame: "Frame") -> None:
        """Client-side: compute decode-to-vblank slack, send it uplink."""
        env = client.env
        slack = client.next_vblank(env.now) - env.now

        def _deliver(s: float = slack, fid: int = frame.frame_id) -> None:
            self.latest_slack_ms = s
            self.feedback_count += 1
            self._last_acked_id = max(self._last_acked_id, fid)
            acks, self._ack_events = self._ack_events, []
            for ack in acks:
                ack.succeed()

        env.call_at(env.now + client.system.platform.uplink_ms, _deliver)
