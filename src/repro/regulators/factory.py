"""Build regulators from the paper's configuration labels.

The evaluation names configurations ``NoReg``, ``Int30/60/Max``,
``RVS30/60/Max``, ``ODR30/60/Max``, and the ablation ``ODRMax-noPri``
(Table 2).  :func:`make_regulator` parses those labels (plus the
additional ``-noAccel`` ablation this reproduction adds) so experiment
code and the CLI can specify configurations exactly as the paper
writes them.
"""

from __future__ import annotations

import re
from typing import Optional, Union

from repro.regulators.base import Regulator
from repro.regulators.interval import IntervalMaxRegulator, IntervalRegulator
from repro.regulators.noreg import NoRegulation
from repro.regulators.rvs import RemoteVsync

__all__ = ["make_regulator", "regulator_label"]

#: Display refresh used by RVS when maximizing FPS (a current high-end
#: display, per Sec. 4.1's RVSMax analysis).
RVS_MAX_REFRESH_HZ = 240.0

_SPEC_RE = re.compile(
    r"^(?P<family>NoReg|Int|RVS|ODR)(?P<goal>\d+|Max)?(?P<flags>(?:-no\w+)*)$",
    re.IGNORECASE,
)


def make_regulator(spec: str) -> Regulator:
    """Create a regulator from a paper-style label.

    Examples: ``NoReg``, ``Int60``, ``IntMax``, ``RVS30``, ``RVSMax``,
    ``ODR60``, ``ODRMax``, ``ODRMax-noPri``, ``ODR60-noAccel``.
    """
    match = _SPEC_RE.match(spec.strip())
    if not match:
        raise ValueError(f"unrecognized regulator spec {spec!r}")
    family = match.group("family").lower()
    goal = (match.group("goal") or "").lower()
    flags = {f.lower() for f in match.group("flags").split("-") if f}

    target: Optional[float]
    if goal in ("", "max"):
        target = None
    else:
        target = float(goal)

    if family == "noreg":
        if goal not in ("", "max") or flags:
            raise ValueError("NoReg takes no goal or flags")
        return NoRegulation()

    if family == "int":
        if flags:
            raise ValueError("Int regulators take no flags")
        if target is None:
            return IntervalMaxRegulator()
        return IntervalRegulator(target)

    if family == "rvs":
        if flags:
            raise ValueError("RVS regulators take no flags")
        if target is None:
            return RemoteVsync(refresh_hz=RVS_MAX_REFRESH_HZ)
        # Fixed-target RVS runs against an ordinary 60 Hz display.
        return RemoteVsync(refresh_hz=60.0, fps_target=target)

    # family == "odr" — imported here to keep regulators importable
    # without the core package (and vice versa) during partial builds.
    from repro.core import OnDemandRendering

    unknown = flags - {"nopri", "noaccel"}
    if unknown:
        raise ValueError(f"unknown ODR flags: {sorted(unknown)}")
    return OnDemandRendering(
        target_fps=target,
        priority_frames="nopri" not in flags,
        accelerate="noaccel" not in flags,
    )


def regulator_label(spec_or_regulator: Union[str, Regulator]) -> str:
    """Normalize a spec string or regulator instance to its display name."""
    if isinstance(spec_or_regulator, Regulator):
        return spec_or_regulator.name
    return make_regulator(spec_or_regulator).name
