"""Interval-based FPS regulation (the paper's ``Int`` baselines).

Software interval regulation delays the app's main loop so each frame's
rendering starts at the beginning of a regular interval (Sec. 2): for a
60 FPS target, one frame per 16.6 ms grid slot.  Its failure mode
(Sec. 4.1) is inherent: the grid assumes every frame fits its interval,
so a processing-time spike makes the loop *miss* grid slots — rendering
FPS falls below the target and can never be recovered, because the
regulator only ever delays.

:class:`IntervalMaxRegulator` is the adaptive variant used for the
"maximize FPS" goal: it lowers the rendering rate toward the observed
client FPS to close the gap.  The paper's analysis shows its fundamental
flaw — the feedback ratchets the interval *up* whenever a transient
spike opens a gap, but "IntMax cannot re-adjust its rendering rate when
a sudden increase of processing time passes", so the client FPS decays
far below what the hardware can deliver.  The asymmetric
increase/decrease rates below model exactly that.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.regulators.base import Regulator
from repro.simcore import ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.app import Application3D

__all__ = ["IntervalMaxRegulator", "IntervalRegulator"]


class IntervalRegulator(Regulator):
    """Fixed-target interval regulation (``Int30`` / ``Int60``)."""

    sleep_masks_inputs = True

    def __init__(self, target_fps: float) -> None:
        super().__init__()
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        self.fps_target = float(target_fps)
        self.name = f"Int{target_fps:g}"

    @property
    def interval_ms(self) -> float:
        return 1000.0 / self.fps_target

    def app_wait(self, app: "Application3D") -> ProcessGenerator:
        """Delay rendering to the start of the next interval grid slot."""
        env = app.env
        interval = self.interval_ms
        now = env.now
        slot = math.floor(now / interval + 1e-9)
        boundary = slot * interval
        if now > boundary + 1e-9:
            # Mid-interval: the previous frame overran; wait for the next
            # grid slot (this is where spike-induced slots are lost).
            yield env.timeout((slot + 1) * interval - now)


class IntervalMaxRegulator(Regulator):
    """Adaptive interval regulation for the maximize-FPS goal (``IntMax``).

    Control law, applied on every per-second client-FPS report:

    * a rendering-vs-client gap is observed → set the interval to match
      the *client's* rate and stretch it a little more (multiplicative
      increase) — the documented over-reaction to transient spikes;
    * no gap → shrink the interval only by a tiny factor per report
      (the slow, effectively negligible recovery).
    """

    name = "IntMax"
    fps_target = None
    sleep_masks_inputs = True

    #: Gap (FPS) below which the rates are considered matched.
    GAP_THRESHOLD_FPS = 0.5
    #: Multiplicative interval stretch applied on each gap observation.
    INCREASE_FACTOR = 1.02
    #: Multiplicative interval shrink applied on each gap-free report —
    #: nearly a pure ratchet ("IntMax cannot re-adjust its rendering
    #: rate when a sudden increase of processing time passes").
    DECAY_FACTOR = 0.9998
    #: Bounds on the adaptive interval (1000..20 FPS).
    MIN_INTERVAL_MS = 1.0
    MAX_INTERVAL_MS = 50.0

    def __init__(self) -> None:
        super().__init__()
        #: Current rendering interval; starts unregulated (free-run).
        self.interval_ms = self.MIN_INTERVAL_MS
        self._last_render_count = 0

    def app_wait(self, app: "Application3D") -> ProcessGenerator:
        env = app.env
        interval = self.interval_ms
        now = env.now
        slot = math.floor(now / interval + 1e-9)
        boundary = slot * interval
        if now > boundary + 1e-9:
            yield env.timeout((slot + 1) * interval - now)

    def on_client_fps_report(self, client_fps: float) -> None:
        # Cloud-side render FPS over the same reporting period.
        assert self.system is not None, "attach() must run before FPS reports"
        count = self.system.counter.count("render")
        render_fps = float(count - self._last_render_count)
        self._last_render_count = count
        if client_fps <= 0:
            return
        if render_fps - client_fps > self.GAP_THRESHOLD_FPS:
            # Gap observed: match the client's rate, then back off more.
            matched = max(self.interval_ms, 1000.0 / client_fps)
            self.interval_ms = matched * self.INCREASE_FACTOR
        else:
            # Gap closed: recovery is nearly nonexistent by design.
            self.interval_ms *= self.DECAY_FACTOR
        self.interval_ms = min(
            max(self.interval_ms, self.MIN_INTERVAL_MS), self.MAX_INTERVAL_MS
        )
