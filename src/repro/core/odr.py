"""The assembled OnDemand Rendering regulator (paper Sec. 5, Fig. 8).

Data path under ODR::

    3D app --Mul-Buf1--> server proxy (copy+encode, Algorithm 1 pacing)
           --Mul-Buf2--> network sender --> client

The app blocks on Mul-Buf1's back buffer ("the 3D application pauses
its rendering until the buffers are swapped"); the proxy blocks on
Mul-Buf1's swap condition and Mul-Buf2's back buffer; the network
sender blocks on Mul-Buf2's swap condition.  Those four blocking points
are the entire synchronization mechanism — no timing feedback crosses
the network, which is why ODR responds to frame-to-frame variation at
buffer-swap speed instead of round-trip speed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.priorityframe import PriorityFrameController
from repro.core.regulator import FpsRegulatorClock
from repro.pipeline.buffers import MultiBuffer
from repro.regulators.base import Regulator
from repro.simcore import Interrupt, Process, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.app import Application3D
    from repro.pipeline.frames import Frame
    from repro.pipeline.inputs import InputEvent
    from repro.pipeline.system import CloudSystem

__all__ = ["OnDemandRendering"]


class OnDemandRendering(Regulator):
    """ODR: multi-buffering + FPS regulator + PriorityFrame."""

    def __init__(
        self,
        target_fps: Optional[float] = None,
        priority_frames: bool = True,
        accelerate: bool = True,
        debt_window_ms: float = 200.0,
        pacing_margin: float = 0.0,
    ) -> None:
        super().__init__()
        self.fps_target = target_fps
        self.clock = FpsRegulatorClock(
            target_fps=target_fps,
            accelerate=accelerate,
            debt_window_ms=debt_window_ms,
            pacing_margin=pacing_margin,
        )
        self.priority: Optional[PriorityFrameController] = (
            PriorityFrameController(self) if priority_frames else None
        )
        base = f"ODR{target_fps:g}" if target_fps else "ODRMax"
        suffixes: List[str] = []
        if not priority_frames:
            suffixes.append("noPri")
        if not accelerate:
            suffixes.append("noAccel")
        self.name = base + "".join(f"-{s}" for s in suffixes)
        self.mulbuf1: Optional[MultiBuffer] = None
        self.mulbuf2: Optional[MultiBuffer] = None
        self._pacing_process: Optional[Process] = None

    # -- wiring ------------------------------------------------------------

    def build(self, system: "CloudSystem") -> None:
        env = system.env
        self.mulbuf1 = MultiBuffer(env, name="mulbuf1")
        self.mulbuf2 = MultiBuffer(env, name="mulbuf2")
        env.process(self.proxy_loop(system), name="odr-proxy")
        env.process(self.network_loop(system), name="odr-network")

    # -- app-side hooks -------------------------------------------------------

    def app_wait(self, app: "Application3D") -> ProcessGenerator:
        """Pause rendering until Mul-Buf1's back buffer is free.

        A PriorityFrame flush empties the back buffer, so an armed input
        implicitly cancels this wait — the gate opens immediately.
        """
        assert self.mulbuf1 is not None, "build() must run before app_wait()"
        while self.mulbuf1.back_occupied:
            yield self.mulbuf1.back_free()

    def app_submit(self, app: "Application3D", frame: "Frame") -> ProcessGenerator:
        """Deposit the rendered frame into Mul-Buf1's back buffer.

        Only frames already *sitting in buffers* are flushed as obsolete
        (Sec. 5.3); a frame whose render straddled the input's arrival
        is submitted normally — it is the newest world state available
        and "not every priority frame causes frame drop".
        """
        assert self.mulbuf1 is not None, "build() must run before app_submit()"
        yield from self.mulbuf1.put_when_free(frame)

    # -- proxy loop: Algorithm 1 -------------------------------------------------

    def proxy_loop(self, system: "CloudSystem") -> ProcessGenerator:
        """Encode from Mul-Buf1, store to Mul-Buf2, pace via acc_delay."""
        assert self.mulbuf1 is not None and self.mulbuf2 is not None
        env = system.env
        while True:
            start = env.now
            # swap Mul-Buf1 (Algorithm 1 lines 17-18; waits until the app
            # has deposited a new frame) and take the frame to process.
            # The wait is included in the frame's accounted time, so a
            # render spike that starves the encoder is repaid by the
            # acceleration path exactly like an encode spike.
            yield from self.mulbuf1.swap_when_ready()
            frame = self.mulbuf1.take_front()

            # encode (lines 5-6) ...
            yield from system.proxy.encode(frame)
            # ... and store to Mul-Buf2 (lines 7-8; waits for the network
            # to free the back buffer — transmission backpressure).
            yield from self.mulbuf2.put_when_free(frame)
            elapsed = env.now - start

            if frame.priority:
                # Priority frames bypass the regulator entirely: they are
                # "sent ... for encoding and network transmission without
                # any delay" (Sec. 5.3) and do not consume a pacing slot.
                continue

            # lines 10-16: accumulate slack; sleep only when positive.
            sleep_ms = self.clock.frame_processed(elapsed)
            if sleep_ms <= 0:
                continue
            if self.priority is not None and system.app.priority_armed:
                # A priority frame is already pending: cancel the delay
                # (the rendering-delay cancellation of Sec. 5.3).
                self.clock.cancel_debt()
                continue
            telemetry = system.telemetry
            if telemetry is not None:
                telemetry.count("pacing_sleeps_total")
                telemetry.observe("pacing_sleep_ms", sleep_ms)
            try:
                self._pacing_process = env.active_process
                yield env.timeout(sleep_ms)
            except Interrupt:
                # PriorityFrame cut the pacing short.
                self.clock.cancel_debt()
                if telemetry is not None:
                    telemetry.count("pacing_interrupts_total")
            finally:
                self._pacing_process = None

    def interrupt_pacing(self) -> None:
        """Cut the proxy's pacing sleep short (PriorityFrame fast path)."""
        process = self._pacing_process
        if process is not None and process.is_alive:
            self._pacing_process = None
            process.interrupt("priority-frame")

    # -- network loop -----------------------------------------------------------

    def network_loop(self, system: "CloudSystem") -> ProcessGenerator:
        """Transmit from Mul-Buf2's front buffer, swapping when done."""
        assert self.mulbuf2 is not None, "build() must run before network_loop()"
        while True:
            yield from self.mulbuf2.swap_when_ready()
            frame = self.mulbuf2.take_front()
            yield from system.network.transmit(frame)

    # -- feedback hooks -----------------------------------------------------------

    def on_server_input(self, app: "Application3D", event: "InputEvent") -> None:
        if self.priority is not None:
            self.priority.on_input(app, event)
