"""ODR's FPS regulator clock — Algorithm 1 of the paper.

The regulator paces the server proxy's *encode loop*.  It keeps one
piece of state, ``acc_delay``: the accumulated difference between the
target interval and actual per-frame processing time.

* After a fast frame, ``acc_delay`` grows; once positive, the proxy
  sleeps it off (and it resets to zero) — this is the delaying half,
  like interval regulation.
* After a slow frame, ``acc_delay`` goes negative: the proxy continues
  immediately, frame after frame, until the debt is repaid — this is
  the **acceleration** half that existing regulators lack, and the
  reason ODR still meets the target when processing time spikes
  (Fig. 5d).

The paper's QoS goal is windowed ("ensure the FPS target is met for
each small period, e.g. 200 ms"), so debt older than a small window is
forgiven via ``debt_window_ms`` — without it, a long stall would be
chased with an equally long full-speed burst far beyond what any QoS
window needs.

This class is pure state (no simulation dependencies) so Algorithm 1's
arithmetic is directly unit-testable; :mod:`repro.core.odr` drives it
from the proxy process.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["FpsRegulatorClock"]


class FpsRegulatorClock:
    """Algorithm 1: accumulate per-frame slack, sleep only when positive.

    Parameters
    ----------
    target_fps:
        The QoS target; ``None`` disables pacing entirely (the
        maximize-FPS mode, where multi-buffering alone synchronizes the
        pipeline).
    accelerate:
        If False, negative slack is discarded instead of accumulated —
        the regulator degenerates into a delay-only pacer like the
        interval baseline.  Exists for the ablation study.
    debt_window_ms:
        Maximum accumulated debt (most-negative ``acc_delay``) the
        regulator will try to repay, matching the paper's 200 ms QoS
        accounting window.
    pacing_margin:
        Fractional over-provisioning of the pacing rate.  PriorityFrame
        obsolete-frame drops and swap-wait dead time structurally cost a
        fraction of a frame per user action; pacing slightly above the
        target absorbs that, matching the paper's "never undershoot"
        goal (and its observed ODR60 average of 61.6 FPS).
    """

    def __init__(
        self,
        target_fps: Optional[float] = None,
        accelerate: bool = True,
        debt_window_ms: float = 200.0,
        pacing_margin: float = 0.0,
    ) -> None:
        if target_fps is not None and target_fps <= 0:
            raise ValueError("target_fps must be positive")
        if debt_window_ms < 0:
            raise ValueError("debt_window_ms must be non-negative")
        if pacing_margin < 0:
            raise ValueError("pacing_margin must be non-negative")
        self.target_fps = target_fps
        self.accelerate = accelerate
        self.debt_window_ms = debt_window_ms
        self.pacing_margin = pacing_margin
        self.acc_delay_ms = 0.0
        self.sleeps = 0
        self.accelerated_frames = 0

    @property
    def interval_ms(self) -> Optional[float]:
        """The expected per-frame interval (Algorithm 1, line 2)."""
        if self.target_fps is None:
            return None
        return 1000.0 / (self.target_fps * (1.0 + self.pacing_margin))

    def frame_processed(self, elapsed_ms: float) -> float:
        """Account one processed frame; return the sleep to apply (ms).

        ``elapsed_ms`` is the frame's total processing time in the
        proxy loop (encode plus any Mul-Buf2 wait), i.e. lines 5-10 of
        Algorithm 1.  Returns 0 when the regulator should continue
        immediately (acceleration).
        """
        if elapsed_ms < 0:
            raise ValueError("elapsed time cannot be negative")
        interval = self.interval_ms
        if interval is None:
            return 0.0
        time_diff = interval - elapsed_ms
        self.acc_delay_ms += time_diff
        if self.acc_delay_ms > 0:
            sleep = self.acc_delay_ms
            self.acc_delay_ms = 0.0
            self.sleeps += 1
            return sleep
        # Behind target: continue without delay (Algorithm 1's else-path).
        self.accelerated_frames += 1
        if not self.accelerate:
            # Ablation: a delay-only regulator forgets the deficit.
            self.acc_delay_ms = 0.0
        else:
            self.acc_delay_ms = max(self.acc_delay_ms, -self.debt_window_ms)
        return 0.0

    def cancel_debt(self) -> None:
        """Reset accumulated state (PriorityFrame interrupted the pacing)."""
        self.acc_delay_ms = 0.0

    def defer(self, unslept_ms: float) -> None:
        """Re-book pacing time that was skipped for a priority frame.

        When PriorityFrame cuts the pacing sleep short, the remaining
        sleep stays owed: the regular cadence continues as if the
        priority frame had been squeezed in *between* scheduled frames,
        which is why ODR's client FPS lands slightly above the target
        ("slightly higher ... because of the occasional priority
        frames", Sec. 6.3).
        """
        if unslept_ms > 0:
            self.acc_delay_ms += unslept_ms
