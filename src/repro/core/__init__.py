"""OnDemand Rendering (ODR) — the paper's contribution (Sec. 5).

ODR is assembled from three components:

1. **Multi-buffering** (Sec. 5.1) — two front/back buffer pairs,
   Mul-Buf1 between the 3D app and the server proxy and Mul-Buf2
   between the proxy and the network.  Blocking swap semantics
   synchronize the rates of rendering, encoding, and transmission
   without collecting any timing feedback (mechanism:
   :class:`repro.pipeline.buffers.MultiBuffer`).
2. **The FPS regulator** (Sec. 5.2, Algorithm 1) — paces *encoding* to
   the FPS target, and — unlike all prior regulators — *accelerates*
   (skips its delay) whenever accumulated encode time exceeds the
   interval budget, so transient spikes do not cost frames
   (:class:`~repro.core.regulator.FpsRegulatorClock`).
3. **PriorityFrame** (Sec. 5.3) — input-triggered frames cancel the
   rendering delay, flush obsolete frames out of both multi-buffers,
   and bypass the pacing sleep, keeping MtP latency low
   (:class:`~repro.core.priorityframe.PriorityFrameController`).

:class:`~repro.core.odr.OnDemandRendering` plugs all three into the
regulator interface.
"""

from repro.core.odr import OnDemandRendering
from repro.core.priorityframe import PriorityFrameController
from repro.core.regulator import FpsRegulatorClock

__all__ = ["FpsRegulatorClock", "OnDemandRendering", "PriorityFrameController"]
