"""PriorityFrame — ODR's input-latency component (Sec. 5.3).

The observation: most rendered frames answer the application's internal
refreshes, not user inputs (a user produces at most ~5 discrete actions
per second), so the few input-triggered frames can be prioritized
without disturbing regulation.

On every discrete input that reaches the server, the controller:

1. **arms** the app — the next rendered frame is a priority frame
   (the ``XNextEvent``-hook half of PriorityFrame);
2. **cancels the rendering delay** — flushing Mul-Buf1's back buffer
   both drops the obsolete unencoded frame *and* opens the swap gate
   the app's render loop blocks on, so rendering resumes immediately;
3. **drops obsolete frames** — the unsent encoded frame in Mul-Buf2's
   back buffer is flushed too; input ids carried by flushed frames are
   inherited so MtP accounting stays exact;
4. **bypasses pacing** — if the proxy is in its ``acc_delay`` sleep,
   it is interrupted so the priority frame is encoded at once.

Polling events (mouse position / VR pose streams) are explicitly *not*
prioritized, exactly as in the paper: input combining already gives
them low perceived latency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.odr import OnDemandRendering
    from repro.pipeline.app import Application3D
    from repro.pipeline.inputs import InputEvent

__all__ = ["PriorityFrameController"]


class PriorityFrameController:
    """Reacts to discrete inputs on behalf of an ODR regulator."""

    def __init__(self, odr: "OnDemandRendering") -> None:
        self.odr = odr
        self.inputs_seen = 0
        self.frames_flushed = 0

    def on_input(self, app: "Application3D", event: "InputEvent") -> None:
        """Handle a user input that just reached the server proxy."""
        if not event.is_action:
            return  # polling events are combined, never prioritized
        self.inputs_seen += 1
        app.priority_armed = True

        # Drop obsolete frames: the unencoded frame waiting in Mul-Buf1's
        # back buffer and the unsent encoded frame in Mul-Buf2's.
        telemetry = app.system.telemetry
        for buf in (self.odr.mulbuf1, self.odr.mulbuf2):
            if buf is None:
                continue
            dropped = buf.flush_back()
            if dropped is not None:
                self.frames_flushed += 1
                app.inherited_ids |= dropped.input_ids
                if telemetry is not None:
                    telemetry.frame_dropped(dropped, app.env.now, dropped.dropped.value)

        # If the proxy is sitting in its pacing sleep, cut it short.
        self.odr.interrupt_pacing()
