"""The declarative fault model: typed specs, composable plans.

A :class:`FaultSpec` is plain frozen data describing one adverse event
— *what* goes wrong, *where* in the pipeline, and *when* in simulated
time.  A :class:`FaultPlan` is an ordered tuple of specs.  Both are
hashable, picklable (pool workers receive them inside a
:class:`~repro.experiments.plan.CellSpec`), and canonically
serializable (:meth:`FaultSpec.to_dict` / :func:`fault_from_dict`), so
a cell that carries faults stays content-addressed: the plan is part of
the payload the ledger's ``run_id`` hashes.

Specs carry no randomness themselves.  Stochastic faults (stall
storms, packet-loss bursts) draw from the system's seeded RNG tree at
*apply* time (:func:`repro.faults.injectors.apply_fault_plan`), so a
faulted run remains a pure function of ``(config, seed)`` — the same
determinism contract every other input to the simulation obeys.

The taxonomy (``docs/ROBUSTNESS.md``):

==================  ====================================================
:class:`StageStall`       one scheduled service-time stall of a stage
:class:`StallStorm`       a Poisson burst of stalls over a window
:class:`NetworkOutage`    downlink blackhole: nothing serializes
:class:`BandwidthCollapse` capacity drops to a fraction for a window
:class:`PacketLossBurst`  frames sent in the window are lost w.p. *p*
:class:`ClientPause`      the client freezes (decode stall) and resumes
:class:`GpuPreemption`    render service times inflate while a
                          co-tenant holds the GPU (optionally periodic)
==================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Iterator, List, Mapping, Sequence, Tuple, Type

__all__ = [
    "BandwidthCollapse",
    "ClientPause",
    "FAULT_TYPES",
    "FaultPlan",
    "FaultSpec",
    "GpuPreemption",
    "NetworkOutage",
    "PacketLossBurst",
    "StageStall",
    "StallStorm",
    "fault_from_dict",
]

#: Stages whose service-time samplers faults may wrap.
SAMPLED_STAGES = ("render", "copy", "encode", "decode")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class FaultSpec:
    """Base class of all fault specs: plain, frozen, serializable."""

    #: Stable taxonomy name; keys :data:`FAULT_TYPES` and serialization.
    kind: ClassVar[str] = "fault"

    def window(self) -> Tuple[float, float]:
        """``(start_ms, end_ms)`` of this fault's active window."""
        raise NotImplementedError

    def label(self) -> str:
        """Short human-readable tag for traces and tables."""
        return self.kind

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (includes the ``kind`` discriminator)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for spec_field in fields(self):
            payload[spec_field.name] = getattr(self, spec_field.name)
        return payload


@dataclass(frozen=True)
class StageStall(FaultSpec):
    """One scheduled service-time stall: the next ``stage`` draw at or
    after ``at_ms`` is inflated by ``duration_ms`` (a descheduled
    thread, a shader recompile, an encoder scene cut)."""

    stage: str
    at_ms: float
    duration_ms: float

    kind: ClassVar[str] = "stage_stall"

    def __post_init__(self) -> None:
        _require(self.stage in SAMPLED_STAGES, f"unknown stage {self.stage!r}")
        _require(self.at_ms >= 0, "stall time must be non-negative")
        _require(self.duration_ms > 0, "stall duration must be positive")

    def window(self) -> Tuple[float, float]:
        return (self.at_ms, self.at_ms + self.duration_ms)

    def label(self) -> str:
        return f"{self.stage}_stall"


@dataclass(frozen=True)
class StallStorm(FaultSpec):
    """A Poisson burst of stalls on ``stage`` over ``[start, end)``.

    Stall times arrive at ``rate_per_s``; each stall's duration is
    exponential with mean ``mean_stall_ms``.  Both are drawn from the
    system's seeded ``("faults", ...)`` RNG stream at apply time.
    """

    stage: str
    start_ms: float
    end_ms: float
    rate_per_s: float
    mean_stall_ms: float

    kind: ClassVar[str] = "stall_storm"

    def __post_init__(self) -> None:
        _require(self.stage in SAMPLED_STAGES, f"unknown stage {self.stage!r}")
        _require(self.start_ms >= 0, "storm start must be non-negative")
        _require(self.end_ms > self.start_ms, "storm window must be non-empty")
        _require(self.rate_per_s > 0, "storm rate must be positive")
        _require(self.mean_stall_ms > 0, "mean stall duration must be positive")

    def window(self) -> Tuple[float, float]:
        return (self.start_ms, self.end_ms)

    def label(self) -> str:
        return f"{self.stage}_storm"


@dataclass(frozen=True)
class NetworkOutage(FaultSpec):
    """Downlink blackhole: no frame starts serializing during the
    window (transmission attempts park until the outage lifts)."""

    start_ms: float
    duration_ms: float

    kind: ClassVar[str] = "net_outage"

    def __post_init__(self) -> None:
        _require(self.start_ms >= 0, "outage start must be non-negative")
        _require(self.duration_ms > 0, "outage duration must be positive")

    def window(self) -> Tuple[float, float]:
        return (self.start_ms, self.start_ms + self.duration_ms)


@dataclass(frozen=True)
class BandwidthCollapse(FaultSpec):
    """Capacity drops to ``factor`` of nominal for the window — a
    congestion event composed onto the path's bandwidth schedule
    (:mod:`repro.pipeline.netdyn`)."""

    start_ms: float
    duration_ms: float
    factor: float

    kind: ClassVar[str] = "bw_collapse"

    def __post_init__(self) -> None:
        _require(self.start_ms >= 0, "collapse start must be non-negative")
        _require(self.duration_ms > 0, "collapse duration must be positive")
        _require(0 < self.factor <= 1, "collapse factor must be in (0, 1]")

    def window(self) -> Tuple[float, float]:
        return (self.start_ms, self.start_ms + self.duration_ms)


@dataclass(frozen=True)
class PacketLossBurst(FaultSpec):
    """Each frame whose transmission completes inside the window is
    lost with probability ``loss_prob`` (seeded Bernoulli).  Lost
    frames are drop-accounted (``DropReason.NETWORK_LOSS``) and their
    input ids carry to the next delivered frame, so MtP latency sees
    the retransmission cost."""

    start_ms: float
    duration_ms: float
    loss_prob: float

    kind: ClassVar[str] = "packet_loss"

    def __post_init__(self) -> None:
        _require(self.start_ms >= 0, "burst start must be non-negative")
        _require(self.duration_ms > 0, "burst duration must be positive")
        _require(0 < self.loss_prob <= 1, "loss probability must be in (0, 1]")

    def window(self) -> Tuple[float, float]:
        return (self.start_ms, self.start_ms + self.duration_ms)


@dataclass(frozen=True)
class ClientPause(FaultSpec):
    """The client freezes for ``duration_ms`` (app backgrounded, radio
    handover) and resumes: modeled as a decode-stage stall, so frames
    queue at the client and drain on reconnect."""

    at_ms: float
    duration_ms: float

    kind: ClassVar[str] = "client_pause"

    def __post_init__(self) -> None:
        _require(self.at_ms >= 0, "pause time must be non-negative")
        _require(self.duration_ms > 0, "pause duration must be positive")

    def window(self) -> Tuple[float, float]:
        return (self.at_ms, self.at_ms + self.duration_ms)


@dataclass(frozen=True)
class GpuPreemption(FaultSpec):
    """A co-tenant preempts the GPU: render service times multiply by
    ``slowdown`` during each preemption slice.  ``count`` slices of
    ``duration_ms`` repeat every ``period_ms`` (``count=1`` ignores the
    period) — the time-sliced sharing a consolidated server exhibits."""

    start_ms: float
    duration_ms: float
    slowdown: float
    period_ms: float = 0.0
    count: int = 1

    kind: ClassVar[str] = "gpu_preempt"

    def __post_init__(self) -> None:
        _require(self.start_ms >= 0, "preemption start must be non-negative")
        _require(self.duration_ms > 0, "preemption duration must be positive")
        _require(self.slowdown > 1, "slowdown must exceed 1")
        _require(self.count >= 1, "count must be >= 1")
        if self.count > 1:
            _require(
                self.period_ms >= self.duration_ms,
                "period must cover each preemption slice",
            )

    def slices(self) -> List[Tuple[float, float]]:
        """Every preemption slice as ``(start_ms, end_ms)``."""
        return [
            (
                self.start_ms + i * self.period_ms,
                self.start_ms + i * self.period_ms + self.duration_ms,
            )
            for i in range(self.count)
        ]

    def window(self) -> Tuple[float, float]:
        slices = self.slices()
        return (slices[0][0], slices[-1][1])


#: Registry of spec types by taxonomy name (serialization discriminator).
FAULT_TYPES: Dict[str, Type[FaultSpec]] = {
    spec_type.kind: spec_type
    for spec_type in (
        StageStall,
        StallStorm,
        NetworkOutage,
        BandwidthCollapse,
        PacketLossBurst,
        ClientPause,
        GpuPreemption,
    )
}


def fault_from_dict(payload: Mapping[str, Any]) -> FaultSpec:
    """Rebuild a spec from :meth:`FaultSpec.to_dict` output."""
    kind = payload.get("kind")
    if not isinstance(kind, str) or kind not in FAULT_TYPES:
        raise ValueError(f"unknown fault kind {kind!r}")
    spec_type = FAULT_TYPES[kind]
    names = {spec_field.name for spec_field in fields(spec_type)}
    kwargs = {key: value for key, value in payload.items() if key in names}
    extra = set(payload) - names - {"kind"}
    if extra:
        raise ValueError(f"unknown fields for {kind}: {sorted(extra)}")
    return spec_type(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault specs for one run."""

    faults: Tuple[FaultSpec, ...] = ()

    def __init__(self, faults: Sequence[FaultSpec] = ()) -> None:
        object.__setattr__(self, "faults", tuple(faults))

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def to_payload(self) -> List[Dict[str, Any]]:
        """Canonical JSON-ready form (order-preserving)."""
        return [fault.to_dict() for fault in self.faults]

    @classmethod
    def from_payload(cls, payload: Sequence[Mapping[str, Any]]) -> "FaultPlan":
        return cls(tuple(fault_from_dict(item) for item in payload))

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        return ", ".join(
            f"{fault.label()}@{fault.window()[0]:g}ms" for fault in self.faults
        )
