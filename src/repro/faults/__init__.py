"""Declarative fault injection: specs, plans, injectors, chaos catalog.

The paper's central robustness claim — ODR's acceleration path
recovers gracefully from "suddenly-increased processing time"
(Sec. 4.1) — and every regulator's behaviour under network outages,
GPU preemption, or client disconnects are exercised through this
package:

* :mod:`repro.faults.spec` — the typed fault taxonomy
  (:class:`FaultSpec` subclasses) and the :class:`FaultPlan` a cell
  carries; plain frozen data, canonically serializable, part of the
  cell's content address;
* :mod:`repro.faults.injectors` — :func:`apply_fault_plan` wires a
  plan into a constructed :class:`~repro.pipeline.system.CloudSystem`
  (sampler wrappers, network windows, regulator notifications) and
  returns the run's :class:`FaultController`;
* :mod:`repro.faults.catalog` — the named fault classes the
  ``odr-sim chaos`` sweep instantiates per cell horizon.

* :mod:`repro.faults.service` — the *service-plane* chaos taxonomy
  (:class:`ServiceFaultSpec` subclasses) and the seeded
  :class:`ChaosTransport` that makes the gateway's own wire misbehave
  as a pure function of (plan, seed) — the same philosophy, pointed at
  the infrastructure instead of the simulation.

Recovery analytics live in :mod:`repro.metrics.recovery`; the sweep
harness in :mod:`repro.experiments.chaos`.  See ``docs/ROBUSTNESS.md``.
"""

from repro.faults.catalog import FAULT_CLASSES, build_fault_plan, fault_class_names
from repro.faults.injectors import (
    FaultController,
    FaultWindow,
    StallInjector,
    WindowScaleSampler,
    apply_fault_plan,
    inject_stall,
)
from repro.faults.service import (
    SERVICE_FAULT_TYPES,
    ChaosDecisions,
    ChaosSocket,
    ChaosTransport,
    ConnectRefusal,
    ConnectionDrop,
    DelayedWrite,
    ServiceFaultPlan,
    ServiceFaultSpec,
    SlowRead,
    TcpTransport,
    TruncatedFrame,
    service_fault_from_dict,
)
from repro.faults.spec import (
    FAULT_TYPES,
    BandwidthCollapse,
    ClientPause,
    FaultPlan,
    FaultSpec,
    GpuPreemption,
    NetworkOutage,
    PacketLossBurst,
    StageStall,
    StallStorm,
    fault_from_dict,
)

__all__ = [
    "FAULT_CLASSES",
    "FAULT_TYPES",
    "SERVICE_FAULT_TYPES",
    "BandwidthCollapse",
    "ChaosDecisions",
    "ChaosSocket",
    "ChaosTransport",
    "ClientPause",
    "ConnectRefusal",
    "ConnectionDrop",
    "DelayedWrite",
    "FaultController",
    "FaultPlan",
    "FaultSpec",
    "FaultWindow",
    "GpuPreemption",
    "NetworkOutage",
    "PacketLossBurst",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "SlowRead",
    "StageStall",
    "StallInjector",
    "StallStorm",
    "TcpTransport",
    "TruncatedFrame",
    "WindowScaleSampler",
    "apply_fault_plan",
    "build_fault_plan",
    "fault_class_names",
    "fault_from_dict",
    "inject_stall",
    "service_fault_from_dict",
]
