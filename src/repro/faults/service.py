"""Service-plane fault injection: seeded chaos for the gateway wire.

PR 5 made the *simulated* pipeline's failures declarative and seeded;
this module extends the same philosophy to the service plane itself.
A :class:`ServiceFaultSpec` declares one kind of transport misbehavior
— connection refusal, mid-stream drops, truncated frames, slow-loris
reads, delayed writes — and a :class:`ChaosTransport` wraps the
client's NDJSON-over-TCP layer so every connection misbehaves as a
**pure function of (fault plan, seed, connection index)**:

* :meth:`ChaosTransport.decisions_for` computes the fault decisions
  for the *n*-th connection from seeded draws alone — no wall clock,
  no shared state — so a chaos run's behavior is replayable and tests
  can assert the exact decision sequence for a fixed seed;
* :class:`ChaosSocket` applies those decisions to a real socket,
  raising the same builtin exceptions (:class:`ConnectionRefusedError`,
  :class:`ConnectionResetError`) a hostile network would, which the
  resilient client maps to retryable
  :class:`~repro.service.errors.TransportError`.

These specs deliberately do **not** subclass
:class:`repro.faults.spec.FaultSpec`: the simulation fault taxonomy is
bound to simulated time windows and the injector contract, while
service faults live in host time on the wire.  They share the idiom
(frozen dataclass, ``kind`` discriminator, registry, canonical dicts),
not the type.

This module must not import :mod:`repro.service` — the client imports
*us* (``repro.service.client`` accepts any transport), and the reverse
edge would cycle through :mod:`repro.experiments.chaos`.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Type

from repro.simcore.rng import SeededRng, derive_seed

__all__ = [
    "ChaosDecisions",
    "ChaosSocket",
    "ChaosTransport",
    "ConnectRefusal",
    "ConnectionDrop",
    "DelayedWrite",
    "SERVICE_FAULT_TYPES",
    "ServiceFaultPlan",
    "ServiceFaultSpec",
    "SlowRead",
    "TcpTransport",
    "TruncatedFrame",
    "service_fault_from_dict",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class ServiceFaultSpec:
    """Base class of service-plane fault specs: frozen, serializable."""

    #: Stable taxonomy name; keys :data:`SERVICE_FAULT_TYPES`.
    kind: ClassVar[str] = "service_fault"

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (includes the ``kind`` discriminator)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for spec_field in fields(self):
            payload[spec_field.name] = getattr(self, spec_field.name)
        return payload


@dataclass(frozen=True)
class ConnectRefusal(ServiceFaultSpec):
    """With probability ``prob``, a connection attempt is refused
    outright (the gateway restarting, a full accept backlog)."""

    prob: float

    kind: ClassVar[str] = "connect_refusal"

    def __post_init__(self) -> None:
        _require(0 <= self.prob <= 1, "refusal probability must be in [0, 1]")


@dataclass(frozen=True)
class ConnectionDrop(ServiceFaultSpec):
    """With probability ``prob``, the connection resets after
    ``after_bytes`` bytes have been read from it — a NAT timeout or a
    crashing peer mid-response."""

    prob: float
    after_bytes: int = 64

    kind: ClassVar[str] = "connection_drop"

    def __post_init__(self) -> None:
        _require(0 <= self.prob <= 1, "drop probability must be in [0, 1]")
        _require(self.after_bytes >= 0, "after_bytes must be non-negative")


@dataclass(frozen=True)
class TruncatedFrame(ServiceFaultSpec):
    """With probability ``prob``, one write sends only ``keep_fraction``
    of its bytes and then resets — the peer sees a half frame followed
    by EOF, the classic torn-line case the server must survive."""

    prob: float
    keep_fraction: float = 0.5

    kind: ClassVar[str] = "truncated_frame"

    def __post_init__(self) -> None:
        _require(0 <= self.prob <= 1, "truncation probability must be in [0, 1]")
        _require(
            0 <= self.keep_fraction < 1, "keep_fraction must be in [0, 1)"
        )


@dataclass(frozen=True)
class SlowRead(ServiceFaultSpec):
    """With probability ``prob``, every read on the connection stalls
    ``delay_s`` first — a slow-loris client from the server's view,
    a congested path from the client's."""

    prob: float
    delay_s: float = 0.01

    kind: ClassVar[str] = "slow_read"

    def __post_init__(self) -> None:
        _require(0 <= self.prob <= 1, "slow-read probability must be in [0, 1]")
        _require(self.delay_s >= 0, "delay must be non-negative")


@dataclass(frozen=True)
class DelayedWrite(ServiceFaultSpec):
    """With probability ``prob``, every write on the connection is
    delayed ``delay_s`` — send-buffer pressure, a paused uplink."""

    prob: float
    delay_s: float = 0.01

    kind: ClassVar[str] = "delayed_write"

    def __post_init__(self) -> None:
        _require(0 <= self.prob <= 1, "delay probability must be in [0, 1]")
        _require(self.delay_s >= 0, "delay must be non-negative")


#: Registry of service fault types by taxonomy name.
SERVICE_FAULT_TYPES: Dict[str, Type[ServiceFaultSpec]] = {
    spec_type.kind: spec_type
    for spec_type in (
        ConnectRefusal,
        ConnectionDrop,
        TruncatedFrame,
        SlowRead,
        DelayedWrite,
    )
}


def service_fault_from_dict(payload: Mapping[str, Any]) -> ServiceFaultSpec:
    """Rebuild a spec from :meth:`ServiceFaultSpec.to_dict` output."""
    kind = payload.get("kind")
    if not isinstance(kind, str) or kind not in SERVICE_FAULT_TYPES:
        raise ValueError(f"unknown service fault kind {kind!r}")
    spec_type = SERVICE_FAULT_TYPES[kind]
    names = {spec_field.name for spec_field in fields(spec_type)}
    kwargs = {key: value for key, value in payload.items() if key in names}
    extra = set(payload) - names - {"kind"}
    if extra:
        raise ValueError(f"unknown fields for {kind}: {sorted(extra)}")
    return spec_type(**kwargs)


@dataclass(frozen=True)
class ServiceFaultPlan:
    """An ordered, immutable collection of service fault specs."""

    faults: Tuple[ServiceFaultSpec, ...] = ()

    def __init__(self, faults: Sequence[ServiceFaultSpec] = ()) -> None:
        object.__setattr__(self, "faults", tuple(faults))

    def __iter__(self) -> Iterator[ServiceFaultSpec]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def to_payload(self) -> List[Dict[str, Any]]:
        """Canonical JSON-ready form (order-preserving)."""
        return [fault.to_dict() for fault in self.faults]

    @classmethod
    def from_payload(
        cls, payload: Sequence[Mapping[str, Any]]
    ) -> "ServiceFaultPlan":
        return cls(tuple(service_fault_from_dict(item) for item in payload))


@dataclass(frozen=True)
class ChaosDecisions:
    """Every fault decision for one connection, fully precomputed.

    A pure function of ``(plan, seed, connection index)`` — tests
    assert these directly instead of racing live sockets.
    """

    refuse_connect: bool = False
    drop_after_bytes: Optional[int] = None
    truncate_keep_fraction: Optional[float] = None
    read_delay_s: float = 0.0
    write_delay_s: float = 0.0

    @property
    def clean(self) -> bool:
        """True when this connection behaves perfectly."""
        return (
            not self.refuse_connect
            and self.drop_after_bytes is None
            and self.truncate_keep_fraction is None
            and self.read_delay_s == 0.0
            and self.write_delay_s == 0.0
        )


class TcpTransport:
    """The default, fault-free transport: a plain TCP connect.

    Exists so the client has one seam — :class:`ChaosTransport` (and
    test doubles) substitute here without the client knowing.
    """

    def open(
        self, host: str, port: int, timeout_s: Optional[float] = None
    ) -> socket.socket:
        return socket.create_connection((host, port), timeout=timeout_s)


class ChaosSocket:
    """A socket wrapper that acts out one connection's fault decisions.

    Raises the builtin exceptions a hostile network raises
    (:class:`ConnectionResetError`), so callers cannot tell injected
    weather from real weather — which is the point.
    """

    def __init__(self, sock: socket.socket, decisions: ChaosDecisions) -> None:
        self._sock = sock
        self._decisions = decisions
        self._received = 0
        self._truncated = False

    def sendall(self, data: bytes) -> None:
        decisions = self._decisions
        if decisions.write_delay_s > 0:
            time.sleep(decisions.write_delay_s)
        if decisions.truncate_keep_fraction is not None and not self._truncated:
            self._truncated = True
            keep = int(len(data) * decisions.truncate_keep_fraction)
            if keep:
                self._sock.sendall(data[:keep])
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            raise ConnectionResetError("chaos: frame truncated mid-write")
        self._sock.sendall(data)

    def recv(self, bufsize: int) -> bytes:
        decisions = self._decisions
        if decisions.read_delay_s > 0:
            time.sleep(decisions.read_delay_s)
        if (
            decisions.drop_after_bytes is not None
            and self._received >= decisions.drop_after_bytes
        ):
            raise ConnectionResetError("chaos: connection dropped mid-stream")
        data = self._sock.recv(bufsize)
        self._received += len(data)
        return data

    def settimeout(self, timeout_s: Optional[float]) -> None:
        self._sock.settimeout(timeout_s)

    def close(self) -> None:
        self._sock.close()


class ChaosTransport:
    """A transport whose every connection misbehaves deterministically.

    Wraps an ``inner`` transport (default: real TCP).  The *n*-th
    :meth:`open` call applies :meth:`decisions_for(n) <decisions_for>`,
    so a client run under a fixed ``(plan, seed)`` sees the same fault
    sequence every time — chaos you can put in a regression test.
    """

    def __init__(
        self,
        plan: ServiceFaultPlan,
        seed: int,
        inner: Optional[TcpTransport] = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.inner = inner if inner is not None else TcpTransport()
        self._connections = 0
        #: Decisions acted out so far, by connection index (observability).
        self.log: List[ChaosDecisions] = []

    def decisions_for(self, index: int) -> ChaosDecisions:
        """Fault decisions for the ``index``-th connection — pure.

        Draws consume the seeded stream in spec order, one decision per
        spec, from a child RNG derived per connection index; no draw
        depends on live socket state, so two transports with the same
        plan and seed agree on every index.
        """
        rng = SeededRng(derive_seed(self.seed, "service-faults", str(index)))
        refuse = False
        drop_after: Optional[int] = None
        keep_fraction: Optional[float] = None
        read_delay = 0.0
        write_delay = 0.0
        for spec in self.plan:
            hit = rng.bernoulli(getattr(spec, "prob", 0.0))
            if not hit:
                continue
            if isinstance(spec, ConnectRefusal):
                refuse = True
            elif isinstance(spec, ConnectionDrop):
                drop_after = spec.after_bytes
            elif isinstance(spec, TruncatedFrame):
                keep_fraction = spec.keep_fraction
            elif isinstance(spec, SlowRead):
                read_delay = max(read_delay, spec.delay_s)
            elif isinstance(spec, DelayedWrite):
                write_delay = max(write_delay, spec.delay_s)
        return ChaosDecisions(
            refuse_connect=refuse,
            drop_after_bytes=drop_after,
            truncate_keep_fraction=keep_fraction,
            read_delay_s=read_delay,
            write_delay_s=write_delay,
        )

    def open(
        self, host: str, port: int, timeout_s: Optional[float] = None
    ) -> ChaosSocket:
        index = self._connections
        self._connections += 1
        decisions = self.decisions_for(index)
        self.log.append(decisions)
        if decisions.refuse_connect:
            raise ConnectionRefusedError("chaos: connection refused")
        sock = self.inner.open(host, port, timeout_s=timeout_s)
        return ChaosSocket(sock, decisions)
