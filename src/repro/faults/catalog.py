"""Named fault classes for chaos sweeps (``odr-sim chaos``).

Each entry builds a small, horizon-relative :class:`FaultPlan` from the
cell's ``(duration_ms, warmup_ms)``: faults land ~a third of the way
into the measured window, leaving the back half of the run for
recovery, so time-to-recover is measurable whenever the regulator does
recover.  The builders are pure — all stochastic detail (storm
arrivals, loss draws) resolves from the run's seed at apply time.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.faults.spec import (
    BandwidthCollapse,
    ClientPause,
    FaultPlan,
    GpuPreemption,
    NetworkOutage,
    PacketLossBurst,
    StageStall,
    StallStorm,
)

__all__ = ["FAULT_CLASSES", "build_fault_plan", "fault_class_names"]

#: A fault-class builder maps ``(duration_ms, warmup_ms)`` to a plan.
FaultClassBuilder = Callable[[float, float], FaultPlan]


def _at(warmup_ms: float, duration_ms: float, fraction: float) -> float:
    """A point ``fraction`` of the way through the measured window."""
    return warmup_ms + duration_ms * fraction


def _encode_stall(duration_ms: float, warmup_ms: float) -> FaultPlan:
    """The paper's Sec. 4.1 scenario: one 300 ms encoder stall."""
    return FaultPlan([StageStall("encode", _at(warmup_ms, duration_ms, 0.35), 300.0)])


def _stall_storm(duration_ms: float, warmup_ms: float) -> FaultPlan:
    return FaultPlan(
        [
            StallStorm(
                stage="render",
                start_ms=_at(warmup_ms, duration_ms, 0.30),
                end_ms=_at(warmup_ms, duration_ms, 0.50),
                rate_per_s=4.0,
                mean_stall_ms=40.0,
            )
        ]
    )


def _net_outage(duration_ms: float, warmup_ms: float) -> FaultPlan:
    return FaultPlan(
        [
            NetworkOutage(
                start_ms=_at(warmup_ms, duration_ms, 0.35),
                duration_ms=min(1000.0, duration_ms * 0.10),
            )
        ]
    )


def _bw_collapse(duration_ms: float, warmup_ms: float) -> FaultPlan:
    return FaultPlan(
        [
            BandwidthCollapse(
                start_ms=_at(warmup_ms, duration_ms, 0.30),
                duration_ms=duration_ms * 0.15,
                factor=0.25,
            )
        ]
    )


def _packet_loss(duration_ms: float, warmup_ms: float) -> FaultPlan:
    return FaultPlan(
        [
            PacketLossBurst(
                start_ms=_at(warmup_ms, duration_ms, 0.35),
                duration_ms=duration_ms * 0.12,
                loss_prob=0.3,
            )
        ]
    )


def _client_pause(duration_ms: float, warmup_ms: float) -> FaultPlan:
    return FaultPlan([ClientPause(_at(warmup_ms, duration_ms, 0.35), 500.0)])


def _gpu_preempt(duration_ms: float, warmup_ms: float) -> FaultPlan:
    return FaultPlan(
        [
            GpuPreemption(
                start_ms=_at(warmup_ms, duration_ms, 0.30),
                duration_ms=120.0,
                slowdown=3.5,
                period_ms=480.0,
                count=4,
            )
        ]
    )


#: The chaos sweep's fault classes, by stable name.
FAULT_CLASSES: Dict[str, FaultClassBuilder] = {
    "encode_stall": _encode_stall,
    "stall_storm": _stall_storm,
    "net_outage": _net_outage,
    "bw_collapse": _bw_collapse,
    "packet_loss": _packet_loss,
    "client_pause": _client_pause,
    "gpu_preempt": _gpu_preempt,
}


def fault_class_names() -> List[str]:
    """Sorted fault-class names (CLI choices, sweep default order)."""
    return sorted(FAULT_CLASSES)


def build_fault_plan(name: str, duration_ms: float, warmup_ms: float) -> FaultPlan:
    """Instantiate the named fault class for one cell's horizon."""
    try:
        builder = FAULT_CLASSES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault class {name!r}; have {fault_class_names()}"
        ) from None
    return builder(float(duration_ms), float(warmup_ms))
