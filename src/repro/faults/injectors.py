"""Applying a fault plan to a live system: injectors and controller.

:func:`apply_fault_plan` turns the declarative specs of a
:class:`~repro.faults.spec.FaultPlan` into concrete mechanism on a
constructed (not yet run) :class:`~repro.pipeline.system.CloudSystem`:

* stage stalls / storms / client pauses wrap the stage's service-time
  sampler in a :class:`StallInjector`;
* GPU preemption wraps the render sampler in a
  :class:`WindowScaleSampler`;
* bandwidth collapses compose a windowed dip onto the network path's
  bandwidth schedule (:mod:`repro.pipeline.netdyn`);
* outages and packet-loss bursts register windows on the returned
  :class:`FaultController`, which the network path consults at
  transmit time.

All randomness (storm arrival times, loss draws) comes from the
system's seeded ``("faults", ...)`` RNG children, so a faulted run is
still a pure function of ``(config, seed)``.  Every fault window is
recorded on the controller — and, when telemetry is attached, via
:meth:`~repro.obs.telemetry.Telemetry.fault_window` — and the
regulator is notified at the window edges through its
``on_fault_begin`` / ``on_fault_end`` hooks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    cast,
)

from repro.faults.spec import (
    BandwidthCollapse,
    ClientPause,
    FaultPlan,
    GpuPreemption,
    NetworkOutage,
    PacketLossBurst,
    StageStall,
    StallStorm,
)
from repro.pipeline.netdyn import BandwidthSchedule, compose
from repro.simcore import Environment, SeededRng

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.frames import Frame
    from repro.pipeline.system import CloudSystem

__all__ = [
    "FaultController",
    "FaultWindow",
    "StallInjector",
    "WindowScaleSampler",
    "apply_fault_plan",
    "inject_stall",
]


class StageSampler(Protocol):
    """Anything the pipeline can draw stage service times from."""

    def next(self) -> float: ...


@dataclass(frozen=True)
class FaultWindow:
    """One recorded active window of one applied fault."""

    kind: str
    label: str
    start_ms: float
    end_ms: float


class StallInjector:
    """Sampler wrapper adding scheduled service-time stalls.

    At each programmed simulation time, the next draw after that point
    is inflated by the stall duration — a service-time stall, exactly
    how a descheduled thread manifests to the pipeline.
    """

    def __init__(
        self,
        base_sampler: StageSampler,
        env: Environment,
        stalls: Sequence[Tuple[float, float]],
    ) -> None:
        """``stalls`` is a sequence of ``(at_ms, duration_ms)`` pairs."""
        for at_ms, duration_ms in stalls:
            if duration_ms <= 0:
                raise ValueError("stall duration must be positive")
            if at_ms < 0:
                raise ValueError("stall time must be non-negative")
        self._base = base_sampler
        self._env = env
        #: Pending stalls, earliest first (popped from the left in O(1)).
        self._pending: Deque[Tuple[float, float]] = deque(sorted(stalls))
        #: (time, duration) of stalls already delivered.
        self.fired: List[Tuple[float, float]] = []

    def next(self) -> float:
        value = self._base.next()
        while self._pending and self._env.now >= self._pending[0][0]:
            _, duration_ms = self._pending.popleft()
            self.fired.append((self._env.now, duration_ms))
            value += duration_ms
        return value


class WindowScaleSampler:
    """Sampler wrapper multiplying draws inside fixed time windows.

    Models capacity loss rather than a one-off hiccup: every draw whose
    start falls inside a window is scaled by ``factor`` (e.g. GPU
    preemption slices slowing rendering).  Windows must be disjoint and
    are consumed in time order (simulation time never rewinds).
    """

    def __init__(
        self,
        base_sampler: StageSampler,
        env: Environment,
        windows: Sequence[Tuple[float, float]],
        factor: float,
    ) -> None:
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        for start_ms, end_ms in windows:
            if end_ms <= start_ms:
                raise ValueError("scale window must be non-empty")
        self._base = base_sampler
        self._env = env
        self._windows = sorted(windows)
        self._factor = factor
        self._index = 0
        #: Draw count taken inside a window (observability/testing).
        self.scaled = 0

    def next(self) -> float:
        value = self._base.next()
        now = self._env.now
        while self._index < len(self._windows) and self._windows[self._index][1] <= now:
            self._index += 1
        if self._index < len(self._windows):
            start_ms, end_ms = self._windows[self._index]
            if start_ms <= now < end_ms:
                self.scaled += 1
                return value * self._factor
        return value


class FaultController:
    """Per-run fault state: applied injectors, windows, loss accounting.

    Constructed by :func:`apply_fault_plan` and attached as
    ``system.faults``; the network path consults it at transmit time
    (outage gating, loss draws, carried input ids), and recovery
    analytics read its recorded :attr:`windows` after the run.
    """

    def __init__(self, system: "CloudSystem") -> None:
        self.system = system
        self.env: Environment = system.env
        #: Every applied fault's active window(s), in plan order.
        self.windows: List[FaultWindow] = []
        #: Stall injectors, by stage (one per stalled stage).
        self.injectors: Dict[str, StallInjector] = {}
        #: Render-scale wrappers (GPU preemption), in plan order.
        self.scalers: List[WindowScaleSampler] = []
        self._outage_windows: List[Tuple[float, float]] = []
        self._loss_windows: List[Tuple[float, float, float]] = []
        self._loss_rng: Optional[SeededRng] = None
        self._carried_inputs: Set[int] = set()
        #: Frames lost to packet-loss bursts.
        self.frames_lost = 0

    # -- transmit-time queries (called by NetworkPath) -------------------

    def outage_release_at(self, time_ms: float) -> Optional[float]:
        """When the outage covering ``time_ms`` lifts, or ``None``."""
        release: Optional[float] = None
        current = time_ms
        changed = True
        while changed:
            changed = False
            for start_ms, end_ms in self._outage_windows:
                if start_ms <= current < end_ms:
                    current = end_ms
                    release = end_ms
                    changed = True
        return release

    def frame_lost(self, time_ms: float) -> bool:
        """Seeded loss draw for a frame sent at ``time_ms``.

        Consumes randomness only inside a loss window, so runs with and
        without traffic during the window stay independently seeded.
        """
        for start_ms, end_ms, loss_prob in self._loss_windows:
            if start_ms <= time_ms < end_ms:
                if self._loss_rng is None:
                    self._loss_rng = self.system.rng.child("faults", "loss")
                return self._loss_rng.bernoulli(loss_prob)
        return False

    def absorb_lost_frame(self, frame: "Frame") -> None:
        """Account a frame the network dropped: mark, carry its inputs."""
        from repro.pipeline.frames import DropReason

        frame.dropped = DropReason.NETWORK_LOSS
        self.frames_lost += 1
        if frame.input_ids:
            self._carried_inputs |= frame.input_ids
        telemetry = self.system.telemetry
        if telemetry is not None:
            telemetry.frame_dropped(frame, self.env.now, DropReason.NETWORK_LOSS.value)

    def claim_carried_inputs(self) -> Set[int]:
        """Input ids of lost frames, to graft onto the next delivery."""
        claimed = self._carried_inputs
        self._carried_inputs = set()
        return claimed

    # -- analysis-side accessors -----------------------------------------

    def fault_envelope(self) -> Optional[Tuple[float, float]]:
        """``(first_start, last_end)`` over all windows, or ``None``."""
        if not self.windows:
            return None
        return (
            min(w.start_ms for w in self.windows),
            max(w.end_ms for w in self.windows),
        )

    # -- internal wiring ---------------------------------------------------

    def _record_window(self, kind: str, label: str, start_ms: float, end_ms: float) -> None:
        self.windows.append(FaultWindow(kind, label, start_ms, end_ms))
        telemetry = self.system.telemetry
        if telemetry is not None:
            telemetry.fault_window(kind, label, start_ms, end_ms)
        regulator = self.system.regulator
        self.env.call_at(start_ms, lambda: regulator.on_fault_begin(kind, start_ms))
        self.env.call_at(end_ms, lambda: regulator.on_fault_end(kind, end_ms))


#: Where each stage component caches its sampler at construction.
_STAGE_ATTRS: Dict[str, Tuple[str, str]] = {
    "render": ("app", "_render_sampler"),
    "copy": ("app", "_copy_sampler"),
    "encode": ("proxy", "_encode_sampler"),
    "decode": ("client", "_decode_sampler"),
}


def _rebind_sampler(system: "CloudSystem", stage: str, sampler: StageSampler) -> None:
    """Swap a stage's sampler in both the registry and its component."""
    if stage not in _STAGE_ATTRS:
        raise KeyError(f"unknown stage {stage!r}; have {sorted(_STAGE_ATTRS)}")
    cast(Dict[str, StageSampler], system.samplers)[stage] = sampler
    owner_name, attr = _STAGE_ATTRS[stage]
    setattr(getattr(system, owner_name), attr, sampler)


def _window_dip(start_ms: float, end_ms: float, factor: float) -> BandwidthSchedule:
    """A capacity factor of ``factor`` inside the window, 1.0 outside."""

    def schedule(time_ms: float) -> float:
        return factor if start_ms <= time_ms < end_ms else 1.0

    return schedule


def apply_fault_plan(system: "CloudSystem", plan: FaultPlan) -> FaultController:
    """Wire every fault of ``plan`` into a constructed, un-run system."""
    controller = FaultController(system)
    samplers = cast(Dict[str, StageSampler], system.samplers)
    stalls: Dict[str, List[Tuple[float, float]]] = {}
    dips: List[BandwidthSchedule] = []

    for index, fault in enumerate(plan):
        if isinstance(fault, StageStall):
            stalls.setdefault(fault.stage, []).append((fault.at_ms, fault.duration_ms))
            controller._record_window(fault.kind, fault.label(), *fault.window())
        elif isinstance(fault, ClientPause):
            stalls.setdefault("decode", []).append((fault.at_ms, fault.duration_ms))
            controller._record_window(fault.kind, fault.label(), *fault.window())
        elif isinstance(fault, StallStorm):
            rng = system.rng.child("faults", "storm", index)
            time_ms = fault.start_ms + rng.exponential(1000.0 / fault.rate_per_s)
            pairs = stalls.setdefault(fault.stage, [])
            while time_ms < fault.end_ms:
                pairs.append((time_ms, rng.exponential(fault.mean_stall_ms)))
                time_ms += rng.exponential(1000.0 / fault.rate_per_s)
            controller._record_window(fault.kind, fault.label(), *fault.window())
        elif isinstance(fault, GpuPreemption):
            scaler = WindowScaleSampler(
                samplers["render"], system.env, fault.slices(), fault.slowdown
            )
            _rebind_sampler(system, "render", scaler)
            controller.scalers.append(scaler)
            for start_ms, end_ms in fault.slices():
                controller._record_window(fault.kind, fault.label(), start_ms, end_ms)
        elif isinstance(fault, NetworkOutage):
            controller._outage_windows.append(fault.window())
            controller._record_window(fault.kind, fault.label(), *fault.window())
        elif isinstance(fault, BandwidthCollapse):
            start_ms, end_ms = fault.window()
            dips.append(_window_dip(start_ms, end_ms, fault.factor))
            controller._record_window(fault.kind, fault.label(), start_ms, end_ms)
        elif isinstance(fault, PacketLossBurst):
            start_ms, end_ms = fault.window()
            controller._loss_windows.append((start_ms, end_ms, fault.loss_prob))
            controller._record_window(fault.kind, fault.label(), start_ms, end_ms)
        else:  # pragma: no cover - the taxonomy is closed
            raise TypeError(f"unsupported fault spec {type(fault).__name__}")

    # One injector per stalled stage, wrapping whatever sampler the
    # stage currently has (possibly already scale-wrapped above).
    for stage, pairs in stalls.items():
        injector = StallInjector(samplers[stage], system.env, pairs)
        _rebind_sampler(system, stage, injector)
        controller.injectors[stage] = injector

    if dips:
        existing = system.network.bandwidth_schedule
        schedules = ([existing] if existing is not None else []) + dips
        system.network.bandwidth_schedule = compose(schedules)

    telemetry = system.telemetry
    if telemetry is not None and controller.windows:
        telemetry.count("faults_applied_total", float(len(plan)))
    return controller


def inject_stall(
    system: "CloudSystem",
    stage: str,
    at_ms: float,
    duration_ms: float,
) -> StallInjector:
    """Schedule one stall of ``stage`` and return the injector.

    Programmatic shorthand for a one-spec
    ``FaultPlan([StageStall(stage, at_ms, duration_ms)])`` applied by
    hand; must be called before ``system.run()``.  Multiple calls on
    the same stage chain injectors, as before.
    """
    if stage not in _STAGE_ATTRS:
        raise KeyError(f"unknown stage {stage!r}; have {sorted(system.samplers)}")
    injector = StallInjector(
        cast(Dict[str, StageSampler], system.samplers)[stage],
        system.env,
        [(at_ms, duration_ms)],
    )
    _rebind_sampler(system, stage, injector)
    return injector
