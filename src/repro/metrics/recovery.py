"""Recovery analytics: how a regulator behaves around an injected fault.

The paper's argument for ODR's *acceleration* path (Sec. 4.1) is
graceful recovery from "suddenly-increased processing time": after a
stall, ODR renders above the target rate until the client-side buffer
refills, then settles back.  This module quantifies that behaviour for
any fault (:mod:`repro.faults`):

* **pre-fault FPS** — client decode rate in the window leading up to
  the fault: the level recovery is measured against;
* **time to recover** — simulated ms from the fault window's end until
  the windowed decode FPS re-enters the pre-fault band
  (``band_frac × pre_fault_fps``) and *stays* there for
  ``hold_windows`` consecutive windows (``None`` if it never does);
* **frames lost** — deliveries missing during the fault window versus
  the pre-fault rate;
* **worst FPS-gap excursion** — max windowed (render − decode) FPS gap
  over the fault-plus-recovery region: how much excessive rendering
  the disturbance provoked;
* **MtP p99 during recovery** — tail latency of inputs issued between
  fault start and recovery.

:func:`compute_recovery` is the pure, series-based core (unit-testable
on synthetic event times); :func:`recovery_stats` adapts a finished
:class:`~repro.pipeline.system.RunResult` plus its fault windows.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.metrics.stats import percentile

if TYPE_CHECKING:  # pragma: no cover
    from repro.pipeline.system import RunResult

__all__ = ["RecoveryStats", "compute_recovery", "recovery_stats"]

#: FPS-band fraction of the pre-fault level that counts as recovered.
DEFAULT_BAND_FRAC = 0.9
#: Windowed-FPS sampling width (ms) for recovery detection.
DEFAULT_WINDOW_MS = 250.0
#: Consecutive in-band windows required to declare recovery.
DEFAULT_HOLD_WINDOWS = 4
#: How far before the fault the pre-fault FPS level is estimated (ms).
_PRE_FAULT_SPAN_MS = 5000.0


@dataclass(frozen=True)
class RecoveryStats:
    """Recovery behaviour of one run around its injected fault window."""

    #: Fault envelope: first window start / last window end (ms).
    fault_start_ms: float
    fault_end_ms: float
    #: Client decode FPS in the window leading up to the fault.
    pre_fault_fps: float
    #: ms after the fault end until decode FPS re-entered the pre-fault
    #: band and held; ``None`` = never recovered within the run.
    time_to_recover_ms: Optional[float]
    #: Deliveries missing during the fault vs the pre-fault rate.
    frames_lost: float
    #: Max windowed (render − decode) FPS gap over fault + recovery.
    worst_fps_gap: float
    #: p99 MtP latency of inputs issued between fault start and
    #: recovery (``None`` when no such input closed).
    recovery_mtp_p99_ms: Optional[float]

    @property
    def recovered(self) -> bool:
        return self.time_to_recover_ms is not None


def _window_count(times: Sequence[float], start: float, end: float) -> int:
    """Events in ``[start, end)`` of a sorted time series."""
    return bisect_left(times, end) - bisect_left(times, start)


def compute_recovery(
    decode_times: Sequence[float],
    render_times: Sequence[float],
    mtp_samples: Sequence[Tuple[float, float]],
    fault_start_ms: float,
    fault_end_ms: float,
    t_start: float,
    t_end: float,
    band_frac: float = DEFAULT_BAND_FRAC,
    window_ms: float = DEFAULT_WINDOW_MS,
    hold_windows: int = DEFAULT_HOLD_WINDOWS,
) -> RecoveryStats:
    """Recovery stats from raw event series (pure; unit-testable).

    ``decode_times`` / ``render_times`` are the stage completion times
    (sorted ascending, as :class:`~repro.metrics.counters.FpsCounter`
    records them); ``mtp_samples`` are ``(issued_at_ms, latency_ms)``
    pairs.
    """
    if fault_end_ms <= fault_start_ms:
        raise ValueError("fault window must be non-empty")
    if not 0 < band_frac <= 1:
        raise ValueError("band fraction must be in (0, 1]")
    if window_ms <= 0 or hold_windows < 1:
        raise ValueError("window_ms must be positive and hold_windows >= 1")
    decode_sorted = sorted(decode_times)
    render_sorted = sorted(render_times)

    # Pre-fault level: the stretch just before the fault, falling back
    # to the whole measured window when the fault starts immediately.
    pre_start = max(t_start, fault_start_ms - _PRE_FAULT_SPAN_MS)
    pre_span = fault_start_ms - pre_start
    if pre_span >= window_ms:
        pre_fault_fps = _window_count(decode_sorted, pre_start, fault_start_ms) * (
            1000.0 / pre_span
        )
    else:
        whole_span = max(t_end - t_start, 1e-9)
        pre_fault_fps = _window_count(decode_sorted, t_start, t_end) * (
            1000.0 / whole_span
        )
    # A window of `window_ms` quantizes FPS to multiples of one frame
    # (4 FPS at 250 ms) and under-reads a phase-shifted stream by up to
    # one event, so the band threshold concedes that one quantum —
    # otherwise a pipeline steady at exactly the target rate could
    # never "recover" to 0.9x of a pre-fault estimate just above it.
    quantum_fps = 1000.0 / window_ms
    band_fps = band_frac * pre_fault_fps - quantum_fps

    # Time to recover: first run of `hold_windows` consecutive windows
    # after the fault end whose decode FPS is back in the band.
    time_to_recover: Optional[float] = None
    n_windows = int((t_end - fault_end_ms) // window_ms)
    in_band_run = 0
    for index in range(n_windows):
        w_start = fault_end_ms + index * window_ms
        fps = _window_count(decode_sorted, w_start, w_start + window_ms) * (
            1000.0 / window_ms
        )
        in_band_run = in_band_run + 1 if fps >= band_fps else 0
        if in_band_run >= hold_windows:
            time_to_recover = (index + 1 - hold_windows) * window_ms
            break

    # Frames lost during the fault vs the pre-fault delivery rate.
    fault_span = fault_end_ms - fault_start_ms
    delivered = _window_count(decode_sorted, fault_start_ms, fault_end_ms)
    expected = pre_fault_fps * fault_span / 1000.0
    frames_lost = max(0.0, expected - delivered)

    # Worst excessive-rendering excursion over fault + recovery.
    if time_to_recover is not None:
        region_end = min(t_end, fault_end_ms + time_to_recover + hold_windows * window_ms)
    else:
        region_end = t_end
    worst_gap = 0.0
    cursor = fault_start_ms
    while cursor + window_ms <= region_end:
        rendered = _window_count(render_sorted, cursor, cursor + window_ms)
        shown = _window_count(decode_sorted, cursor, cursor + window_ms)
        worst_gap = max(worst_gap, (rendered - shown) * 1000.0 / window_ms)
        cursor += window_ms

    # MtP tail for inputs issued while the disturbance was in effect.
    latencies = [
        latency
        for issued_at, latency in mtp_samples
        if fault_start_ms <= issued_at < region_end
    ]
    mtp_p99 = percentile(latencies, 99.0) if latencies else None

    return RecoveryStats(
        fault_start_ms=fault_start_ms,
        fault_end_ms=fault_end_ms,
        pre_fault_fps=pre_fault_fps,
        time_to_recover_ms=time_to_recover,
        frames_lost=frames_lost,
        worst_fps_gap=worst_gap,
        recovery_mtp_p99_ms=mtp_p99,
    )


def recovery_stats(
    result: "RunResult",
    fault_windows: Sequence[Tuple[float, float]],
    band_frac: float = DEFAULT_BAND_FRAC,
    window_ms: float = DEFAULT_WINDOW_MS,
    hold_windows: int = DEFAULT_HOLD_WINDOWS,
) -> Optional[RecoveryStats]:
    """Recovery stats of a finished run over its fault envelope.

    ``fault_windows`` is the applied plan's ``(start_ms, end_ms)``
    windows (``system.faults.windows``); the envelope — first start to
    last end, clipped to the measured window — is treated as one
    disturbance.  Returns ``None`` when no window overlaps the
    measured portion of the run.
    """
    if not fault_windows:
        return None
    fault_start = min(start for start, _ in fault_windows)
    fault_end = max(end for _, end in fault_windows)
    fault_start = max(fault_start, result.t_start)
    fault_end = min(fault_end, result.t_end)
    if fault_end <= fault_start:
        return None
    mtp_pairs: List[Tuple[float, float]] = [
        (sample.issued_at, sample.latency_ms) for sample in result.tracker.samples
    ]
    return compute_recovery(
        decode_times=result.counter.times("decode"),
        render_times=result.counter.times("render"),
        mtp_samples=mtp_pairs,
        fault_start_ms=fault_start,
        fault_end_ms=fault_end,
        t_start=result.t_start,
        t_end=result.t_end,
        band_frac=band_frac,
        window_ms=window_ms,
        hold_windows=hold_windows,
    )
