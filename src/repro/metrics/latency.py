"""Motion-to-photon (MtP) latency measurement.

MtP latency is "the time between a user issues an input and the
responding frame displayed on the screen" (paper Sec. 3).  The tracker
mirrors how the Pictor framework measures it on the real system:

* when the client generates an input, :meth:`MtpLatencyTracker.input_issued`
  registers it with its creation timestamp;
* when the 3D application renders a frame, the frame records which
  pending inputs its content reflects (input combining means a frame may
  answer several inputs at once);
* when that frame is finally *displayed* at the client,
  :meth:`MtpLatencyTracker.frame_displayed` closes the latency samples of
  every input the frame answers (first responding frame wins — a later
  redisplay of the same state does not re-close the sample).

Polling events (mouse-move / VR-pose streams) are excluded exactly as in
the paper: "ODR does not prioritize polling event inputs" and Pictor
measures MtP on discrete actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.metrics.stats import BoxStats, summarize

__all__ = ["LatencySample", "MtpLatencyTracker"]


@dataclass(frozen=True)
class LatencySample:
    """One closed input→photon measurement."""

    input_id: int
    issued_at: float
    displayed_at: float

    @property
    def latency_ms(self) -> float:
        return self.displayed_at - self.issued_at


@dataclass
class MtpLatencyTracker:
    """Tracks open inputs and closed latency samples."""

    _open: Dict[int, float] = field(default_factory=dict)
    _samples: List[LatencySample] = field(default_factory=list)

    def input_issued(self, input_id: int, time_ms: float) -> None:
        """Register a (non-polling) user input issued at ``time_ms``."""
        if input_id in self._open:
            raise ValueError(f"duplicate input id {input_id}")
        self._open[input_id] = time_ms

    def frame_displayed(self, input_ids: Iterable[int], time_ms: float) -> List[LatencySample]:
        """Close every still-open input the displayed frame answers.

        Returns the newly-closed samples.  Unknown/already-closed ids are
        ignored (a frame can be displayed after a newer frame already
        answered the same input — only the first display counts).
        """
        closed = []
        for input_id in input_ids:
            issued = self._open.pop(input_id, None)
            if issued is None:
                continue
            if time_ms < issued:
                raise ValueError(
                    f"input {input_id} displayed at {time_ms} before issue at {issued}"
                )
            sample = LatencySample(input_id, issued, time_ms)
            self._samples.append(sample)
            closed.append(sample)
        return closed

    # -- analysis --------------------------------------------------------

    @property
    def samples(self) -> List[LatencySample]:
        return list(self._samples)

    @property
    def open_count(self) -> int:
        """Inputs that never received a displayed response (yet)."""
        return len(self._open)

    def latencies(self) -> List[float]:
        return [s.latency_ms for s in self._samples]

    def mean_latency(self) -> float:
        values = self.latencies()
        if not values:
            raise ValueError("no closed latency samples")
        return sum(values) / len(values)

    def box(self) -> BoxStats:
        """Paper-style box summary of all closed samples."""
        return summarize(self.latencies())
