"""Distribution summaries matching the paper's reporting style.

The paper's box plots (Fig. 10, Fig. 11) show the 1 %ile, 25 %ile, mean,
75 %ile, and 99 %ile; :class:`BoxStats` captures exactly those five
numbers plus the count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["BoxStats", "mean", "percentile", "stddev", "summarize"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for singleton input."""
    values = list(values)
    if not values:
        raise ValueError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (``pct`` in [0, 100])."""
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi or ordered[lo] == ordered[hi]:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class BoxStats:
    """The five-number summary used throughout the paper's figures."""

    count: int
    mean: float
    p1: float
    p25: float
    p75: float
    p99: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p1": self.p1,
            "p25": self.p25,
            "p75": self.p75,
            "p99": self.p99,
        }

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.1f} "
            f"[p1={self.p1:.1f} p25={self.p25:.1f} p75={self.p75:.1f} p99={self.p99:.1f}]"
        )


def summarize(values: Sequence[float]) -> BoxStats:
    """Compute the paper-style box summary of ``values``."""
    values = list(values)
    if not values:
        raise ValueError("summarize of empty sequence")
    return BoxStats(
        count=len(values),
        mean=mean(values),
        p1=percentile(values, 1),
        p25=percentile(values, 25),
        p75=percentile(values, 75),
        p99=percentile(values, 99),
    )
