"""Distribution summaries and cross-run inference, pure stdlib.

Two layers live here:

* the paper's reporting style — box plots (Fig. 10, Fig. 11) show the
  1 %ile, 25 %ile, mean, 75 %ile, and 99 %ile; :class:`BoxStats`
  captures exactly those five numbers plus the count;
* the regression sentinel's inference kit
  (:mod:`repro.obs.sentinel`) — a Mann-Whitney U rank test and a
  bootstrap confidence interval for the difference of means, both
  implemented with nothing beyond ``math`` so cross-run comparison
  needs no SciPy.  Bootstrap resampling uses an embedded splitmix64
  generator (:class:`SplitMix64`) rather than :mod:`random` or the
  simulation's seeded streams: the resampling randomness is part of the
  *analysis*, must be reproducible from an explicit seed, and must
  never touch the simulation's RNG registry (simlint rule R1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "BootstrapCI",
    "BoxStats",
    "MannWhitneyResult",
    "SplitMix64",
    "bootstrap_diff_ci",
    "bootstrap_mean_ci",
    "mann_whitney_u",
    "mean",
    "percentile",
    "stddev",
    "summarize",
]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for singleton input."""
    values = list(values)
    if not values:
        raise ValueError("stddev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile (``pct`` in [0, 100])."""
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi or ordered[lo] == ordered[hi]:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass(frozen=True)
class BoxStats:
    """The five-number summary used throughout the paper's figures."""

    count: int
    mean: float
    p1: float
    p25: float
    p75: float
    p99: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "p1": self.p1,
            "p25": self.p25,
            "p75": self.p75,
            "p99": self.p99,
        }

    def __str__(self) -> str:
        return (
            f"mean={self.mean:.1f} "
            f"[p1={self.p1:.1f} p25={self.p25:.1f} p75={self.p75:.1f} p99={self.p99:.1f}]"
        )


def summarize(values: Sequence[float]) -> BoxStats:
    """Compute the paper-style box summary of ``values``."""
    values = list(values)
    if not values:
        raise ValueError("summarize of empty sequence")
    return BoxStats(
        count=len(values),
        mean=mean(values),
        p1=percentile(values, 1),
        p25=percentile(values, 25),
        p75=percentile(values, 75),
        p99=percentile(values, 99),
    )


# ---------------------------------------------------------------------------
# Cross-run inference (regression sentinel support)
# ---------------------------------------------------------------------------


class SplitMix64:
    """Tiny deterministic PRNG (splitmix64) for bootstrap resampling.

    Statistically solid for resampling indices, reproducible from an
    explicit integer seed, and dependency-free.  Deliberately *not* a
    simulation stream: analysis randomness must never share state with
    (or be mistaken for) workload randomness.
    """

    _MASK = (1 << 64) - 1

    def __init__(self, seed: int) -> None:
        self._state = int(seed) & self._MASK

    def next_u64(self) -> int:
        """Next 64-bit output word."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & self._MASK
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & self._MASK
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & self._MASK
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)`` (rejection-free multiply-shift)."""
        if n <= 0:
            raise ValueError("randrange bound must be positive")
        return (self.next_u64() * n) >> 64


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a two-sided Mann-Whitney U rank test."""

    u: float
    #: Two-sided p-value from the normal approximation (tie-corrected,
    #: continuity-corrected).  1.0 when either sample is empty or all
    #: observations are tied.
    p_value: float
    n_a: int
    n_b: int

    def significant(self, alpha: float = 0.01) -> bool:
        return self.p_value < alpha


def _rank_sum(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Rank-sum of sample ``a`` in the pooled ranking, plus tie term."""
    pooled = sorted(
        [(float(v), 0) for v in a] + [(float(v), 1) for v in b],
        key=lambda pair: pair[0],
    )
    rank_a = 0.0
    tie_term = 0.0
    index = 0
    while index < len(pooled):
        stop = index
        while stop < len(pooled) and pooled[stop][0] == pooled[index][0]:
            stop += 1
        # Average rank for the tied block [index, stop).
        avg_rank = (index + stop + 1) / 2.0  # ranks are 1-based
        block = stop - index
        tie_term += block ** 3 - block
        for position in range(index, stop):
            if pooled[position][1] == 0:
                rank_a += avg_rank
        index = stop
    return rank_a, tie_term


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test via the normal approximation.

    Pure stdlib: average ranks for ties, tie-corrected variance,
    continuity correction, and a two-sided p-value from ``math.erfc``.
    Degenerate inputs (empty samples, zero variance — e.g. comparing a
    deterministic re-run against itself) report ``p_value = 1.0``.
    """
    n_a, n_b = len(a), len(b)
    if n_a == 0 or n_b == 0:
        return MannWhitneyResult(u=0.0, p_value=1.0, n_a=n_a, n_b=n_b)
    rank_a, tie_term = _rank_sum(a, b)
    u_a = rank_a - n_a * (n_a + 1) / 2.0
    n = n_a + n_b
    mu = n_a * n_b / 2.0
    variance = (n_a * n_b / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if variance <= 0.0:
        return MannWhitneyResult(u=u_a, p_value=1.0, n_a=n_a, n_b=n_b)
    z = (abs(u_a - mu) - 0.5) / math.sqrt(variance)
    if z < 0.0:
        z = 0.0
    p = math.erfc(z / math.sqrt(2.0))
    return MannWhitneyResult(u=u_a, p_value=min(1.0, p), n_a=n_a, n_b=n_b)


@dataclass(frozen=True)
class BootstrapCI:
    """A percentile bootstrap confidence interval for a statistic."""

    estimate: float
    low: float
    high: float
    confidence: float
    resamples: int

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def as_dict(self) -> dict:
        return {
            "estimate": self.estimate,
            "low": self.low,
            "high": self.high,
            "confidence": self.confidence,
            "resamples": self.resamples,
        }


def _resample_mean(values: Sequence[float], rng: SplitMix64) -> float:
    n = len(values)
    total = 0.0
    for _ in range(n):
        total += values[rng.randrange(n)]
    return total / n


def bootstrap_mean_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean of one sample."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("bootstrap of empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} outside (0, 1)")
    rng = SplitMix64(seed)
    means: List[float] = [_resample_mean(values, rng) for _ in range(resamples)]
    tail = (1.0 - confidence) / 2.0 * 100.0
    return BootstrapCI(
        estimate=mean(values),
        low=percentile(means, tail),
        high=percentile(means, 100.0 - tail),
        confidence=confidence,
        resamples=resamples,
    )


def bootstrap_diff_ci(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for ``mean(b) - mean(a)``.

    Both samples are resampled independently per replicate, so the
    interval reflects sampling variability on both sides of a run
    comparison.
    """
    a = [float(v) for v in a]
    b = [float(v) for v in b]
    if not a or not b:
        raise ValueError("bootstrap of empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} outside (0, 1)")
    rng = SplitMix64(seed)
    diffs: List[float] = [
        _resample_mean(b, rng) - _resample_mean(a, rng) for _ in range(resamples)
    ]
    tail = (1.0 - confidence) / 2.0 * 100.0
    return BootstrapCI(
        estimate=mean(b) - mean(a),
        low=percentile(diffs, tail),
        high=percentile(diffs, 100.0 - tail),
        confidence=confidence,
        resamples=resamples,
    )
